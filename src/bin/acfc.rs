//! The `acfc` command-line tool.
//!
//! ```text
//! acfc check   <file.mpsl> [--nprocs N]          # parse, validate, check Condition 1
//! acfc analyze <file.mpsl> [--nprocs N] [--emit] [--dot] [--profile out.json]
//!              [--folded out.folded]
//! acfc run     <file.mpsl> [--nprocs N] [--seed S] [--analyze] [--input V]...
//!              [--profile out.json]
//! acfc run     <file.mpsl> --real [--det] [--protocol P] [--backend mem|file|log]
//!              [--backend-dir DIR] [--kill p@t]... [--interval-us N] [--jsonl out.jsonl]
//! acfc report  <file.mpsl> [--nprocs N] [--seed S] [--serve ADDR]
//! acfc mpmd    <name> <file.mpsl@FIRST[-LAST]>... # combine MPMD roles into SPMD
//! acfc figures                                    # regenerate Figures 8 and 9
//! acfc compare <file.mpsl>... [--nprocs N] [--seed S] [--failure-rate L]...
//!              [--sweep] [--ns 2,4,8,16] [--seeds K] [--cic index,bcs,hmnr,lazy]
//!              [--telemetry] [--jsonl out.jsonl] [--json out.json] [--profile out.json]
//!              [--folded out.folded] [--serve ADDR]
//! ```
//!
//! `check` reports whether the program's checkpoint placement already
//! guarantees recovery lines; `analyze` runs the full three-phase
//! pipeline and prints the report (`--emit` prints the transformed
//! source, `--dot` the extended CFG in Graphviz form); `run` executes
//! on the simulator and verifies every straight cut.
//!
//! `run --real` executes on the real checkpointing runtime instead:
//! one OS thread per worker over live channels, snapshots committed to
//! an actual [`StateBackend`](acfc::sim::StateBackend) (`--backend mem`
//! in-memory, `file` one CRC-framed file per snapshot with atomic
//! rename, `log` a single append-only log), `--kill p@t` crashing
//! worker `p` at virtual time `t` µs with stop-the-world recovery from
//! the latest consistent cut read back out of the backend. `--det`
//! swaps the free-running threads for the deterministic virtual-time
//! scheduler (same trace as the simulator); `--protocol` picks the
//! coordinator (`appl-driven`, `uncoordinated`, `SaS`, `C-L`,
//! `CIC-index|bcs|hmnr|lazy`); `--jsonl` writes the machine-readable
//! event transcript; `--trace` prints it.
//!
//! `--profile` writes a Chrome-trace-format JSON file loadable in
//! <https://ui.perfetto.dev>: for `run`, a **simulated-time** timeline
//! (one track per process with compute/blocked/checkpoint slices,
//! message flow arrows, and a marker per recovery line — the paper's
//! Fig. 4 as an interactive view); for `analyze`, the **wall-clock**
//! spans of the analysis pipeline. `--folded` writes the same
//! wall-span forest as folded stack lines (`inferno`/flamegraph.pl
//! input) plus a sibling `.speedscope.json` loadable at
//! <https://www.speedscope.app>. `report` runs analysis + simulation
//! with full instrumentation on and prints the counter table;
//! `--serve ADDR` then keeps the process alive exposing the registry
//! at `http://ADDR/metrics` in Prometheus text format.
//!
//! `compare` runs the same program under every checkpointing protocol
//! (app-driven, uncoordinated, SaS, Chandy–Lamport, CIC) and tabulates
//! the measured counters — forced checkpoints, control messages,
//! coordination stalls — plus message-latency percentile bounds.
//! `--sweep` executes a full replicated evaluation matrix instead:
//! `--ns` process counts × `--failure-rate` grid × positional workload
//! files (`--cic` narrows the protocol axis to the named CIC variants
//! next to the four baselines), with `--seeds` trials per cell
//! aggregated into
//! mean ± stddev ± 95% CI rows that stream to stdout as cells finish
//! (progress/ETA on stderr). `--jsonl` streams one JSON object per
//! aggregate row (`--telemetry` appends a machine-readable
//! `sweep_telemetry` trailer line after the rows); `--json` writes the
//! buffered artifact; `--profile` writes a merged Perfetto timeline
//! with one track group per protocol; `--folded` captures the sweep's
//! wall spans as a flamegraph; `--serve ADDR` exposes live metrics for
//! the duration of the sweep. Rows are bit-identical at any
//! `ACFC_THREADS`.

use acfc::cfg::build_cfg;
use acfc::core::{
    analyze, analyze_iddep, check_condition1, compute_attrs, index_checkpoints, match_send_recv,
    AnalysisConfig, ExtendedCfg, LoopPolicy, MatchingMode,
};
use acfc::mpsl::{parse, to_source, validate};
use acfc::perfmodel::{
    figure8, figure8_default_ns, figure9, figure9_default_wms, to_tsv, ModelParams,
};
use acfc::sim::{compile, consistency, run, run_observed, SimConfig, SimObs};
use std::process::ExitCode;

struct Args {
    positional: Vec<String>,
    nprocs: usize,
    seed: u64,
    emit: bool,
    dot: bool,
    do_analyze: bool,
    inputs: Vec<i64>,
    failure_rates: Vec<f64>,
    trace: bool,
    profile: Option<String>,
    sweep: bool,
    ns: Option<Vec<usize>>,
    seeds: u64,
    json: Option<String>,
    jsonl: Option<String>,
    folded: Option<String>,
    serve: Option<String>,
    telemetry: bool,
    cic: Option<Vec<String>>,
    real: bool,
    det: bool,
    protocol: Option<String>,
    backend: String,
    backend_dir: Option<String>,
    kills: Vec<String>,
    interval_us: u64,
}

fn parse_args(mut argv: std::env::Args) -> Result<(String, Args), String> {
    let _ = argv.next();
    let cmd = argv.next().ok_or_else(usage)?;
    let mut args = Args {
        positional: Vec::new(),
        nprocs: 4,
        seed: 0xACFC,
        emit: false,
        dot: false,
        do_analyze: false,
        inputs: Vec::new(),
        failure_rates: Vec::new(),
        trace: false,
        profile: None,
        sweep: false,
        ns: None,
        seeds: 3,
        json: None,
        jsonl: None,
        folded: None,
        serve: None,
        telemetry: false,
        cic: None,
        real: false,
        det: false,
        protocol: None,
        backend: "mem".to_string(),
        backend_dir: None,
        kills: Vec::new(),
        interval_us: 60_000,
    };
    let mut it = argv.peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--nprocs" | "-n" => {
                args.nprocs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--nprocs needs a number")?;
            }
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seed needs a number")?;
            }
            "--input" => {
                args.inputs.push(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--input needs a number")?,
                );
            }
            "--failure-rate" => {
                args.failure_rates.push(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--failure-rate needs a number (per second)")?,
                );
            }
            "--ns" => {
                let list = it.next().ok_or("--ns needs a comma-separated list")?;
                let ns: Result<Vec<usize>, _> = list.split(',').map(|v| v.trim().parse()).collect();
                args.ns = Some(ns.map_err(|_| format!("--ns: bad process count in `{list}`"))?);
            }
            "--seeds" => {
                args.seeds = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seeds needs a number")?;
            }
            "--jsonl" => {
                args.jsonl = Some(it.next().ok_or("--jsonl needs an output path")?);
            }
            "--profile" => {
                args.profile = Some(it.next().ok_or("--profile needs an output path")?);
            }
            "--json" => {
                args.json = Some(it.next().ok_or("--json needs an output path")?);
            }
            "--folded" => {
                args.folded = Some(it.next().ok_or("--folded needs an output path")?);
            }
            "--serve" => {
                args.serve = Some(it.next().ok_or("--serve needs an address (host:port)")?);
            }
            "--cic" => {
                let list = it.next().ok_or("--cic needs a comma-separated list")?;
                args.cic = Some(list.split(',').map(|v| v.trim().to_string()).collect());
            }
            "--protocol" => {
                args.protocol = Some(it.next().ok_or("--protocol needs a protocol name")?);
            }
            "--backend" => {
                args.backend = it.next().ok_or("--backend needs mem, file, or log")?;
            }
            "--backend-dir" => {
                args.backend_dir = Some(it.next().ok_or("--backend-dir needs a directory")?);
            }
            "--kill" => {
                args.kills
                    .push(it.next().ok_or("--kill needs a proc@vtime_us spec")?);
            }
            "--interval-us" => {
                args.interval_us = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--interval-us needs a number (µs)")?;
            }
            "--real" => args.real = true,
            "--det" => args.det = true,
            "--telemetry" => args.telemetry = true,
            "--sweep" => args.sweep = true,
            "--emit" => args.emit = true,
            "--dot" => args.dot = true,
            "--trace" => args.trace = true,
            "--analyze" => args.do_analyze = true,
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag}")),
            _ => args.positional.push(a),
        }
    }
    Ok((cmd, args))
}

fn usage() -> String {
    "usage: acfc <check|analyze|run|report|mpmd|figures|compare> [file.mpsl]... [--nprocs N] \
     [--seed S] [--emit] [--dot] [--trace] [--analyze] [--sweep] [--ns 2,4,8] [--seeds K] \
     [--cic index,bcs,hmnr,lazy] [--input V]... [--failure-rate L]... [--json out.json] \
     [--jsonl out.jsonl] [--telemetry] \
     [--profile out.json] [--folded out.folded] [--serve host:port] \
     [--real] [--det] [--protocol P] [--backend mem|file|log] [--backend-dir DIR] \
     [--kill p@t]... [--interval-us N]"
        .to_string()
}

fn load(args: &Args) -> Result<acfc::mpsl::Program, String> {
    let path = args
        .positional
        .first()
        .ok_or("missing program file argument")?;
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let program = parse(&src).map_err(|e| format!("{path}:{e}"))?;
    let errors = validate(&program);
    if !errors.is_empty() {
        let msgs: Vec<String> = errors.iter().map(|e| e.to_string()).collect();
        return Err(format!("{path}: {}", msgs.join("; ")));
    }
    Ok(program)
}

fn cmd_check(args: &Args) -> Result<(), String> {
    let program = load(args)?;
    let (cfg, lowered) = build_cfg(&program);
    let iddep = analyze_iddep(&cfg, &lowered);
    let attrs = compute_attrs(&cfg, args.nprocs, &iddep);
    let matching = match_send_recv(&cfg, &attrs, &iddep, MatchingMode::FifoOrdered);
    let index = index_checkpoints(&cfg, &lowered);
    let g = ExtendedCfg::build(cfg, &matching);
    let violations = check_condition1(&g, &index, LoopPolicy::Optimized);
    println!(
        "{}: {} checkpoint statement(s), {} message edge(s) at n={}",
        program.name,
        program.checkpoint_ids().len(),
        g.message_edges.len(),
        args.nprocs
    );
    if violations.is_empty() {
        println!("OK: every straight cut of checkpoints is a recovery line (Condition 1 holds)");
        Ok(())
    } else {
        println!("UNSAFE: {} Condition-1 violation(s):", violations.len());
        print!("{}", acfc::core::explain_violations(&g, &violations));
        println!("run `acfc analyze` to relocate the checkpoints");
        Err("placement is unsafe".into())
    }
}

fn analysis_config(args: &Args) -> AnalysisConfig {
    let mut cfg = AnalysisConfig::for_nprocs(args.nprocs);
    if let Some(&rate) = args.failure_rates.first() {
        // The Phase-I insertion interval follows Young's formula from
        // the failure rate (per second → per cost unit, 1 unit = 1 ms).
        if let Some(ic) = &mut cfg.insertion {
            ic.failure_rate_per_unit = rate / 1000.0;
        }
    }
    cfg
}

/// Writes the captured wall-span forest as folded stack lines (the
/// flamegraph.pl / `inferno` input format) plus a sibling speedscope
/// JSON document next to it.
fn write_folded(path: &str, spans: &[acfc::obs::WallSpan]) -> Result<(), String> {
    let labels = acfc::obs::thread_labels();
    std::fs::write(path, acfc::obs::folded_lines(spans, &labels))
        .map_err(|e| format!("{path}: {e}"))?;
    let base = path.strip_suffix(".folded").unwrap_or(path);
    let ss_path = format!("{base}.speedscope.json");
    let name = std::path::Path::new(path)
        .file_name()
        .and_then(|s| s.to_str())
        .unwrap_or("acfc");
    std::fs::write(&ss_path, acfc::obs::speedscope_json(spans, &labels, name))
        .map_err(|e| format!("{ss_path}: {e}"))?;
    println!(
        "wrote {} wall-clock span(s) as folded stacks to {path} (flamegraph.pl/inferno) \
         and {ss_path} (load in https://www.speedscope.app)",
        spans.len()
    );
    Ok(())
}

fn cmd_analyze(args: &Args) -> Result<(), String> {
    let program = load(args)?;
    let capture = args.profile.is_some() || args.folded.is_some();
    if capture {
        acfc::obs::set_enabled(true);
        let _ = acfc::obs::take_wall_spans(); // start from a clean log
    }
    let analysis = analyze(&program, &analysis_config(args)).map_err(|e| e.to_string())?;
    print!("{}", analysis.report());
    if args.emit {
        println!("--- transformed program ---");
        print!("{}", to_source(&analysis.program));
    }
    if args.dot {
        println!("--- extended CFG (Graphviz) ---");
        print!("{}", analysis.to_dot());
    }
    if capture {
        acfc::obs::set_enabled(false);
        let spans = acfc::obs::take_wall_spans();
        if let Some(path) = &args.profile {
            let tb = acfc::obs::perfetto::wall_spans_trace(&spans);
            tb.validate()
                .map_err(|e| format!("profile trace invalid: {e}"))?;
            std::fs::write(path, tb.render()).map_err(|e| format!("{path}: {e}"))?;
            println!(
                "wrote {} wall-clock span(s) to {path} (load in https://ui.perfetto.dev)",
                spans.len()
            );
        }
        if let Some(path) = &args.folded {
            write_folded(path, &spans)?;
        }
        if spans.is_empty() {
            println!("note: binary built without the `obs` feature; spans are compiled out");
        }
    }
    Ok(())
}

/// `acfc run --real` — execute on the checkpointing runtime: live
/// OS-thread workers (or the deterministic scheduler with `--det`),
/// snapshots committed to a real backend, kills injected at virtual
/// times, recovery restored from the backend's committed set.
fn cmd_run_real(args: &Args) -> Result<(), String> {
    use acfc::protocols::ProtocolKind;
    use acfc::runtime::{
        backend_for, coordinator_for, run_det, run_free, FailureInjector, FreeConfig, RunEvent,
    };
    use acfc::sim::Outcome;
    let program = load(args)?;
    let kind: ProtocolKind = args
        .protocol
        .as_deref()
        .unwrap_or("appl-driven")
        .parse()
        .map_err(|e| format!("--protocol: {e}"))?;
    let mut injector = FailureInjector::none();
    for spec in &args.kills {
        let (at, p) = FailureInjector::parse_spec(spec).map_err(|e| format!("--kill: {e}"))?;
        if p >= args.nprocs {
            return Err(format!(
                "--kill {spec}: proc {p} out of range for n={}",
                args.nprocs
            ));
        }
        injector.push(at, p);
    }
    let mut prep = coordinator_for(
        kind,
        &program,
        args.nprocs,
        args.interval_us,
        args.interval_us / 3,
        Default::default(),
    )
    .map_err(|e| format!("--protocol {kind}: {e}"))?;
    let dir = match &args.backend_dir {
        Some(d) => std::path::PathBuf::from(d),
        None => std::env::temp_dir().join(format!("acfc-run-{}", std::process::id())),
    };
    std::fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut backend = backend_for(&args.backend, &dir).map_err(|e| format!("--backend: {e}"))?;
    let cfg = SimConfig::new(args.nprocs)
        .with_seed(args.seed)
        .with_inputs(args.inputs.clone());
    let report = if args.det {
        run_det(
            &prep.compiled,
            &cfg,
            prep.coordinator.as_mut(),
            backend.as_mut(),
            injector.plan(),
        )
        .into_report(kind.name(), backend.name())
    } else {
        run_free(
            &prep.compiled,
            &cfg,
            prep.coordinator.as_mut(),
            backend.as_mut(),
            &injector,
            &FreeConfig::default(),
        )
    };
    println!(
        "{}: n={} mode={} protocol={} backend={} -> {} in {:.4}s virtual",
        report.program,
        report.nprocs,
        report.mode,
        report.coordinator,
        report.backend,
        acfc::runtime::outcome_name(&report.outcome),
        report.vtime_us as f64 / 1e6,
    );
    let mut ckpts = vec![0u64; args.nprocs];
    for e in &report.events {
        match e {
            RunEvent::Checkpoint { proc, .. } => ckpts[*proc] += 1,
            RunEvent::Kill { proc, vtime_us } => {
                println!("kill: P{proc} crashed at {:.4}s", *vtime_us as f64 / 1e6);
            }
            RunEvent::Recovery {
                killed,
                vtime_us,
                restored,
                redelivered,
                lost_us,
            } => {
                let line: Vec<String> = restored
                    .iter()
                    .map(|r| r.map_or_else(|| "initial".into(), |s| s.to_string()))
                    .collect();
                println!(
                    "recovery: P{killed}'s crash rolled back to cut [{}] at {:.4}s \
                     ({redelivered} message(s) re-delivered, {:.1} ms of work lost)",
                    line.join(", "),
                    *vtime_us as f64 / 1e6,
                    *lost_us as f64 / 1000.0,
                );
            }
            _ => {}
        }
    }
    println!(
        "checkpoints committed per process: {ckpts:?}; {} still live in the backend",
        backend.committed().map_err(|e| e.to_string())?.len()
    );
    if args.trace {
        print!("{}", report.to_jsonl());
    }
    if let Some(path) = &args.jsonl {
        std::fs::write(path, report.to_jsonl()).map_err(|e| format!("{path}: {e}"))?;
        println!(
            "wrote {} event(s) to {path} (one JSON object per line)",
            report.events.len()
        );
    }
    if report.outcome != Outcome::Completed {
        return Err("run did not complete".into());
    }
    Ok(())
}

fn cmd_run(args: &Args) -> Result<(), String> {
    if args.real {
        return cmd_run_real(args);
    }
    let mut program = load(args)?;
    if args.do_analyze {
        let analysis = analyze(&program, &analysis_config(args)).map_err(|e| e.to_string())?;
        program = analysis.program;
    }
    let cfg = SimConfig::new(args.nprocs)
        .with_seed(args.seed)
        .with_inputs(args.inputs.clone());
    let compiled = compile(&program);
    let mut obs = args.profile.as_ref().map(|_| SimObs::timeline());
    let trace = match obs.as_mut() {
        Some(o) => run_observed(&compiled, &cfg, o),
        None => run(&compiled, &cfg),
    };
    println!(
        "{}: n={} seed={} -> {:?} in {:.4}s simulated",
        program.name,
        args.nprocs,
        args.seed,
        trace.outcome,
        trace.makespan_secs()
    );
    println!(
        "messages: {} ({} bits); checkpoints per process: {:?}",
        trace.metrics.app_messages,
        trace.metrics.app_bits,
        trace.checkpoint_counts()
    );
    if args.trace {
        println!("--- summary ---\n{}", acfc::sim::summary(&trace));
        println!(
            "--- space-time diagram ---\n{}",
            acfc::sim::spacetime(&trace)
        );
    }
    if let (Some(path), Some(o)) = (&args.profile, obs.as_ref()) {
        let tb = acfc::sim::timeline(&trace, o);
        tb.validate()
            .map_err(|e| format!("profile trace invalid: {e}"))?;
        std::fs::write(path, tb.render()).map_err(|e| format!("{path}: {e}"))?;
        println!(
            "wrote simulated-time timeline ({} process track(s), {} message arrow(s), \
             {} recovery line(s)) to {path} (load in https://ui.perfetto.dev)",
            trace.nprocs,
            trace
                .live_messages()
                .filter(|m| m.recv_at.is_some())
                .count(),
            trace.aligned_depth()
        );
    }
    if !trace.completed() {
        return Err("run did not complete".into());
    }
    let bad = consistency::straight_cut_failures(&trace);
    if bad.is_empty() {
        println!(
            "every straight cut (1..={}) is a recovery line",
            trace.aligned_depth()
        );
        Ok(())
    } else {
        println!("straight cuts {bad:?} are NOT recovery lines");
        Err("inconsistent straight cuts".into())
    }
}

/// `acfc report` — run the full pipeline (analysis + simulation) with
/// instrumentation on and print the registry counter/histogram table
/// plus the per-run simulator summary.
fn cmd_report(args: &Args) -> Result<(), String> {
    let program = load(args)?;
    acfc::obs::reset();
    acfc::obs::set_enabled(true);
    let analysis = analyze(&program, &analysis_config(args)).map_err(|e| e.to_string())?;
    let cfg = SimConfig::new(args.nprocs)
        .with_seed(args.seed)
        .with_inputs(args.inputs.clone());
    let mut obs = SimObs::counters();
    let trace = run_observed(&compile(&analysis.program), &cfg, &mut obs);
    obs.publish();
    acfc::obs::set_enabled(false);
    println!(
        "{}: n={} seed={} -> {:?} in {:.4}s simulated",
        analysis.program.name,
        args.nprocs,
        args.seed,
        trace.outcome,
        trace.makespan_secs()
    );
    println!("\n--- simulator ---");
    println!(
        "events processed: {} | run-ahead hits: {} | messages delivered: {}",
        obs.events_processed, obs.run_ahead_hits, obs.messages_delivered
    );
    for (p, t) in obs.per_proc.iter().enumerate() {
        println!(
            "P{p}: compute {:.1} ms, blocked {:.1} ms, checkpoint stall {:.1} ms",
            t.compute_us as f64 / 1000.0,
            t.blocked_us as f64 / 1000.0,
            t.ckpt_us as f64 / 1000.0
        );
    }
    let snap = acfc::obs::snapshot();
    println!("\n--- metrics registry ---");
    print!("{}", acfc::obs::render(&snap));
    if snap.counters.is_empty() && snap.histograms.is_empty() {
        println!("note: binary built without the `obs` feature; registry metrics are compiled out");
    }
    if let Some(addr) = &args.serve {
        let server = acfc::obs::serve(addr).map_err(|e| format!("--serve {addr}: {e}"))?;
        println!(
            "\nserving metrics at http://{}/metrics (Prometheus text format; Ctrl-C to stop)",
            server.local_addr()
        );
        loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        }
    }
    Ok(())
}

/// `acfc mpmd <name> <file@spec>...` — combine per-role programs
/// (the paper's §3 MPMD remark) and print the resulting SPMD program.
/// A spec is `FIRST` (single rank), `FIRST-LAST`, or `FIRST-` (rest).
fn cmd_mpmd(args: &Args) -> Result<(), String> {
    use acfc::mpsl::mpmd::{combine, Role};
    let name = args
        .positional
        .first()
        .ok_or("missing output program name")?;
    if args.positional.len() < 3 {
        return Err("need at least two role files (file.mpsl@SPEC)".into());
    }
    let mut roles = Vec::new();
    for spec in &args.positional[1..] {
        let (path, ranks) = spec
            .split_once('@')
            .ok_or_else(|| format!("role `{spec}` must be file.mpsl@FIRST[-LAST]"))?;
        let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let program = parse(&src).map_err(|e| format!("{path}:{e}"))?;
        let role = match ranks.split_once('-') {
            None => {
                let first: i64 = ranks.parse().map_err(|_| format!("bad rank in `{spec}`"))?;
                Role::new(program, first, first)
            }
            Some((first, "")) => Role::rest(
                program,
                first.parse().map_err(|_| format!("bad rank in `{spec}`"))?,
            ),
            Some((first, last)) => Role::new(
                program,
                first.parse().map_err(|_| format!("bad rank in `{spec}`"))?,
                last.parse().map_err(|_| format!("bad rank in `{spec}`"))?,
            ),
        };
        roles.push(role);
    }
    let combined = combine(name, roles).map_err(|e| e.to_string())?;
    let errors = validate(&combined);
    if !errors.is_empty() {
        let msgs: Vec<String> = errors.iter().map(|e| e.to_string()).collect();
        return Err(format!("combined program invalid: {}", msgs.join("; ")));
    }
    print!("{}", to_source(&combined));
    Ok(())
}

/// Loads every positional `.mpsl` file (the compare workload matrix).
fn load_all(args: &Args) -> Result<Vec<acfc::mpsl::Program>, String> {
    if args.positional.is_empty() {
        return Err("missing program file argument".into());
    }
    args.positional
        .iter()
        .map(|path| {
            let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let program = parse(&src).map_err(|e| format!("{path}:{e}"))?;
            let errors = validate(&program);
            if !errors.is_empty() {
                let msgs: Vec<String> = errors.iter().map(|e| e.to_string()).collect();
                return Err(format!("{path}: {}", msgs.join("; ")));
            }
            Ok(program)
        })
        .collect()
}

/// `acfc compare --sweep` — the replicated evaluation matrix: process
/// counts × failure rates × workloads, `--seeds` trials per cell,
/// aggregate rows (mean ± 95% CI) streaming to stdout as cells finish.
fn cmd_compare_sweep(args: &Args) -> Result<(), String> {
    use acfc::protocols::{
        render_agg_json, run_sweep, CicVariant, CollectSink, JsonlSink, ProgressSink, RowSink,
        SweepPlan, TableSink, TelemetrySink, Workload,
    };
    let programs = load_all(args)?;
    let mut builder = SweepPlan::builder()
        .ns(args.ns.clone().unwrap_or_else(|| vec![2, 4, 8]))
        .seeds_per_cell(args.seeds)
        .failure_rates(if args.failure_rates.is_empty() {
            vec![0.0] // no --failure-rate ⇒ a failure-free matrix
        } else {
            args.failure_rates.clone()
        })
        .seed(args.seed);
    if let Some(list) = &args.cic {
        let variants: Result<Vec<CicVariant>, String> = list
            .iter()
            .map(|v| v.parse::<CicVariant>().map_err(|e| format!("--cic: {e}")))
            .collect();
        builder = builder.cic_variants(variants?);
    }
    for program in programs {
        let name = program.name.clone();
        builder = builder.workload(Workload::new(name, move |_| program.clone()));
    }
    let plan = builder.build().map_err(|e| e.to_string())?;

    // --serve: expose the live registry for the duration of the sweep.
    let server = match &args.serve {
        Some(addr) => {
            let s = acfc::obs::serve(addr).map_err(|e| format!("--serve {addr}: {e}"))?;
            eprintln!(
                "serving metrics at http://{}/metrics for the duration of the sweep",
                s.local_addr()
            );
            Some(s)
        }
        None => None,
    };
    let capture = args.folded.is_some() || server.is_some();
    if capture {
        acfc::obs::set_enabled(true);
        let _ = acfc::obs::take_wall_spans(); // start from a clean log
    }

    let mut table = TableSink::new(std::io::stdout());
    let mut progress = ProgressSink::new(std::io::stderr());
    let mut collect = CollectSink::default();
    let mut jsonl = None;
    let mut telemetry = None;
    if let Some(path) = &args.jsonl {
        let file = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
        if args.telemetry {
            // Shares the fd, so the trailer written in `finish()` lands
            // after every row the JsonlSink has streamed.
            let clone = file.try_clone().map_err(|e| format!("{path}: {e}"))?;
            telemetry = Some(TelemetrySink::new(clone));
        }
        jsonl = Some(JsonlSink::new(file));
    } else if args.telemetry {
        return Err("--telemetry needs --jsonl (the trailer appends to the row stream)".into());
    }
    let mut sinks: Vec<&mut dyn RowSink> = vec![&mut table, &mut progress, &mut collect];
    if let Some(sink) = jsonl.as_mut() {
        sinks.push(sink);
    }
    if let Some(sink) = telemetry.as_mut() {
        sinks.push(sink);
    }
    run_sweep(&plan, &mut sinks);

    if capture {
        acfc::obs::set_enabled(false);
        let spans = acfc::obs::take_wall_spans();
        if let Some(path) = &args.folded {
            write_folded(path, &spans)?;
            if spans.is_empty() {
                println!("note: binary built without the `obs` feature; spans are compiled out");
            }
        }
    }
    if let Some(s) = server {
        s.shutdown();
    }

    if let Some(path) = &args.jsonl {
        println!(
            "wrote {} aggregate row(s) ({} seeds/cell){} to {path}",
            collect.rows.len(),
            plan.seeds_per_cell(),
            if args.telemetry {
                " + a sweep_telemetry trailer"
            } else {
                ""
            }
        );
    }
    if let Some(path) = &args.json {
        std::fs::write(path, render_agg_json(&collect.rows)).map_err(|e| format!("{path}: {e}"))?;
        println!(
            "wrote comparison JSON ({} aggregate row(s)) to {path}",
            collect.rows.len()
        );
    }
    Ok(())
}

/// `acfc compare` — the protocol-comparison dashboard: one table (and
/// optionally one JSON artifact and one merged Perfetto timeline) with
/// every protocol's measured coordination cost on the same workload.
fn cmd_compare(args: &Args) -> Result<(), String> {
    use acfc::protocols::{
        compare_all, render_table, run_protocol_timeline, CompareConfig, ProtocolKind,
        SweepArtifact, SweepRow,
    };
    use acfc::sim::{FailurePlan, MergedRun, SimTime};
    if args.sweep {
        return cmd_compare_sweep(args);
    }
    let program = load(args)?;
    let ns: Vec<usize> = args.ns.clone().unwrap_or_else(|| vec![args.nprocs]);
    let mut rows: Vec<SweepRow> = Vec::new();
    for &n in &ns {
        let mut cc = CompareConfig::builder(n)
            .seed(args.seed)
            .build()
            .map_err(|e| e.to_string())?;
        cc.sim = cc.sim.with_inputs(args.inputs.clone());
        if let Some(&rate) = args.failure_rates.first() {
            if rate > 0.0 {
                // Size the failure horizon from a bare probe run, like
                // the empirical sweep (expected failures ∝ n·rate).
                let probe = run(&compile(&program), &cc.sim);
                let horizon = SimTime(probe.finished_at.as_micros().max(1));
                cc.failures = FailurePlan::exponential(n, rate, horizon, args.seed ^ n as u64);
            }
        }
        let stats = compare_all(&program, &cc);
        println!("== {} at n = {n} ==", program.name);
        print!("{}", render_table(&stats));
        rows.extend(stats.into_iter().map(|s| SweepRow { n, stats: s }));
    }
    if let Some(path) = &args.json {
        let artifact = SweepArtifact::new(program.name.clone(), rows);
        std::fs::write(path, artifact.to_json()).map_err(|e| format!("{path}: {e}"))?;
        println!(
            "wrote comparison JSON ({} run(s)) to {path}",
            artifact.runs.len()
        );
    }
    if let Some(path) = &args.profile {
        // Merge one timeline run per protocol at the largest n into a
        // single document: one pid (track group) per protocol.
        let n = *ns.iter().max().expect("ns nonempty");
        let mut cc = CompareConfig::builder(n)
            .seed(args.seed)
            .build()
            .map_err(|e| e.to_string())?;
        cc.sim = cc.sim.with_inputs(args.inputs.clone());
        let runs: Vec<(ProtocolKind, _, _)> = ProtocolKind::all()
            .into_iter()
            .map(|kind| {
                let (trace, obs) = run_protocol_timeline(&program, kind, &cc);
                (kind, trace, obs)
            })
            .collect();
        let merged: Vec<MergedRun> = runs
            .iter()
            .map(|(kind, trace, obs)| MergedRun {
                label: kind.name(),
                trace,
                obs,
            })
            .collect();
        let json = acfc::sim::merged_timeline_json(&merged);
        std::fs::write(path, json).map_err(|e| format!("{path}: {e}"))?;
        println!(
            "wrote merged timeline ({} protocol track group(s) at n={n}) to {path} \
             (load in https://ui.perfetto.dev)",
            merged.len()
        );
    }
    Ok(())
}

fn cmd_figures() {
    let params = ModelParams::default();
    println!("# Figure 8 — overhead ratio vs. number of processes");
    print!("{}", to_tsv("n", &figure8(&params, &figure8_default_ns())));
    println!("# Figure 9 — overhead ratio vs. w_m (n = 64)");
    print!(
        "{}",
        to_tsv("w_m", &figure9(&params, 64, &figure9_default_wms()))
    );
}

fn main() -> ExitCode {
    let (cmd, args) = match parse_args(std::env::args()) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let result = match cmd.as_str() {
        "check" => cmd_check(&args),
        "analyze" => cmd_analyze(&args),
        "run" => cmd_run(&args),
        "report" => cmd_report(&args),
        "mpmd" => cmd_mpmd(&args),
        "compare" => cmd_compare(&args),
        "figures" => {
            cmd_figures();
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
