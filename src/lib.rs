//! # ACFC — Application-Driven Coordination-Free Distributed Checkpointing
//!
//! A from-scratch Rust reproduction of *Adnan Agbaria and William H.
//! Sanders, "Application-Driven Coordination-Free Distributed
//! Checkpointing", ICDCS 2005* — the offline three-phase analysis that
//! places checkpoints in an SPMD message-passing program so that
//! **every straight cut of checkpoints is a recovery line in any
//! further execution**, with zero runtime coordination, plus every
//! substrate the paper depends on.
//!
//! This crate is a facade; the work lives in the member crates:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`mpsl`] | the SPMD source language (AST, parser, stock programs) |
//! | [`cfg`](mod@cfg) | control-flow graphs, dominators, loops, reachability |
//! | [`core`] | **the paper**: Phases I–III, extended CFG, Theorem 3.2 |
//! | [`sim`] | deterministic message-passing simulator with failures |
//! | [`protocols`] | baselines: uncoordinated, SaS, C-L, CIC; recovery lines |
//! | [`perfmodel`] | the §4 stochastic model; Figures 8 and 9 |
//! | [`obs`] | spans, counters, histograms, Perfetto trace export |
//! | [`util`] | scoped-thread fan-out, bench harness, JSON writer |
//!
//! ```
//! use acfc::core::{analyze, AnalysisConfig};
//! use acfc::sim::{compile, consistency, run, SimConfig};
//!
//! // Repair the paper's Figure-2 program and verify Theorem 3.2 by
//! // execution.
//! let program = acfc::mpsl::programs::jacobi_odd_even(5);
//! let analysis = analyze(&program, &AnalysisConfig::for_nprocs(8)).unwrap();
//! let trace = run(&compile(&analysis.program), &SimConfig::new(4));
//! assert!(consistency::all_straight_cuts_consistent(&trace));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use acfc_cfg as cfg;
pub use acfc_core as core;
pub use acfc_mpsl as mpsl;
pub use acfc_obs as obs;
pub use acfc_perfmodel as perfmodel;
pub use acfc_protocols as protocols;
pub use acfc_runtime as runtime;
pub use acfc_sim as sim;
pub use acfc_util as util;
