//! Golden pin for the folded-stacks / speedscope exporters.
//!
//! A hand-built two-thread span forest exercises every structural case
//! the collapser handles: three-deep nesting, adjacent siblings, a
//! zero-length span, back-to-back spans sharing a boundary timestamp
//! (half-open intervals — the later one is a sibling, not a child),
//! and one labeled + one unlabeled thread. Both renderings are
//! compared byte-for-byte against pinned snapshots; the inputs are
//! synthetic, so any divergence is an intentional format change.
//!
//! Regenerate (only on an *intentional* format change) with:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test --test golden_folded
//! ```

use acfc::obs::{folded_lines, speedscope_json, WallSpan};
use std::path::PathBuf;

fn golden_path(file: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("tests/golden/{file}"))
}

fn fixture() -> (Vec<WallSpan>, Vec<(u64, String)>) {
    let s = |name: &'static str, tid: u64, start_us: u64, end_us: u64| WallSpan {
        name,
        tid,
        start_us,
        end_us,
    };
    let spans = vec![
        // Thread 0 ("main"): a pipeline with nesting and siblings.
        s("core/analyze", 0, 0, 100),
        s("core/phase1", 0, 5, 40),
        s("core/phase1/insert", 0, 10, 25),
        s("core/phase1/equalize", 0, 25, 40), // shares phase1's end
        s("core/phase2_3", 0, 40, 95),
        s("core/phase3/iteration", 0, 45, 45), // zero-length leaf
        s("core/phase3/iteration", 0, 50, 70),
        // Thread 3 (labeled "sweep-0"): two cells back to back.
        s("protocols/sweep/cell", 3, 0, 60),
        s("sim/event_loop", 3, 10, 50),
        s("protocols/sweep/cell", 3, 60, 80), // sibling at the boundary
    ];
    let labels = vec![(0, "main".to_string()), (3, "sweep-0".to_string())];
    (spans, labels)
}

fn check_pin(file: &str, rendered: &str) {
    let path = golden_path(file);
    if std::env::var("GOLDEN_REGEN").is_ok() {
        std::fs::write(&path, rendered).expect("write pin");
        return;
    }
    let pinned = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing pin {}: {e}", path.display()));
    if rendered != pinned {
        let line = rendered
            .lines()
            .zip(pinned.lines())
            .position(|(a, b)| a != b)
            .map(|i| i + 1)
            .unwrap_or_else(|| rendered.lines().count().min(pinned.lines().count()) + 1);
        panic!("{file} diverged from pin at line {line}");
    }
}

#[test]
fn folded_stacks_match_pinned_snapshot() {
    let (spans, labels) = fixture();
    check_pin("wall_folded.folded", &folded_lines(&spans, &labels));
}

#[test]
fn speedscope_document_matches_pinned_snapshot() {
    let (spans, labels) = fixture();
    check_pin(
        "wall_folded.speedscope.json",
        &speedscope_json(&spans, &labels, "wall_folded"),
    );
}

/// Format-level invariants of the pinned folded output, independent of
/// the byte pin: `stack space count` grammar, semicolon-joined frames
/// rooted at the thread label, and self-time conservation (the file's
/// total equals the root spans' wall time).
#[test]
fn folded_output_is_grammatical_and_conserves_time() {
    let (spans, labels) = fixture();
    let folded = folded_lines(&spans, &labels);
    let mut total = 0u64;
    for line in folded.lines() {
        let (stack, count) = line.rsplit_once(' ').expect("`stack count` shape");
        total += count.parse::<u64>().expect("numeric self time");
        let root = stack.split(';').next().unwrap();
        assert!(
            root == "main" || root == "sweep-0",
            "stack rooted at a thread label, got {root}"
        );
        assert!(!stack.contains(' '), "frames are space-free: {stack}");
    }
    // 100µs of main-thread work + (60 + 20)µs across sweep-0's cells.
    assert_eq!(total, 180, "folded self times sum to the root wall time");
}
