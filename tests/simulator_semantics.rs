//! Cross-crate checks of the simulator's semantics against the §2
//! system model: FIFO channels, blocking receives, happened-before
//! integrity (vector clocks vs. an independently computed transitive
//! closure over the trace), determinism, and rollback correctness.

use acfc_mpsl::{parse, programs};
use acfc_sim::{
    compile, run, run_with_failures, CutPicker, FailurePlan, NoHooks, SimConfig, SimTime, Trace,
};
use acfc_util::check::forall;
use std::collections::HashMap;

/// Independently reconstructs happened-before over live trace events
/// (process order + message order, transitively closed) and compares it
/// with the vector clocks on checkpoints.
fn hb_oracle_agrees(trace: &Trace) {
    // Events: (proc, step) for sends/recvs/checkpoints.
    #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
    struct Ev(usize, u64);
    let mut events: Vec<Ev> = Vec::new();
    for m in trace.live_messages() {
        events.push(Ev(m.from, m.send_step));
        if let Some(rs) = m.recv_step {
            events.push(Ev(m.to, rs));
        }
    }
    for c in trace.checkpoints.iter().filter(|c| !c.rolled_back) {
        events.push(Ev(c.proc, c.step));
    }
    events.sort();
    events.dedup();
    let idx: HashMap<Ev, usize> = events.iter().copied().zip(0..).collect();
    let n = events.len();
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    // Process order: consecutive events of the same process.
    for w in events.windows(2) {
        if w[0].0 == w[1].0 {
            succs[idx[&w[0]]].push(idx[&w[1]]);
        }
    }
    // Message order.
    for m in trace.live_messages() {
        if let Some(rs) = m.recv_step {
            succs[idx[&Ev(m.from, m.send_step)]].push(idx[&Ev(m.to, rs)]);
        }
    }
    let reach = acfc_cfg::Reach::compute(&succs);
    // Compare against vector clocks for every checkpoint pair.
    let live: Vec<_> = trace
        .checkpoints
        .iter()
        .filter(|c| !c.rolled_back)
        .collect();
    for a in &live {
        for b in &live {
            if a.proc == b.proc && a.step == b.step {
                continue;
            }
            let oracle = reach.reachable(idx[&Ev(a.proc, a.step)], idx[&Ev(b.proc, b.step)]);
            let vc = a.vc.happened_before(&b.vc)
                || (a.proc == b.proc && a.step < b.step && a.vc == b.vc);
            assert_eq!(
                vc,
                oracle,
                "hb({:?},{:?}): vc says {vc}, trace closure says {oracle}",
                (a.proc, a.step),
                (b.proc, b.step)
            );
        }
    }
}

#[test]
fn vector_clocks_match_trace_closure_on_stock_programs() {
    for p in programs::all_stock() {
        let t = run(&compile(&p), &SimConfig::new(4).with_inputs(vec![5, 9]));
        if t.completed() {
            hb_oracle_agrees(&t);
        }
    }
}

#[test]
fn vector_clocks_match_trace_closure_after_rollback() {
    let p = programs::jacobi(6);
    let plan = FailurePlan::at(vec![(SimTime::from_millis(150), 1)]);
    let mut hooks = NoHooks;
    let t = run_with_failures(
        &compile(&p),
        &SimConfig::new(3),
        &mut hooks,
        plan,
        CutPicker::AlignedSeq,
    );
    assert!(t.completed());
    assert_eq!(t.metrics.failures, 1);
    hb_oracle_agrees(&t);
}

#[test]
fn fifo_holds_even_with_heavy_jitter() {
    let src = "program t; var i;
        if rank == 0 { for i in 0..20 { send to 1 size 100000; } }
        else { if rank == 1 { for i in 0..20 { recv from 0; } } }";
    let p = parse(src).unwrap();
    let mut cfg = SimConfig::new(2).with_seed(1234);
    cfg.net.jitter_us = 10_000; // jitter far beyond the base delay
    let t = run(&compile(&p), &cfg);
    assert!(t.completed());
    let mut pairs: Vec<(SimTime, u64)> = t
        .messages
        .iter()
        .map(|m| (m.recv_at.unwrap(), m.send_step))
        .collect();
    pairs.sort();
    let send_steps: Vec<u64> = pairs.iter().map(|&(_, s)| s).collect();
    let mut sorted = send_steps.clone();
    sorted.sort();
    assert_eq!(send_steps, sorted, "FIFO violated under jitter");
}

#[test]
fn rollback_replay_reaches_identical_final_variable_state() {
    // Deterministic program: the post-recovery replay must converge to
    // the same final variable assignment as the failure-free run.
    let src = "program t; param iters = 6; var i, acc;
        for i in 0..iters {
          acc := acc + i * (rank + 1);
          compute 10;
          send to (rank + 1) % nprocs size 64;
          recv from (rank - 1) % nprocs;
          checkpoint;
        }";
    let p = parse(src).unwrap();
    let c = compile(&p);
    let cfg = SimConfig::new(3);
    let clean = run(&c, &cfg);
    assert!(clean.completed());
    let plan = FailurePlan::at(vec![
        (SimTime::from_millis(25), 0),
        (SimTime::from_millis(55), 2),
    ]);
    let mut hooks = NoHooks;
    let t = run_with_failures(&c, &cfg, &mut hooks, plan, CutPicker::AlignedSeq);
    assert!(t.completed(), "{:?}", t.outcome);
    assert_eq!(t.metrics.failures, 2);
    // Compare final snapshots' variable stores via the last checkpoints.
    for proc in 0..3 {
        let last_clean = clean
            .live_checkpoints(proc)
            .last()
            .unwrap()
            .snapshot
            .clone();
        let last_fail = t.live_checkpoints(proc).last().unwrap().snapshot.clone();
        assert_eq!(
            last_clean.vars, last_fail.vars,
            "proc {proc}: replay diverged"
        );
        assert_eq!(last_clean.ckpt_seq, last_fail.ckpt_seq);
    }
}

#[test]
fn determinism_and_consistency_across_seeds() {
    forall("determinism_and_consistency_across_seeds", 64, |g| {
        let seed = g.u64_in(0, 10_000);
        let n = g.usize_in(2, 7);
        let iters = g.i64_in(1, 6);
        let p = programs::jacobi(iters);
        let c = compile(&p);
        let cfg = SimConfig::new(n).with_seed(seed);
        let t1 = run(&c, &cfg);
        let t2 = run(&c, &cfg);
        assert!(t1.completed());
        assert_eq!(t1.finished_at, t2.finished_at);
        assert_eq!(t1.messages.len(), t2.messages.len());
        assert!(acfc_sim::consistency::all_straight_cuts_consistent(&t1));
    });
}

#[test]
fn random_failure_times_never_break_completion() {
    forall("random_failure_times_never_break_completion", 64, |g| {
        let fail_ms = g.u64_in(1, 400);
        let victim = g.usize_in(0, 3);
        let seed = g.u64_in(0, 1000);
        let p = programs::stencil_1d(5);
        let c = compile(&p);
        let cfg = SimConfig::new(3).with_seed(seed);
        let plan = FailurePlan::at(vec![(SimTime::from_millis(fail_ms), victim)]);
        let mut hooks = NoHooks;
        let t = run_with_failures(&c, &cfg, &mut hooks, plan, CutPicker::AlignedSeq);
        assert!(t.completed(), "{:?}", t.outcome);
        assert_eq!(t.checkpoint_counts(), vec![5, 5, 5]);
    });
}
