//! End-to-end validation of the paper's central claim (Theorem 3.2):
//! after the offline three-phase analysis, **every straight cut of
//! checkpoints is a recovery line in any further execution** — checked
//! here by actually executing the transformed programs on the
//! discrete-event simulator across process counts and seeds, with no
//! runtime coordination whatsoever.

use acfc_core::{analyze, AnalysisConfig};
use acfc_mpsl::{programs, Program};
use acfc_sim::consistency::{all_straight_cuts_consistent, straight_cut_failures};
use acfc_sim::{compile, run, SimConfig};

fn simulate(program: &Program, n: usize, seed: u64) -> acfc_sim::Trace {
    let cfg = SimConfig::new(n)
        .with_seed(seed)
        .with_inputs(vec![3, 11, 42]);
    run(&compile(program), &cfg)
}

/// Analyze at n=8, then validate on several process counts and seeds.
fn assert_transformed_safe(program: &Program) {
    let analysis = analyze(program, &AnalysisConfig::for_nprocs(8))
        .unwrap_or_else(|e| panic!("{}: analysis failed: {e}", program.name));
    for n in [2usize, 4, 6, 8] {
        for seed in [1u64, 7, 99] {
            let trace = simulate(&analysis.program, n, seed);
            assert!(
                trace.completed(),
                "{} (n={n}, seed={seed}): did not complete: {:?}",
                program.name,
                trace.outcome
            );
            let bad = straight_cut_failures(&trace);
            assert!(
                bad.is_empty(),
                "{} (n={n}, seed={seed}): straight cuts {bad:?} are not \
                 recovery lines after transformation:\n{}",
                program.name,
                acfc_mpsl::to_source(&analysis.program)
            );
        }
    }
}

#[test]
fn every_stock_program_is_safe_after_analysis() {
    for p in programs::all_stock() {
        assert_transformed_safe(&p);
    }
}

#[test]
fn fig2_jacobi_unsafe_before_safe_after() {
    let before = programs::jacobi_odd_even(5);
    // Before: some straight cut is inconsistent (Figure 3).
    let t = simulate(&before, 4, 1);
    assert!(t.completed());
    assert!(
        !all_straight_cuts_consistent(&t),
        "the odd/even Jacobi must exhibit Figure 3's inconsistency"
    );
    // After: all cuts are recovery lines.
    assert_transformed_safe(&before);
}

#[test]
fn fig5_unsafe_before_safe_after() {
    let before = programs::fig5();
    let t = simulate(&before, 4, 1);
    assert!(t.completed());
    assert!(!all_straight_cuts_consistent(&t));
    assert_transformed_safe(&before);
}

#[test]
fn pingpong_skewed_unsafe_before_safe_after() {
    let before = programs::pingpong_skewed(4);
    let t = simulate(&before, 2, 1);
    assert!(t.completed());
    assert!(!all_straight_cuts_consistent(&t));
    assert_transformed_safe(&before);
}

#[test]
fn pipeline_skewed_unsafe_before_safe_after() {
    let before = programs::pipeline_skewed(4);
    let t = simulate(&before, 4, 1);
    assert!(t.completed());
    assert!(!all_straight_cuts_consistent(&t));
    assert_transformed_safe(&before);
}

#[test]
fn transformed_programs_still_terminate_with_same_message_volume_shape() {
    // The transformation only moves checkpoint statements: the
    // application messages must be untouched.
    for p in [
        programs::jacobi_odd_even(4),
        programs::pipeline_skewed(4),
        programs::pingpong_skewed(4),
    ] {
        let analysis = analyze(&p, &AnalysisConfig::for_nprocs(8)).unwrap();
        let before = simulate(&p, 4, 5);
        let after = simulate(&analysis.program, 4, 5);
        assert!(before.completed() && after.completed());
        assert_eq!(
            before.metrics.app_messages, after.metrics.app_messages,
            "{}: message count changed",
            p.name
        );
        assert_eq!(
            before.metrics.app_bits, after.metrics.app_bits,
            "{}: message bits changed",
            p.name
        );
    }
}

#[test]
fn checkpoint_counts_remain_aligned_after_transformation() {
    // The analysis guarantees every process takes the same number of
    // checkpoints per straight-cut index; dynamically, the per-process
    // counts must agree at completion for SPMD programs whose control
    // flow is rank-independent apart from ID-branches with equalised
    // arms.
    for p in programs::all_stock() {
        let analysis = analyze(&p, &AnalysisConfig::for_nprocs(8)).unwrap();
        let t = simulate(&analysis.program, 4, 3);
        assert!(t.completed(), "{}: {:?}", p.name, t.outcome);
        let counts = t.checkpoint_counts();
        assert!(
            counts.iter().all(|&c| c == counts[0]),
            "{}: unaligned checkpoint counts {counts:?}",
            p.name
        );
    }
}

#[test]
fn halo2d_grid_is_safe_after_analysis() {
    // 2-D halo exchange on a 2×2 and a 2×3 grid.
    for (rows, n) in [(2i64, 4usize), (2, 6)] {
        let p = programs::halo2d(3, rows);
        let analysis = analyze(&p, &AnalysisConfig::for_nprocs(n)).unwrap();
        let trace = simulate(&analysis.program, n, 5);
        assert!(trace.completed(), "rows={rows} n={n}: {:?}", trace.outcome);
        assert!(
            straight_cut_failures(&trace).is_empty(),
            "rows={rows} n={n}"
        );
        assert_eq!(trace.metrics.app_messages, 3 * n as u64 * 4);
    }
}
