//! MPMD end to end: the paper's §3 remark that the approach extends to
//! Multiple Program Multiple Data when all sources are available. Two
//! genuinely different role programs are combined into one SPMD
//! dispatch, analysed, and executed — and every straight cut is a
//! recovery line.

use acfc_core::{analyze, AnalysisConfig};
use acfc_mpsl::mpmd::{combine, Role};
use acfc_mpsl::parse;
use acfc_sim::{compile, consistency, run, SimConfig};

fn master_worker_mpmd() -> acfc_mpsl::Program {
    // An adversarial placement: the master checkpoints *between* the
    // gather and the broadcast of results; workers checkpoint right
    // after sending, before receiving — a cross-role hazard the
    // analysis must repair.
    let master = parse(
        "program master;
         param rounds = 4;
         var r, j;
         for r in 0..rounds {
           for j in 0..nprocs - 1 {
             recv from any;
           }
           checkpoint \"master\";
           for j in 1..nprocs {
             send to j size 64;
           }
         }",
    )
    .unwrap();
    let worker = parse(
        "program worker;
         param rounds = 4;
         var r;
         for r in 0..rounds {
           compute 20;
           send to 0 size 1024;
           checkpoint \"worker\";
           recv from 0;
         }",
    )
    .unwrap();
    combine(
        "master_worker_mpmd",
        vec![Role::new(master, 0, 0), Role::rest(worker, 1)],
    )
    .unwrap()
}

#[test]
fn combined_mpmd_program_is_valid_and_runs() {
    let p = master_worker_mpmd();
    assert!(acfc_mpsl::validate(&p).is_empty());
    for n in [2usize, 3, 5] {
        let t = run(&compile(&p), &SimConfig::new(n));
        assert!(t.completed(), "n={n}: {:?}", t.outcome);
        assert_eq!(t.checkpoint_counts(), vec![4; n]);
    }
}

#[test]
fn mpmd_analysis_guarantees_recovery_lines() {
    let p = master_worker_mpmd();
    let analysis = analyze(&p, &AnalysisConfig::for_nprocs(6)).unwrap();
    for n in [2usize, 4, 6] {
        for seed in [1u64, 9] {
            let t = run(
                &compile(&analysis.program),
                &SimConfig::new(n).with_seed(seed),
            );
            assert!(t.completed(), "n={n} seed={seed}: {:?}", t.outcome);
            assert!(
                consistency::all_straight_cuts_consistent(&t),
                "n={n} seed={seed}:\n{}",
                acfc_mpsl::to_source(&analysis.program)
            );
        }
    }
}

#[test]
fn heterogeneous_three_role_pipeline() {
    // Source -> transformers -> sink, each its own program.
    let source = parse(
        "program source; param rounds = 5; var r;
         for r in 0..rounds { compute 10; send to 1 size 512; checkpoint; }",
    )
    .unwrap();
    let transform = parse(
        "program transform; param rounds = 5; var r;
         for r in 0..rounds {
           recv from rank - 1;
           compute 30;
           if rank < nprocs - 1 { send to rank + 1 size 512; }
           checkpoint;
         }",
    )
    .unwrap();
    let sink = parse(
        "program sink; param rounds = 5; var r;
         for r in 0..rounds { recv from rank - 1; compute 5; checkpoint; }",
    )
    .unwrap();
    let p = combine(
        "etl",
        vec![
            Role::new(source, 0, 0),
            Role::new(transform, 1, 2),
            Role::rest(sink, 3),
        ],
    )
    .unwrap();
    let analysis = analyze(&p, &AnalysisConfig::for_nprocs(4)).unwrap();
    let t = run(&compile(&analysis.program), &SimConfig::new(4));
    assert!(t.completed(), "{:?}", t.outcome);
    assert!(consistency::all_straight_cuts_consistent(&t));
}
