//! Worker-thread labels flow end to end: `util::parallel`'s labeled
//! fan-out names its scoped threads, the obs span log registers each
//! recording thread's name at tid assignment, and the wall-clock
//! Perfetto export titles the tracks with those labels — so a
//! `--profile` of a parallel sweep shows `sweep-0`, `sweep-1`, …
//! instead of anonymous thread numbers.

use acfc::util::par_map_threads_labeled;

#[test]
fn labeled_worker_tids_appear_in_the_span_dump() {
    acfc::obs::set_enabled(true);
    let _ = acfc::obs::take_wall_spans(); // start from a clean log
    let items: Vec<u64> = (0..8).collect();
    let out = par_map_threads_labeled(&items, 4, Some("labelsweep"), |_, &i| {
        let _g = acfc::obs::span("labelsweep/work");
        i * 2
    });
    acfc::obs::set_enabled(false);
    assert_eq!(out, vec![0, 2, 4, 6, 8, 10, 12, 14]);

    let spans = acfc::obs::take_wall_spans();
    let labels = acfc::obs::thread_labels();
    let worker_spans: Vec<_> = spans
        .iter()
        .filter(|s| s.name == "labelsweep/work")
        .collect();
    assert_eq!(worker_spans.len(), 8, "one span per item");
    for s in &worker_spans {
        let (_, label) = labels
            .iter()
            .find(|(tid, _)| *tid == s.tid)
            .unwrap_or_else(|| panic!("tid {} has no registered label", s.tid));
        assert!(
            label.starts_with("labelsweep-"),
            "tid {} labeled {label:?}, expected a labelsweep-k worker name",
            s.tid
        );
    }

    // The wall-clock Perfetto export titles those tracks by label.
    let tb = acfc::obs::perfetto::wall_spans_trace(
        &worker_spans
            .iter()
            .map(|s| (*s).clone())
            .collect::<Vec<_>>(),
    );
    tb.validate().expect("structurally valid trace");
    assert!(
        tb.render().contains("labelsweep-"),
        "track names carry the worker label"
    );
}
