//! Golden pin for the simulated-time Perfetto exporter.
//!
//! A 2-process ping-pong is small enough to eyeball in the Perfetto UI
//! yet exercises every event type the exporter emits: metadata, the
//! three slice kinds (compute / blocked / checkpoint), flow arrows for
//! both message directions, and recovery-line markers. The rendered
//! JSON is compared byte-for-byte against a pinned snapshot — the
//! engine is deterministic, so any divergence is an intentional
//! exporter or collector change.
//!
//! Regenerate (only on an *intentional* format change) with:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test --test golden_profile
//! ```

use acfc_sim::{compile, run_observed, timeline, SimConfig, SimObs};
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/pingpong_profile.json")
}

fn render_profile() -> String {
    let compiled = compile(&acfc_mpsl::programs::pingpong(2));
    let mut obs = SimObs::timeline();
    let trace = run_observed(&compiled, &SimConfig::new(2), &mut obs);
    assert!(trace.completed());
    let tb = timeline(&trace, &obs);
    tb.validate().expect("structurally valid trace");
    tb.render()
}

#[test]
fn pingpong_profile_matches_pinned_snapshot() {
    let rendered = render_profile();
    let path = golden_path();
    if std::env::var("GOLDEN_REGEN").is_ok() {
        std::fs::write(&path, &rendered).expect("write pin");
        return;
    }
    let pinned = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing pin {}: {e}", path.display()));
    if rendered != pinned {
        let line = rendered
            .lines()
            .zip(pinned.lines())
            .position(|(a, b)| a != b)
            .map(|i| i + 1)
            .unwrap_or_else(|| rendered.lines().count().min(pinned.lines().count()) + 1);
        panic!("pingpong profile diverged from pin at line {line}");
    }
}

/// Structural invariants, independent of the byte-exact pin: every
/// track's begin/end events balance and its timestamps never go
/// backwards in emission order.
#[test]
fn pingpong_profile_is_balanced_and_monotone() {
    let rendered = render_profile();
    let mut depth: std::collections::BTreeMap<u64, i64> = Default::default();
    let mut last_ts: std::collections::BTreeMap<u64, i64> = Default::default();
    let mut slices = 0u32;
    for line in rendered.lines() {
        let field = |key: &str| -> Option<&str> {
            let pat = format!("\"{key}\": ");
            let rest = &line[line.find(&pat)? + pat.len()..];
            Some(rest[..rest.find([',', '}']).unwrap_or(rest.len())].trim_matches('"'))
        };
        let Some(ph) = field("ph") else { continue };
        if ph == "M" {
            continue;
        }
        let tid: u64 = field("tid").unwrap().parse().unwrap();
        let ts: i64 = field("ts").unwrap().parse().unwrap();
        assert!(
            ts >= *last_ts.get(&tid).unwrap_or(&0),
            "track {tid}: ts {ts} went backwards"
        );
        last_ts.insert(tid, ts);
        match ph {
            "B" => {
                *depth.entry(tid).or_insert(0) += 1;
                slices += 1;
            }
            "E" => {
                let d = depth.entry(tid).or_insert(0);
                *d -= 1;
                assert!(*d >= 0, "track {tid}: E without matching B");
            }
            _ => {}
        }
    }
    assert!(slices > 0, "profile contains slices");
    assert!(
        depth.values().all(|&d| d == 0),
        "unbalanced B/E per track: {depth:?}"
    );
}
