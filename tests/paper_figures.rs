//! One assertion per figure of the paper — the reproduction index.
//!
//! | Figure | What it shows | Checked here by |
//! |--------|---------------|-----------------|
//! | 1 | uniform Jacobi: straight cuts are recovery lines | simulation |
//! | 2 | odd/even Jacobi CFG: two `C₁` nodes in different arms | CFG structure |
//! | 3 | an execution whose straight cut is inconsistent | simulation |
//! | 4 | the extended CFG's message edges cross the parity arms | Phase II |
//! | 5 | straight-line cross-arm path ⇒ violation | Condition 1 |
//! | 6 | back-edge path with a loopless endpoint ⇒ violation | Condition 1 |
//! | 7 | the interval Markov chain and its closed form agree | perfmodel |
//! | 8 | overhead ratio vs. n: appl-driven lowest, all growing | perfmodel |
//! | 9 | overhead ratio vs. w_m: appl-driven flat, others growing | perfmodel |

use acfc_cfg::build_cfg;
use acfc_core::{
    analyze, analyze_iddep, check_condition1, compute_attrs, index_checkpoints, match_send_recv,
    AnalysisConfig, ExtendedCfg, LoopPolicy, MatchingMode,
};
use acfc_mpsl::programs;
use acfc_perfmodel::{
    figure8, figure8_default_ns, figure9, figure9_default_wms, gamma_closed_form, gamma_markov,
    IntervalParams, ModelParams,
};
use acfc_sim::{compile, consistency, run, SimConfig};

#[test]
fn figure_1_uniform_jacobi_is_safe_as_written() {
    let p = programs::jacobi(6);
    let analysis = analyze(&p, &AnalysisConfig::for_nprocs(8)).unwrap();
    assert!(analysis.was_already_safe(), "Figure 1 needs no repair");
    for n in [2usize, 4, 8] {
        let t = run(&compile(&p), &SimConfig::new(n));
        assert!(t.completed());
        assert!(consistency::all_straight_cuts_consistent(&t));
    }
}

#[test]
fn figure_2_odd_even_jacobi_has_two_c1_nodes() {
    let p = programs::jacobi_odd_even(6);
    let (cfg, lowered) = build_cfg(&p);
    let idx = index_checkpoints(&cfg, &lowered);
    let chks = cfg.checkpoint_nodes();
    assert_eq!(chks.len(), 2);
    for c in &chks {
        assert_eq!((idx.ranges[c].min, idx.ranges[c].max), (1, 1));
    }
}

#[test]
fn figure_3_execution_with_inconsistent_straight_cut() {
    let p = programs::jacobi_odd_even(6);
    let t = run(&compile(&p), &SimConfig::new(4));
    assert!(t.completed());
    let bad = consistency::straight_cut_failures(&t);
    assert!(!bad.is_empty(), "Figure 3's inconsistency must appear");
    // The direction matches the figure: even ranks' checkpoints happen
    // before the odd ranks' same-index checkpoints.
    let cut = consistency::resolve_cut(&t, &[bad[0]; 4]).unwrap();
    let v = consistency::cut_violations(&cut);
    assert!(v
        .iter()
        .all(|x| x.earlier_proc % 2 == 0 && x.later_proc % 2 == 1));
}

#[test]
fn figure_4_message_edges_cross_the_parity_arms() {
    let p = programs::jacobi_odd_even(6);
    let (cfg, lowered) = build_cfg(&p);
    let iddep = analyze_iddep(&cfg, &lowered);
    let attrs = compute_attrs(&cfg, 8, &iddep);
    let m = match_send_recv(&cfg, &attrs, &iddep, MatchingMode::FifoOrdered);
    assert!(!m.edges.is_empty());
    assert!(m.unmatched_recvs.is_empty());
    for e in &m.edges {
        let s_even = attrs.of(e.send).contains(0);
        let r_even = attrs.of(e.recv).contains(0);
        assert_ne!(s_even, r_even, "Figure 4's edges cross the arms");
    }
}

#[test]
fn figure_5_forward_cross_path_is_a_violation() {
    let p = programs::fig5();
    let (cfg, lowered) = build_cfg(&p);
    let iddep = analyze_iddep(&cfg, &lowered);
    let attrs = compute_attrs(&cfg, 8, &iddep);
    let m = match_send_recv(&cfg, &attrs, &iddep, MatchingMode::FifoOrdered);
    let idx = index_checkpoints(&cfg, &lowered);
    let g = ExtendedCfg::build(cfg, &m);
    let v = check_condition1(&g, &idx, LoopPolicy::Optimized);
    assert_eq!(v.len(), 1);
    assert!(!v[0].only_via_back_edge);
    // And the execution confirms it.
    let t = run(&compile(&p), &SimConfig::new(4));
    assert!(!consistency::all_straight_cuts_consistent(&t));
}

#[test]
fn figure_6_back_edge_path_is_a_violation() {
    let p = programs::fig6(4);
    let (cfg, lowered) = build_cfg(&p);
    let iddep = analyze_iddep(&cfg, &lowered);
    let attrs = compute_attrs(&cfg, 8, &iddep);
    let m = match_send_recv(&cfg, &attrs, &iddep, MatchingMode::FifoOrdered);
    let idx = index_checkpoints(&cfg, &lowered);
    let g = ExtendedCfg::build(cfg, &m);
    let v = check_condition1(&g, &idx, LoopPolicy::Optimized);
    assert_eq!(v.len(), 1, "{v:?}");
    assert!(
        v[0].only_via_back_edge,
        "Figure 6's path crosses the loop's backward edge"
    );
    // The paper: if B fails right after a send, R₁ is not a recovery
    // line — the latest same-index checkpoints are causally ordered.
    let t = run(&compile(&p), &SimConfig::new(2));
    assert!(t.completed());
    let a_latest = t.live_checkpoints(0).last().unwrap().vc.clone();
    let b_latest = t.live_checkpoints(1).last().unwrap().vc.clone();
    assert!(
        b_latest.happened_before(&a_latest),
        "B's checkpoint precedes A's latest"
    );
}

#[test]
fn figure_7_chain_and_closed_form_agree() {
    let p = IntervalParams {
        lambda: 1e-4,
        t: 300.0,
        o_total: 1.78,
        l_total: 4.292,
        r_recovery: 3.32,
    };
    let cf = gamma_closed_form(&p);
    let mk = gamma_markov(&p);
    assert!((cf - mk).abs() / mk < 1e-9);
    // Γ exceeds T+O (failures only add time).
    assert!(cf > p.t + p.o_total);
}

#[test]
fn figure_8_shape() {
    let rows = figure8(&ModelParams::default(), &figure8_default_ns());
    for w in rows.windows(2) {
        assert!(w[1].app_driven > w[0].app_driven, "growing in n");
        assert!(w[1].sas > w[0].sas);
        assert!(w[1].chandy_lamport > w[0].chandy_lamport);
    }
    for r in &rows {
        assert!(r.app_driven < r.sas, "appl-driven lowest (n={})", r.x);
        assert!(r.app_driven < r.chandy_lamport);
    }
}

#[test]
fn figure_9_shape() {
    let rows = figure9(&ModelParams::default(), 64, &figure9_default_wms());
    let r0 = rows[0].app_driven;
    for r in &rows {
        assert!((r.app_driven - r0).abs() < 1e-15, "appl-driven flat in w_m");
    }
    for w in rows.windows(2) {
        assert!(w[1].sas > w[0].sas, "SaS grows with w_m");
        assert!(
            w[1].chandy_lamport > w[0].chandy_lamport,
            "C-L grows with w_m"
        );
    }
}
