//! Golden pin for the merged multi-protocol Perfetto export behind
//! `acfc compare --profile`.
//!
//! A 2-process ping-pong under all five protocols: small enough to
//! inspect in the Perfetto UI, yet it exercises the merge logic the
//! single-run golden (`golden_profile.rs`) cannot — one pid per
//! protocol, per-run flow-id namespacing, and shared track structure
//! across groups. Byte-exact against the pinned snapshot; the engine
//! and the analysis are deterministic, so any divergence is an
//! intentional exporter, collector, or protocol-schedule change.
//!
//! Regenerate (only on an *intentional* change) with:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test --test golden_compare_profile
//! ```

use acfc::protocols::{run_protocol_timeline, CompareConfig, ProtocolKind};
use acfc::sim::{merged_timeline_json, MergedRun};
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/compare_profile.json")
}

fn render_merged_profile() -> String {
    let program = acfc::mpsl::programs::pingpong(2);
    let cfg = CompareConfig::builder(2).build().unwrap();
    let runs: Vec<(ProtocolKind, _, _)> = ProtocolKind::all()
        .into_iter()
        .map(|kind| {
            let (trace, obs) = run_protocol_timeline(&program, kind, &cfg);
            assert!(trace.completed(), "{} did not complete", kind.name());
            (kind, trace, obs)
        })
        .collect();
    let merged: Vec<MergedRun> = runs
        .iter()
        .map(|(kind, trace, obs)| MergedRun {
            label: kind.name(),
            trace,
            obs,
        })
        .collect();
    merged_timeline_json(&merged)
}

#[test]
fn merged_compare_profile_matches_pinned_snapshot() {
    let rendered = render_merged_profile();
    let path = golden_path();
    if std::env::var("GOLDEN_REGEN").is_ok() {
        std::fs::write(&path, &rendered).expect("write pin");
        return;
    }
    let pinned = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing pin {}: {e}", path.display()));
    if rendered != pinned {
        let line = rendered
            .lines()
            .zip(pinned.lines())
            .position(|(a, b)| a != b)
            .map(|i| i + 1)
            .unwrap_or_else(|| rendered.lines().count().min(pinned.lines().count()) + 1);
        panic!("merged compare profile diverged from pin at line {line}");
    }
}

/// Structural invariants independent of the byte-exact pin: every
/// (pid, tid) track balances its begin/end slices and never rewinds
/// its timestamps, every protocol contributes a track group, and flow
/// ids pair up exactly once globally.
#[test]
fn merged_compare_profile_is_balanced_monotone_and_flow_paired() {
    use std::collections::BTreeMap;
    let rendered = render_merged_profile();
    let mut depth: BTreeMap<(u64, u64), i64> = Default::default();
    let mut last_ts: BTreeMap<(u64, u64), i64> = Default::default();
    let mut flows: BTreeMap<u64, (u32, u32)> = Default::default();
    let mut pids: std::collections::BTreeSet<u64> = Default::default();
    for line in rendered.lines() {
        let field = |key: &str| -> Option<&str> {
            let pat = format!("\"{key}\": ");
            let rest = &line[line.find(&pat)? + pat.len()..];
            Some(rest[..rest.find([',', '}']).unwrap_or(rest.len())].trim_matches('"'))
        };
        let Some(ph) = field("ph") else { continue };
        if ph == "M" {
            continue;
        }
        let pid: u64 = field("pid").unwrap().parse().unwrap();
        let tid: u64 = field("tid").unwrap().parse().unwrap();
        let ts: i64 = field("ts").unwrap().parse().unwrap();
        pids.insert(pid);
        let track = (pid, tid);
        assert!(
            ts >= *last_ts.get(&track).unwrap_or(&0),
            "track {track:?}: ts {ts} went backwards"
        );
        last_ts.insert(track, ts);
        match ph {
            "B" => *depth.entry(track).or_insert(0) += 1,
            "E" => {
                let d = depth.entry(track).or_insert(0);
                *d -= 1;
                assert!(*d >= 0, "track {track:?}: E without matching B");
            }
            "s" => {
                flows
                    .entry(field("id").unwrap().parse().unwrap())
                    .or_default()
                    .0 += 1
            }
            "f" => {
                flows
                    .entry(field("id").unwrap().parse().unwrap())
                    .or_default()
                    .1 += 1
            }
            _ => {}
        }
    }
    assert_eq!(
        pids.len(),
        ProtocolKind::all().len(),
        "one track group per protocol: {pids:?}"
    );
    assert!(
        depth.values().all(|&d| d == 0),
        "unbalanced B/E per track: {depth:?}"
    );
    assert!(!flows.is_empty(), "merged profile carries flow arrows");
    for (id, &(starts, ends)) in &flows {
        assert_eq!(
            (starts, ends),
            (1, 1),
            "flow {id} must pair exactly once globally"
        );
    }
}
