//! Property-based validation of the paper's central theorem (E1 in
//! `EXPERIMENTS.md`).
//!
//! A generator produces random — but deadlock-free by construction —
//! SPMD programs from a vocabulary of communication idioms (neighbour
//! exchanges, chain pipelines, gathers, ring shifts) with checkpoints
//! sprinkled at *adversarial* positions (including the Figure-2 style
//! parity-dependent placements). Each program is pushed through the
//! full offline pipeline and then executed on the simulator across
//! process counts and seeds; the property is Theorem 3.2: **every
//! straight cut of checkpoints in every execution is a recovery
//! line** — checked both with vector clocks and with the independent
//! orphan-message oracle.

use acfc_core::{analyze, AnalysisConfig};
use acfc_mpsl::builder::{e, BlockBuilder, ProgramBuilder};
use acfc_mpsl::Program;
use acfc_sim::consistency::{cut_consistency, cut_consistency_oracle};
use acfc_sim::{compile, run, SimConfig};
use acfc_util::check::{forall, Gen};

/// Where to put a checkpoint relative to a communication idiom.
#[derive(Debug, Clone, Copy)]
enum CkptPos {
    None,
    Before,
    After,
}

/// One communication idiom with adversarial checkpoint positions.
#[derive(Debug, Clone)]
enum Item {
    Compute(i64),
    Checkpoint,
    /// Jacobi-style neighbour exchange; checkpoint positions may differ
    /// between even and odd ranks (the Figure-2 hazard).
    ParityExchange {
        even: CkptPos,
        odd: CkptPos,
    },
    /// One-directional chain `0 → 1 → … → n−1`; optional checkpoints
    /// for the head (before its send) and the others (after their
    /// receive) — the skewed-pipeline hazard.
    Chain {
        head_ckpt: bool,
        tail_ckpt: bool,
    },
    /// Workers send to rank 0, which receives from any.
    Gather(CkptPos),
    /// Ring shift: send right, receive from left.
    RingShift(CkptPos),
}

fn arb_pos(g: &mut Gen) -> CkptPos {
    *g.pick(&[CkptPos::None, CkptPos::Before, CkptPos::After])
}

fn arb_item(g: &mut Gen) -> Item {
    match g.usize_in(0, 6) {
        0 => Item::Compute(g.i64_in(1, 20)),
        1 => Item::Checkpoint,
        2 => Item::ParityExchange {
            even: arb_pos(g),
            odd: arb_pos(g),
        },
        3 => Item::Chain {
            head_ckpt: g.bool(),
            tail_ckpt: g.bool(),
        },
        4 => Item::Gather(arb_pos(g)),
        _ => Item::RingShift(arb_pos(g)),
    }
}

fn emit_ckpt(b: &mut BlockBuilder, pos: CkptPos, when: CkptPos) {
    if matches!(
        (pos, when),
        (CkptPos::Before, CkptPos::Before) | (CkptPos::After, CkptPos::After)
    ) {
        b.checkpoint();
    }
}

fn emit_item(b: &mut BlockBuilder, item: &Item) {
    match item {
        Item::Compute(c) => {
            b.compute(e::int(*c));
        }
        Item::Checkpoint => {
            b.checkpoint();
        }
        Item::ParityExchange { even, odd } => {
            let comm = |b: &mut BlockBuilder| {
                b.send(e::right_neighbor(), e::int(512));
                b.send(e::left_neighbor(), e::int(512));
                b.recv(e::left_neighbor());
                b.recv(e::right_neighbor());
            };
            let (even, odd) = (*even, *odd);
            b.if_else(
                e::rank_is_even(),
                move |b| {
                    emit_ckpt(b, even, CkptPos::Before);
                    comm(b);
                    emit_ckpt(b, even, CkptPos::After);
                },
                move |b| {
                    emit_ckpt(b, odd, CkptPos::Before);
                    comm(b);
                    emit_ckpt(b, odd, CkptPos::After);
                },
            );
        }
        Item::Chain {
            head_ckpt,
            tail_ckpt,
        } => {
            let (head, tail) = (*head_ckpt, *tail_ckpt);
            b.if_else(
                e::eq(e::rank(), e::int(0)),
                move |b| {
                    if head {
                        b.checkpoint();
                    }
                    b.compute(e::int(3));
                    b.send(e::int(1), e::int(256));
                },
                move |b| {
                    b.recv(e::sub(e::rank(), e::int(1)));
                    b.compute(e::int(3));
                    b.if_(e::lt(e::rank(), e::sub(e::nprocs(), e::int(1))), |b| {
                        b.send(e::add(e::rank(), e::int(1)), e::int(256));
                    });
                    if tail {
                        b.checkpoint();
                    }
                },
            );
        }
        Item::Gather(pos) => {
            // Gather with a release phase: without message tags, a
            // `recv from any` could otherwise steal a later idiom's
            // message from a fast peer (a real MPI hazard). Rank 0
            // releases the workers only after the gather completes, and
            // FIFO ordering keeps the release ahead of later traffic.
            let pos = *pos;
            b.if_else(
                e::eq(e::rank(), e::int(0)),
                move |b| {
                    emit_ckpt(b, pos, CkptPos::Before);
                    b.for_("j", e::int(0), e::sub(e::nprocs(), e::int(1)), |b| {
                        b.recv_any();
                    });
                    emit_ckpt(b, pos, CkptPos::After);
                    b.for_("j", e::int(1), e::nprocs(), |b| {
                        b.send(e::var("j"), e::int(8));
                    });
                },
                move |b| {
                    b.compute(e::int(2));
                    b.send(e::int(0), e::int(128));
                    // Workers checkpoint at the opposite phase: another
                    // adversarial skew.
                    emit_ckpt(b, pos, CkptPos::Before);
                    emit_ckpt(b, pos, CkptPos::After);
                    b.recv(e::int(0));
                },
            );
        }
        Item::RingShift(pos) => {
            let pos = *pos;
            emit_ckpt(b, pos, CkptPos::Before);
            b.send(e::right_neighbor(), e::int(64));
            b.recv(e::left_neighbor());
            emit_ckpt(b, pos, CkptPos::After);
        }
    }
}

fn build_program(items: &[Item], loop_iters: i64) -> Program {
    ProgramBuilder::new("generated")
        .var("i")
        .var("j")
        .body(|b| {
            b.for_("i", e::int(0), e::int(loop_iters), |b| {
                for item in items {
                    emit_item(b, item);
                }
            });
        })
        .build()
}

#[test]
fn theorem_3_2_holds_for_random_programs() {
    forall("theorem_3_2_holds_for_random_programs", 256, |g| {
        let items = g.vec_of(1, 5, arb_item);
        let loop_iters = g.i64_in(1, 4);
        let seed = g.u64_in(0, 1000);
        let program = build_program(&items, loop_iters);
        if program.checkpoint_ids().is_empty() {
            return;
        }
        let analysis = analyze(&program, &AnalysisConfig::for_nprocs(8))
            // The pipeline must not fail on this generator's
            // vocabulary; surface it as a counterexample.
            .unwrap_or_else(|err| {
                panic!("analysis failed: {err}\n{}", acfc_mpsl::to_source(&program))
            });
        for n in [2usize, 4, 5] {
            let trace = run(
                &compile(&analysis.program),
                &SimConfig::new(n).with_seed(seed),
            );
            assert!(
                trace.completed(),
                "n={n}: {:?}\n{}",
                trace.outcome,
                acfc_mpsl::to_source(&analysis.program)
            );
            let depth = trace.aligned_depth() as u64;
            for i in 1..=depth {
                let cut = vec![i; n];
                let vc = cut_consistency(&trace, &cut);
                let oracle = cut_consistency_oracle(&trace, &cut);
                assert_eq!(vc, oracle, "checkers disagree at cut {i}");
                assert!(
                    vc,
                    "straight cut {} not a recovery line (n={}):\n{}",
                    i,
                    n,
                    acfc_mpsl::to_source(&analysis.program)
                );
            }
        }
    });
}

#[test]
fn transformation_preserves_message_behaviour() {
    forall("transformation_preserves_message_behaviour", 256, |g| {
        let items = g.vec_of(1, 4, arb_item);
        let loop_iters = g.i64_in(1, 3);
        let program = build_program(&items, loop_iters);
        if program.checkpoint_ids().is_empty() {
            return;
        }
        let analysis = analyze(&program, &AnalysisConfig::for_nprocs(8)).expect("analysis failed");
        let before = run(&compile(&program), &SimConfig::new(4));
        let after = run(&compile(&analysis.program), &SimConfig::new(4));
        if !before.completed() {
            return;
        }
        assert!(after.completed());
        assert_eq!(before.metrics.app_messages, after.metrics.app_messages);
        assert_eq!(before.metrics.app_bits, after.metrics.app_bits);
    });
}
