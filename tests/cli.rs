//! End-to-end tests of the `acfc` command-line tool, driving the real
//! binary (via `CARGO_BIN_EXE_acfc`) on the sample programs shipped in
//! `programs/`.

use std::path::Path;
use std::process::{Command, Output};

fn acfc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_acfc"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn sample_programs_exist() {
    for f in [
        "programs/jacobi.mpsl",
        "programs/jacobi_odd_even.mpsl",
        "programs/pipeline_skewed.mpsl",
        "programs/no_checkpoints.mpsl",
    ] {
        assert!(
            Path::new(env!("CARGO_MANIFEST_DIR")).join(f).exists(),
            "{f} missing"
        );
    }
}

#[test]
fn check_accepts_the_safe_jacobi() {
    let out = acfc(&["check", "programs/jacobi.mpsl"]);
    assert!(out.status.success(), "{}", stdout(&out));
    assert!(stdout(&out).contains("OK: every straight cut"));
}

#[test]
fn check_rejects_the_odd_even_jacobi_with_explanation() {
    let out = acfc(&["check", "programs/jacobi_odd_even.mpsl"]);
    assert!(!out.status.success());
    let text = stdout(&out);
    assert!(text.contains("UNSAFE"), "{text}");
    assert!(text.contains("recovery line"), "{text}");
    assert!(
        text.contains('⇒'),
        "explanation shows the message edge: {text}"
    );
}

#[test]
fn analyze_emits_a_repaired_program_that_then_checks_clean() {
    let out = acfc(&["analyze", "programs/jacobi_odd_even.mpsl", "--emit"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("phase III: 1 relocation"), "{text}");
    // Extract the emitted program and re-check it through the CLI by
    // writing a temp file.
    let emitted = text
        .split("--- transformed program ---")
        .nth(1)
        .expect("emitted section");
    let tmp = std::env::temp_dir().join("acfc_cli_test_repaired.mpsl");
    std::fs::write(&tmp, emitted).unwrap();
    let check = acfc(&["check", tmp.to_str().unwrap()]);
    assert!(check.status.success(), "{}", stdout(&check));
}

#[test]
fn run_with_analyze_verifies_every_cut() {
    let out = acfc(&[
        "run",
        "programs/pipeline_skewed.mpsl",
        "--analyze",
        "--nprocs",
        "5",
        "--seed",
        "11",
    ]);
    assert!(out.status.success(), "{}", stdout(&out));
    let text = stdout(&out);
    assert!(text.contains("Completed"));
    assert!(text.contains("every straight cut"), "{text}");
}

#[test]
fn run_without_analyze_detects_the_unsafe_placement() {
    let out = acfc(&["run", "programs/jacobi_odd_even.mpsl", "--nprocs", "4"]);
    assert!(!out.status.success());
    assert!(stdout(&out).contains("NOT recovery lines"));
}

#[test]
fn figures_prints_both_series() {
    let out = acfc(&["figures"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("Figure 8"));
    assert!(text.contains("Figure 9"));
    assert!(text.lines().filter(|l| l.starts_with('#')).count() >= 2);
    // 9 rows for fig8, 11 for fig9, plus headers.
    assert!(text.lines().count() >= 24, "{}", text.lines().count());
}

#[test]
fn compare_prints_the_dashboard_table() {
    let out = acfc(&["compare", "programs/jacobi.mpsl", "--nprocs", "2"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    for needle in [
        "appl-driven",
        "uncoordinated",
        "SaS",
        "C-L",
        "CIC",
        "forced",
        "ctrl-msgs",
        "coord-ms",
        "lat-p50/p90/p99",
    ] {
        assert!(text.contains(needle), "missing {needle}: {text}");
    }
}

#[test]
fn compare_multi_n_emits_one_table_per_n_and_a_json_artifact() {
    let json_path = std::env::temp_dir().join("acfc_cli_compare_multi_n.json");
    let out = acfc(&[
        "compare",
        "programs/jacobi.mpsl",
        "--ns",
        "2,4,8",
        "--json",
        json_path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    for n in [2, 4, 8] {
        assert!(text.contains(&format!("n = {n}")), "{text}");
    }
    assert!(text.contains("wrote comparison JSON (24 run(s))"), "{text}");
    let json = std::fs::read_to_string(&json_path).expect("JSON artifact written");
    assert!(json.contains("\"workload\": \"jacobi\""));
    assert_eq!(json.matches("\"protocol\": \"appl-driven\"").count(), 3);
    assert_eq!(json.matches("\"msg_latency_p99_us\"").count(), 24);
    assert_eq!(json.matches("\"coord_stall_us\"").count(), 24);
    assert_eq!(json.matches("\"forced_checkpoints\"").count(), 24);
}

#[test]
fn compare_sweep_streams_ci_rows_and_a_jsonl_artifact() {
    let jsonl_path = std::env::temp_dir().join("acfc_cli_compare_sweep.jsonl");
    let out = acfc(&[
        "compare",
        "programs/jacobi.mpsl",
        "--sweep",
        "--ns",
        "2,4",
        "--seeds",
        "2",
        "--failure-rate",
        "0.5",
        "--jsonl",
        jsonl_path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    // 2 ns × 1 λ × 8 protocols = 16 aggregate rows with ± CI cells.
    assert!(text.contains("workload"), "{text}");
    assert!(text.contains("appl-driven"), "{text}");
    assert!(text.contains('±'), "CI columns rendered: {text}");
    assert!(text.contains("16 cells, 32 trials"), "{text}");
    assert!(text.contains("wrote 16 aggregate row(s)"), "{text}");
    // Progress/ETA narration goes to stderr, not into the table.
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("16/16 cells"), "{err}");
    let jsonl = std::fs::read_to_string(&jsonl_path).expect("JSONL artifact written");
    assert_eq!(jsonl.lines().count(), 16);
    for line in jsonl.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains("\"overhead_ratio\":{\"mean\":"), "{line}");
        assert!(line.contains("\"ci95\":"), "2 seeds carry a CI: {line}");
    }
}

#[test]
fn compare_sweep_rows_are_identical_across_thread_counts() {
    let run_at = |threads: &str, path: &std::path::Path| {
        let out = Command::new(env!("CARGO_BIN_EXE_acfc"))
            .args([
                "compare",
                "programs/jacobi.mpsl",
                "--sweep",
                "--ns",
                "2,4",
                "--seeds",
                "2",
                "--jsonl",
                path.to_str().unwrap(),
            ])
            .env("ACFC_THREADS", threads)
            .current_dir(env!("CARGO_MANIFEST_DIR"))
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        std::fs::read(path).expect("JSONL written")
    };
    let p1 = std::env::temp_dir().join("acfc_cli_sweep_t1.jsonl");
    let p8 = std::env::temp_dir().join("acfc_cli_sweep_t8.jsonl");
    let serial = run_at("1", &p1);
    let parallel = run_at("8", &p8);
    assert!(!serial.is_empty());
    assert_eq!(serial, parallel, "sweep rows diverged across ACFC_THREADS");
}

#[test]
fn analyze_folded_writes_flamegraph_and_speedscope_files() {
    let folded_path = std::env::temp_dir().join("acfc_cli_analyze.folded");
    let out = acfc(&[
        "analyze",
        "programs/jacobi_odd_even.mpsl",
        "--folded",
        folded_path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout(&out).contains("as folded stacks"),
        "{}",
        stdout(&out)
    );
    // Every line obeys the flamegraph.pl grammar `frame;frame count`.
    let folded = std::fs::read_to_string(&folded_path).expect("folded written");
    assert!(!folded.is_empty());
    for line in folded.lines() {
        let (stack, count) = line.rsplit_once(' ').expect("stack + self time");
        assert!(count.parse::<u64>().is_ok(), "{line}");
        assert!(!stack.is_empty() && !stack.contains(' '), "{line}");
    }
    // The analysis pipeline's spans appear as nested stacks.
    assert!(folded.contains("core/analyze;core/phase1"), "{folded}");
    // The sibling speedscope document rides along.
    let ss_path = std::env::temp_dir().join("acfc_cli_analyze.speedscope.json");
    let ss = std::fs::read_to_string(&ss_path).expect("speedscope written");
    assert!(ss.contains("https://www.speedscope.app/file-format-schema.json"));
    assert!(ss.contains("\"type\": \"evented\""), "{ss}");
    assert!(ss.contains("core/analyze"), "{ss}");
}

#[test]
fn sweep_telemetry_trailer_rides_the_jsonl_without_perturbing_rows() {
    let sweep_args = |jsonl: &str, extra: &[&str]| {
        let mut v = vec![
            "compare",
            "programs/jacobi.mpsl",
            "--sweep",
            "--ns",
            "2,4",
            "--seeds",
            "2",
            "--jsonl",
        ];
        v.push(jsonl);
        v.extend_from_slice(extra);
        v.iter().map(|s| s.to_string()).collect::<Vec<_>>()
    };
    let run_at = |threads: &str, path: &std::path::Path, extra: &[&str]| {
        let out = Command::new(env!("CARGO_BIN_EXE_acfc"))
            .args(sweep_args(path.to_str().unwrap(), extra))
            .env("ACFC_THREADS", threads)
            .current_dir(env!("CARGO_MANIFEST_DIR"))
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        std::fs::read_to_string(path).expect("JSONL written")
    };
    let bare_path = std::env::temp_dir().join("acfc_cli_telemetry_bare.jsonl");
    let bare = run_at("2", &bare_path, &[]);
    for threads in ["1", "8"] {
        let path = std::env::temp_dir().join(format!("acfc_cli_telemetry_t{threads}.jsonl"));
        let with = run_at(threads, &path, &["--telemetry"]);
        let (rows, trailers): (Vec<&str>, Vec<&str>) = with
            .lines()
            .partition(|l| !l.contains("\"type\":\"sweep_telemetry\""));
        assert_eq!(
            rows.join("\n"),
            bare.trim_end(),
            "telemetry perturbed the rows at {threads} threads"
        );
        assert_eq!(trailers.len(), 1, "exactly one trailer line");
        let trailer = trailers[0];
        assert_eq!(with.lines().last().unwrap(), trailer, "trailer is last");
        for key in [
            "\"cells\":16",
            "\"trials\":32",
            "\"cell_wall_p99_us\":",
            "\"straggler_threshold_us\":",
            "\"workers\":[",
            "\"utilization\":",
            "\"slowest_cells\":[",
            "\"stragglers\":[",
        ] {
            assert!(trailer.contains(key), "missing {key}: {trailer}");
        }
    }
}

#[test]
fn sweep_telemetry_without_jsonl_is_rejected() {
    let out = acfc(&[
        "compare",
        "programs/jacobi.mpsl",
        "--sweep",
        "--seeds",
        "1",
        "--telemetry",
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--telemetry needs --jsonl"));
}

#[test]
fn sweep_folded_captures_the_cell_and_engine_spans() {
    let folded_path = std::env::temp_dir().join("acfc_cli_sweep.folded");
    let out = acfc(&[
        "compare",
        "programs/jacobi.mpsl",
        "--sweep",
        "--ns",
        "2",
        "--seeds",
        "1",
        "--folded",
        folded_path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let folded = std::fs::read_to_string(&folded_path).expect("folded written");
    assert!(folded.contains("protocols/sweep/cell"), "{folded}");
    assert!(folded.contains("sim/event_loop"), "{folded}");
}

#[test]
fn report_serve_answers_a_loopback_scrape() {
    use std::io::{BufRead, BufReader, Read, Write};
    let mut child = Command::new(env!("CARGO_BIN_EXE_acfc"))
        .args(["report", "programs/jacobi.mpsl", "--serve", "127.0.0.1:0"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("binary runs");
    // The report prints its tables, then the serving banner with the
    // ephemeral port the OS picked.
    let mut reader = BufReader::new(child.stdout.take().unwrap());
    let addr = loop {
        let mut line = String::new();
        assert!(
            reader.read_line(&mut line).unwrap() > 0,
            "banner not printed"
        );
        if let Some(rest) = line.trim().strip_prefix("serving metrics at http://") {
            break rest.split('/').next().unwrap().to_string();
        }
    };
    let mut stream = std::net::TcpStream::connect(&addr).expect("endpoint accepts");
    write!(stream, "GET /metrics HTTP/1.1\r\nHost: {addr}\r\n\r\n").unwrap();
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(5)))
        .unwrap();
    let mut body = String::new();
    let _ = stream.read_to_string(&mut body);
    child.kill().unwrap();
    let _ = child.wait();
    assert!(body.starts_with("HTTP/1.1 200 OK"), "{body}");
    assert!(body.contains("text/plain; version=0.0.4"), "{body}");
    assert!(body.contains("acfc_up 1"), "{body}");
    // The report's simulator run populated real registry metrics.
    assert!(body.contains("# TYPE acfc_"), "{body}");
}

#[test]
fn compare_profile_writes_a_merged_timeline() {
    let path = std::env::temp_dir().join("acfc_cli_compare_profile.json");
    let out = acfc(&[
        "compare",
        "programs/jacobi.mpsl",
        "--nprocs",
        "2",
        "--profile",
        path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout(&out).contains("8 protocol track group(s)"));
    let json = std::fs::read_to_string(&path).expect("profile written");
    for pid in 1..=5 {
        assert!(json.contains(&format!("\"pid\": {pid}")), "pid {pid}");
    }
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = acfc(&["bogus"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn missing_file_reports_cleanly() {
    let out = acfc(&["check", "programs/nonexistent.mpsl"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error:"));
}

#[test]
fn trace_flag_prints_spacetime() {
    let out = acfc(&["run", "programs/jacobi.mpsl", "--nprocs", "2", "--trace"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("space-time diagram"));
    assert!(text.contains("P0:"));
    assert!(text.contains("C1"), "{text}");
}

#[test]
fn mpmd_combines_role_files_into_checkable_spmd() {
    let out = acfc(&[
        "mpmd",
        "gather",
        "programs/role_master.mpsl@0",
        "programs/role_worker.mpsl@1-",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    assert!(text.starts_with("program gather;"), "{text}");
    // The combined output is itself analyzable end to end.
    let tmp = std::env::temp_dir().join("acfc_cli_mpmd.mpsl");
    std::fs::write(&tmp, &text).unwrap();
    let run = acfc(&["run", tmp.to_str().unwrap(), "--analyze", "--nprocs", "4"]);
    assert!(run.status.success(), "{}", stdout(&run));
    assert!(stdout(&run).contains("every straight cut"));
}

#[test]
fn mpmd_rejects_bad_specs() {
    let out = acfc(&["mpmd", "x", "programs/role_master.mpsl"]);
    assert!(!out.status.success());
    let out = acfc(&[
        "mpmd",
        "x",
        "programs/role_master.mpsl@0",
        "programs/role_worker.mpsl@5-",
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("coverage"));
}
