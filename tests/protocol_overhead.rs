//! §4.1's message-overhead formulas, checked against the message-level
//! simulation: the protocols charge exactly `5(n−1)` (SaS) and
//! `2n(n−1)` (C-L) control messages per checkpoint wave, the
//! application-driven protocol charges zero, and the analytic ordering
//! of overhead ratios is reflected in the simulator's measured
//! makespans.

use acfc_mpsl::programs;
use acfc_protocols::{
    cl_control_messages, compare_all, run_protocol, sas_control_messages, CicVariant,
    CompareConfig, ProtocolKind,
};
use acfc_sim::{compile, run_with_hooks, SimConfig};

#[test]
fn sas_message_count_matches_formula_across_n() {
    for n in [2usize, 3, 5, 8] {
        let p = programs::jacobi(8);
        let cfg = SimConfig::new(n);
        let mut hooks = acfc_protocols::SyncAndStop::new(n, 60_000, cfg.net.clone());
        let t = run_with_hooks(&compile(&p), &cfg, &mut hooks);
        assert!(t.completed());
        let waves = t.live_checkpoints(0).len() as u64;
        assert!(waves > 0);
        assert_eq!(
            t.metrics.control_messages,
            waves * sas_control_messages(n),
            "n={n}"
        );
    }
}

#[test]
fn cl_message_count_matches_formula_across_n() {
    for n in [2usize, 3, 5, 8] {
        let p = programs::jacobi(8);
        let cfg = SimConfig::new(n);
        let mut hooks = acfc_protocols::ChandyLamport::new(n, 60_000, cfg.net.clone());
        let t = run_with_hooks(&compile(&p), &cfg, &mut hooks);
        assert!(t.completed());
        let waves = t.live_checkpoints(0).len() as u64;
        assert!(waves > 0);
        assert_eq!(
            t.metrics.control_messages,
            waves * cl_control_messages(n),
            "n={n}"
        );
    }
}

#[test]
fn quadratic_vs_linear_growth() {
    // Doubling n roughly quadruples C-L's per-wave traffic but only
    // doubles SaS's.
    assert_eq!(
        cl_control_messages(8) / cl_control_messages(4),
        4 * 7 / (2 * 3)
    );
    assert!(cl_control_messages(16) > 2 * sas_control_messages(16));
    assert_eq!(sas_control_messages(9) - sas_control_messages(8), 5);
}

#[test]
fn app_driven_is_overhead_free_at_any_scale() {
    for n in [2usize, 4, 8] {
        let s = run_protocol(
            &programs::jacobi(6),
            ProtocolKind::AppDriven,
            &CompareConfig::builder(n).build().unwrap(),
        );
        assert!(s.completed);
        assert_eq!(s.control_messages, 0, "n={n}");
        assert_eq!(s.control_bits, 0);
        assert_eq!(s.forced, 0);
    }
}

#[test]
fn per_checkpoint_stall_reflects_the_analytic_ordering() {
    // The protocols checkpoint at different cadences (the application-
    // driven one follows the program's statements, the wave protocols
    // their timers), so raw makespans aren't comparable; the paper's
    // claim is about *per-checkpoint* overhead: the application-driven
    // protocol pays exactly `o` per checkpoint, the coordinated ones
    // pay `o` plus coordination stall.
    let stats = compare_all(
        &programs::jacobi(8),
        &CompareConfig::builder(4).build().unwrap(),
    );
    let by = |k: ProtocolKind| stats.iter().find(|s| s.protocol == k).unwrap();
    let per_ckpt = |k: ProtocolKind| {
        let s = by(k);
        assert!(s.completed, "{} did not complete", s.protocol.name());
        assert!(s.checkpoints > 0);
        s.ckpt_stall_us as f64 / s.checkpoints as f64
    };
    let app = per_ckpt(ProtocolKind::AppDriven);
    let sas = per_ckpt(ProtocolKind::SyncAndStop);
    let cl = per_ckpt(ProtocolKind::ChandyLamport);
    assert!(app < sas, "app {app} vs SaS {sas}");
    assert!(app < cl, "app {app} vs C-L {cl}");
    // And the application-driven per-checkpoint stall is exactly o.
    let o = acfc_sim::CostModel::default().ckpt_overhead_us as f64;
    assert!((app - o).abs() < 1e-9, "app pays exactly o: {app} vs {o}");
}

#[test]
fn cic_forces_but_does_not_message() {
    let s = run_protocol(
        &programs::jacobi(10),
        ProtocolKind::Cic(CicVariant::Index),
        &CompareConfig::builder(4)
            .interval_us(30_000)
            .build()
            .unwrap(),
    );
    assert!(s.completed);
    assert_eq!(s.control_messages, 0, "CIC only piggybacks");
    assert!(s.forced > 0, "skewed CIC must force checkpoints");
}
