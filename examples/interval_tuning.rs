//! Tuning the user-programmable knobs (§4: "`T` and `n` are the only
//! parameters that a user can program"): the overhead-minimising
//! checkpoint interval per protocol, the sensitivity of the overhead
//! ratio to each model parameter, and the two-level recovery extension.
//!
//! ```text
//! cargo run --example interval_tuning
//! ```

use acfc::perfmodel::{
    optimal_interval_for, optimal_k, sensitivity, single_level_ratio, twolevel_ratio_analytic,
    IntervalParams, ModelParams, ModelProtocol, TwoLevelParams,
};

fn main() {
    let params = ModelParams::default();

    println!("optimal checkpoint interval T* per protocol (golden-section on the exact ratio):");
    println!(
        "{:<14} {:>6} {:>12} {:>12} {:>12}",
        "protocol", "n", "T* (s)", "Young (s)", "r(T*)"
    );
    for n in [8usize, 64, 256] {
        for proto in ModelProtocol::all() {
            let opt = optimal_interval_for(&params, proto, n);
            println!(
                "{:<14} {:>6} {:>12.1} {:>12.1} {:>12.4e}",
                proto.name(),
                n,
                opt.t_star,
                opt.young,
                opt.ratio
            );
        }
    }

    println!("\nsensitivity of r to each parameter at the paper's operating point");
    println!("(elasticities: +1 means a 1% parameter increase raises r by ~1%):");
    let p = IntervalParams {
        lambda: params.lambda(64),
        t: params.t,
        o_total: params.o,
        l_total: params.l,
        r_recovery: params.r_recovery,
    };
    let s = sensitivity(&p);
    println!(
        "  dr/dλ: {:+.4}   dr/dT: {:+.4}   dr/dO: {:+.4}   dr/dL: {:+.4}   dr/dR: {:+.4}",
        s.lambda, s.t, s.o_total, s.l_total, s.r_recovery
    );

    println!("\ntwo-level recovery (refs [24, 25]): cheap local checkpoints,");
    println!("stable storage every k-th — overhead ratio vs. k:");
    let tl = TwoLevelParams {
        lambda_single: 5e-5,
        lambda_cat: 1e-6,
        t: 300.0,
        o1: 0.2,
        o2: params.o,
        r1: 0.5,
        r2: params.r_recovery,
        k: 1,
    };
    println!("  single-level (k=1): {:.4e}", single_level_ratio(&tl));
    for k in [2u32, 4, 8, 16, 32] {
        println!(
            "  k = {k:>2}:             {:.4e}",
            twolevel_ratio_analytic(&TwoLevelParams { k, ..tl })
        );
    }
    let (k_star, best) = optimal_k(&tl, 256);
    println!("  optimum: k* = {k_star} with ratio {best:.4e}");
}
