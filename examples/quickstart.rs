//! Quickstart: write an SPMD program, run the offline analysis, execute
//! it on the simulator, and verify the paper's guarantee.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use acfc_core::{analyze, AnalysisConfig};
use acfc_mpsl::{parse, to_source};
use acfc_sim::{compile, consistency, run, SimConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An SPMD program with an unsafe checkpoint placement: rank 0
    // checkpoints *before* serving, rank 1 *after* replying, so a
    // straight cut of checkpoints catches the request in flight as an
    // orphan message.
    let program = parse(
        "program quickstart;
         param rounds = 5;
         var i;
         for i in 0..rounds {
           if rank == 0 {
             checkpoint \"serve\";
             send to 1 size 256;
             recv from 1;
           } else {
             if rank == 1 {
               recv from 0;
               send to 0 size 256;
               checkpoint \"reply\";
             } else {
               compute 10;
               checkpoint;
             }
           }
         }",
    )?;

    // 1. Demonstrate the problem: run it and check the straight cuts.
    let trace = run(&compile(&program), &SimConfig::new(2));
    let bad = consistency::straight_cut_failures(&trace);
    println!("before analysis: inconsistent straight cuts at indices {bad:?}");
    assert!(!bad.is_empty(), "expected the unsafe placement to show");

    // 2. Run the paper's three-phase offline analysis.
    let analysis = analyze(&program, &AnalysisConfig::for_nprocs(8))?;
    println!("\n--- analysis report ---\n{}", analysis.report());
    println!(
        "--- transformed program ---\n{}",
        to_source(&analysis.program)
    );

    // 3. Run the transformed program: no coordination, and every
    // straight cut is now a recovery line.
    for n in [2usize, 4, 8] {
        let trace = run(&compile(&analysis.program), &SimConfig::new(n));
        assert!(trace.completed());
        assert!(
            consistency::all_straight_cuts_consistent(&trace),
            "Theorem 3.2 violated at n={n}?!"
        );
        println!(
            "after analysis (n={n}): {} checkpoints/process, every straight cut is a recovery line",
            trace.aligned_depth()
        );
    }
    Ok(())
}
