//! The paper's running example, end to end: Figures 1–4.
//!
//! * Figure 1 — the Jacobi iteration with uniform checkpoint placement:
//!   every straight cut is a recovery line as written.
//! * Figure 2 — the odd/even variant: even ranks checkpoint before the
//!   boundary exchange, odd ranks after it.
//! * Figure 3 — an execution showing that a straight cut of the
//!   odd/even checkpoints is *not* a recovery line.
//! * Figure 4 — the extended CFG with message edges, which exposes the
//!   violating path; Algorithm 3.2 then repairs the placement.
//!
//! ```text
//! cargo run --example jacobi
//! ```

use acfc_cfg::build_cfg;
use acfc_core::{analyze, AnalysisConfig};
use acfc_mpsl::programs;
use acfc_sim::{compile, consistency, run, SimConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Figure 1 ---------------------------------------------------
    let fig1 = programs::jacobi(6);
    let (cfg, _) = build_cfg(&fig1);
    println!(
        "Figure 1 (uniform Jacobi): {} nodes, {} checkpoint node(s)",
        cfg.len(),
        cfg.checkpoint_nodes().len()
    );
    let trace = run(&compile(&fig1), &SimConfig::new(4));
    println!(
        "  simulated at n=4: every straight cut a recovery line? {}",
        consistency::all_straight_cuts_consistent(&trace)
    );

    // --- Figures 2 & 3 ----------------------------------------------
    let fig2 = programs::jacobi_odd_even(6);
    let trace = run(&compile(&fig2), &SimConfig::new(4));
    let bad = consistency::straight_cut_failures(&trace);
    println!(
        "\nFigure 2 (odd/even Jacobi): straight cuts {:?} are NOT recovery lines (Figure 3)",
        bad
    );
    // Show one violation in causal terms.
    let cut = consistency::resolve_cut(&trace, &vec![bad[0]; trace.nprocs]).unwrap();
    for v in consistency::cut_violations(&cut) {
        println!(
            "  checkpoint of rank {} happened-before checkpoint of rank {}",
            v.earlier_proc, v.later_proc
        );
    }

    // --- Figure 4 + Phase III ---------------------------------------
    let analysis = analyze(&fig2, &AnalysisConfig::for_nprocs(8))?;
    println!(
        "\nFigure 4: extended CFG has {} message edge(s); Algorithm 3.2 performed {} move(s):",
        analysis.extended.message_edges.len(),
        analysis.moves.len()
    );
    for m in &analysis.moves {
        println!("  [S_{}] {}", m.index, m.description);
    }
    // Print the extended CFG in Graphviz form (pipe to `dot -Tpng`).
    println!("\n--- extended CFG (DOT) ---\n{}", analysis.to_dot());

    // Verify the repair across sizes and seeds.
    let mut checked = 0;
    for n in [2usize, 4, 6, 8] {
        for seed in [1u64, 2, 3] {
            let t = run(
                &compile(&analysis.program),
                &SimConfig::new(n).with_seed(seed),
            );
            assert!(t.completed());
            assert!(consistency::all_straight_cuts_consistent(&t));
            checked += 1;
        }
    }
    println!("verified: {checked} executions, every straight cut a recovery line");
    Ok(())
}
