//! Irregular communication patterns (§3.2): `recv from any` and
//! input-dependent destinations. The matcher cannot pin these down to a
//! unique sender, so it conservatively adds a message edge for every
//! non-contradicting candidate — and the placement that results is safe
//! for *every* input.
//!
//! ```text
//! cargo run --example irregular_patterns
//! ```

use acfc_cfg::build_cfg;
use acfc_core::{
    analyze, analyze_iddep, compute_attrs, match_send_recv, AnalysisConfig, MatchingMode,
};
use acfc_mpsl::programs;
use acfc_sim::{compile, consistency, run, SimConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A data-dependent rotation: every process sends to a rank computed
    // from run-time input, and receives from `any`.
    let program = programs::rotation_shuffle(4);
    println!("program: {}\n", program.name);

    // Phase II in isolation: show what the matcher decides.
    let (cfg, lowered) = build_cfg(&program);
    let iddep = analyze_iddep(&cfg, &lowered);
    let attrs = compute_attrs(&cfg, 6, &iddep);
    let matching = match_send_recv(&cfg, &attrs, &iddep, MatchingMode::Conservative);
    println!("matching at n=6:");
    for w in &matching.witnesses {
        println!(
            "  send {} -> recv {}   witness ranks {:?}   irregular: {}",
            w.edge.send, w.edge.recv, w.witness, w.irregular
        );
    }
    assert!(matching.witnesses.iter().all(|w| w.irregular));

    // Full pipeline + execution across different *inputs*: the offline
    // guarantee must hold whatever the data says at run time.
    let analysis = analyze(&program, &AnalysisConfig::for_nprocs(8))?;
    for inputs in [vec![0i64], vec![1], vec![2], vec![41], vec![997]] {
        for n in [3usize, 5, 8] {
            let t = run(
                &compile(&analysis.program),
                &SimConfig::new(n).with_inputs(inputs.clone()),
            );
            assert!(t.completed(), "n={n} inputs={inputs:?}: {:?}", t.outcome);
            assert!(consistency::all_straight_cuts_consistent(&t));
        }
        println!("inputs {inputs:?}: all straight cuts are recovery lines (n = 3, 5, 8)");
    }

    // Master/worker with `recv from any`.
    let mw = programs::master_worker(3);
    let analysis = analyze(&mw, &AnalysisConfig::for_nprocs(8))?;
    let t = run(&compile(&analysis.program), &SimConfig::new(6));
    assert!(t.completed());
    assert!(consistency::all_straight_cuts_consistent(&t));
    println!(
        "\nmaster_worker (recv from any): safe; {} message edges in Ĝ, {} moves",
        analysis.extended.message_edges.len(),
        analysis.moves.len()
    );
    Ok(())
}
