//! The domino effect (§1), demonstrated and then eliminated.
//!
//! Uncoordinated checkpointing on the classic request/reply zigzag:
//! every checkpoint of the replier is orphaned by a request and every
//! staggered cut by a reply, so rollback propagation cascades all the
//! way to the initial state. The paper's offline analysis relocates the
//! checkpoints so that recovery never discards more than the current
//! interval.
//!
//! ```text
//! cargo run --example domino_effect
//! ```

use acfc_protocols::{domino_report, domino_stream, AppDriven};
use acfc_sim::{compile, run, run_with_failures, FailurePlan, SimConfig, SimTime};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rounds = 10;
    let program = domino_stream(rounds);
    println!("workload: request/reply zigzag, {rounds} rounds, n=2\n");

    // --- As written: the domino effect -------------------------------
    let trace = run(&compile(&program), &SimConfig::new(2));
    let rep = domino_report(&trace);
    println!("uncoordinated placement (as written):");
    println!("  checkpoints taken per process:   {:?}", rep.counts);
    println!("  maximal consistent line:         {:?}", rep.line);
    println!("  checkpoints discarded (domino):  {:?}", rep.depths);
    println!("  full restart forced:             {}", rep.full_restart);
    assert!(rep.full_restart);

    // What that means when a failure actually happens: recover with the
    // maximal-consistent-line picker and watch the lost work.
    let plan = FailurePlan::at(vec![(SimTime::from_millis(80), 1)]);
    let mut hooks = acfc_sim::NoHooks;
    let t = run_with_failures(
        &compile(&program),
        &SimConfig::new(2),
        &mut hooks,
        plan.clone(),
        acfc_protocols::uncoordinated_picker(),
    );
    assert!(t.completed());
    let f = &t.failures[0];
    println!(
        "  on failure at t=80ms: restored {:?} (latest were {:?}), {:.1} ms of work lost\n",
        f.restored_seq,
        f.latest_seq,
        f.lost_us as f64 / 1000.0
    );

    // --- After the paper's analysis ----------------------------------
    let ad = AppDriven::prepare(&program, 4)?;
    println!("application-driven placement (after the offline analysis):");
    for m in &ad.analysis.moves {
        println!("  [S_{}] {}", m.index, m.description);
    }
    let trace = run(&ad.compiled, &SimConfig::new(2));
    let rep = domino_report(&trace);
    println!("  checkpoints taken per process:   {:?}", rep.counts);
    println!("  maximal consistent line:         {:?}", rep.line);
    println!("  checkpoints discarded (domino):  {:?}", rep.depths);
    assert!(rep.depths.iter().all(|&d| d == 0));

    let mut hooks = ad.hooks();
    let t = run_with_failures(
        &ad.compiled,
        &SimConfig::new(2),
        &mut hooks,
        plan,
        ad.picker(),
    );
    assert!(t.completed());
    let f = &t.failures[0];
    println!(
        "  on the same failure: restored {:?} (latest were {:?}), {:.1} ms lost — bounded by one interval",
        f.restored_seq,
        f.latest_seq,
        f.lost_us as f64 / 1000.0
    );
    Ok(())
}
