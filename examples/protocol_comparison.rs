//! Head-to-head protocol comparison (the empirical companion to the
//! paper's Figures 8/9): the application-driven protocol against
//! uncoordinated, SaS, Chandy–Lamport, and communication-induced
//! checkpointing, on the same workload with the same injected failure.
//!
//! ```text
//! cargo run --release --example protocol_comparison [nprocs]
//! ```

use acfc_mpsl::programs;
use acfc_perfmodel::{figure8, ModelParams};
use acfc_protocols::{compare_all, render_table, CompareConfig};
use acfc_sim::{FailurePlan, SimTime};

fn main() {
    let n = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4usize);

    // Message-level simulation.
    let program = programs::jacobi(10);
    let cfg = CompareConfig::builder(n)
        .interval_us(80_000)
        .failures(FailurePlan::at(vec![(SimTime::from_millis(300), 0)]))
        .build()
        .expect("valid comparison config");
    println!(
        "workload: {} at n={n}, one failure at t=300ms\n",
        program.name
    );
    let stats = compare_all(&program, &cfg);
    print!("{}", render_table(&stats));

    println!("\nkey observations (the paper's claims, measured):");
    let by = |name: &str| stats.iter().find(|s| s.protocol.name() == name).unwrap();
    println!(
        "  appl-driven control messages: {} (SaS: {}, C-L: {})",
        by("appl-driven").control_messages,
        by("SaS").control_messages,
        by("C-L").control_messages
    );
    println!(
        "  appl-driven forced checkpoints: {} (CIC: {})",
        by("appl-driven").forced,
        by("CIC").forced
    );
    println!(
        "  appl-driven max rollback depth: {} (uncoordinated: {})",
        by("appl-driven").max_rollback_depth,
        by("uncoordinated").max_rollback_depth
    );

    // Utilisation breakdown of the application-driven run.
    {
        use acfc_protocols::AppDriven;
        use acfc_sim::{render_stats, run, trace_stats};
        let ad = AppDriven::prepare(&program, n.min(128)).expect("analysis");
        let t = run(&ad.compiled, &acfc_sim::SimConfig::new(n));
        println!("\nappl-driven utilisation (failure-free):");
        print!("{}", render_stats(&trace_stats(&t)));
    }

    // Analytic model at the same n, for comparison of the shape.
    println!("\nanalytic overhead ratios at n={n} (paper's §4 model):");
    let rows = figure8(&ModelParams::default(), &[n]);
    println!(
        "  appl-driven {:.4e}   SaS {:.4e}   C-L {:.4e}",
        rows[0].app_driven, rows[0].sas, rows[0].chandy_lamport
    );
}
