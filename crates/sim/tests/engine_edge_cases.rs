//! Engine semantics at the edges: self-messages, zero-size payloads,
//! single-process runs, parameter overrides, input vectors, deep
//! sequential programs (inline-budget yielding), and empty programs.

use acfc_mpsl::parse;
use acfc_sim::{compile, consistency, run, Outcome, SimConfig};

#[test]
fn self_send_is_delivered() {
    let p = parse("program t; send to rank size 128; recv from rank;").unwrap();
    let t = run(&compile(&p), &SimConfig::new(2));
    assert!(t.completed(), "{:?}", t.outcome);
    assert_eq!(t.messages.len(), 2);
    for m in &t.messages {
        assert_eq!(m.from, m.to);
        assert!(m.is_received());
        assert!(
            m.recv_at.unwrap() > m.sent_at,
            "network delay still applies"
        );
    }
}

#[test]
fn zero_size_message_works() {
    let p = parse(
        "program t; if rank == 0 { send to 1 size 0; } else { if rank == 1 { recv from 0; } }",
    )
    .unwrap();
    let t = run(&compile(&p), &SimConfig::new(2));
    assert!(t.completed());
    assert_eq!(t.messages[0].size_bits, 0);
    assert_eq!(t.metrics.app_bits, 0);
}

#[test]
fn single_process_run() {
    let p = parse("program t; var i; for i in 0..5 { compute 3; checkpoint; }").unwrap();
    let t = run(&compile(&p), &SimConfig::new(1));
    assert!(t.completed());
    assert_eq!(t.checkpoint_counts(), vec![5]);
    assert!(consistency::all_straight_cuts_consistent(&t));
}

#[test]
fn param_override_changes_iteration_count() {
    let p = acfc_mpsl::programs::jacobi(3);
    let c = compile(&p);
    let t = run(&c, &SimConfig::new(2).with_param("iters", 7));
    assert!(t.completed());
    assert_eq!(t.checkpoint_counts(), vec![7, 7]);
}

#[test]
fn inputs_steer_control_flow() {
    let p = parse(
        "program t;
         if input(0) > 0 {
           checkpoint \"hot\";
         } else {
           checkpoint \"cold\";
         }",
    )
    .unwrap();
    let c = compile(&p);
    let hot = run(&c, &SimConfig::new(1).with_inputs(vec![5]));
    let cold = run(&c, &SimConfig::new(1).with_inputs(vec![-1]));
    assert_eq!(hot.checkpoints[0].label.as_deref(), Some("hot"));
    assert_eq!(cold.checkpoints[0].label.as_deref(), Some("cold"));
}

#[test]
fn missing_input_is_a_runtime_error() {
    let p = parse("program t; compute input(3);").unwrap();
    let t = run(&compile(&p), &SimConfig::new(1));
    match t.outcome {
        Outcome::RuntimeError(0, msg) => assert!(msg.contains("input"), "{msg}"),
        other => panic!("expected runtime error, got {other:?}"),
    }
}

#[test]
fn empty_program_finishes_at_time_zero() {
    let p = parse("program t;").unwrap();
    let t = run(&compile(&p), &SimConfig::new(3));
    assert!(t.completed());
    assert_eq!(t.finished_at.as_micros(), 0);
    assert_eq!(t.messages.len(), 0);
}

#[test]
fn long_sequential_program_respects_inline_yields() {
    // Thousands of zero-cost assignments force the engine through its
    // inline budget repeatedly; the run must still complete with time
    // strictly advancing.
    let p = parse(
        "program t; param reps = 5000; var i, acc;
         for i in 0..reps { acc := acc + 1; }
         checkpoint;",
    )
    .unwrap();
    let t = run(&compile(&p), &SimConfig::new(2));
    assert!(t.completed(), "{:?}", t.outcome);
    assert!(t.finished_at.as_micros() > 5000, "instr overhead accrues");
    let snap = &t.live_checkpoints(0)[0].snapshot;
    assert_eq!(snap.vars["acc"], 5000);
}

#[test]
fn division_by_zero_reports_the_process() {
    let p = parse("program t; var x; if rank == 1 { x := 1 / (rank - 1); } compute 1;").unwrap();
    let t = run(&compile(&p), &SimConfig::new(3));
    match t.outcome {
        Outcome::RuntimeError(1, msg) => assert!(msg.contains("zero"), "{msg}"),
        other => panic!("expected runtime error on rank 1, got {other:?}"),
    }
}

#[test]
fn deadlock_reports_all_blocked_ranks() {
    let p = parse("program t; recv from (rank + 1) % nprocs;").unwrap();
    let t = run(&compile(&p), &SimConfig::new(3));
    match t.outcome {
        Outcome::Deadlock(ranks) => assert_eq!(ranks, vec![0, 1, 2]),
        other => panic!("expected deadlock, got {other:?}"),
    }
}

#[test]
fn makespan_scales_with_compute() {
    let short = parse("program t; compute 10;").unwrap();
    let long = parse("program t; compute 1000;").unwrap();
    let ts = run(&compile(&short), &SimConfig::new(1));
    let tl = run(&compile(&long), &SimConfig::new(1));
    let ratio = tl.finished_at.as_micros() as f64 / ts.finished_at.as_micros() as f64;
    assert!((ratio - 100.0).abs() < 5.0, "compute dominates: {ratio}");
}
