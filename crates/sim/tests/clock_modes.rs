//! Differential test: delta-encoded clock piggybacks against dense
//! vector-clock semantics.
//!
//! The engine's delta mode (the default above `DENSE_CLOCK_MAX`
//! processes) transports only the components changed since the last
//! send on each channel and stamps checkpoints with sparse clocks.
//! These tests force both modes on identical configurations — above
//! and below the auto cutoff, with and without failures — and assert
//! the observable causal structure is identical: same timing, same
//! checkpoint stamps (compared across representations), same
//! consistency verdicts.

use acfc_mpsl::programs;
use acfc_sim::{
    compile, consistency, run, run_with_failures, ClockMode, CutPicker, FailurePlan, NoHooks,
    SimConfig, SimTime, Trace, DENSE_CLOCK_MAX,
};

fn run_mode(
    prog: &acfc_mpsl::Program,
    n: usize,
    mode: ClockMode,
    fail_ms: &[(u64, usize)],
) -> Trace {
    let c = compile(prog);
    let cfg = SimConfig::new(n).with_clock_mode(mode);
    if fail_ms.is_empty() {
        run(&c, &cfg)
    } else {
        let plan = FailurePlan::at(
            fail_ms
                .iter()
                .map(|&(ms, p)| (SimTime::from_millis(ms), p))
                .collect(),
        );
        let mut hooks = NoHooks;
        run_with_failures(&c, &cfg, &mut hooks, plan, CutPicker::AlignedSeq)
    }
}

fn assert_equivalent(dense: &Trace, delta: &Trace, what: &str) {
    assert_eq!(dense.outcome, delta.outcome, "{what}: outcome");
    assert_eq!(dense.finished_at, delta.finished_at, "{what}: makespan");
    assert_eq!(
        dense.metrics.instructions, delta.metrics.instructions,
        "{what}: instructions"
    );
    assert_eq!(
        dense.checkpoints.len(),
        delta.checkpoints.len(),
        "{what}: checkpoint count"
    );
    for (a, b) in dense.checkpoints.iter().zip(&delta.checkpoints) {
        // Cross-representation equality: b.vc is sparse, a.vc dense.
        assert_eq!(a.vc, b.vc, "{what}: stamp of ckpt {}/{}", a.proc, a.seq);
        assert_eq!(a.snapshot.vc, b.snapshot.vc, "{what}: snapshot stamp");
        assert_eq!(a.rolled_back, b.rolled_back, "{what}: rollback mark");
        assert_eq!(a.step, b.step, "{what}: step");
    }
    for (a, b) in dense.messages.iter().zip(&delta.messages) {
        assert_eq!(a.sent_at, b.sent_at, "{what}: send time");
        assert_eq!(a.recv_at, b.recv_at, "{what}: recv time");
        assert_eq!(a.rolled_back, b.rolled_back, "{what}: msg rollback");
    }
    // The consistency checker consumes checkpoint stamps; it must reach
    // the same verdicts through sparse stamps as through dense ones.
    assert_eq!(
        consistency::straight_cut_failures(dense),
        consistency::straight_cut_failures(delta),
        "{what}: straight-cut verdicts"
    );
}

/// Above the auto cutoff with a failure-free neighbour exchange.
#[test]
fn delta_matches_dense_above_cutoff() {
    let n = DENSE_CLOCK_MAX + 16;
    for prog in [programs::jacobi(6), programs::stencil_1d(6)] {
        let dense = run_mode(&prog, n, ClockMode::Dense, &[]);
        let delta = run_mode(&prog, n, ClockMode::Delta, &[]);
        assert!(dense.completed(), "{}: {:?}", prog.name, dense.outcome);
        assert_equivalent(&dense, &delta, &prog.name);
        // Spot-check the representations actually differ.
        assert!(!dense.checkpoints[0].vc.is_sparse());
        assert!(delta.checkpoints[0].vc.is_sparse());
    }
}

/// Auto mode resolves to delta above the cutoff and dense below it.
#[test]
fn auto_mode_picks_representation_by_n() {
    let prog = programs::jacobi(3);
    let small = run_mode(&prog, 4, ClockMode::Auto, &[]);
    assert!(!small.checkpoints[0].vc.is_sparse());
    let large = run_mode(&prog, DENSE_CLOCK_MAX + 1, ClockMode::Auto, &[]);
    assert!(large.checkpoints[0].vc.is_sparse());
}

/// Rollback is the hard case: the modification-log epoch bump must
/// force full-support resends, and redelivered messages must replay
/// their original payloads. Two failures stress repeated rollback.
#[test]
fn delta_matches_dense_through_failures() {
    let n = DENSE_CLOCK_MAX + 8;
    let prog = programs::jacobi(6);
    let fails = [(60u64, 0usize), (140, n / 2)];
    let dense = run_mode(&prog, n, ClockMode::Dense, &fails);
    let delta = run_mode(&prog, n, ClockMode::Delta, &fails);
    assert!(dense.completed(), "{:?}", dense.outcome);
    assert_eq!(dense.metrics.failures, 2);
    assert_equivalent(&dense, &delta, "jacobi+failures");
}

/// All-to-one and skewed shapes exercise non-neighbour supports.
#[test]
fn delta_matches_dense_on_irregular_topologies() {
    for prog in [programs::master_worker(4), programs::pipeline_skewed(4)] {
        let n = DENSE_CLOCK_MAX + 4;
        let dense = run_mode(&prog, n, ClockMode::Dense, &[]);
        let delta = run_mode(&prog, n, ClockMode::Delta, &[]);
        assert_equivalent(&dense, &delta, &prog.name);
    }
}

/// Index-piggybacking hooks that *force* checkpoints on lagging
/// receives (the CIC discipline, restated locally): the engine's
/// forced-checkpoint path must behave identically under both clock
/// representations, including the piggyback channel the hooks ride.
struct ForcingHooks {
    timers: acfc_sim::TimerCheckpoints,
}

impl acfc_sim::Hooks for ForcingHooks {
    fn piggyback(&mut self, _p: usize, _to: usize, ckpt_seq: u64, _now: SimTime) -> u64 {
        ckpt_seq
    }

    fn on_recv(
        &mut self,
        _p: usize,
        piggyback: u64,
        own_seq: u64,
        _now: SimTime,
    ) -> acfc_sim::RecvAction {
        if piggyback > own_seq {
            acfc_sim::RecvAction::ForceCheckpointFirst
        } else {
            acfc_sim::RecvAction::Deliver
        }
    }

    fn take_app_checkpoint(&mut self, _p: usize, _now: SimTime) -> bool {
        false
    }

    fn timer_checkpoint_due(&mut self, p: usize, now: SimTime) -> bool {
        acfc_sim::Hooks::timer_checkpoint_due(&mut self.timers, p, now)
    }
}

/// Forced checkpoints above the cutoff: skewed timers make receivers
/// lag their senders, so the forcing path runs under both modes — the
/// traces (timing, stamps, forced-checkpoint placement) must agree.
#[test]
fn delta_matches_dense_with_forcing_hooks_above_cutoff() {
    let n = DENSE_CLOCK_MAX + 8;
    let prog = programs::stencil_1d(8);
    let c = compile(&prog);
    let mut traces = Vec::new();
    for mode in [ClockMode::Dense, ClockMode::Delta] {
        let cfg = SimConfig::new(n).with_clock_mode(mode);
        let mut hooks = ForcingHooks {
            timers: acfc_sim::TimerCheckpoints::new(n, 25_000, 9_000),
        };
        let t = acfc_sim::run_with_hooks(&c, &cfg, &mut hooks);
        assert!(t.completed(), "{mode:?}: {:?}", t.outcome);
        traces.push(t);
    }
    let forced = traces[0].metrics.forced_checkpoints;
    assert!(forced > 0, "skewed timers must force under both modes");
    assert_eq!(forced, traces[1].metrics.forced_checkpoints);
    assert_equivalent(&traces[0], &traces[1], "forcing stencil");
}
