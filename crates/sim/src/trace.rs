//! Execution traces: the record of everything observable a run produced.
//!
//! The offline analysis makes claims quantified over executions
//! ("in any further execution, `R_i` is a recovery line"); traces are how
//! those claims are checked. A [`Trace`] records every message, every
//! checkpoint (with its vector clock and a restorable snapshot), every
//! failure/recovery, and summary metrics.

use crate::clock::VectorClock;
use crate::time::SimTime;
use acfc_mpsl::StmtId;
use acfc_obs::HistSnapshot;
use std::sync::Arc;

/// Identifier of a message within a trace (index into
/// [`Trace::messages`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MsgId(pub u64);

/// What triggered a checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CkptTrigger {
    /// A `checkpoint` statement in the application (the paper's
    /// application-driven placement).
    AppStatement,
    /// A protocol-local timer (uncoordinated / baseline protocols).
    Timer,
    /// Forced by a communication-induced protocol on message receipt.
    Forced,
    /// Part of a coordinated wave (SaS or Chandy–Lamport).
    Coordinated,
}

/// A slot-interned variable store: the engine keeps per-process state
/// as a flat value vector indexed by the compile-time name→slot table
/// (shared via `Arc`, so snapshotting clones two small vectors and
/// bumps a refcount instead of rebuilding a hash map).
///
/// A slot is *bound* once the variable is declared or first assigned;
/// unbound slots exist (an undeclared name can appear in the code) but
/// are invisible to iteration, comparison, and lookup — exactly the
/// observable behaviour of the map-based store this replaces.
#[derive(Debug, Clone)]
pub struct VarStore {
    pub(crate) names: Arc<[String]>,
    pub(crate) values: Vec<i64>,
    pub(crate) bound: Arc<[bool]>,
}

impl VarStore {
    /// Builds a store from explicit `(name, value)` bindings (all
    /// bound).
    #[deprecated(
        since = "0.1.0",
        note = "ad-hoc snapshot construction is superseded by the `backend` module: use \
                `backend::var_store`, or build a `backend::StateSnapshot` and convert with \
                `to_snapshot()`"
    )]
    pub fn from_pairs(pairs: impl IntoIterator<Item = (String, i64)>) -> VarStore {
        crate::backend::var_store(pairs)
    }

    /// The value bound to `name`, if any.
    pub fn get(&self, name: &str) -> Option<i64> {
        self.names
            .iter()
            .position(|n| n == name)
            .filter(|&i| self.bound[i])
            .map(|i| self.values[i])
    }

    /// Iterates over the bound `(name, value)` pairs in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, i64)> + '_ {
        self.names
            .iter()
            .zip(&self.values)
            .zip(self.bound.iter())
            .filter(|&(_, &b)| b)
            .map(|((n, &v), _)| (n.as_str(), v))
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.bound.iter().filter(|&&b| b).count()
    }

    /// `true` when no variable is bound.
    pub fn is_empty(&self) -> bool {
        !self.bound.iter().any(|&b| b)
    }
}

impl std::ops::Index<&str> for VarStore {
    type Output = i64;

    fn index(&self, name: &str) -> &i64 {
        let i = self
            .names
            .iter()
            .position(|n| n == name)
            .unwrap_or_else(|| panic!("no variable named {name:?}"));
        assert!(self.bound[i], "variable {name:?} is unbound");
        &self.values[i]
    }
}

/// Set-semantics equality: two stores are equal iff they bind the same
/// names to the same values, regardless of slot layout.
impl PartialEq for VarStore {
    fn eq(&self, other: &VarStore) -> bool {
        let mut a: Vec<(&str, i64)> = self.iter().collect();
        let mut b: Vec<(&str, i64)> = other.iter().collect();
        a.sort_unstable();
        b.sort_unstable();
        a == b
    }
}

impl Eq for VarStore {}

/// Per-statement instance counters, indexed densely by statement id
/// (statement ids are small and contiguous per program, so a flat
/// vector replaces the former `HashMap<u32, u64>`).
#[derive(Debug, Clone, Default)]
pub struct StmtInstances(pub(crate) Vec<u64>);

impl StmtInstances {
    /// Builds counters from explicit `(stmt_id, count)` pairs.
    #[deprecated(
        since = "0.1.0",
        note = "ad-hoc snapshot construction is superseded by the `backend` module: use \
                `backend::stmt_instances`, or build a `backend::StateSnapshot` and convert \
                with `to_snapshot()`"
    )]
    pub fn from_pairs(pairs: impl IntoIterator<Item = (u32, u64)>) -> StmtInstances {
        crate::backend::stmt_instances(pairs)
    }

    /// The instance count of statement `id` (0 if never executed).
    pub fn get(&self, id: u32) -> u64 {
        self.0.get(id as usize).copied().unwrap_or(0)
    }

    /// The non-zero `(stmt_id, count)` pairs in id order.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.0
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (i as u32, c))
    }
}

/// Equality over the non-zero counters (a trailing run of zero slots is
/// indistinguishable from absent slots).
impl PartialEq for StmtInstances {
    fn eq(&self, other: &StmtInstances) -> bool {
        self.iter_nonzero().eq(other.iter_nonzero())
    }
}

impl Eq for StmtInstances {}

/// A restorable process snapshot captured at a checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Program counter (index into the compiled code).
    pub pc: usize,
    /// Variable store.
    pub vars: VarStore,
    /// Vector clock at the checkpoint.
    pub vc: VectorClock,
    /// Dynamic checkpoint count at (and including) this checkpoint.
    pub ckpt_seq: u64,
    /// Per-statement instance counters.
    pub stmt_instances: StmtInstances,
    /// Per-process event step counter at the checkpoint.
    pub step: u64,
}

impl Snapshot {
    /// Variable bindings sorted by name (canonical order for exports
    /// and golden-trace pins, independent of the storage layout).
    pub fn vars_sorted(&self) -> Vec<(String, i64)> {
        let mut v: Vec<(String, i64)> = self.vars.iter().map(|(k, x)| (k.to_string(), x)).collect();
        v.sort();
        v
    }

    /// Non-zero per-statement instance counters sorted by statement id
    /// (canonical order, independent of the storage layout).
    pub fn stmt_instances_sorted(&self) -> Vec<(u32, u64)> {
        self.stmt_instances.iter_nonzero().collect()
    }
}

/// One recorded message.
#[derive(Debug, Clone)]
pub struct MessageRecord {
    /// Message id (index in [`Trace::messages`]).
    pub id: MsgId,
    /// Sender rank.
    pub from: usize,
    /// Receiver rank.
    pub to: usize,
    /// Payload size in bits.
    pub size_bits: u64,
    /// The `send` statement.
    pub send_stmt: StmtId,
    /// Simulated send time.
    pub sent_at: SimTime,
    /// Sender's vector clock at the send event.
    pub send_vc: VectorClock,
    /// Sender's event step at the send.
    pub send_step: u64,
    /// Protocol piggyback value attached by hooks.
    pub piggyback: u64,
    /// When the network delivered the message (None: still in flight at
    /// end of run).
    pub delivered_at: Option<SimTime>,
    /// When the receiver consumed it (None: never received).
    pub recv_at: Option<SimTime>,
    /// Receiver's vector clock at the receive event.
    pub recv_vc: Option<VectorClock>,
    /// Receiver's event step at the receive.
    pub recv_step: Option<u64>,
    /// The `recv` statement that consumed it.
    pub recv_stmt: Option<StmtId>,
    /// `true` if a rollback undid the send: the record is dead history.
    pub rolled_back: bool,
}

impl MessageRecord {
    /// `true` if the message was consumed by a receive (and not undone).
    pub fn is_received(&self) -> bool {
        !self.rolled_back && self.recv_at.is_some()
    }
}

/// One recorded checkpoint.
#[derive(Debug, Clone)]
pub struct CheckpointRecord {
    /// Owning process.
    pub proc: usize,
    /// Dynamic sequence number within the process (1-based): the paper's
    /// checkpoint sequence number of §2.
    pub seq: u64,
    /// The `checkpoint` statement (the static checkpoint node),
    /// `None` for protocol-generated (timer/forced/coordinated)
    /// checkpoints that have no statement.
    pub stmt: Option<StmtId>,
    /// How many times this statement has executed in this process
    /// (1-based); 0 for protocol-generated checkpoints.
    pub instance: u64,
    /// Optional label from the source.
    pub label: Option<Arc<str>>,
    /// What triggered it.
    pub trigger: CkptTrigger,
    /// When the checkpoint began.
    pub start: SimTime,
    /// When it was durable (`start + l`).
    pub durable_at: SimTime,
    /// Vector clock at the checkpoint event.
    pub vc: VectorClock,
    /// Per-process event step.
    pub step: u64,
    /// Restorable snapshot.
    pub snapshot: Snapshot,
    /// `true` if a rollback undid this checkpoint.
    pub rolled_back: bool,
}

/// One failure and the recovery that followed.
#[derive(Debug, Clone)]
pub struct FailureRecord {
    /// The process that failed.
    pub proc: usize,
    /// When it failed.
    pub at: SimTime,
    /// The recovery line used: for each process, the checkpoint `seq`
    /// restored (`None` = initial state).
    pub restored_seq: Vec<Option<u64>>,
    /// Each process's latest live checkpoint `seq` at failure time
    /// (`0` = none); `latest_seq[p] − restored_seq[p]` is the rollback
    /// depth.
    pub latest_seq: Vec<u64>,
    /// Work lost, summed over processes (µs of simulated progress
    /// between each restored checkpoint and the failure).
    pub lost_us: u64,
}

/// Aggregate counters.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    /// Application messages sent (live, after rollbacks).
    pub app_messages: u64,
    /// Application message bits.
    pub app_bits: u64,
    /// Protocol control messages charged by hooks.
    pub control_messages: u64,
    /// Protocol control bits charged by hooks.
    pub control_bits: u64,
    /// Checkpoints taken from application statements.
    pub app_checkpoints: u64,
    /// Timer-driven checkpoints.
    pub timer_checkpoints: u64,
    /// Forced (communication-induced) checkpoints.
    pub forced_checkpoints: u64,
    /// Coordinated-wave checkpoints.
    pub coordinated_checkpoints: u64,
    /// Total µs processes spent stalled in checkpoint overhead
    /// (including coordination stall charged by hooks).
    pub ckpt_stall_us: u64,
    /// The coordination-only share of [`ckpt_stall_us`]: stall charged
    /// by protocol hooks over and above the intrinsic overhead `o`.
    /// Zero for the application-driven protocol — the dashboard column
    /// that makes "coordination-free" a measured number.
    ///
    /// [`ckpt_stall_us`]: Metrics::ckpt_stall_us
    pub coord_stall_us: u64,
    /// Total µs processes spent blocked in `recv`.
    pub recv_blocked_us: u64,
    /// Number of failures injected.
    pub failures: u64,
    /// Total µs charged as recovery overhead.
    pub recovery_us: u64,
    /// Instructions retired across all processes, including work
    /// replayed after rollbacks (the denominator of events/sec; not
    /// part of the golden-trace pin format).
    pub instructions: u64,
}

/// How a run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Every process halted normally.
    Completed,
    /// No event could make progress while some process was still
    /// blocked: deadlock. Holds the blocked ranks.
    Deadlock(Vec<usize>),
    /// A process exceeded the step budget.
    StepLimit(usize),
    /// A runtime error (bad rank, eval error). Holds `(proc, message)`.
    RuntimeError(usize, String),
}

/// A full execution trace.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Number of processes.
    pub nprocs: usize,
    /// Program name.
    pub program: String,
    /// Every message ever sent (including rolled-back ones).
    pub messages: Vec<MessageRecord>,
    /// Every checkpoint ever taken (including rolled-back ones).
    pub checkpoints: Vec<CheckpointRecord>,
    /// Failures and recoveries.
    pub failures: Vec<FailureRecord>,
    /// Per-process finish time (time of `Halt`, or last activity).
    pub proc_end: Vec<SimTime>,
    /// Time the run ended (max event time).
    pub finished_at: SimTime,
    /// Aggregate counters.
    pub metrics: Metrics,
    /// Event-queue depth sampled by the engine at every 8th event pop
    /// (the same systematic 1-in-8 cadence as the observed path), so
    /// post-hoc [`trace_stats`](crate::stats::trace_stats) exposes the
    /// identical queue-depth histogram as a live `SimObs` — bucket for
    /// bucket, by construction. Empty for traces built by engines that
    /// predate the field (e.g. the pre-lowering baseline).
    pub queue_depth: HistSnapshot,
    /// How the run ended.
    pub outcome: Outcome,
}

impl Trace {
    /// Live (not rolled-back) checkpoints of process `p`, in `seq` order.
    pub fn live_checkpoints(&self, p: usize) -> Vec<&CheckpointRecord> {
        let mut v: Vec<&CheckpointRecord> = self
            .checkpoints
            .iter()
            .filter(|c| c.proc == p && !c.rolled_back)
            .collect();
        v.sort_by_key(|c| c.seq);
        v
    }

    /// Live messages (sends not undone by a rollback).
    pub fn live_messages(&self) -> impl Iterator<Item = &MessageRecord> {
        self.messages.iter().filter(|m| !m.rolled_back)
    }

    /// The number of live checkpoints per process.
    pub fn checkpoint_counts(&self) -> Vec<usize> {
        (0..self.nprocs)
            .map(|p| self.live_checkpoints(p).len())
            .collect()
    }

    /// The minimum live checkpoint count over all processes: the highest
    /// `i` for which a full straight cut `S_i` exists.
    pub fn aligned_depth(&self) -> usize {
        self.checkpoint_counts().into_iter().min().unwrap_or(0)
    }

    /// The straight cut of the `i`-th checkpoints (1-based `seq == i`),
    /// if every process has one.
    pub fn straight_cut(&self, i: u64) -> Option<Vec<&CheckpointRecord>> {
        let mut cut = Vec::with_capacity(self.nprocs);
        for p in 0..self.nprocs {
            let c = self
                .checkpoints
                .iter()
                .find(|c| c.proc == p && !c.rolled_back && c.seq == i)?;
            cut.push(c);
        }
        Some(cut)
    }

    /// `true` if the run completed normally.
    pub fn completed(&self) -> bool {
        self.outcome == Outcome::Completed
    }

    /// Wall-clock makespan of the run in seconds.
    pub fn makespan_secs(&self) -> f64 {
        self.finished_at.as_secs_f64()
    }
}
