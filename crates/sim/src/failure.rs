//! Failure injection and recovery-line selection.
//!
//! Failures follow the paper's model (§4): each process fails
//! independently with an exponentially distributed time-to-failure of
//! rate `λ`. On a failure the engine performs a *coordinated rollback*:
//! every process is restored to the checkpoint chosen by a
//! [`CutPicker`], in-transit messages at the cut are re-delivered, and
//! everyone resumes after the recovery overhead `R`.

use crate::time::SimTime;
use crate::trace::{CheckpointRecord, MessageRecord};
use acfc_util::rng::Rng;

/// A schedule of failures to inject: `(time, process)` pairs.
#[derive(Debug, Clone, Default)]
pub struct FailurePlan {
    events: Vec<(SimTime, usize)>,
}

impl FailurePlan {
    /// No failures.
    pub fn none() -> FailurePlan {
        FailurePlan::default()
    }

    /// An explicit list of `(time, process)` failures.
    pub fn at(mut events: Vec<(SimTime, usize)>) -> FailurePlan {
        events.sort();
        FailurePlan { events }
    }

    /// Draws failures with per-process exponential rate
    /// `lambda_per_sec` over `[0, horizon]`, seeded and deterministic.
    ///
    /// # Panics
    ///
    /// Panics if `lambda_per_sec` is not finite and positive.
    pub fn exponential(
        nprocs: usize,
        lambda_per_sec: f64,
        horizon: SimTime,
        seed: u64,
    ) -> FailurePlan {
        assert!(
            lambda_per_sec.is_finite() && lambda_per_sec > 0.0,
            "lambda must be positive"
        );
        let mut rng = Rng::seed_from_u64(seed);
        let mut events = Vec::new();
        for p in 0..nprocs {
            let mut t = 0.0f64;
            loop {
                t += rng.exp(lambda_per_sec);
                let us = (t * 1e6) as u64;
                if us > horizon.as_micros() {
                    break;
                }
                events.push((SimTime(us), p));
            }
        }
        events.sort();
        FailurePlan { events }
    }

    /// The planned failures, time-ordered.
    pub fn events(&self) -> &[(SimTime, usize)] {
        &self.events
    }

    /// Number of planned failures.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no failures are planned.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// What a recovery-line picker sees at failure time. The checkpoint
/// records are borrowed from the engine's trace in place (building a
/// view is O(checkpoints) pointer pushes, not a deep copy).
#[derive(Debug)]
pub struct RecoveryView<'t> {
    /// Live checkpoints per process, in `seq` order.
    pub live: &'t [Vec<&'t CheckpointRecord>],
    /// All messages so far (check `rolled_back` before using a record).
    pub messages: &'t [MessageRecord],
}

/// The signature of a [`CutPicker::Custom`] recovery-line function.
pub type PickerFn = Box<dyn Fn(&RecoveryView<'_>) -> Vec<Option<u64>> + Send + Sync>;

/// Chooses the recovery line (one checkpoint `seq` per process, `None`
/// meaning "roll back to the initial state") given each process's live
/// checkpoints.
pub enum CutPicker {
    /// The paper's straight-cut recovery: every process rolls back to
    /// its `i`-th checkpoint, where `i` is the largest index at which
    /// **all** processes have a checkpoint. This is the recovery the
    /// application-driven analysis guarantees to be consistent.
    AlignedSeq,
    /// Every process rolls back to its own latest checkpoint. This is
    /// what coordinated protocols (SaS, C-L) guarantee to be consistent
    /// because their checkpoints form synchronized waves.
    LatestPerProcess,
    /// Custom selection (e.g. the maximal-consistent-line computation
    /// used by the uncoordinated baseline).
    Custom(PickerFn),
}

impl std::fmt::Debug for CutPicker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CutPicker::AlignedSeq => write!(f, "AlignedSeq"),
            CutPicker::LatestPerProcess => write!(f, "LatestPerProcess"),
            CutPicker::Custom(_) => write!(f, "Custom(..)"),
        }
    }
}

impl CutPicker {
    /// Applies the picker.
    pub fn pick(&self, view: &RecoveryView<'_>) -> Vec<Option<u64>> {
        let live = view.live;
        match self {
            CutPicker::AlignedSeq => {
                let depth = live.iter().map(|v| v.len() as u64).min().unwrap_or(0);
                if depth == 0 {
                    vec![None; live.len()]
                } else {
                    vec![Some(depth); live.len()]
                }
            }
            CutPicker::LatestPerProcess => live.iter().map(|v| v.last().map(|c| c.seq)).collect(),
            CutPicker::Custom(f) => {
                let picked = f(view);
                assert_eq!(picked.len(), live.len(), "picker returned wrong arity");
                picked
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VectorClock;
    use crate::trace::{CkptTrigger, Snapshot, StmtInstances};

    fn ckpt(proc: usize, seq: u64) -> CheckpointRecord {
        CheckpointRecord {
            proc,
            seq,
            stmt: None,
            instance: 0,
            label: None,
            trigger: CkptTrigger::AppStatement,
            start: SimTime::ZERO,
            durable_at: SimTime::ZERO,
            vc: VectorClock::new(2),
            step: seq,
            snapshot: Snapshot {
                pc: 0,
                vars: crate::backend::var_store([]),
                vc: VectorClock::new(2),
                ckpt_seq: seq,
                stmt_instances: StmtInstances::default(),
                step: seq,
            },
            rolled_back: false,
        }
    }

    /// Borrowed view of owned per-process checkpoint lists, as the
    /// engine builds at failure time.
    fn as_view(owned: &[Vec<CheckpointRecord>]) -> Vec<Vec<&CheckpointRecord>> {
        owned.iter().map(|v| v.iter().collect()).collect()
    }

    #[test]
    fn exponential_plan_is_deterministic_and_sorted() {
        let a = FailurePlan::exponential(4, 0.5, SimTime::from_secs(100), 42);
        let b = FailurePlan::exponential(4, 0.5, SimTime::from_secs(100), 42);
        assert_eq!(a.events(), b.events());
        assert!(a.events().windows(2).all(|w| w[0].0 <= w[1].0));
        let c = FailurePlan::exponential(4, 0.5, SimTime::from_secs(100), 43);
        assert_ne!(a.events(), c.events());
    }

    #[test]
    fn exponential_rate_roughly_matches() {
        // rate 1/s over 200s for 1 process: expect ~200 failures.
        let plan = FailurePlan::exponential(1, 1.0, SimTime::from_secs(200), 7);
        let n = plan.len() as f64;
        assert!((140.0..260.0).contains(&n), "{n}");
    }

    #[test]
    fn aligned_seq_uses_min_depth() {
        let live = vec![
            vec![ckpt(0, 1), ckpt(0, 2), ckpt(0, 3)],
            vec![ckpt(1, 1), ckpt(1, 2)],
        ];
        let live = as_view(&live);
        assert_eq!(
            CutPicker::AlignedSeq.pick(&RecoveryView {
                live: &live,
                messages: &[]
            }),
            vec![Some(2), Some(2)]
        );
    }

    #[test]
    fn aligned_seq_empty_means_initial() {
        let live = vec![vec![ckpt(0, 1)], vec![]];
        let live = as_view(&live);
        assert_eq!(
            CutPicker::AlignedSeq.pick(&RecoveryView {
                live: &live,
                messages: &[]
            }),
            vec![None, None]
        );
    }

    #[test]
    fn latest_per_process() {
        let live = vec![vec![ckpt(0, 1), ckpt(0, 2)], vec![]];
        let live = as_view(&live);
        assert_eq!(
            CutPicker::LatestPerProcess.pick(&RecoveryView {
                live: &live,
                messages: &[]
            }),
            vec![Some(2), None]
        );
    }

    #[test]
    fn custom_picker_invoked() {
        let picker = CutPicker::Custom(Box::new(|view| vec![None; view.live.len()]));
        let live = vec![vec![ckpt(0, 1)]];
        let live = as_view(&live);
        assert_eq!(
            picker.pick(&RecoveryView {
                live: &live,
                messages: &[]
            }),
            vec![None]
        );
    }

    #[test]
    fn explicit_plan_sorts() {
        let plan = FailurePlan::at(vec![(SimTime::from_secs(5), 1), (SimTime::from_secs(2), 0)]);
        assert_eq!(plan.events()[0].1, 0);
        assert_eq!(plan.len(), 2);
        assert!(!plan.is_empty());
        assert!(FailurePlan::none().is_empty());
    }
}
