//! Per-run simulator observability.
//!
//! [`SimObs`] is an explicit, opt-in collector threaded through the
//! engine ([`crate::run_observed`]): unlike the process-global registry
//! in `acfc-obs`, it is plain owned state scoped to one run, so
//! concurrent runs (the parameter sweeps, the Monte Carlo driver)
//! never share or contend. A run without a collector pays only a
//! never-taken `Option` branch per probe — the `NoHooks` hot path is
//! unchanged.
//!
//! Two collection levels:
//!
//! * **counters** ([`SimObs::counters`]) — scalar totals (events
//!   popped, run-ahead hits, deliveries) plus per-process time
//!   breakdowns and two histograms (event-queue depth, message
//!   latency).
//! * **timeline** ([`SimObs::timeline`]) — additionally keeps the
//!   per-process blocked and checkpoint-stall intervals needed to
//!   render a simulated-time Perfetto track per process
//!   ([`crate::perfetto::timeline_json`]).

use acfc_obs::LocalHist;

/// Per-process simulated-time totals (microseconds).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProcObs {
    /// Simulated time spent in `compute` statements.
    pub compute_us: u64,
    /// Simulated time blocked waiting in `recv`.
    pub blocked_us: u64,
    /// Simulated time stalled taking checkpoints (overhead `o` plus
    /// any protocol coordination stall).
    pub ckpt_us: u64,
}

/// A half-open simulated-time interval `[start_us, end_us)` on one
/// process's timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Owning process rank.
    pub proc: usize,
    /// Start, µs of simulated time.
    pub start_us: u64,
    /// End, µs of simulated time.
    pub end_us: u64,
}

/// Opt-in per-run collector. Construct with [`SimObs::counters`] or
/// [`SimObs::timeline`] and pass to [`crate::run_observed`].
#[derive(Debug, Default)]
pub struct SimObs {
    /// Whether to keep per-interval timeline data (blocked and
    /// checkpoint slices) in addition to the scalar totals.
    pub keep_timeline: bool,
    /// Events popped off the simulation queue.
    pub events_processed: u64,
    /// Times the engine kept executing inline instead of a queue
    /// round-trip (the run-ahead fast path).
    pub run_ahead_hits: u64,
    /// Messages delivered to an inbox.
    pub messages_delivered: u64,
    /// Distinct inbox channels (receiver, sender) materialised by the
    /// run. Channels are created lazily on first delivery, so for a
    /// sparse topology this stays near the communication graph's edge
    /// count rather than n² — the regression guard for the old eager
    /// `inbox[n][n]` allocation.
    pub inbox_channels: u64,
    /// Per-process simulated-time totals.
    pub per_proc: Vec<ProcObs>,
    /// Queue depth, systematically sampled at every 8th event pop
    /// (non-atomic: the collector is exclusively owned by one
    /// single-threaded run, so recording is plain integer arithmetic).
    /// Recording every pop costs ~2% of engine throughput; 1-in-8
    /// sampling keeps it out of the event budget, and the simulator is
    /// deterministic so the sampled distribution is reproducible run
    /// to run. The engine samples into its own histogram and *merges*
    /// it here at flush — the same buckets also land in
    /// [`Trace::queue_depth`](crate::trace::Trace::queue_depth), so the
    /// observed and post-hoc views agree exactly.
    pub queue_depth: LocalHist,
    /// Message latency (receive completion minus send), µs — the same
    /// definition as [`crate::stats::TraceStats::mean_latency_us`].
    pub msg_latency_us: LocalHist,
    /// Interval between consecutive checkpoint *starts* of the same
    /// process, µs — the online twin of
    /// [`crate::stats::TraceStats::mean_ckpt_interval_us`]. Recorded as
    /// checkpoints happen, so on a run with rollbacks it also counts
    /// checkpoints that are later rolled back (the post-hoc trace stats
    /// count live checkpoints only).
    pub ckpt_interval_us: LocalHist,
    /// Blocked-in-`recv` intervals (timeline mode only).
    pub blocked: Vec<Interval>,
    /// Checkpoint-stall intervals (timeline mode only).
    pub ckpts: Vec<Interval>,
    /// Start of each process's most recent checkpoint, for the
    /// interval histogram.
    last_ckpt_start: Vec<Option<u64>>,
}

impl SimObs {
    /// Scalar counters and histograms only.
    pub fn counters() -> SimObs {
        SimObs::default()
    }

    /// Counters plus the per-process interval data needed for the
    /// simulated-time Perfetto export.
    pub fn timeline() -> SimObs {
        SimObs {
            keep_timeline: true,
            ..SimObs::default()
        }
    }

    pub(crate) fn ensure_procs(&mut self, n: usize) {
        if self.per_proc.len() < n {
            self.per_proc.resize(n, ProcObs::default());
        }
        if self.last_ckpt_start.len() < n {
            self.last_ckpt_start.resize(n, None);
        }
    }

    pub(crate) fn on_blocked(&mut self, proc: usize, start_us: u64, end_us: u64) {
        self.per_proc[proc].blocked_us += end_us - start_us;
        if self.keep_timeline && end_us > start_us {
            self.blocked.push(Interval {
                proc,
                start_us,
                end_us,
            });
        }
    }

    pub(crate) fn on_ckpt_stall(&mut self, proc: usize, start_us: u64, end_us: u64) {
        self.per_proc[proc].ckpt_us += end_us - start_us;
        if let Some(prev) = self.last_ckpt_start[proc] {
            self.ckpt_interval_us.record(start_us.saturating_sub(prev));
        }
        self.last_ckpt_start[proc] = Some(start_us);
        if self.keep_timeline && end_us > start_us {
            self.ckpts.push(Interval {
                proc,
                start_us,
                end_us,
            });
        }
    }

    /// Mirrors the scalar totals into the process-global `acfc-obs`
    /// registry (no-op unless the `obs` feature is compiled in and the
    /// runtime flag is on), so `acfc report` shows simulator counters
    /// next to the analysis spans.
    pub fn publish(&self) {
        acfc_obs::count("sim/events_processed", self.events_processed);
        acfc_obs::count("sim/run_ahead_hits", self.run_ahead_hits);
        acfc_obs::count("sim/messages_delivered", self.messages_delivered);
        acfc_obs::count("sim/inbox_channels", self.inbox_channels);
        for t in &self.per_proc {
            acfc_obs::count("sim/compute_us", t.compute_us);
            acfc_obs::count("sim/blocked_us", t.blocked_us);
            acfc_obs::count("sim/ckpt_stall_us", t.ckpt_us);
        }
        acfc_obs::record("sim/queue_depth_max", self.queue_depth.snap().max);
        acfc_obs::record("sim/msg_latency_us_max", self.msg_latency_us.snap().max);
        acfc_obs::record("sim/ckpt_interval_us_max", self.ckpt_interval_us.snap().max);
    }
}
