//! Vector clocks.
//!
//! The paper's safety property (Definition 2.1) is stated in terms of
//! Lamport's happened-before relation. Vector clocks characterise it
//! exactly: for events `e`, `f` in a trace, `e → f` iff `VC(e) < VC(f)`
//! (componentwise ≤ with at least one strict). The simulator stamps
//! every send, receive, and checkpoint event with a vector clock, and the
//! consistency checker compares checkpoint stamps pairwise.

use std::cmp::Ordering;
use std::fmt;

/// A vector clock over `n` processes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct VectorClock(Vec<u64>);

impl VectorClock {
    /// The zero clock for `n` processes.
    pub fn new(n: usize) -> VectorClock {
        VectorClock(vec![0; n])
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` if the clock has no components.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Component for process `p`.
    pub fn get(&self, p: usize) -> u64 {
        self.0[p]
    }

    /// Ticks process `p`'s own component (call on every local event).
    pub fn tick(&mut self, p: usize) {
        self.0[p] += 1;
    }

    /// Merges in a received clock: componentwise max. (The receiver must
    /// also [`tick`](Self::tick) its own component.)
    pub fn merge(&mut self, other: &VectorClock) {
        assert_eq!(self.0.len(), other.0.len(), "clock size mismatch");
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(*b);
        }
    }

    /// Causal comparison:
    ///
    /// * `Some(Ordering::Less)` — `self` happened before `other`
    /// * `Some(Ordering::Greater)` — `other` happened before `self`
    /// * `Some(Ordering::Equal)` — identical stamps (same event)
    /// * `None` — concurrent
    pub fn causal_cmp(&self, other: &VectorClock) -> Option<Ordering> {
        assert_eq!(self.0.len(), other.0.len(), "clock size mismatch");
        let mut le = true;
        let mut ge = true;
        for (a, b) in self.0.iter().zip(&other.0) {
            if a < b {
                ge = false;
            }
            if a > b {
                le = false;
            }
        }
        match (le, ge) {
            (true, true) => Some(Ordering::Equal),
            (true, false) => Some(Ordering::Less),
            (false, true) => Some(Ordering::Greater),
            (false, false) => None,
        }
    }

    /// `true` iff `self` happened strictly before `other`.
    pub fn happened_before(&self, other: &VectorClock) -> bool {
        self.causal_cmp(other) == Some(Ordering::Less)
    }

    /// `true` iff neither stamp happened before the other.
    pub fn concurrent_with(&self, other: &VectorClock) -> bool {
        self.causal_cmp(other).is_none()
    }

    /// The raw components.
    pub fn components(&self) -> &[u64] {
        &self.0
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_clocks_are_equal() {
        let a = VectorClock::new(3);
        let b = VectorClock::new(3);
        assert_eq!(a.causal_cmp(&b), Some(Ordering::Equal));
    }

    #[test]
    fn tick_makes_strictly_later() {
        let a = VectorClock::new(2);
        let mut b = a.clone();
        b.tick(0);
        assert!(a.happened_before(&b));
        assert!(!b.happened_before(&a));
        assert_eq!(b.get(0), 1);
    }

    #[test]
    fn independent_ticks_are_concurrent() {
        let mut a = VectorClock::new(2);
        let mut b = VectorClock::new(2);
        a.tick(0);
        b.tick(1);
        assert!(a.concurrent_with(&b));
        assert!(b.concurrent_with(&a));
    }

    #[test]
    fn message_transfer_creates_order() {
        // p0: e1 (send). p1: merge + tick (recv) = e2. e1 -> e2.
        let mut p0 = VectorClock::new(2);
        p0.tick(0); // send event stamp
        let sent = p0.clone();
        let mut p1 = VectorClock::new(2);
        p1.merge(&sent);
        p1.tick(1); // recv event stamp
        assert!(sent.happened_before(&p1));
    }

    #[test]
    fn merge_is_componentwise_max() {
        let mut a = VectorClock::new(3);
        a.tick(0);
        a.tick(0);
        let mut b = VectorClock::new(3);
        b.tick(1);
        a.merge(&b);
        assert_eq!(a.components(), &[2, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn size_mismatch_panics() {
        let a = VectorClock::new(2);
        let b = VectorClock::new(3);
        let _ = a.causal_cmp(&b);
    }

    #[test]
    fn transitivity_spot_check() {
        let mut a = VectorClock::new(2);
        a.tick(0);
        let mut b = a.clone();
        b.tick(0);
        let mut c = b.clone();
        c.merge(&b);
        c.tick(1);
        assert!(a.happened_before(&b));
        assert!(b.happened_before(&c));
        assert!(a.happened_before(&c));
    }
}
