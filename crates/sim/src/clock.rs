//! Vector clocks.
//!
//! The paper's safety property (Definition 2.1) is stated in terms of
//! Lamport's happened-before relation. Vector clocks characterise it
//! exactly: for events `e`, `f` in a trace, `e → f` iff `VC(e) < VC(f)`
//! (componentwise ≤ with at least one strict). The simulator stamps
//! every send, receive, and checkpoint event with a vector clock, and the
//! consistency checker compares checkpoint stamps pairwise.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Component counts up to this stay inline (no heap allocation), so
/// cloning a clock into a message or checkpoint record is a plain
/// memcpy for every bench-sized process count.
const INLINE: usize = 8;

/// Clock storage: a fixed inline buffer for small process counts, a
/// `Vec` beyond that. Simulation traces stamp every send, receive, and
/// checkpoint with (several) clock clones, so keeping the common case
/// allocation-free is a measurable share of engine throughput.
#[derive(Clone)]
enum Repr {
    Small { len: u8, buf: [u64; INLINE] },
    Heap(Vec<u64>),
}

/// A vector clock over `n` processes.
#[derive(Clone)]
pub struct VectorClock(Repr);

impl VectorClock {
    /// The zero clock for `n` processes.
    pub fn new(n: usize) -> VectorClock {
        if n <= INLINE {
            VectorClock(Repr::Small {
                len: n as u8,
                buf: [0; INLINE],
            })
        } else {
            VectorClock(Repr::Heap(vec![0; n]))
        }
    }

    fn as_slice(&self) -> &[u64] {
        match &self.0 {
            Repr::Small { len, buf } => &buf[..*len as usize],
            Repr::Heap(v) => v,
        }
    }

    fn as_mut_slice(&mut self) -> &mut [u64] {
        match &mut self.0 {
            Repr::Small { len, buf } => &mut buf[..*len as usize],
            Repr::Heap(v) => v,
        }
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// `true` if the clock has no components.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Component for process `p`.
    pub fn get(&self, p: usize) -> u64 {
        self.as_slice()[p]
    }

    /// Ticks process `p`'s own component (call on every local event).
    pub fn tick(&mut self, p: usize) {
        self.as_mut_slice()[p] += 1;
    }

    /// Merges in a received clock: componentwise max. (The receiver must
    /// also [`tick`](Self::tick) its own component.)
    pub fn merge(&mut self, other: &VectorClock) {
        let b = other.as_slice();
        let a = self.as_mut_slice();
        assert_eq!(a.len(), b.len(), "clock size mismatch");
        for (a, b) in a.iter_mut().zip(b) {
            *a = (*a).max(*b);
        }
    }

    /// Causal comparison:
    ///
    /// * `Some(Ordering::Less)` — `self` happened before `other`
    /// * `Some(Ordering::Greater)` — `other` happened before `self`
    /// * `Some(Ordering::Equal)` — identical stamps (same event)
    /// * `None` — concurrent
    pub fn causal_cmp(&self, other: &VectorClock) -> Option<Ordering> {
        let (x, y) = (self.as_slice(), other.as_slice());
        assert_eq!(x.len(), y.len(), "clock size mismatch");
        let mut le = true;
        let mut ge = true;
        for (a, b) in x.iter().zip(y) {
            if a < b {
                ge = false;
            }
            if a > b {
                le = false;
            }
        }
        match (le, ge) {
            (true, true) => Some(Ordering::Equal),
            (true, false) => Some(Ordering::Less),
            (false, true) => Some(Ordering::Greater),
            (false, false) => None,
        }
    }

    /// `true` iff `self` happened strictly before `other`.
    pub fn happened_before(&self, other: &VectorClock) -> bool {
        self.causal_cmp(other) == Some(Ordering::Less)
    }

    /// `true` iff neither stamp happened before the other.
    pub fn concurrent_with(&self, other: &VectorClock) -> bool {
        self.causal_cmp(other).is_none()
    }

    /// The raw components.
    pub fn components(&self) -> &[u64] {
        self.as_slice()
    }
}

impl PartialEq for VectorClock {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for VectorClock {}

impl Hash for VectorClock {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("VectorClock")
            .field(&self.as_slice())
            .finish()
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, v) in self.as_slice().iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_clocks_are_equal() {
        let a = VectorClock::new(3);
        let b = VectorClock::new(3);
        assert_eq!(a.causal_cmp(&b), Some(Ordering::Equal));
    }

    #[test]
    fn tick_makes_strictly_later() {
        let a = VectorClock::new(2);
        let mut b = a.clone();
        b.tick(0);
        assert!(a.happened_before(&b));
        assert!(!b.happened_before(&a));
        assert_eq!(b.get(0), 1);
    }

    #[test]
    fn independent_ticks_are_concurrent() {
        let mut a = VectorClock::new(2);
        let mut b = VectorClock::new(2);
        a.tick(0);
        b.tick(1);
        assert!(a.concurrent_with(&b));
        assert!(b.concurrent_with(&a));
    }

    #[test]
    fn message_transfer_creates_order() {
        // p0: e1 (send). p1: merge + tick (recv) = e2. e1 -> e2.
        let mut p0 = VectorClock::new(2);
        p0.tick(0); // send event stamp
        let sent = p0.clone();
        let mut p1 = VectorClock::new(2);
        p1.merge(&sent);
        p1.tick(1); // recv event stamp
        assert!(sent.happened_before(&p1));
    }

    #[test]
    fn merge_is_componentwise_max() {
        let mut a = VectorClock::new(3);
        a.tick(0);
        a.tick(0);
        let mut b = VectorClock::new(3);
        b.tick(1);
        a.merge(&b);
        assert_eq!(a.components(), &[2, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn size_mismatch_panics() {
        let a = VectorClock::new(2);
        let b = VectorClock::new(3);
        let _ = a.causal_cmp(&b);
    }

    #[test]
    fn transitivity_spot_check() {
        let mut a = VectorClock::new(2);
        a.tick(0);
        let mut b = a.clone();
        b.tick(0);
        let mut c = b.clone();
        c.merge(&b);
        c.tick(1);
        assert!(a.happened_before(&b));
        assert!(b.happened_before(&c));
        assert!(a.happened_before(&c));
    }
}
