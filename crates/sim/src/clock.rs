//! Vector clocks.
//!
//! The paper's safety property (Definition 2.1) is stated in terms of
//! Lamport's happened-before relation. Vector clocks characterise it
//! exactly: for events `e`, `f` in a trace, `e → f` iff `VC(e) < VC(f)`
//! (componentwise ≤ with at least one strict). The simulator stamps
//! every send, receive, and checkpoint event with a vector clock, and the
//! consistency checker compares checkpoint stamps pairwise.
//!
//! # Storage
//!
//! Three representations share one logical type:
//!
//! * **inline** — up to [`INLINE`] components in a fixed buffer, so a
//!   clone into a record is a plain memcpy (every bench-sized n);
//! * **dense heap** — a `Vec<u64>` beyond that (the engine's working
//!   clocks at any n);
//! * **sparse** — an `Arc`-shared sorted list of the *nonzero*
//!   `(index, value)` entries, used by the engine's large-n delta-clock
//!   mode to stamp checkpoints in O(support) space instead of O(n).
//!   Neighbour-exchange workloads keep the support small (information
//!   travels one hop per iteration), so at n = 2048 a stamp is a few
//!   hundred bytes instead of 16 KiB.
//!
//! Comparison, equality, hashing, and display are representation-
//! independent: a sparse stamp equals the dense clock with the same
//! components. Sparse stamps are immutable — [`tick`](VectorClock::tick)
//! and merging *into* one panic; they are snapshots, not working clocks.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Component counts up to this stay inline (no heap allocation), so
/// cloning a clock into a message or checkpoint record is a plain
/// memcpy for every bench-sized process count.
const INLINE: usize = 8;

/// Clock storage; see the module docs for the three representations.
#[derive(Clone)]
enum Repr {
    Small { len: u8, buf: [u64; INLINE] },
    Heap(Vec<u64>),
    Sparse { n: u32, entries: Arc<[(u32, u64)]> },
}

/// A vector clock over `n` processes.
#[derive(Clone)]
pub struct VectorClock(Repr);

impl VectorClock {
    /// The zero clock for `n` processes.
    pub fn new(n: usize) -> VectorClock {
        if n <= INLINE {
            VectorClock(Repr::Small {
                len: n as u8,
                buf: [0; INLINE],
            })
        } else {
            VectorClock(Repr::Heap(vec![0; n]))
        }
    }

    /// A sparse clock stamp over `n` processes from its nonzero
    /// `(index, value)` entries. Entries must be sorted by index with
    /// indices `< n`; zero-valued entries are dropped (the sparse form
    /// is canonical: it stores exactly the nonzero components).
    ///
    /// # Panics
    ///
    /// Panics if entries are unsorted, duplicated, or out of range.
    pub fn from_entries(n: usize, entries: impl IntoIterator<Item = (u32, u64)>) -> VectorClock {
        let entries: Vec<(u32, u64)> = entries.into_iter().filter(|&(_, v)| v != 0).collect();
        assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "sparse clock entries must be sorted by index without duplicates"
        );
        assert!(
            entries.last().is_none_or(|&(i, _)| (i as usize) < n),
            "sparse clock entry index out of range"
        );
        VectorClock(Repr::Sparse {
            n: n as u32,
            entries: entries.into(),
        })
    }

    /// `true` for the immutable sparse-stamp representation.
    pub fn is_sparse(&self) -> bool {
        matches!(self.0, Repr::Sparse { .. })
    }

    fn dense_slice(&self) -> Option<&[u64]> {
        match &self.0 {
            Repr::Small { len, buf } => Some(&buf[..*len as usize]),
            Repr::Heap(v) => Some(v),
            Repr::Sparse { .. } => None,
        }
    }

    fn as_slice(&self) -> &[u64] {
        self.dense_slice()
            .expect("operation requires a dense clock, got a sparse stamp")
    }

    pub(crate) fn as_mut_slice(&mut self) -> &mut [u64] {
        match &mut self.0 {
            Repr::Small { len, buf } => &mut buf[..*len as usize],
            Repr::Heap(v) => v,
            Repr::Sparse { .. } => panic!("sparse clock stamps are immutable"),
        }
    }

    /// The nonzero `(index, value)` components in index order.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        // One of the two sides is always empty.
        let (dense, sparse): (&[u64], &[(u32, u64)]) = match &self.0 {
            Repr::Sparse { entries, .. } => (&[], entries),
            _ => (self.as_slice(), &[]),
        };
        dense
            .iter()
            .enumerate()
            .filter(|&(_, &v)| v != 0)
            .map(|(i, &v)| (i as u32, v))
            .chain(sparse.iter().copied())
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        match &self.0 {
            Repr::Small { len, .. } => *len as usize,
            Repr::Heap(v) => v.len(),
            Repr::Sparse { n, .. } => *n as usize,
        }
    }

    /// `true` if the clock has no components.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Component for process `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn get(&self, p: usize) -> u64 {
        match &self.0 {
            Repr::Sparse { n, entries } => {
                assert!(p < *n as usize, "component {p} out of range");
                entries
                    .binary_search_by_key(&(p as u32), |&(i, _)| i)
                    .map(|k| entries[k].1)
                    .unwrap_or(0)
            }
            _ => self.as_slice()[p],
        }
    }

    /// Ticks process `p`'s own component (call on every local event).
    ///
    /// # Panics
    ///
    /// Panics on a sparse stamp (stamps are immutable).
    pub fn tick(&mut self, p: usize) {
        self.as_mut_slice()[p] += 1;
    }

    /// Merges in a received clock: componentwise max. (The receiver must
    /// also [`tick`](Self::tick) its own component.) The merged-in clock
    /// may be sparse; `self` must be dense.
    ///
    /// # Panics
    ///
    /// Panics if `self` is a sparse stamp or the sizes differ.
    pub fn merge(&mut self, other: &VectorClock) {
        let a = self.as_mut_slice();
        match &other.0 {
            Repr::Sparse { n, entries } => {
                assert_eq!(a.len(), *n as usize, "clock size mismatch");
                for &(i, v) in entries.iter() {
                    let c = &mut a[i as usize];
                    *c = (*c).max(v);
                }
            }
            _ => {
                let b = other.as_slice();
                assert_eq!(a.len(), b.len(), "clock size mismatch");
                for (a, b) in a.iter_mut().zip(b) {
                    *a = (*a).max(*b);
                }
            }
        }
    }

    /// Causal comparison:
    ///
    /// * `Some(Ordering::Less)` — `self` happened before `other`
    /// * `Some(Ordering::Greater)` — `other` happened before `self`
    /// * `Some(Ordering::Equal)` — identical stamps (same event)
    /// * `None` — concurrent
    pub fn causal_cmp(&self, other: &VectorClock) -> Option<Ordering> {
        assert_eq!(self.len(), other.len(), "clock size mismatch");
        let (mut le, mut ge) = (true, true);
        if let (Some(x), Some(y)) = (self.dense_slice(), other.dense_slice()) {
            for (a, b) in x.iter().zip(y) {
                if a < b {
                    ge = false;
                }
                if a > b {
                    le = false;
                }
            }
        } else {
            // At least one side is sparse: a merged walk over the two
            // nonzero-entry sequences. Components absent from both are
            // equal (0 = 0) and cannot affect the flags.
            let mut xs = self.iter_nonzero().peekable();
            let mut ys = other.iter_nonzero().peekable();
            loop {
                let (a, b) = match (xs.peek().copied(), ys.peek().copied()) {
                    (None, None) => break,
                    (Some((_, a)), None) => {
                        xs.next();
                        (a, 0)
                    }
                    (None, Some((_, b))) => {
                        ys.next();
                        (0, b)
                    }
                    (Some((i, a)), Some((j, b))) => match i.cmp(&j) {
                        Ordering::Less => {
                            xs.next();
                            (a, 0)
                        }
                        Ordering::Greater => {
                            ys.next();
                            (0, b)
                        }
                        Ordering::Equal => {
                            xs.next();
                            ys.next();
                            (a, b)
                        }
                    },
                };
                if a < b {
                    ge = false;
                }
                if a > b {
                    le = false;
                }
            }
        }
        match (le, ge) {
            (true, true) => Some(Ordering::Equal),
            (true, false) => Some(Ordering::Less),
            (false, true) => Some(Ordering::Greater),
            (false, false) => None,
        }
    }

    /// `true` iff `self` happened strictly before `other`.
    pub fn happened_before(&self, other: &VectorClock) -> bool {
        self.causal_cmp(other) == Some(Ordering::Less)
    }

    /// `true` iff neither stamp happened before the other.
    pub fn concurrent_with(&self, other: &VectorClock) -> bool {
        self.causal_cmp(other).is_none()
    }

    /// The raw components.
    ///
    /// # Panics
    ///
    /// Panics on a sparse stamp (it has no contiguous component slice);
    /// use [`get`](Self::get) or [`iter_nonzero`](Self::iter_nonzero).
    pub fn components(&self) -> &[u64] {
        self.as_slice()
    }
}

impl PartialEq for VectorClock {
    fn eq(&self, other: &Self) -> bool {
        match (self.dense_slice(), other.dense_slice()) {
            (Some(a), Some(b)) => a == b,
            _ => self.len() == other.len() && self.iter_nonzero().eq(other.iter_nonzero()),
        }
    }
}
impl Eq for VectorClock {}

impl Hash for VectorClock {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Representation-independent: hash the full logical component
        // sequence (length-prefixed, like slice hashing), walking the
        // sparse entries against an implicit zero background.
        state.write_usize(self.len());
        match &self.0 {
            Repr::Sparse { n, entries } => {
                let mut next = entries.iter().peekable();
                for i in 0..*n {
                    let v = match next.peek() {
                        Some(&&(j, v)) if j == i => {
                            next.next();
                            v
                        }
                        _ => 0,
                    };
                    v.hash(state);
                }
            }
            _ => {
                for v in self.as_slice() {
                    v.hash(state);
                }
            }
        }
    }
}

impl fmt::Debug for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            Repr::Sparse { n, entries } => f
                .debug_struct("VectorClock")
                .field("n", n)
                .field("sparse", entries)
                .finish(),
            _ => f
                .debug_tuple("VectorClock")
                .field(&self.as_slice())
                .finish(),
        }
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        match &self.0 {
            Repr::Sparse { n, entries } => {
                let mut next = entries.iter().peekable();
                for i in 0..*n {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    match next.peek() {
                        Some(&&(j, v)) if j == i => {
                            next.next();
                            write!(f, "{v}")?;
                        }
                        _ => write!(f, "0")?,
                    }
                }
            }
            _ => {
                for (i, v) in self.as_slice().iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
            }
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_clocks_are_equal() {
        let a = VectorClock::new(3);
        let b = VectorClock::new(3);
        assert_eq!(a.causal_cmp(&b), Some(Ordering::Equal));
    }

    #[test]
    fn tick_makes_strictly_later() {
        let a = VectorClock::new(2);
        let mut b = a.clone();
        b.tick(0);
        assert!(a.happened_before(&b));
        assert!(!b.happened_before(&a));
        assert_eq!(b.get(0), 1);
    }

    #[test]
    fn independent_ticks_are_concurrent() {
        let mut a = VectorClock::new(2);
        let mut b = VectorClock::new(2);
        a.tick(0);
        b.tick(1);
        assert!(a.concurrent_with(&b));
        assert!(b.concurrent_with(&a));
    }

    #[test]
    fn message_transfer_creates_order() {
        // p0: e1 (send). p1: merge + tick (recv) = e2. e1 -> e2.
        let mut p0 = VectorClock::new(2);
        p0.tick(0); // send event stamp
        let sent = p0.clone();
        let mut p1 = VectorClock::new(2);
        p1.merge(&sent);
        p1.tick(1); // recv event stamp
        assert!(sent.happened_before(&p1));
    }

    #[test]
    fn merge_is_componentwise_max() {
        let mut a = VectorClock::new(3);
        a.tick(0);
        a.tick(0);
        let mut b = VectorClock::new(3);
        b.tick(1);
        a.merge(&b);
        assert_eq!(a.components(), &[2, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn size_mismatch_panics() {
        let a = VectorClock::new(2);
        let b = VectorClock::new(3);
        let _ = a.causal_cmp(&b);
    }

    #[test]
    fn transitivity_spot_check() {
        let mut a = VectorClock::new(2);
        a.tick(0);
        let mut b = a.clone();
        b.tick(0);
        let mut c = b.clone();
        c.merge(&b);
        c.tick(1);
        assert!(a.happened_before(&b));
        assert!(b.happened_before(&c));
        assert!(a.happened_before(&c));
    }

    /// Builds the dense twin of a sparse stamp.
    fn dense_of(n: usize, entries: &[(u32, u64)]) -> VectorClock {
        let mut d = VectorClock::new(n);
        for &(i, v) in entries {
            for _ in 0..v {
                d.tick(i as usize);
            }
        }
        d
    }

    #[test]
    fn sparse_equals_its_dense_twin() {
        let entries = [(1u32, 3u64), (7, 1), (40, 9)];
        let s = VectorClock::from_entries(64, entries);
        let d = dense_of(64, &entries);
        assert_eq!(s, d);
        assert_eq!(d, s);
        assert_eq!(s.causal_cmp(&d), Some(Ordering::Equal));
        assert_eq!(s.get(40), 9);
        assert_eq!(s.get(0), 0);
        assert_eq!(s.len(), 64);
        assert!(s.is_sparse() && !d.is_sparse());
    }

    #[test]
    fn sparse_causal_cmp_matches_dense() {
        type Entries = &'static [(u32, u64)];
        let n = 32;
        let cases: [(Entries, Entries); 4] = [
            (&[(0, 1)], &[(0, 2)]),                   // less
            (&[(0, 2), (5, 1)], &[(0, 2)]),           // greater
            (&[(0, 1)], &[(9, 1)]),                   // concurrent
            (&[(3, 4), (20, 2)], &[(3, 4), (20, 2)]), // equal
        ];
        for (ea, eb) in cases {
            let (sa, sb) = (
                VectorClock::from_entries(n, ea.iter().copied()),
                VectorClock::from_entries(n, eb.iter().copied()),
            );
            let (da, db) = (dense_of(n, ea), dense_of(n, eb));
            let want = da.causal_cmp(&db);
            assert_eq!(sa.causal_cmp(&sb), want, "{ea:?} vs {eb:?}");
            assert_eq!(sa.causal_cmp(&db), want, "sparse-dense {ea:?} vs {eb:?}");
            assert_eq!(da.causal_cmp(&sb), want, "dense-sparse {ea:?} vs {eb:?}");
        }
    }

    #[test]
    fn merging_sparse_into_dense_is_componentwise_max() {
        let mut d = dense_of(16, &[(0, 5), (3, 1)]);
        let s = VectorClock::from_entries(16, [(3u32, 4u64), (10, 2)]);
        d.merge(&s);
        assert_eq!(d.get(0), 5);
        assert_eq!(d.get(3), 4);
        assert_eq!(d.get(10), 2);
    }

    #[test]
    fn sparse_display_and_hash_match_dense() {
        use std::collections::hash_map::DefaultHasher;
        let entries = [(1u32, 2u64), (8, 7)];
        let s = VectorClock::from_entries(10, entries);
        let d = dense_of(10, &entries);
        assert_eq!(s.to_string(), d.to_string());
        let h = |c: &VectorClock| {
            let mut h = DefaultHasher::new();
            c.hash(&mut h);
            h.finish()
        };
        assert_eq!(h(&s), h(&d));
    }

    #[test]
    fn sparse_drops_zero_entries_and_iterates_nonzero() {
        let s = VectorClock::from_entries(12, [(2u32, 0u64), (5, 3)]);
        assert_eq!(s.iter_nonzero().collect::<Vec<_>>(), vec![(5, 3)]);
        assert_eq!(s, VectorClock::from_entries(12, [(5u32, 3u64)]));
    }

    #[test]
    #[should_panic(expected = "immutable")]
    fn ticking_a_sparse_stamp_panics() {
        let mut s = VectorClock::from_entries(12, [(5u32, 3u64)]);
        s.tick(0);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_sparse_entries_panic() {
        let _ = VectorClock::from_entries(12, [(5u32, 3u64), (2, 1)]);
    }
}
