//! Plain-text export of traces.
//!
//! The simulator's traces are the evidence base for every claim in this
//! reproduction; these exporters render them as TSV (for spreadsheets
//! and plotting) and as a space-time diagram description, so a run can
//! be inspected without writing Rust. No serialisation dependency is
//! used on purpose — the formats are trivial and stable.

use crate::trace::{CkptTrigger, Trace};
use std::fmt::Write;

/// Messages as TSV: one row per message with send/receive timing.
pub fn messages_tsv(trace: &Trace) -> String {
    let mut out = String::from(
        "id\tfrom\tto\tbits\tsent_s\tdelivered_s\treceived_s\tpiggyback\trolled_back\n",
    );
    for m in &trace.messages {
        let fmt_opt = |t: Option<crate::time::SimTime>| {
            t.map(|x| format!("{:.6}", x.as_secs_f64()))
                .unwrap_or_else(|| "-".into())
        };
        let _ = writeln!(
            out,
            "{}\t{}\t{}\t{}\t{:.6}\t{}\t{}\t{}\t{}",
            m.id.0,
            m.from,
            m.to,
            m.size_bits,
            m.sent_at.as_secs_f64(),
            fmt_opt(m.delivered_at),
            fmt_opt(m.recv_at),
            m.piggyback,
            m.rolled_back,
        );
    }
    out
}

fn trigger_tag(t: CkptTrigger) -> &'static str {
    match t {
        CkptTrigger::AppStatement => "app",
        CkptTrigger::Timer => "timer",
        CkptTrigger::Forced => "forced",
        CkptTrigger::Coordinated => "coordinated",
    }
}

/// Checkpoints as TSV: one row per checkpoint with its vector clock.
pub fn checkpoints_tsv(trace: &Trace) -> String {
    let mut out = String::from("proc\tseq\ttrigger\tlabel\tstart_s\tdurable_s\tvc\trolled_back\n");
    for c in &trace.checkpoints {
        let _ = writeln!(
            out,
            "{}\t{}\t{}\t{}\t{:.6}\t{:.6}\t{}\t{}",
            c.proc,
            c.seq,
            trigger_tag(c.trigger),
            c.label.as_deref().unwrap_or("-"),
            c.start.as_secs_f64(),
            c.durable_at.as_secs_f64(),
            c.vc,
            c.rolled_back,
        );
    }
    out
}

/// A compact, human-readable run summary.
pub fn summary(trace: &Trace) -> String {
    let m = &trace.metrics;
    let mut out = String::new();
    let _ = writeln!(out, "program:    {}", trace.program);
    let _ = writeln!(out, "processes:  {}", trace.nprocs);
    let _ = writeln!(out, "outcome:    {:?}", trace.outcome);
    let _ = writeln!(out, "makespan:   {:.6}s", trace.makespan_secs());
    let _ = writeln!(
        out,
        "messages:   {} app ({} bits), {} control ({} bits)",
        m.app_messages, m.app_bits, m.control_messages, m.control_bits
    );
    let _ = writeln!(
        out,
        "checkpoints: {} app, {} timer, {} forced, {} coordinated",
        m.app_checkpoints, m.timer_checkpoints, m.forced_checkpoints, m.coordinated_checkpoints
    );
    let _ = writeln!(
        out,
        "stall:      {:.3}ms checkpointing, {:.3}ms blocked in recv",
        m.ckpt_stall_us as f64 / 1000.0,
        m.recv_blocked_us as f64 / 1000.0
    );
    let _ = writeln!(
        out,
        "failures:   {} (recovery charged {:.3}ms)",
        m.failures,
        m.recovery_us as f64 / 1000.0
    );
    let _ = writeln!(out, "ckpts/proc: {:?}", trace.checkpoint_counts());
    out
}

/// A canonical, exhaustive rendering of a trace for golden-trace pins:
/// every message, checkpoint (with its restorable snapshot), failure,
/// and metric, in a layout-independent order. Two engines produce the
/// same golden text iff their observable simulations are bit-identical.
pub fn golden(trace: &Trace) -> String {
    let mut out = String::new();
    let opt_t = |t: Option<crate::time::SimTime>| match t {
        Some(x) => x.as_micros().to_string(),
        None => "-".into(),
    };
    let _ = writeln!(
        out,
        "program={} nprocs={} outcome={:?} finished_us={}",
        trace.program,
        trace.nprocs,
        trace.outcome,
        trace.finished_at.as_micros()
    );
    let _ = writeln!(
        out,
        "proc_end_us={:?}",
        trace
            .proc_end
            .iter()
            .map(|t| t.as_micros())
            .collect::<Vec<_>>()
    );
    let m = &trace.metrics;
    let _ = writeln!(
        out,
        "metrics app_messages={} app_bits={} control_messages={} control_bits={} \
         app_ckpts={} timer_ckpts={} forced_ckpts={} coordinated_ckpts={} \
         ckpt_stall_us={} recv_blocked_us={} failures={} recovery_us={}",
        m.app_messages,
        m.app_bits,
        m.control_messages,
        m.control_bits,
        m.app_checkpoints,
        m.timer_checkpoints,
        m.forced_checkpoints,
        m.coordinated_checkpoints,
        m.ckpt_stall_us,
        m.recv_blocked_us,
        m.failures,
        m.recovery_us
    );
    for msg in &trace.messages {
        let _ = writeln!(
            out,
            "msg id={} from={} to={} bits={} send_stmt={} sent_us={} send_vc={} send_step={} \
             piggyback={} delivered_us={} recv_us={} recv_vc={} recv_step={} recv_stmt={} \
             rolled_back={}",
            msg.id.0,
            msg.from,
            msg.to,
            msg.size_bits,
            msg.send_stmt,
            msg.sent_at.as_micros(),
            msg.send_vc,
            msg.send_step,
            msg.piggyback,
            opt_t(msg.delivered_at),
            opt_t(msg.recv_at),
            msg.recv_vc
                .as_ref()
                .map(|v| v.to_string())
                .unwrap_or_else(|| "-".into()),
            msg.recv_step
                .map(|s| s.to_string())
                .unwrap_or_else(|| "-".into()),
            msg.recv_stmt
                .map(|s| s.to_string())
                .unwrap_or_else(|| "-".into()),
            msg.rolled_back,
        );
    }
    for c in &trace.checkpoints {
        let snap_vars: Vec<String> = c
            .snapshot
            .vars_sorted()
            .into_iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        let snap_insts: Vec<String> = c
            .snapshot
            .stmt_instances_sorted()
            .into_iter()
            .map(|(k, v)| format!("{k}:{v}"))
            .collect();
        let _ = writeln!(
            out,
            "ckpt proc={} seq={} stmt={} instance={} label={} trigger={} start_us={} \
             durable_us={} vc={} step={} rolled_back={} snap_pc={} snap_seq={} snap_step={} \
             snap_vc={} snap_vars=[{}] snap_insts=[{}]",
            c.proc,
            c.seq,
            c.stmt.map(|s| s.to_string()).unwrap_or_else(|| "-".into()),
            c.instance,
            c.label.as_deref().unwrap_or("-"),
            trigger_tag(c.trigger),
            c.start.as_micros(),
            c.durable_at.as_micros(),
            c.vc,
            c.step,
            c.rolled_back,
            c.snapshot.pc,
            c.snapshot.ckpt_seq,
            c.snapshot.step,
            c.snapshot.vc,
            snap_vars.join(","),
            snap_insts.join(","),
        );
    }
    for f in &trace.failures {
        let _ = writeln!(
            out,
            "failure proc={} at_us={} restored_seq={:?} latest_seq={:?} lost_us={}",
            f.proc,
            f.at.as_micros(),
            f.restored_seq,
            f.latest_seq,
            f.lost_us
        );
    }
    out
}

/// A textual space-time diagram: per process, the ordered timeline of
/// its sends (`s→q`), receives (`r←p`), and checkpoints (`C#`), in the
/// style of the paper's execution figures (Figures 3, 5, 6).
pub fn spacetime(trace: &Trace) -> String {
    #[derive(PartialEq, PartialOrd)]
    struct Entry(f64, String);
    let mut lanes: Vec<Vec<Entry>> = (0..trace.nprocs).map(|_| Vec::new()).collect();
    for m in trace.live_messages() {
        lanes[m.from].push(Entry(m.sent_at.as_secs_f64(), format!("s→{}", m.to)));
        if let Some(at) = m.recv_at {
            lanes[m.to].push(Entry(at.as_secs_f64(), format!("r←{}", m.from)));
        }
    }
    for c in trace.checkpoints.iter().filter(|c| !c.rolled_back) {
        lanes[c.proc].push(Entry(c.start.as_secs_f64(), format!("C{}", c.seq)));
    }
    let mut out = String::new();
    for (p, lane) in lanes.iter_mut().enumerate() {
        lane.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
        let _ = write!(out, "P{p}:");
        for Entry(_, tag) in lane.iter() {
            let _ = write!(out, " {tag}");
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::compile;
    use crate::config::SimConfig;
    use crate::engine::run;
    use acfc_mpsl::programs;

    fn trace() -> Trace {
        run(&compile(&programs::pingpong(2)), &SimConfig::new(2))
    }

    #[test]
    fn messages_tsv_has_row_per_message() {
        let t = trace();
        let tsv = messages_tsv(&t);
        assert_eq!(tsv.lines().count(), t.messages.len() + 1);
        assert!(tsv.starts_with("id\tfrom\tto"));
        // Every live message was received: no dangling "-" receive.
        for line in tsv.lines().skip(1) {
            assert!(!line.contains("\t-\t-\t"), "{line}");
        }
    }

    #[test]
    fn checkpoints_tsv_has_row_per_checkpoint() {
        let t = trace();
        let tsv = checkpoints_tsv(&t);
        assert_eq!(tsv.lines().count(), t.checkpoints.len() + 1);
        assert!(tsv.contains("app"));
        assert!(tsv.contains('⟨'), "vector clocks rendered");
    }

    #[test]
    fn summary_mentions_the_essentials() {
        let t = trace();
        let s = summary(&t);
        assert!(s.contains("pingpong"));
        assert!(s.contains("Completed"));
        assert!(s.contains("ckpts/proc"));
    }

    #[test]
    fn spacetime_orders_each_lane() {
        let t = trace();
        let st = spacetime(&t);
        let lines: Vec<&str> = st.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("P0:"));
        // Rank 0 serves first: its first event is the send.
        assert!(lines[0].contains("s→1"));
        assert!(lines[1].contains("r←0"));
        // Checkpoints appear once per iteration.
        assert_eq!(lines[0].matches('C').count(), 2);
    }
}
