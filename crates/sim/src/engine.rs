//! The discrete-event simulation engine.
//!
//! Executes a compiled SPMD program on `n` simulated processes over
//! reliable FIFO channels (the paper's system model, §2): asynchronous
//! sends, *blocking* receives, deterministic per-process transition
//! functions, vector-clock stamping of every send/receive/checkpoint
//! event, optional failure injection with coordinated rollback, and
//! protocol customisation via [`Hooks`].
//!
//! Determinism: given the same program, configuration, hooks, and
//! failure plan, a run is bit-for-bit reproducible (the only randomness
//! is the seeded network jitter).

use crate::backend::{StateBackend, StateSnapshot};
use crate::bytecode::{Compiled, ExprRef, LowInstr, LowSrc, NO_LABEL};
use crate::clock::VectorClock;
use crate::config::SimConfig;
use crate::equeue::CalendarQueue;
use crate::failure::{CutPicker, FailurePlan};
use crate::hooks::{CoordinationCost, Hooks, NoHooks, RecvAction};
use crate::obs::SimObs;
use crate::time::SimTime;
use crate::trace::{
    CheckpointRecord, CkptTrigger, FailureRecord, MessageRecord, Metrics, MsgId, Outcome, Snapshot,
    StmtInstances, Trace, VarStore,
};
use acfc_mpsl::lowered::{eval_ops, Op, SlotEnv};
use acfc_mpsl::{EvalError, StmtId};
use acfc_obs::LocalHist;
use acfc_util::rng::Rng;
use std::sync::Arc;

/// Runs `compiled` under `config` with the application-driven behaviour
/// (no protocol hooks, no failures).
///
/// # Examples
///
/// ```
/// let p = acfc_mpsl::programs::jacobi(3);
/// let trace = acfc_sim::run(&acfc_sim::compile(&p), &acfc_sim::SimConfig::new(4));
/// assert!(trace.completed());
/// assert_eq!(trace.checkpoint_counts(), vec![3, 3, 3, 3]);
/// ```
pub fn run(compiled: &Compiled, config: &SimConfig) -> Trace {
    let mut hooks = NoHooks;
    run_with_hooks(compiled, config, &mut hooks)
}

/// Runs with protocol hooks and no failures.
pub fn run_with_hooks(compiled: &Compiled, config: &SimConfig, hooks: &mut dyn Hooks) -> Trace {
    Engine::new(
        compiled,
        config,
        hooks,
        FailurePlan::none(),
        CutPicker::AlignedSeq,
        None,
        None,
    )
    .run()
}

/// Runs with hooks, injected failures, and the given recovery-line
/// picker.
pub fn run_with_failures(
    compiled: &Compiled,
    config: &SimConfig,
    hooks: &mut dyn Hooks,
    plan: FailurePlan,
    picker: CutPicker,
) -> Trace {
    Engine::new(compiled, config, hooks, plan, picker, None, None).run()
}

/// Fully general run with a [`StateBackend`] attached: every checkpoint
/// the engine records is also committed to the backend, and rollbacks
/// discard from it, so the backend's committed set tracks the trace's
/// live checkpoints. The default entry points pass no backend and pay
/// one never-taken branch per checkpoint.
pub fn run_with_backend(
    compiled: &Compiled,
    config: &SimConfig,
    hooks: &mut dyn Hooks,
    plan: FailurePlan,
    picker: CutPicker,
    backend: &mut dyn StateBackend,
) -> Trace {
    Engine::new(compiled, config, hooks, plan, picker, None, Some(backend)).run()
}

/// Runs like [`run`] while filling the per-run [`SimObs`] collector
/// (counters, histograms, and — in timeline mode — the interval data
/// behind the simulated-time Perfetto export).
pub fn run_observed(compiled: &Compiled, config: &SimConfig, obs: &mut SimObs) -> Trace {
    let mut hooks = NoHooks;
    Engine::new(
        compiled,
        config,
        &mut hooks,
        FailurePlan::none(),
        CutPicker::AlignedSeq,
        Some(obs),
        None,
    )
    .run()
}

/// Fully general observed run: hooks, failure plan, recovery-line
/// picker, and a [`SimObs`] collector.
pub fn run_observed_with(
    compiled: &Compiled,
    config: &SimConfig,
    hooks: &mut dyn Hooks,
    plan: FailurePlan,
    picker: CutPicker,
    obs: &mut SimObs,
) -> Trace {
    Engine::new(compiled, config, hooks, plan, picker, Some(obs), None).run()
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Ev {
    /// Resume execution of a process (with its rollback epoch).
    Ready { p: usize, epoch: u64 },
    /// Network delivery of a message: an arena slot plus the slot
    /// generation observed at scheduling time. A stale generation means
    /// the flight was cancelled (rollback) and the event is ignored.
    Arrive { slot: u32, gen: u32 },
    /// Injected failure of a process.
    Fail { p: usize },
}

#[derive(Debug, Clone, PartialEq)]
enum PState {
    Ready,
    Blocked {
        src: Option<usize>,
        stmt: StmtId,
        since: SimTime,
    },
    Halted,
}

/// Per-process state in struct-of-arrays layout: one flat slab per
/// field, indexed by rank (and rank × slot for the variable tables), so
/// the stepping loop walks contiguous memory instead of chasing
/// per-process structs. At n = 2048 this is the difference between a
/// handful of big allocations and tens of thousands of little ones.
struct ProcTable {
    /// Variable slots per process (the compile-time slot table size).
    nslots: usize,
    /// Statement-instance counters per process.
    stmt_limit: usize,
    /// Variable values, `n × nslots`, row per process.
    vars: Vec<i64>,
    /// Whether each slot is bound (declared, or assigned at least
    /// once); reads of unbound slots are runtime errors, exactly as
    /// lookups in the map-based store were. `n × nslots`.
    bound: Vec<bool>,
    /// Shared copy of each process's `bound` row handed to snapshots;
    /// invalidated on the rare false→true flip so the common checkpoint
    /// clones a refcount instead of a vector.
    bound_arc: Vec<Option<Arc<[bool]>>>,
    pc: Vec<usize>,
    vc: Vec<VectorClock>,
    state: Vec<PState>,
    ckpt_seq: Vec<u64>,
    /// Instance counters indexed densely by statement id, `n × stmt_limit`.
    stmt_instances: Vec<u64>,
    step: Vec<u64>,
    executed: Vec<u64>,
    now: Vec<SimTime>,
}

impl ProcTable {
    fn vars_of(&self, p: usize) -> &[i64] {
        &self.vars[p * self.nslots..(p + 1) * self.nslots]
    }
    fn bound_of(&self, p: usize) -> &[bool] {
        &self.bound[p * self.nslots..(p + 1) * self.nslots]
    }
    fn insts_of(&self, p: usize) -> &[u64] {
        &self.stmt_instances[p * self.stmt_limit..(p + 1) * self.stmt_limit]
    }
    fn insts_of_mut(&mut self, p: usize) -> &mut [u64] {
        &mut self.stmt_instances[p * self.stmt_limit..(p + 1) * self.stmt_limit]
    }
}

/// Sentinel for "no slot / no link" in the message arena.
const NIL: u32 = u32::MAX;

/// One in-flight message: the record index it carries, a generation
/// that invalidates scheduled arrivals when the flight is cancelled,
/// and the intrusive link threading the receiver's per-channel FIFO.
struct FlightSlot {
    msg: u32,
    gen: u32,
    next: u32,
}

/// Generation-indexed slab of in-flight messages with a free list.
/// Replaces the old per-message `msg_token` vector (which grew with
/// *every* message ever sent) with storage proportional to the number
/// of messages actually in flight.
struct MsgArena {
    slots: Vec<FlightSlot>,
    free: Vec<u32>,
}

impl MsgArena {
    fn new() -> MsgArena {
        MsgArena {
            slots: Vec::with_capacity(1024),
            free: Vec::new(),
        }
    }

    fn alloc(&mut self, msg: usize) -> (u32, u32) {
        if let Some(s) = self.free.pop() {
            let slot = &mut self.slots[s as usize];
            slot.msg = msg as u32;
            slot.next = NIL;
            (s, slot.gen)
        } else {
            let s = self.slots.len() as u32;
            self.slots.push(FlightSlot {
                msg: msg as u32,
                gen: 0,
                next: NIL,
            });
            (s, 0)
        }
    }

    fn release(&mut self, s: u32) {
        let slot = &mut self.slots[s as usize];
        debug_assert!(slot.msg != NIL, "double free of flight slot");
        slot.msg = NIL;
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(s);
    }

    fn is_live(&self, s: u32, gen: u32) -> bool {
        let slot = &self.slots[s as usize];
        slot.gen == gen && slot.msg != NIL
    }
}

/// One receiver-side channel: delivered-but-unconsumed flight slots as
/// an intrusive FIFO through the arena. Channels are created lazily on
/// first delivery and kept sorted by sender rank, so a sparse topology
/// materialises its edge set instead of the old eager `inbox[n][n]`
/// matrix of `VecDeque`s (4M queues at n = 2048).
struct InChan {
    src: u32,
    head: u32,
    tail: u32,
}

/// One sender-side channel: FIFO delivery-time watermark plus the
/// delta-clock chain cursor. Created lazily per (sender, dest) pair and
/// kept sorted by dest — replaces the old `chan_last[n × n]` array.
struct OutChan {
    dest: u32,
    last: SimTime,
    /// Delta mode: which log epoch `log_pos` refers to; a stale epoch
    /// (after a rollback) forces a full-support resend.
    log_epoch: u64,
    /// Delta mode: position in the sender's modification log up to
    /// which this channel's receiver is already covered.
    log_pos: usize,
}

/// Large-n delta-clock machinery (engine side). Working clocks stay
/// dense; what scales as O(Δ) is the *transport*: each send carries
/// only the `(index, value)` pairs changed since the previous send on
/// that channel, and each checkpoint stamp is a sparse clock built from
/// the process's support set. Self-contained payloads (values, not
/// diffs) make redelivery after rollback trivially safe: merging is a
/// componentwise max, so replaying an old payload can never regress a
/// clock.
struct DeltaState {
    /// Per-process modification log: component indices increased by
    /// merges (own-component ticks are never logged — the own entry is
    /// included in every payload unconditionally).
    log: Vec<Vec<u32>>,
    /// Per-process log epoch, bumped on every rollback: out-channels
    /// holding a cursor into a previous epoch fall back to a full
    /// resend, which is always correct under max-merge.
    epoch: Vec<u64>,
    /// Per-process support: indices ever nonzero this epoch, plus the
    /// own index. Appended on 0→nonzero transitions; for the paper's
    /// neighbour-exchange workloads it grows one hop per iteration, so
    /// checkpoint stamps stay tiny even at n = 2048.
    support: Vec<Vec<u32>>,
    /// Pass-stamped scratch for payload dedup, length n.
    seen: Vec<u64>,
    seen_pass: u64,
    /// Per-message payloads, parallel to `Engine::messages`; kept for
    /// the lifetime of the run so rolled-back messages can be
    /// redelivered with their original payload.
    payloads: Vec<Box<[(u32, u64)]>>,
    scratch: Vec<(u32, u64)>,
}

struct Engine<'a> {
    compiled: &'a Compiled,
    config: &'a SimConfig,
    hooks: &'a mut dyn Hooks,
    picker: CutPicker,
    procs: ProcTable,
    epochs: Vec<u64>,
    /// Pending events keyed by `(time_us, seq)`. Keys are unique (the
    /// seq tiebreak), so the calendar queue pops exactly the order the
    /// old sorted deque (or a binary heap on `Reverse(key)`) would —
    /// see `crate::equeue` for the differential tests pinning this.
    queue: CalendarQueue<Ev>,
    heap_seq: u64,
    /// In-flight message slots (send → consume), generation-indexed.
    arena: MsgArena,
    /// Receiver-side channels, lazily created, sorted by sender rank.
    inbox: Vec<Vec<InChan>>,
    /// Sender-side channels, lazily created, sorted by dest rank.
    out: Vec<Vec<OutChan>>,
    /// Lazily materialised inbox channels, for the allocation
    /// regression guard (flushed to [`SimObs::inbox_channels`]).
    inbox_channels: u64,
    /// Delta-clock state; `None` in dense mode.
    delta: Option<DeltaState>,
    messages: Vec<MessageRecord>,
    checkpoints: Vec<CheckpointRecord>,
    failures: Vec<FailureRecord>,
    metrics: Metrics,
    rng: Rng,
    outcome: Option<Outcome>,
    max_time: SimTime,
    inline_budget: u32,
    /// Parameter values by slot, shared by all processes (parameters
    /// are rank-independent); `None` = referenced but never bound.
    params: Vec<Option<i64>>,
    /// Scratch stack reused by every expression evaluation.
    eval_stack: Vec<i64>,
    /// Snapshot of [`Hooks::uses_timers`]; when `false` the
    /// per-instruction timer poll is elided.
    use_timer_hook: bool,
    /// Snapshot of [`Hooks::passive`]; when `true` the per-message and
    /// per-checkpoint hook dispatch is skipped.
    passive_hooks: bool,
    /// Opt-in per-run observability collector; `None` (the default
    /// entry points) costs one never-taken branch per probe.
    obs: Option<&'a mut SimObs>,
    /// Opt-in durable state backend: committed on every checkpoint,
    /// discarded from on rollback; `None` (the default entry points)
    /// costs one never-taken branch per checkpoint.
    backend: Option<&'a mut dyn StateBackend>,
    /// Events popped off the queue — counted unconditionally (one
    /// plain add beats an `Option` branch in the hot loop) and copied
    /// into [`SimObs`] when a collector is attached.
    events_processed: u64,
    /// Run-ahead fast-path hits, same unconditional scheme.
    run_ahead_hits: u64,
    /// Per-process simulated compute µs, same unconditional scheme.
    compute_us: Vec<u64>,
    /// Event-queue depth, systematically sampled at every 8th pop —
    /// engine-owned and unconditional (a `&7` test plus one bucket add
    /// on the sampled pop), so the resulting histogram reaches the
    /// [`Trace`] on every run and is *merged* (not re-recorded) into
    /// [`SimObs`] at flush: the observed and post-hoc views agree
    /// bucket-for-bucket by construction.
    queue_depth: LocalHist,
}

const INLINE_BUDGET: u32 = 256;

impl<'a> Engine<'a> {
    fn new(
        compiled: &'a Compiled,
        config: &'a SimConfig,
        hooks: &'a mut dyn Hooks,
        plan: FailurePlan,
        picker: CutPicker,
        mut obs: Option<&'a mut SimObs>,
        backend: Option<&'a mut dyn StateBackend>,
    ) -> Engine<'a> {
        let n = config.nprocs;
        assert!(n >= 1, "need at least one process");
        if let Some(o) = obs.as_deref_mut() {
            o.ensure_procs(n);
        }
        // Parameter slots: program defaults, then config overrides
        // (later overrides win, as map insertion order did).
        let mut params: Vec<Option<i64>> = vec![None; compiled.param_names.len()];
        let slot_of = |name: &str| compiled.param_names.iter().position(|p| p == name);
        for (k, v) in &compiled.params {
            if let Some(s) = slot_of(k) {
                params[s] = Some(*v);
            }
        }
        for (k, v) in &config.param_overrides {
            if let Some(s) = slot_of(k) {
                params[s] = Some(*v);
            }
        }
        // Declared variables occupy the leading slots and start bound
        // (initialised to 0); undeclared names bind on first assign.
        let nslots = compiled.var_names.len();
        let declared = compiled.vars.len();
        let stmt_limit = compiled.stmt_limit as usize;
        let mut bound = vec![false; n * nslots];
        for p in 0..n {
            bound[p * nslots..p * nslots + declared].fill(true);
        }
        let procs = ProcTable {
            nslots,
            stmt_limit,
            vars: vec![0; n * nslots],
            bound,
            bound_arc: vec![None; n],
            pc: vec![0; n],
            vc: (0..n).map(|_| VectorClock::new(n)).collect(),
            state: vec![PState::Ready; n],
            ckpt_seq: vec![0; n],
            stmt_instances: vec![0; n * stmt_limit],
            step: vec![0; n],
            executed: vec![0; n],
            now: vec![SimTime::ZERO; n],
        };
        let delta = config.clock_mode.is_delta(n).then(|| DeltaState {
            log: vec![Vec::new(); n],
            epoch: vec![0; n],
            support: (0..n).map(|p| vec![p as u32]).collect(),
            seen: vec![0; n],
            seen_pass: 0,
            payloads: Vec::with_capacity((n * 16).max(384)),
            scratch: Vec::new(),
        });
        let use_timer_hook = hooks.uses_timers();
        let passive_hooks = hooks.passive();
        let mut engine = Engine {
            compiled,
            config,
            hooks,
            picker,
            procs,
            epochs: vec![0; n],
            queue: CalendarQueue::new(),
            heap_seq: 0,
            arena: MsgArena::new(),
            inbox: (0..n).map(|_| Vec::new()).collect(),
            out: (0..n).map(|_| Vec::new()).collect(),
            inbox_channels: 0,
            delta,
            // Records embed inline vector clocks, so Vec doubling
            // re-copies them wholesale; start large enough that
            // typical runs never regrow (profiling showed realloc
            // memcpy as the single largest engine cost otherwise),
            // scaling with n for the large-n workloads.
            messages: Vec::with_capacity((n * 16).max(384)),
            checkpoints: Vec::with_capacity((n * 8).max(192)),
            failures: Vec::new(),
            metrics: Metrics::default(),
            rng: Rng::seed_from_u64(config.seed),
            outcome: None,
            max_time: SimTime::ZERO,
            inline_budget: INLINE_BUDGET,
            params,
            eval_stack: Vec::new(),
            use_timer_hook,
            passive_hooks,
            obs,
            backend,
            events_processed: 0,
            run_ahead_hits: 0,
            compute_us: vec![0; n],
            queue_depth: LocalHist::new(),
        };
        for p in 0..n {
            engine.push(SimTime::ZERO, Ev::Ready { p, epoch: 0 });
        }
        for &(t, p) in plan.events() {
            engine.push(t, Ev::Fail { p });
        }
        engine
    }

    fn push(&mut self, t: SimTime, ev: Ev) {
        self.heap_seq += 1;
        self.queue.push(t.as_micros(), self.heap_seq, ev);
    }

    fn note_time(&mut self, t: SimTime) {
        if t > self.max_time {
            self.max_time = t;
        }
    }

    fn run(mut self) -> Trace {
        // One span per run, not per event: the pop loop is the ~60M
        // events/s hot path and must stay probe-free.
        let _span = acfc_obs::span("sim/event_loop");
        while let Some((t_us, _, ev)) = self.queue.pop() {
            if self.outcome.is_some() {
                break;
            }
            let t = SimTime(t_us);
            self.note_time(t);
            self.events_processed += 1;
            if self.events_processed & 7 == 0 {
                self.queue_depth.record(self.queue.len() as u64);
            }
            match ev {
                Ev::Ready { p, epoch } => {
                    if epoch == self.epochs[p] && self.procs.state[p] == PState::Ready {
                        self.execute(p, t);
                    }
                }
                Ev::Arrive { slot, gen } => {
                    // A live slot has not been consumed, and cancelled
                    // flights (rollback) bumped the generation; each
                    // generation schedules exactly one arrival, so a
                    // matching live slot is always undelivered.
                    if self.arena.is_live(slot, gen) {
                        self.deliver(slot, t);
                    }
                }
                Ev::Fail { p } => self.handle_failure(p, t),
            }
        }
        let outcome = self.outcome.take().unwrap_or_else(|| {
            let blocked: Vec<usize> = self
                .procs
                .state
                .iter()
                .enumerate()
                .filter(|(_, q)| !matches!(q, PState::Halted))
                .map(|(i, _)| i)
                .collect();
            if blocked.is_empty() {
                Outcome::Completed
            } else {
                Outcome::Deadlock(blocked)
            }
        });
        self.metrics.instructions = self.procs.executed.iter().sum();
        if let Some(o) = self.obs.as_deref_mut() {
            o.events_processed += self.events_processed;
            o.run_ahead_hits += self.run_ahead_hits;
            o.inbox_channels += self.inbox_channels;
            o.queue_depth.merge(&self.queue_depth);
            for (p, &us) in self.compute_us.iter().enumerate() {
                o.per_proc[p].compute_us += us;
            }
        }
        Trace {
            nprocs: self.config.nprocs,
            program: self.compiled.name.clone(),
            messages: self.messages,
            checkpoints: self.checkpoints,
            failures: self.failures,
            proc_end: self.procs.now.clone(),
            finished_at: self.max_time,
            metrics: self.metrics,
            queue_depth: self.queue_depth.snap(),
            outcome,
        }
    }

    fn runtime_error(&mut self, p: usize, e: impl std::fmt::Display) {
        self.outcome = Some(Outcome::RuntimeError(p, e.to_string()));
    }

    fn eval_ref(&mut self, p: usize, r: ExprRef) -> Result<i64, EvalError> {
        let compiled = self.compiled;
        let vars = self.procs.vars_of(p);
        let bound = self.procs.bound_of(p);
        // The two dominant shapes — a folded constant and a plain
        // variable read — need none (or almost none) of the SlotEnv,
        // so resolve them before paying for its construction.
        match r.ops(&compiled.ops) {
            [Op::Const(v)] => return Ok(*v),
            [Op::Load(s)] => {
                let s = *s as usize;
                return if bound[s] {
                    Ok(vars[s])
                } else {
                    Err(EvalError::UnboundVar(compiled.var_names[s].clone()))
                };
            }
            _ => {}
        }
        let env = SlotEnv {
            rank: p as i64,
            nprocs: self.config.nprocs as i64,
            vars,
            bound,
            var_names: &compiled.var_names,
            params: &self.params,
            param_names: &compiled.param_names,
            inputs: &self.config.inputs,
        };
        eval_ops(r.ops(&compiled.ops), &env, &mut self.eval_stack)
    }

    fn resolve_rank(&mut self, p: usize, expr: ExprRef) -> Option<usize> {
        match self.eval_ref(p, expr) {
            Ok(v) if v >= 0 && (v as usize) < self.config.nprocs => Some(v as usize),
            Ok(v) => {
                self.runtime_error(p, format!("rank expression evaluated to {v}, out of range"));
                None
            }
            Err(e) => {
                self.runtime_error(p, e);
                None
            }
        }
    }

    /// Executes instructions of `p` starting at simulated time `t` until
    /// the process blocks, halts, yields after a time-consuming
    /// instruction, or exhausts the inline budget.
    fn execute(&mut self, p: usize, t: SimTime) {
        let mut now = t;
        let mut inline = 0u32;
        // Hoisted loop invariants: `&mut self` calls in the body defeat
        // the optimizer's own load hoisting.
        let max_steps = self.config.max_steps_per_proc;
        let instr_us = self.config.cost.instr_overhead_us;
        loop {
            if self.outcome.is_some() {
                return;
            }
            if self.procs.executed[p] >= max_steps {
                self.outcome = Some(Outcome::StepLimit(p));
                return;
            }
            if self.use_timer_hook && self.hooks.timer_checkpoint_due(p, now) {
                // Timer checkpoints count toward the step budget so a
                // protocol whose stall exceeds its interval (and would
                // otherwise checkpoint forever without executing a
                // single instruction) trips the runaway guard instead
                // of looping.
                self.procs.executed[p] += 1;
                let trigger = self.hooks.timer_trigger(p);
                self.take_checkpoint(p, None, None, trigger, &mut now);
                if self.can_run_ahead(now) {
                    self.mark_progress(p, now);
                    continue;
                }
                self.yield_ready(p, now);
                return;
            }
            inline += 1;
            if inline > self.inline_budget {
                self.yield_ready(p, now);
                return;
            }
            let pc = self.procs.pc[p];
            let instr = self.compiled.lowered[pc];
            self.procs.executed[p] += 1;
            match instr {
                LowInstr::Compute { cost } => {
                    let c = match self.eval_ref(p, cost) {
                        Ok(v) if v >= 0 => v as u64,
                        Ok(v) => {
                            self.runtime_error(p, format!("negative compute cost {v}"));
                            return;
                        }
                        Err(e) => {
                            self.runtime_error(p, e);
                            return;
                        }
                    };
                    now +=
                        c * self.config.cost.compute_unit_us + self.config.cost.instr_overhead_us;
                    self.compute_us[p] += c * self.config.cost.compute_unit_us;
                    self.procs.pc[p] = pc + 1;
                    if self.can_run_ahead(now) {
                        self.mark_progress(p, now);
                        continue;
                    }
                    self.yield_ready(p, now);
                    return;
                }
                LowInstr::Assign { var, value } => {
                    match self.eval_ref(p, value) {
                        Ok(v) => {
                            let at = p * self.procs.nslots + var as usize;
                            self.procs.vars[at] = v;
                            if !self.procs.bound[at] {
                                self.procs.bound[at] = true;
                                self.procs.bound_arc[p] = None;
                            }
                        }
                        Err(e) => {
                            self.runtime_error(p, e);
                            return;
                        }
                    }
                    now += instr_us;
                    self.procs.pc[p] = pc + 1;
                }
                LowInstr::Jump { target } => {
                    now += instr_us;
                    self.procs.pc[p] = target as usize;
                }
                LowInstr::JumpIfFalse { cond, target } => {
                    let v = match self.eval_ref(p, cond) {
                        Ok(v) => v,
                        Err(e) => {
                            self.runtime_error(p, e);
                            return;
                        }
                    };
                    now += instr_us;
                    self.procs.pc[p] = if v == 0 { target as usize } else { pc + 1 };
                }
                LowInstr::Send {
                    dest,
                    size_bits,
                    stmt,
                } => {
                    let Some(to) = self.resolve_rank(p, dest) else {
                        return;
                    };
                    let bits = match self.eval_ref(p, size_bits) {
                        Ok(v) if v >= 0 => v as u64,
                        Ok(v) => {
                            self.runtime_error(p, format!("negative message size {v}"));
                            return;
                        }
                        Err(e) => {
                            self.runtime_error(p, e);
                            return;
                        }
                    };
                    self.do_send(p, to, bits, stmt, now);
                    now += self.config.cost.send_overhead_us;
                    self.procs.pc[p] = pc + 1;
                }
                LowInstr::Recv { src, stmt } => {
                    let want: Option<usize> = match src {
                        LowSrc::Any => None,
                        LowSrc::Rank(e) => {
                            let Some(s) = self.resolve_rank(p, e) else {
                                return;
                            };
                            Some(s)
                        }
                    };
                    if let Some(m) = self.pick_inbox(p, want) {
                        now = self.consume_message(p, m, stmt, now);
                        self.procs.pc[p] = pc + 1;
                        if self.outcome.is_some() {
                            return;
                        }
                    } else {
                        self.procs.state[p] = PState::Blocked {
                            src: want,
                            stmt,
                            since: now,
                        };
                        self.procs.now[p] = now;
                        self.note_time(now);
                        return;
                    }
                }
                LowInstr::Checkpoint { stmt, label } => {
                    self.procs.pc[p] = pc + 1;
                    if self.passive_hooks || self.hooks.take_app_checkpoint(p, now) {
                        // Label strings are materialised only when a
                        // checkpoint is actually recorded.
                        let label = if label == NO_LABEL {
                            None
                        } else {
                            Some(self.compiled.labels[label as usize].clone())
                        };
                        self.take_checkpoint(
                            p,
                            Some(stmt),
                            label,
                            CkptTrigger::AppStatement,
                            &mut now,
                        );
                        if self.can_run_ahead(now) {
                            self.mark_progress(p, now);
                            continue;
                        }
                        self.yield_ready(p, now);
                        return;
                    } else {
                        now += instr_us;
                    }
                }
                LowInstr::Halt => {
                    self.procs.state[p] = PState::Halted;
                    self.procs.now[p] = now;
                    self.note_time(now);
                    return;
                }
            }
        }
    }

    /// `true` when no queued event is due at or before `now`: the
    /// running process may then keep executing inline, because the
    /// yield-then-pop round trip through the heap would pop the very
    /// `Ready` event it pushed (ties break by push order, so only a
    /// strictly later heap top guarantees this). Skipping the round
    /// trip leaves the popped event sequence — and hence the trace —
    /// unchanged.
    fn can_run_ahead(&mut self, now: SimTime) -> bool {
        // `&mut`: peeking the calendar queue advances its day cursor.
        match self.queue.peek_key() {
            None => true,
            Some((t, _)) => t > now.as_micros(),
        }
    }

    /// The bookkeeping of [`Self::yield_ready`] without the heap round
    /// trip, for the [`Self::can_run_ahead`] fast path. Every caller is
    /// a run-ahead hit, so the counter lives here.
    fn mark_progress(&mut self, p: usize, now: SimTime) {
        self.procs.now[p] = now;
        self.note_time(now);
        self.run_ahead_hits += 1;
    }

    fn yield_ready(&mut self, p: usize, now: SimTime) {
        self.procs.now[p] = now;
        self.note_time(now);
        let epoch = self.epochs[p];
        self.push(now, Ev::Ready { p, epoch });
    }

    /// Index of the sender-side channel `from → to`, creating it on
    /// first use (a fresh channel starts with an out-of-date log epoch,
    /// so delta mode's first send on it is a full-support payload).
    fn out_chan(&mut self, from: usize, to: usize) -> usize {
        let chans = &mut self.out[from];
        match chans.binary_search_by_key(&(to as u32), |c| c.dest) {
            Ok(i) => i,
            Err(i) => {
                chans.insert(
                    i,
                    OutChan {
                        dest: to as u32,
                        last: SimTime::ZERO,
                        log_epoch: u64::MAX,
                        log_pos: 0,
                    },
                );
                i
            }
        }
    }

    fn do_send(&mut self, p: usize, to: usize, bits: u64, stmt: StmtId, now: SimTime) {
        self.procs.vc[p].tick(p);
        self.procs.step[p] += 1;
        let piggyback = if self.passive_hooks {
            self.procs.ckpt_seq[p]
        } else {
            self.hooks.piggyback(p, to, self.procs.ckpt_seq[p], now)
        };
        let jitter = if self.config.net.jitter_us > 0 {
            self.rng.gen_u64_inclusive(self.config.net.jitter_us)
        } else {
            0
        };
        let delay = self.config.net.base_delay_us(bits) + jitter;
        let sent_at = now + self.config.cost.send_overhead_us;
        let ci = self.out_chan(p, to);
        let chan = &mut self.out[p][ci];
        let deliver_at = SimTime((sent_at.as_micros() + delay).max(chan.last.as_micros()));
        chan.last = deliver_at;
        let id = MsgId(self.messages.len() as u64);
        let idx = self.messages.len();
        let send_vc = if let Some(d) = self.delta.as_mut() {
            // O(Δ) piggyback: the payload covers every component that
            // changed since the previous send on this channel (plus the
            // own component, unconditionally). The record itself gets
            // an empty placeholder — at large n, embedding full stamps
            // in every record is exactly what delta mode exists to
            // avoid.
            let cursor = (chan.log_epoch == d.epoch[p]).then_some(chan.log_pos);
            chan.log_epoch = d.epoch[p];
            chan.log_pos = d.log[p].len();
            let payload = collect_payload(d, &self.procs.vc[p], p, cursor);
            d.payloads.push(payload);
            VectorClock::new(0)
        } else {
            self.procs.vc[p].clone()
        };
        self.messages.push(MessageRecord {
            id,
            from: p,
            to,
            size_bits: bits,
            send_stmt: stmt,
            sent_at,
            send_vc,
            send_step: self.procs.step[p],
            piggyback,
            delivered_at: None,
            recv_at: None,
            recv_vc: None,
            recv_step: None,
            recv_stmt: None,
            rolled_back: false,
        });
        self.metrics.app_messages += 1;
        self.metrics.app_bits += bits;
        let (slot, gen) = self.arena.alloc(idx);
        self.push(deliver_at, Ev::Arrive { slot, gen });
    }

    /// Picks the next consumable message for `p` from `want` (None =
    /// any). FIFO per channel; for `any`, earliest delivery wins
    /// (ties: lowest sender rank — the channel list is sorted by
    /// sender, and only a strictly earlier delivery displaces a
    /// candidate). Frees the flight slot.
    fn pick_inbox(&mut self, p: usize, want: Option<usize>) -> Option<usize> {
        match want {
            Some(src) => {
                let ci = self.inbox[p]
                    .binary_search_by_key(&(src as u32), |c| c.src)
                    .ok()?;
                self.pop_chan(p, ci)
            }
            None => {
                let mut best: Option<(SimTime, usize)> = None;
                for (ci, c) in self.inbox[p].iter().enumerate() {
                    if c.head != NIL {
                        let m = self.arena.slots[c.head as usize].msg as usize;
                        let at = self.messages[m].delivered_at.expect("inboxed => delivered");
                        if best.is_none_or(|(bt, _)| at < bt) {
                            best = Some((at, ci));
                        }
                    }
                }
                best.and_then(|(_, ci)| self.pop_chan(p, ci))
            }
        }
    }

    /// Pops the head flight of inbox channel `ci` of process `p`,
    /// releasing its slot and returning the message index.
    fn pop_chan(&mut self, p: usize, ci: usize) -> Option<usize> {
        let c = &mut self.inbox[p][ci];
        if c.head == NIL {
            return None;
        }
        let s = c.head;
        let slot = &self.arena.slots[s as usize];
        let m = slot.msg as usize;
        c.head = slot.next;
        if c.head == NIL {
            c.tail = NIL;
        }
        self.arena.release(s);
        Some(m)
    }

    /// Completes a receive of message `m` by process `p` at local time
    /// `at`; returns the time after the receive (and any forced
    /// checkpoint).
    fn consume_message(&mut self, p: usize, m: usize, stmt: StmtId, at: SimTime) -> SimTime {
        let mut now = at;
        let piggyback = self.messages[m].piggyback;
        // A protocol may need several forced checkpoints to catch up
        // (e.g. index-based CIC when the sender is multiple indices
        // ahead); re-consult the hooks with the updated sequence number
        // until they are satisfied, with a generous runaway guard.
        let mut guard = 0u32;
        while !self.passive_hooks {
            let own_seq = self.procs.ckpt_seq[p];
            if self.hooks.on_recv(p, piggyback, own_seq, now) != RecvAction::ForceCheckpointFirst {
                break;
            }
            self.take_checkpoint(p, None, None, CkptTrigger::Forced, &mut now);
            guard += 1;
            assert!(
                guard < 100_000,
                "hooks demanded forced checkpoints without converging"
            );
        }
        if let Some(d) = self.delta.as_mut() {
            // Merge the O(Δ) payload: componentwise max over the
            // carried entries, logging merge-increases for downstream
            // sends and extending the support on 0→nonzero flips.
            let DeltaState {
                payloads,
                log,
                support,
                ..
            } = d;
            let slice = self.procs.vc[p].as_mut_slice();
            for &(i, v) in payloads[m].iter() {
                let c = &mut slice[i as usize];
                if v > *c {
                    if *c == 0 {
                        support[p].push(i);
                    }
                    *c = v;
                    log[p].push(i);
                }
            }
        } else {
            // Disjoint borrows: the sender's clock is read from the
            // message records while the receiver's is updated in place
            // — no clone.
            self.procs.vc[p].merge(&self.messages[m].send_vc);
        }
        self.procs.vc[p].tick(p);
        self.procs.step[p] += 1;
        now += self.config.cost.instr_overhead_us;
        let rec = &mut self.messages[m];
        rec.recv_at = Some(now);
        // Delta mode leaves per-message receive stamps out of the
        // record (they would be O(n) each); checkpoint stamps carry the
        // causality the consistency checker needs.
        rec.recv_vc = self.delta.is_none().then(|| self.procs.vc[p].clone());
        rec.recv_step = Some(self.procs.step[p]);
        rec.recv_stmt = Some(stmt);
        let sent_at = rec.sent_at;
        if let Some(o) = self.obs.as_deref_mut() {
            o.msg_latency_us
                .record(now.saturating_sub(sent_at).as_micros());
        }
        now
    }

    fn take_checkpoint(
        &mut self,
        p: usize,
        stmt: Option<StmtId>,
        label: Option<Arc<str>>,
        trigger: CkptTrigger,
        now: &mut SimTime,
    ) {
        let coord = if self.passive_hooks {
            CoordinationCost::default()
        } else {
            self.hooks.coordination_cost(p, *now)
        };
        let compiled = self.compiled;
        self.procs.vc[p].tick(p);
        self.procs.step[p] += 1;
        self.procs.ckpt_seq[p] += 1;
        let instance = match stmt {
            Some(sid) => {
                let e = &mut self.procs.insts_of_mut(p)[sid.0 as usize];
                *e += 1;
                *e
            }
            None => 0,
        };
        let start = *now;
        let stall = self.config.cost.ckpt_overhead_us + coord.stall_us;
        // Dense mode embeds the working clock; delta mode builds one
        // sparse stamp from the support set — O(support), not O(n) —
        // shared (refcounted) between the record and the snapshot.
        let vc_stamp = if let Some(d) = self.delta.as_mut() {
            let slice = self.procs.vc[p].components();
            d.scratch.clear();
            for &i in &d.support[p] {
                let v = slice[i as usize];
                if v > 0 {
                    d.scratch.push((i, v));
                }
            }
            d.scratch.sort_unstable_by_key(|&(i, _)| i);
            VectorClock::from_entries(slice.len(), d.scratch.iter().copied())
        } else {
            self.procs.vc[p].clone()
        };
        let base = p * self.procs.nslots;
        let bound_row = &self.procs.bound[base..base + self.procs.nslots];
        let snapshot = Snapshot {
            pc: self.procs.pc[p],
            vars: VarStore {
                names: compiled.var_names.clone(),
                values: self.procs.vars[base..base + self.procs.nslots].to_vec(),
                bound: self.procs.bound_arc[p]
                    .get_or_insert_with(|| bound_row.into())
                    .clone(),
            },
            vc: vc_stamp.clone(),
            ckpt_seq: self.procs.ckpt_seq[p],
            stmt_instances: StmtInstances(self.procs.insts_of(p).to_vec()),
            step: self.procs.step[p],
        };
        self.checkpoints.push(CheckpointRecord {
            proc: p,
            seq: self.procs.ckpt_seq[p],
            stmt,
            instance,
            label,
            trigger,
            start,
            durable_at: start + self.config.cost.ckpt_latency_us + coord.stall_us,
            vc: vc_stamp,
            step: self.procs.step[p],
            snapshot,
            rolled_back: false,
        });
        if let Some(b) = self.backend.as_deref_mut() {
            let rec = self.checkpoints.last().expect("just pushed");
            if let Err(e) = b.commit(&StateSnapshot::from_record(rec)) {
                self.outcome
                    .get_or_insert(Outcome::RuntimeError(p, format!("backend commit: {e}")));
            }
        }
        *now = start + stall;
        if let Some(o) = self.obs.as_deref_mut() {
            o.on_ckpt_stall(p, start.as_micros(), now.as_micros());
        }
        self.metrics.ckpt_stall_us += stall;
        self.metrics.coord_stall_us += coord.stall_us;
        self.metrics.control_messages += coord.control_messages;
        self.metrics.control_bits += coord.control_bits;
        match trigger {
            CkptTrigger::AppStatement => self.metrics.app_checkpoints += 1,
            CkptTrigger::Timer => self.metrics.timer_checkpoints += 1,
            CkptTrigger::Forced => self.metrics.forced_checkpoints += 1,
            CkptTrigger::Coordinated => self.metrics.coordinated_checkpoints += 1,
        }
        if !self.passive_hooks {
            self.hooks.checkpoint_taken(p, trigger, *now);
        }
    }

    /// Index of the receiver-side channel `to ← src`, creating it on
    /// first delivery (the lazy replacement for the old n² inbox).
    fn in_chan(&mut self, to: usize, src: usize) -> usize {
        let chans = &mut self.inbox[to];
        match chans.binary_search_by_key(&(src as u32), |c| c.src) {
            Ok(i) => i,
            Err(i) => {
                chans.insert(
                    i,
                    InChan {
                        src: src as u32,
                        head: NIL,
                        tail: NIL,
                    },
                );
                self.inbox_channels += 1;
                i
            }
        }
    }

    fn deliver(&mut self, slot: u32, t: SimTime) {
        let m = self.arena.slots[slot as usize].msg as usize;
        self.messages[m].delivered_at = Some(t);
        let to = self.messages[m].to;
        let from = self.messages[m].from;
        let ci = self.in_chan(to, from);
        // Append to the channel's intrusive FIFO.
        self.arena.slots[slot as usize].next = NIL;
        let c = &mut self.inbox[to][ci];
        if c.tail == NIL {
            c.head = slot;
            c.tail = slot;
        } else {
            let prev = c.tail;
            c.tail = slot;
            self.arena.slots[prev as usize].next = slot;
        }
        if let Some(o) = self.obs.as_deref_mut() {
            o.messages_delivered += 1;
        }
        // Unblock a matching waiter.
        let (want, stmt, since) = match self.procs.state[to] {
            PState::Blocked { src, stmt, since } => (src, stmt, since),
            _ => return,
        };
        if want.is_some() && want != Some(from) {
            return;
        }
        let m2 = self
            .pick_inbox(to, want)
            .expect("arrival just enqueued a candidate");
        let at = SimTime(t.as_micros().max(since.as_micros()));
        self.metrics.recv_blocked_us += at - since;
        if let Some(o) = self.obs.as_deref_mut() {
            o.on_blocked(to, since.as_micros(), at.as_micros());
        }
        self.procs.state[to] = PState::Ready;
        let done = self.consume_message(to, m2, stmt, at);
        if self.outcome.is_some() {
            return;
        }
        self.procs.pc[to] += 1;
        if self.can_run_ahead(done) {
            self.mark_progress(to, done);
            self.execute(to, done);
        } else {
            self.yield_ready(to, done);
        }
    }

    fn handle_failure(&mut self, p: usize, t: SimTime) {
        let _span = acfc_obs::span("sim/recovery");
        // A failure of an already-halted process (or after global
        // completion) is ignored.
        if matches!(self.procs.state[p], PState::Halted)
            && self.procs.state.iter().all(|q| matches!(q, PState::Halted))
        {
            return;
        }
        self.metrics.failures += 1;
        let nprocs = self.config.nprocs;
        // The recovery view borrows the checkpoint records in place —
        // no per-failure cloning of snapshots.
        let mut live: Vec<Vec<&CheckpointRecord>> = vec![Vec::new(); nprocs];
        for c in &self.checkpoints {
            if !c.rolled_back {
                live[c.proc].push(c);
            }
        }
        let view = crate::failure::RecoveryView {
            live: &live,
            messages: &self.messages,
        };
        let picked = self.picker.pick(&view);
        let latest_seq: Vec<u64> = live
            .iter()
            .map(|v| v.last().map(|c| c.seq).unwrap_or(0))
            .collect();
        drop(live);
        // Cut positions (per-process step numbers) and the restored
        // checkpoints, kept as indices so the records can be mutated
        // (rollback marking) before the restore reads them back.
        let mut cut_step = vec![0u64; nprocs];
        let mut restored: Vec<Option<usize>> = vec![None; nprocs];
        for (i, c) in self.checkpoints.iter().enumerate() {
            if !c.rolled_back && picked[c.proc] == Some(c.seq) {
                cut_step[c.proc] = c.snapshot.step;
                restored[c.proc] = Some(i);
            }
        }
        for q in 0..nprocs {
            assert!(
                picked[q].is_none() || restored[q].is_some(),
                "picker chose missing seq {:?} for proc {q}",
                picked[q]
            );
        }
        // Lost work accounting.
        let mut lost_us = 0u64;
        #[allow(clippy::needless_range_loop)]
        for q in 0..nprocs {
            let back_to = restored[q]
                .map(|i| self.checkpoints[i].start)
                .unwrap_or(SimTime::ZERO);
            lost_us += self.procs.now[q].saturating_sub(back_to).as_micros();
        }
        // Mark rolled-back records.
        for c in &mut self.checkpoints {
            if !c.rolled_back && c.step > cut_step[c.proc] {
                c.rolled_back = true;
            }
        }
        // The backend's committed set tracks the live checkpoints.
        if let Some(b) = self.backend.as_deref_mut() {
            for (q, p) in picked.iter().enumerate() {
                if let Err(e) = b.discard_after(q, p.unwrap_or(0)) {
                    self.outcome
                        .get_or_insert(Outcome::RuntimeError(q, format!("backend discard: {e}")));
                }
            }
        }
        let resume = t + self.config.cost.recovery_us;
        self.metrics.recovery_us += self.config.cost.recovery_us * self.config.nprocs as u64;
        let mut redeliveries: Vec<(usize, SimTime)> = Vec::new();
        for (i, m) in self.messages.iter_mut().enumerate() {
            if m.rolled_back {
                continue;
            }
            if m.send_step > cut_step[m.from] {
                // The send is undone.
                m.rolled_back = true;
                continue;
            }
            let received_before_cut = m.recv_step.is_some_and(|rs| rs <= cut_step[m.to]);
            if !received_before_cut {
                // In transit at the cut: will be re-delivered.
                m.delivered_at = None;
                m.recv_at = None;
                m.recv_vc = None;
                m.recv_step = None;
                m.recv_stmt = None;
                redeliveries.push((i, resume));
            }
        }
        // Clear channel state: every live flight slot is cancelled
        // (bumping its generation, which invalidates any scheduled
        // arrival), inbox FIFOs are unlinked, and the sender-side
        // delivery watermarks reset. The channel entries themselves are
        // kept — the topology survives the rollback.
        for s in 0..self.arena.slots.len() {
            if self.arena.slots[s].msg != NIL {
                self.arena.release(s as u32);
            }
        }
        for chans in &mut self.inbox {
            for c in chans.iter_mut() {
                c.head = NIL;
                c.tail = NIL;
            }
        }
        for chans in &mut self.out {
            for c in chans.iter_mut() {
                c.last = SimTime::ZERO;
            }
        }
        // Re-schedule in-flight deliveries (fresh jitter, FIFO per
        // channel preserved by delivery-time monotonicity below).
        redeliveries.sort_by_key(|&(i, _)| (self.messages[i].from, self.messages[i].send_step));
        for (i, at) in redeliveries {
            let m = &self.messages[i];
            let (from, to, bits) = (m.from, m.to, m.size_bits);
            let jitter = if self.config.net.jitter_us > 0 {
                self.rng.gen_u64_inclusive(self.config.net.jitter_us)
            } else {
                0
            };
            let ci = self.out_chan(from, to);
            let chan = &mut self.out[from][ci];
            let deliver_at = SimTime(
                (at.as_micros() + self.config.net.base_delay_us(bits) + jitter)
                    .max(chan.last.as_micros()),
            );
            chan.last = deliver_at;
            let (slot, gen) = self.arena.alloc(i);
            self.push(deliver_at, Ev::Arrive { slot, gen });
        }
        // Restore processes in place, reusing each process's existing
        // rows instead of allocating fresh ones. In delta mode the
        // sparse snapshot stamp is materialised back into the dense
        // working clock, the modification log epoch is bumped (so every
        // out-channel falls back to a full-support resend — always
        // correct under max-merge), and the support set is rebuilt from
        // the stamp.
        #[allow(clippy::needless_range_loop)]
        for q in 0..nprocs {
            self.epochs[q] += 1;
            let base = q * self.procs.nslots;
            let nslots = self.procs.nslots;
            match restored[q] {
                Some(i) => {
                    let snap = &self.checkpoints[i].snapshot;
                    self.procs.pc[q] = snap.pc;
                    self.procs.vars[base..base + nslots].copy_from_slice(&snap.vars.values);
                    self.procs.bound[base..base + nslots].copy_from_slice(&snap.vars.bound);
                    self.procs.bound_arc[q] = Some(snap.vars.bound.clone());
                    if snap.vc.is_sparse() {
                        let slice = self.procs.vc[q].as_mut_slice();
                        slice.fill(0);
                        for (i, v) in snap.vc.iter_nonzero() {
                            slice[i as usize] = v;
                        }
                    } else {
                        self.procs.vc[q].clone_from(&snap.vc);
                    }
                    self.procs.ckpt_seq[q] = snap.ckpt_seq;
                    self.procs
                        .insts_of_mut(q)
                        .copy_from_slice(&snap.stmt_instances.0);
                    self.procs.step[q] = snap.step;
                    if let Some(d) = self.delta.as_mut() {
                        let snap = &self.checkpoints[i].snapshot;
                        d.support[q].clear();
                        d.support[q].extend(snap.vc.iter_nonzero().map(|(i, _)| i));
                        // The own component is strictly positive at any
                        // checkpoint (the checkpoint event ticked it),
                        // so it is always among the nonzero entries.
                        debug_assert!(d.support[q].contains(&(q as u32)));
                    }
                }
                None => {
                    self.procs.pc[q] = 0;
                    // As with the map-based store, values reset to 0
                    // but binding state is untouched.
                    self.procs.vars[base..base + nslots].fill(0);
                    self.procs.vc[q] = VectorClock::new(nprocs);
                    self.procs.ckpt_seq[q] = 0;
                    self.procs.insts_of_mut(q).fill(0);
                    self.procs.step[q] = 0;
                    if let Some(d) = self.delta.as_mut() {
                        d.support[q].clear();
                        d.support[q].push(q as u32);
                    }
                }
            }
            if let Some(d) = self.delta.as_mut() {
                d.log[q].clear();
                d.epoch[q] += 1;
            }
            self.procs.state[q] = PState::Ready;
            self.procs.now[q] = resume;
            let epoch = self.epochs[q];
            self.push(resume, Ev::Ready { p: q, epoch });
        }
        self.failures.push(FailureRecord {
            proc: p,
            at: t,
            restored_seq: picked,
            latest_seq,
            lost_us,
        });
        self.note_time(resume);
    }
}

/// Builds a delta payload for a send by process `p`: the components
/// changed since the channel's log cursor (`Some(pos)`), deduplicated
/// via the pass-stamped scratch array, plus the own component
/// unconditionally. A `None` cursor (fresh channel, or a cursor from a
/// pre-rollback log epoch) — or a log suffix longer than the clock —
/// falls back to the full support set, which is always a superset of
/// any delta and therefore always correct under max-merge.
fn collect_payload(
    d: &mut DeltaState,
    vc: &VectorClock,
    p: usize,
    cursor: Option<usize>,
) -> Box<[(u32, u64)]> {
    let slice = vc.components();
    d.scratch.clear();
    let full = match cursor {
        None => true,
        Some(pos) => d.log[p].len() - pos > slice.len(),
    };
    if full {
        for &i in &d.support[p] {
            let v = slice[i as usize];
            if v > 0 {
                d.scratch.push((i, v));
            }
        }
    } else {
        let pos = cursor.expect("non-full implies a cursor");
        d.seen_pass += 1;
        let pass = d.seen_pass;
        d.seen[p] = pass;
        d.scratch.push((p as u32, slice[p]));
        for &i in &d.log[p][pos..] {
            if d.seen[i as usize] != pass {
                d.seen[i as usize] = pass;
                d.scratch.push((i, slice[i as usize]));
            }
        }
    }
    d.scratch.sort_unstable_by_key(|&(i, _)| i);
    d.scratch.as_slice().into()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::compile;
    use acfc_mpsl::{parse, programs};

    fn quick(src: &str, n: usize) -> Trace {
        run(&compile(&parse(src).unwrap()), &SimConfig::new(n))
    }

    #[test]
    fn empty_program_completes() {
        let t = quick("program t; compute 1;", 2);
        assert!(t.completed());
        assert_eq!(t.metrics.app_messages, 0);
    }

    #[test]
    fn single_message_delivered_in_order() {
        let t = quick(
            "program t; if rank == 0 { send to 1 size 1000; } else { if rank == 1 { recv from 0; } }",
            2,
        );
        assert!(t.completed());
        assert_eq!(t.messages.len(), 1);
        let m = &t.messages[0];
        assert!(m.is_received());
        assert!(m.recv_at.unwrap() > m.sent_at);
        assert!(m.send_vc.happened_before(m.recv_vc.as_ref().unwrap()));
    }

    #[test]
    fn fifo_order_preserved_per_channel() {
        let t = quick(
            "program t; var i;
             if rank == 0 {
               for i in 0..5 { send to 1 size 10000; }
             } else {
               if rank == 1 { for i in 0..5 { recv from 0; } }
             }",
            2,
        );
        assert!(t.completed());
        let mut recvs: Vec<(SimTime, u64)> = t
            .messages
            .iter()
            .map(|m| (m.recv_at.unwrap(), m.send_step))
            .collect();
        recvs.sort();
        let steps: Vec<u64> = recvs.iter().map(|&(_, s)| s).collect();
        let mut sorted = steps.clone();
        sorted.sort();
        assert_eq!(steps, sorted, "receives out of send order");
    }

    #[test]
    fn blocking_recv_waits_for_sender() {
        let t = quick(
            "program t;
             if rank == 0 { compute 100; send to 1 size 8; } else {
               if rank == 1 { recv from 0; } }",
            2,
        );
        assert!(t.completed());
        assert!(t.metrics.recv_blocked_us > 0);
    }

    #[test]
    fn unmatched_recv_deadlocks() {
        let t = quick("program t; if rank == 0 { recv from 1; }", 2);
        assert_eq!(t.outcome, Outcome::Deadlock(vec![0]));
    }

    #[test]
    fn runtime_error_on_bad_rank() {
        let t = quick("program t; send to 99;", 2);
        assert!(matches!(t.outcome, Outcome::RuntimeError(_, _)));
    }

    #[test]
    fn step_limit_stops_infinite_loop() {
        let mut cfg = SimConfig::new(1);
        cfg.max_steps_per_proc = 1000;
        let t = run(
            &compile(&parse("program t; while 1 { compute 0; }").unwrap()),
            &cfg,
        );
        assert!(matches!(t.outcome, Outcome::StepLimit(0)));
    }

    #[test]
    fn jacobi_runs_and_checkpoints() {
        let t = run(&compile(&programs::jacobi(4)), &SimConfig::new(4));
        assert!(t.completed(), "{:?}", t.outcome);
        assert_eq!(t.checkpoint_counts(), vec![4, 4, 4, 4]);
        assert_eq!(t.metrics.app_checkpoints, 16);
        // 2 sends per proc per iteration.
        assert_eq!(t.metrics.app_messages, 4 * 4 * 2);
        assert_eq!(t.aligned_depth(), 4);
        assert!(t.straight_cut(4).is_some());
        assert!(t.straight_cut(5).is_none());
    }

    #[test]
    fn all_stock_programs_complete() {
        for p in programs::all_stock() {
            // fig6 requires even nprocs; use 4 everywhere.
            let t = run(&compile(&p), &SimConfig::new(4).with_inputs(vec![3, 7]));
            assert!(t.completed(), "{}: {:?}", p.name, t.outcome);
        }
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let p = programs::jacobi_odd_even(3);
        let c = compile(&p);
        let t1 = run(&c, &SimConfig::new(4).with_seed(9));
        let t2 = run(&c, &SimConfig::new(4).with_seed(9));
        assert_eq!(t1.finished_at, t2.finished_at);
        assert_eq!(t1.messages.len(), t2.messages.len());
        for (a, b) in t1.messages.iter().zip(&t2.messages) {
            assert_eq!(a.sent_at, b.sent_at);
            assert_eq!(a.recv_at, b.recv_at);
        }
    }

    #[test]
    fn different_seed_changes_timing() {
        let p = programs::jacobi(3);
        let c = compile(&p);
        let t1 = run(&c, &SimConfig::new(4).with_seed(1));
        let t2 = run(&c, &SimConfig::new(4).with_seed(2));
        // Jitter differs; makespan almost surely differs.
        assert_ne!(t1.finished_at, t2.finished_at);
    }

    #[test]
    fn vector_clocks_order_checkpoints_causally() {
        let t = run(&compile(&programs::pingpong_skewed(2)), &SimConfig::new(2));
        assert!(t.completed());
        // Rank 0 checkpoints before its send; rank 1 after its recv:
        // same-iteration checkpoints must be causally ordered.
        let c0 = t.live_checkpoints(0);
        let c1 = t.live_checkpoints(1);
        assert!(c0[0].vc.happened_before(&c1[0].vc));
    }

    #[test]
    fn recv_any_consumes_everything() {
        let t = quick(
            "program t;
             if rank == 0 { recv from any; recv from any; } else { send to 0 size 64; }",
            3,
        );
        assert!(t.completed());
        assert!(t.messages.iter().all(|m| m.is_received()));
    }

    #[test]
    fn failure_rolls_back_and_completes() {
        let p = programs::jacobi(5);
        let c = compile(&p);
        let cfg = SimConfig::new(2);
        // Fail rank 0 mid-run.
        let plan = FailurePlan::at(vec![(SimTime::from_millis(200), 0)]);
        let mut hooks = NoHooks;
        let t = run_with_failures(&c, &cfg, &mut hooks, plan, CutPicker::AlignedSeq);
        assert!(t.completed(), "{:?}", t.outcome);
        assert_eq!(t.metrics.failures, 1);
        assert_eq!(t.failures.len(), 1);
        // Final live state: every process finished all 5 checkpoints.
        assert_eq!(t.checkpoint_counts(), vec![5, 5]);
        // Some checkpoints were rolled back or re-executed.
        let failure_free = run(&c, &cfg);
        assert!(t.finished_at > failure_free.finished_at);
    }

    #[test]
    fn failure_before_any_checkpoint_restarts_from_scratch() {
        let p = programs::jacobi(2);
        let c = compile(&p);
        let cfg = SimConfig::new(2);
        let plan = FailurePlan::at(vec![(SimTime::from_micros(100), 1)]);
        let mut hooks = NoHooks;
        let t = run_with_failures(&c, &cfg, &mut hooks, plan, CutPicker::AlignedSeq);
        assert!(t.completed(), "{:?}", t.outcome);
        assert_eq!(t.failures[0].restored_seq, vec![None, None]);
        assert_eq!(t.checkpoint_counts(), vec![2, 2]);
    }

    #[test]
    fn repeated_failures_still_complete() {
        let p = programs::ring(4, 256);
        let c = compile(&p);
        let cfg = SimConfig::new(3);
        // ring(4) with 25 ms sweeps finishes in ~100 ms failure-free;
        // early, closely spaced failures all land inside the
        // (rollback-extended) run.
        let plan = FailurePlan::at(vec![
            (SimTime::from_millis(30), 0),
            (SimTime::from_millis(60), 1),
            (SimTime::from_millis(90), 2),
        ]);
        let mut hooks = NoHooks;
        let t = run_with_failures(&c, &cfg, &mut hooks, plan, CutPicker::AlignedSeq);
        assert!(t.completed(), "{:?}", t.outcome);
        assert_eq!(t.metrics.failures, 3);
        assert_eq!(t.checkpoint_counts(), vec![4, 4, 4]);
    }

    #[test]
    fn inbox_channels_track_topology_not_n_squared() {
        use crate::obs::SimObs;
        // jacobi on a ring: each process receives from exactly two
        // neighbours, so 8 procs materialise 16 inbox channels — not
        // the 64 the old eager n×n matrix allocated.
        let c = compile(&programs::jacobi(4));
        let mut obs = SimObs::counters();
        let t = run_observed(&c, &SimConfig::new(8), &mut obs);
        assert!(t.completed());
        assert_eq!(obs.inbox_channels, 16);
    }

    #[test]
    fn delta_mode_matches_dense_semantics_small_n() {
        use crate::config::ClockMode;
        for prog in [programs::jacobi(5), programs::jacobi_odd_even(4)] {
            let c = compile(&prog);
            let dense = run(&c, &SimConfig::new(4).with_clock_mode(ClockMode::Dense));
            let delta = run(&c, &SimConfig::new(4).with_clock_mode(ClockMode::Delta));
            assert_eq!(dense.finished_at, delta.finished_at);
            assert_eq!(dense.checkpoints.len(), delta.checkpoints.len());
            for (a, b) in dense.checkpoints.iter().zip(&delta.checkpoints) {
                assert_eq!(a.vc, b.vc, "{}: checkpoint stamp diverged", prog.name);
                assert!(b.vc.is_sparse());
                assert_eq!(a.step, b.step);
            }
        }
    }

    #[test]
    fn delta_mode_survives_rollback_with_equal_stamps() {
        use crate::config::ClockMode;
        let c = compile(&programs::jacobi(5));
        let plan = || FailurePlan::at(vec![(SimTime::from_millis(60), 0)]);
        let mut h1 = NoHooks;
        let mut h2 = NoHooks;
        let dense = run_with_failures(
            &c,
            &SimConfig::new(4).with_clock_mode(ClockMode::Dense),
            &mut h1,
            plan(),
            CutPicker::AlignedSeq,
        );
        let delta = run_with_failures(
            &c,
            &SimConfig::new(4).with_clock_mode(ClockMode::Delta),
            &mut h2,
            plan(),
            CutPicker::AlignedSeq,
        );
        assert!(dense.completed() && delta.completed());
        assert_eq!(dense.finished_at, delta.finished_at);
        assert_eq!(dense.checkpoints.len(), delta.checkpoints.len());
        for (a, b) in dense.checkpoints.iter().zip(&delta.checkpoints) {
            assert_eq!(a.vc, b.vc);
            assert_eq!(a.rolled_back, b.rolled_back);
        }
        assert_eq!(
            crate::consistency::straight_cut_failures(&dense),
            crate::consistency::straight_cut_failures(&delta)
        );
    }

    #[test]
    fn timer_hooks_generate_checkpoints() {
        use crate::hooks::TimerCheckpoints;
        let p = programs::jacobi(4);
        let c = compile(&p);
        let cfg = SimConfig::new(2);
        let mut hooks = TimerCheckpoints::new(2, 10_000, 1_000);
        let t = run_with_hooks(&c, &cfg, &mut hooks);
        assert!(t.completed());
        assert_eq!(t.metrics.app_checkpoints, 0, "app statements suppressed");
        assert!(t.metrics.timer_checkpoints > 0);
    }
}
