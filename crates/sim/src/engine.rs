//! The discrete-event simulation engine.
//!
//! Executes a compiled SPMD program on `n` simulated processes over
//! reliable FIFO channels (the paper's system model, §2): asynchronous
//! sends, *blocking* receives, deterministic per-process transition
//! functions, vector-clock stamping of every send/receive/checkpoint
//! event, optional failure injection with coordinated rollback, and
//! protocol customisation via [`Hooks`].
//!
//! Determinism: given the same program, configuration, hooks, and
//! failure plan, a run is bit-for-bit reproducible (the only randomness
//! is the seeded network jitter).

use crate::bytecode::{Compiled, ExprRef, LowInstr, LowSrc, NO_LABEL};
use crate::clock::VectorClock;
use crate::config::SimConfig;
use crate::failure::{CutPicker, FailurePlan};
use crate::hooks::{CoordinationCost, Hooks, NoHooks, RecvAction};
use crate::obs::SimObs;
use crate::time::SimTime;
use crate::trace::{
    CheckpointRecord, CkptTrigger, FailureRecord, MessageRecord, Metrics, MsgId, Outcome, Snapshot,
    StmtInstances, Trace, VarStore,
};
use acfc_mpsl::lowered::{eval_ops, Op, SlotEnv};
use acfc_mpsl::{EvalError, StmtId};
use acfc_obs::LocalHist;
use acfc_util::rng::Rng;
use std::collections::VecDeque;
use std::sync::Arc;

/// Runs `compiled` under `config` with the application-driven behaviour
/// (no protocol hooks, no failures).
///
/// # Examples
///
/// ```
/// let p = acfc_mpsl::programs::jacobi(3);
/// let trace = acfc_sim::run(&acfc_sim::compile(&p), &acfc_sim::SimConfig::new(4));
/// assert!(trace.completed());
/// assert_eq!(trace.checkpoint_counts(), vec![3, 3, 3, 3]);
/// ```
pub fn run(compiled: &Compiled, config: &SimConfig) -> Trace {
    let mut hooks = NoHooks;
    run_with_hooks(compiled, config, &mut hooks)
}

/// Runs with protocol hooks and no failures.
pub fn run_with_hooks(compiled: &Compiled, config: &SimConfig, hooks: &mut dyn Hooks) -> Trace {
    Engine::new(
        compiled,
        config,
        hooks,
        FailurePlan::none(),
        CutPicker::AlignedSeq,
        None,
    )
    .run()
}

/// Runs with hooks, injected failures, and the given recovery-line
/// picker.
pub fn run_with_failures(
    compiled: &Compiled,
    config: &SimConfig,
    hooks: &mut dyn Hooks,
    plan: FailurePlan,
    picker: CutPicker,
) -> Trace {
    Engine::new(compiled, config, hooks, plan, picker, None).run()
}

/// Runs like [`run`] while filling the per-run [`SimObs`] collector
/// (counters, histograms, and — in timeline mode — the interval data
/// behind the simulated-time Perfetto export).
pub fn run_observed(compiled: &Compiled, config: &SimConfig, obs: &mut SimObs) -> Trace {
    let mut hooks = NoHooks;
    Engine::new(
        compiled,
        config,
        &mut hooks,
        FailurePlan::none(),
        CutPicker::AlignedSeq,
        Some(obs),
    )
    .run()
}

/// Fully general observed run: hooks, failure plan, recovery-line
/// picker, and a [`SimObs`] collector.
pub fn run_observed_with(
    compiled: &Compiled,
    config: &SimConfig,
    hooks: &mut dyn Hooks,
    plan: FailurePlan,
    picker: CutPicker,
    obs: &mut SimObs,
) -> Trace {
    Engine::new(compiled, config, hooks, plan, picker, Some(obs)).run()
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Ev {
    /// Resume execution of a process (with its rollback epoch).
    Ready { p: usize, epoch: u64 },
    /// Network delivery of a message (with its re-delivery token).
    Arrive { msg: usize, token: u64 },
    /// Injected failure of a process.
    Fail { p: usize },
}

struct QueuedEv {
    key: (u64, u64), // (time_us, tiebreak_seq)
    ev: Ev,
}

#[derive(Debug, Clone, PartialEq)]
enum PState {
    Ready,
    Blocked {
        src: Option<usize>,
        stmt: StmtId,
        since: SimTime,
    },
    Halted,
}

struct Proc {
    /// Variable values, indexed by the compile-time slot table.
    vars: Vec<i64>,
    /// Whether each slot is bound (declared, or assigned at least
    /// once); reads of unbound slots are runtime errors, exactly as
    /// lookups in the map-based store were.
    bound: Vec<bool>,
    /// Shared copy of `bound` handed to snapshots; invalidated on the
    /// rare false→true flip so the common checkpoint clones a refcount
    /// instead of a vector.
    bound_arc: Option<Arc<[bool]>>,
    pc: usize,
    vc: VectorClock,
    state: PState,
    ckpt_seq: u64,
    /// Instance counters indexed densely by statement id.
    stmt_instances: Vec<u64>,
    step: u64,
    executed: u64,
    now: SimTime,
}

struct Engine<'a> {
    compiled: &'a Compiled,
    config: &'a SimConfig,
    hooks: &'a mut dyn Hooks,
    picker: CutPicker,
    procs: Vec<Proc>,
    epochs: Vec<u64>,
    /// Pending events, sorted by key ascending. Keys are unique (the
    /// seq tiebreak), so popping the front yields exactly the order a
    /// binary heap keyed on `Reverse(key)` would. A deque because both
    /// hot paths are ends: the next event pops from the front, and a
    /// newly scheduled event is usually the latest and lands at the
    /// back — both O(1), with no heap sift and no insertion memmove.
    queue: VecDeque<QueuedEv>,
    heap_seq: u64,
    // inbox[to][from] = delivered-but-unconsumed message indices (FIFO).
    inbox: Vec<Vec<VecDeque<usize>>>,
    // chan_last[from*n + to] = last delivery time on the channel (FIFO).
    chan_last: Vec<SimTime>,
    msg_token: Vec<u64>,
    messages: Vec<MessageRecord>,
    checkpoints: Vec<CheckpointRecord>,
    failures: Vec<FailureRecord>,
    metrics: Metrics,
    rng: Rng,
    outcome: Option<Outcome>,
    max_time: SimTime,
    inline_budget: u32,
    /// Parameter values by slot, shared by all processes (parameters
    /// are rank-independent); `None` = referenced but never bound.
    params: Vec<Option<i64>>,
    /// Scratch stack reused by every expression evaluation.
    eval_stack: Vec<i64>,
    /// Snapshot of [`Hooks::uses_timers`]; when `false` the
    /// per-instruction timer poll is elided.
    use_timer_hook: bool,
    /// Snapshot of [`Hooks::passive`]; when `true` the per-message and
    /// per-checkpoint hook dispatch is skipped.
    passive_hooks: bool,
    /// Opt-in per-run observability collector; `None` (the default
    /// entry points) costs one never-taken branch per probe.
    obs: Option<&'a mut SimObs>,
    /// Events popped off the queue — counted unconditionally (one
    /// plain add beats an `Option` branch in the hot loop) and copied
    /// into [`SimObs`] when a collector is attached.
    events_processed: u64,
    /// Run-ahead fast-path hits, same unconditional scheme.
    run_ahead_hits: u64,
    /// Per-process simulated compute µs, same unconditional scheme.
    compute_us: Vec<u64>,
    /// Event-queue depth, systematically sampled at every 8th pop —
    /// engine-owned and unconditional (a `&7` test plus one bucket add
    /// on the sampled pop), so the resulting histogram reaches the
    /// [`Trace`] on every run and is *merged* (not re-recorded) into
    /// [`SimObs`] at flush: the observed and post-hoc views agree
    /// bucket-for-bucket by construction.
    queue_depth: LocalHist,
}

const INLINE_BUDGET: u32 = 256;

impl<'a> Engine<'a> {
    fn new(
        compiled: &'a Compiled,
        config: &'a SimConfig,
        hooks: &'a mut dyn Hooks,
        plan: FailurePlan,
        picker: CutPicker,
        mut obs: Option<&'a mut SimObs>,
    ) -> Engine<'a> {
        let n = config.nprocs;
        assert!(n >= 1, "need at least one process");
        if let Some(o) = obs.as_deref_mut() {
            o.ensure_procs(n);
        }
        // Parameter slots: program defaults, then config overrides
        // (later overrides win, as map insertion order did).
        let mut params: Vec<Option<i64>> = vec![None; compiled.param_names.len()];
        let slot_of = |name: &str| compiled.param_names.iter().position(|p| p == name);
        for (k, v) in &compiled.params {
            if let Some(s) = slot_of(k) {
                params[s] = Some(*v);
            }
        }
        for (k, v) in &config.param_overrides {
            if let Some(s) = slot_of(k) {
                params[s] = Some(*v);
            }
        }
        // Declared variables occupy the leading slots and start bound
        // (initialised to 0); undeclared names bind on first assign.
        let nslots = compiled.var_names.len();
        let declared = compiled.vars.len();
        let procs = (0..n)
            .map(|_| {
                let mut bound = vec![false; nslots];
                bound[..declared].fill(true);
                Proc {
                    vars: vec![0; nslots],
                    bound,
                    bound_arc: None,
                    pc: 0,
                    vc: VectorClock::new(n),
                    state: PState::Ready,
                    ckpt_seq: 0,
                    stmt_instances: vec![0; compiled.stmt_limit as usize],
                    step: 0,
                    executed: 0,
                    now: SimTime::ZERO,
                }
            })
            .collect();
        let use_timer_hook = hooks.uses_timers();
        let passive_hooks = hooks.passive();
        let mut engine = Engine {
            compiled,
            config,
            hooks,
            picker,
            procs,
            epochs: vec![0; n],
            queue: VecDeque::with_capacity(256),
            heap_seq: 0,
            inbox: vec![vec![VecDeque::new(); n]; n],
            chan_last: vec![SimTime::ZERO; n * n],
            // Records embed inline vector clocks, so Vec doubling
            // re-copies them wholesale; start large enough that
            // typical runs never regrow (profiling showed realloc
            // memcpy as the single largest engine cost otherwise).
            msg_token: Vec::with_capacity(1024),
            messages: Vec::with_capacity(384),
            checkpoints: Vec::with_capacity(192),
            failures: Vec::new(),
            metrics: Metrics::default(),
            rng: Rng::seed_from_u64(config.seed),
            outcome: None,
            max_time: SimTime::ZERO,
            inline_budget: INLINE_BUDGET,
            params,
            eval_stack: Vec::new(),
            use_timer_hook,
            passive_hooks,
            obs,
            events_processed: 0,
            run_ahead_hits: 0,
            compute_us: vec![0; n],
            queue_depth: LocalHist::new(),
        };
        for p in 0..n {
            engine.push(SimTime::ZERO, Ev::Ready { p, epoch: 0 });
        }
        for &(t, p) in plan.events() {
            engine.push(t, Ev::Fail { p });
        }
        engine
    }

    fn push(&mut self, t: SimTime, ev: Ev) {
        self.heap_seq += 1;
        let key = (t.as_micros(), self.heap_seq);
        // Newly scheduled events are usually the latest (message
        // deliveries at now + delay): O(1), no search. The seq tiebreak
        // makes a tie later than everything queued, so `>=` stays sorted.
        if self.queue.back().is_none_or(|e| e.key < key) {
            self.queue.push_back(QueuedEv { key, ev });
        } else {
            let i = self.queue.partition_point(|e| e.key < key);
            self.queue.insert(i, QueuedEv { key, ev });
        }
    }

    fn note_time(&mut self, t: SimTime) {
        if t > self.max_time {
            self.max_time = t;
        }
    }

    fn run(mut self) -> Trace {
        while let Some(QueuedEv { key, ev }) = self.queue.pop_front() {
            if self.outcome.is_some() {
                break;
            }
            let t = SimTime(key.0);
            self.note_time(t);
            self.events_processed += 1;
            if self.events_processed & 7 == 0 {
                self.queue_depth.record(self.queue.len() as u64);
            }
            match ev {
                Ev::Ready { p, epoch } => {
                    if epoch == self.epochs[p] && self.procs[p].state == PState::Ready {
                        self.execute(p, t);
                    }
                }
                Ev::Arrive { msg, token } => {
                    if token == self.msg_token[msg]
                        && !self.messages[msg].rolled_back
                        && self.messages[msg].delivered_at.is_none()
                    {
                        self.deliver(msg, t);
                    }
                }
                Ev::Fail { p } => self.handle_failure(p, t),
            }
        }
        let outcome = self.outcome.take().unwrap_or_else(|| {
            let blocked: Vec<usize> = self
                .procs
                .iter()
                .enumerate()
                .filter(|(_, q)| !matches!(q.state, PState::Halted))
                .map(|(i, _)| i)
                .collect();
            if blocked.is_empty() {
                Outcome::Completed
            } else {
                Outcome::Deadlock(blocked)
            }
        });
        self.metrics.instructions = self.procs.iter().map(|p| p.executed).sum();
        if let Some(o) = self.obs.as_deref_mut() {
            o.events_processed += self.events_processed;
            o.run_ahead_hits += self.run_ahead_hits;
            o.queue_depth.merge(&self.queue_depth);
            for (p, &us) in self.compute_us.iter().enumerate() {
                o.per_proc[p].compute_us += us;
            }
        }
        Trace {
            nprocs: self.config.nprocs,
            program: self.compiled.name.clone(),
            messages: self.messages,
            checkpoints: self.checkpoints,
            failures: self.failures,
            proc_end: self.procs.iter().map(|p| p.now).collect(),
            finished_at: self.max_time,
            metrics: self.metrics,
            queue_depth: self.queue_depth.snap(),
            outcome,
        }
    }

    fn runtime_error(&mut self, p: usize, e: impl std::fmt::Display) {
        self.outcome = Some(Outcome::RuntimeError(p, e.to_string()));
    }

    fn eval_ref(&mut self, p: usize, r: ExprRef) -> Result<i64, EvalError> {
        let compiled = self.compiled;
        let proc = &self.procs[p];
        // The two dominant shapes — a folded constant and a plain
        // variable read — need none (or almost none) of the SlotEnv,
        // so resolve them before paying for its construction.
        match r.ops(&compiled.ops) {
            [Op::Const(v)] => return Ok(*v),
            [Op::Load(s)] => {
                let s = *s as usize;
                return if proc.bound[s] {
                    Ok(proc.vars[s])
                } else {
                    Err(EvalError::UnboundVar(compiled.var_names[s].clone()))
                };
            }
            _ => {}
        }
        let env = SlotEnv {
            rank: p as i64,
            nprocs: self.config.nprocs as i64,
            vars: &proc.vars,
            bound: &proc.bound,
            var_names: &compiled.var_names,
            params: &self.params,
            param_names: &compiled.param_names,
            inputs: &self.config.inputs,
        };
        eval_ops(r.ops(&compiled.ops), &env, &mut self.eval_stack)
    }

    fn resolve_rank(&mut self, p: usize, expr: ExprRef) -> Option<usize> {
        match self.eval_ref(p, expr) {
            Ok(v) if v >= 0 && (v as usize) < self.config.nprocs => Some(v as usize),
            Ok(v) => {
                self.runtime_error(p, format!("rank expression evaluated to {v}, out of range"));
                None
            }
            Err(e) => {
                self.runtime_error(p, e);
                None
            }
        }
    }

    /// Executes instructions of `p` starting at simulated time `t` until
    /// the process blocks, halts, yields after a time-consuming
    /// instruction, or exhausts the inline budget.
    fn execute(&mut self, p: usize, t: SimTime) {
        let mut now = t;
        let mut inline = 0u32;
        // Hoisted loop invariants: `&mut self` calls in the body defeat
        // the optimizer's own load hoisting.
        let max_steps = self.config.max_steps_per_proc;
        let instr_us = self.config.cost.instr_overhead_us;
        loop {
            if self.outcome.is_some() {
                return;
            }
            if self.procs[p].executed >= max_steps {
                self.outcome = Some(Outcome::StepLimit(p));
                return;
            }
            if self.use_timer_hook && self.hooks.timer_checkpoint_due(p, now) {
                // Timer checkpoints count toward the step budget so a
                // protocol whose stall exceeds its interval (and would
                // otherwise checkpoint forever without executing a
                // single instruction) trips the runaway guard instead
                // of looping.
                self.procs[p].executed += 1;
                let trigger = self.hooks.timer_trigger(p);
                self.take_checkpoint(p, None, None, trigger, &mut now);
                if self.can_run_ahead(now) {
                    self.mark_progress(p, now);
                    continue;
                }
                self.yield_ready(p, now);
                return;
            }
            inline += 1;
            if inline > self.inline_budget {
                self.yield_ready(p, now);
                return;
            }
            let pc = self.procs[p].pc;
            let instr = self.compiled.lowered[pc];
            self.procs[p].executed += 1;
            match instr {
                LowInstr::Compute { cost } => {
                    let c = match self.eval_ref(p, cost) {
                        Ok(v) if v >= 0 => v as u64,
                        Ok(v) => {
                            self.runtime_error(p, format!("negative compute cost {v}"));
                            return;
                        }
                        Err(e) => {
                            self.runtime_error(p, e);
                            return;
                        }
                    };
                    now +=
                        c * self.config.cost.compute_unit_us + self.config.cost.instr_overhead_us;
                    self.compute_us[p] += c * self.config.cost.compute_unit_us;
                    self.procs[p].pc = pc + 1;
                    if self.can_run_ahead(now) {
                        self.mark_progress(p, now);
                        continue;
                    }
                    self.yield_ready(p, now);
                    return;
                }
                LowInstr::Assign { var, value } => {
                    match self.eval_ref(p, value) {
                        Ok(v) => {
                            let proc = &mut self.procs[p];
                            proc.vars[var as usize] = v;
                            if !proc.bound[var as usize] {
                                proc.bound[var as usize] = true;
                                proc.bound_arc = None;
                            }
                        }
                        Err(e) => {
                            self.runtime_error(p, e);
                            return;
                        }
                    }
                    now += instr_us;
                    self.procs[p].pc = pc + 1;
                }
                LowInstr::Jump { target } => {
                    now += instr_us;
                    self.procs[p].pc = target as usize;
                }
                LowInstr::JumpIfFalse { cond, target } => {
                    let v = match self.eval_ref(p, cond) {
                        Ok(v) => v,
                        Err(e) => {
                            self.runtime_error(p, e);
                            return;
                        }
                    };
                    now += instr_us;
                    self.procs[p].pc = if v == 0 { target as usize } else { pc + 1 };
                }
                LowInstr::Send {
                    dest,
                    size_bits,
                    stmt,
                } => {
                    let Some(to) = self.resolve_rank(p, dest) else {
                        return;
                    };
                    let bits = match self.eval_ref(p, size_bits) {
                        Ok(v) if v >= 0 => v as u64,
                        Ok(v) => {
                            self.runtime_error(p, format!("negative message size {v}"));
                            return;
                        }
                        Err(e) => {
                            self.runtime_error(p, e);
                            return;
                        }
                    };
                    self.do_send(p, to, bits, stmt, now);
                    now += self.config.cost.send_overhead_us;
                    self.procs[p].pc = pc + 1;
                }
                LowInstr::Recv { src, stmt } => {
                    let want: Option<usize> = match src {
                        LowSrc::Any => None,
                        LowSrc::Rank(e) => {
                            let Some(s) = self.resolve_rank(p, e) else {
                                return;
                            };
                            Some(s)
                        }
                    };
                    if let Some(m) = self.pick_inbox(p, want) {
                        now = self.consume_message(p, m, stmt, now);
                        self.procs[p].pc = pc + 1;
                        if self.outcome.is_some() {
                            return;
                        }
                    } else {
                        self.procs[p].state = PState::Blocked {
                            src: want,
                            stmt,
                            since: now,
                        };
                        self.procs[p].now = now;
                        self.note_time(now);
                        return;
                    }
                }
                LowInstr::Checkpoint { stmt, label } => {
                    self.procs[p].pc = pc + 1;
                    if self.passive_hooks || self.hooks.take_app_checkpoint(p, now) {
                        // Label strings are materialised only when a
                        // checkpoint is actually recorded.
                        let label = if label == NO_LABEL {
                            None
                        } else {
                            Some(self.compiled.labels[label as usize].clone())
                        };
                        self.take_checkpoint(
                            p,
                            Some(stmt),
                            label,
                            CkptTrigger::AppStatement,
                            &mut now,
                        );
                        if self.can_run_ahead(now) {
                            self.mark_progress(p, now);
                            continue;
                        }
                        self.yield_ready(p, now);
                        return;
                    } else {
                        now += instr_us;
                    }
                }
                LowInstr::Halt => {
                    self.procs[p].state = PState::Halted;
                    self.procs[p].now = now;
                    self.note_time(now);
                    return;
                }
            }
        }
    }

    /// `true` when no queued event is due at or before `now`: the
    /// running process may then keep executing inline, because the
    /// yield-then-pop round trip through the heap would pop the very
    /// `Ready` event it pushed (ties break by push order, so only a
    /// strictly later heap top guarantees this). Skipping the round
    /// trip leaves the popped event sequence — and hence the trace —
    /// unchanged.
    fn can_run_ahead(&self, now: SimTime) -> bool {
        self.queue.front().is_none_or(|e| e.key.0 > now.as_micros())
    }

    /// The bookkeeping of [`Self::yield_ready`] without the heap round
    /// trip, for the [`Self::can_run_ahead`] fast path. Every caller is
    /// a run-ahead hit, so the counter lives here.
    fn mark_progress(&mut self, p: usize, now: SimTime) {
        self.procs[p].now = now;
        self.note_time(now);
        self.run_ahead_hits += 1;
    }

    fn yield_ready(&mut self, p: usize, now: SimTime) {
        self.procs[p].now = now;
        self.note_time(now);
        let epoch = self.epochs[p];
        self.push(now, Ev::Ready { p, epoch });
    }

    fn do_send(&mut self, p: usize, to: usize, bits: u64, stmt: StmtId, now: SimTime) {
        let proc = &mut self.procs[p];
        proc.vc.tick(p);
        proc.step += 1;
        let piggyback = if self.passive_hooks {
            self.procs[p].ckpt_seq
        } else {
            self.hooks.piggyback(p, self.procs[p].ckpt_seq, now)
        };
        let jitter = if self.config.net.jitter_us > 0 {
            self.rng.gen_u64_inclusive(self.config.net.jitter_us)
        } else {
            0
        };
        let delay = self.config.net.base_delay_us(bits) + jitter;
        let sent_at = now + self.config.cost.send_overhead_us;
        let chan = p * self.config.nprocs + to;
        let deliver_at =
            SimTime((sent_at.as_micros() + delay).max(self.chan_last[chan].as_micros()));
        self.chan_last[chan] = deliver_at;
        let id = MsgId(self.messages.len() as u64);
        let idx = self.messages.len();
        self.messages.push(MessageRecord {
            id,
            from: p,
            to,
            size_bits: bits,
            send_stmt: stmt,
            sent_at,
            send_vc: self.procs[p].vc.clone(),
            send_step: self.procs[p].step,
            piggyback,
            delivered_at: None,
            recv_at: None,
            recv_vc: None,
            recv_step: None,
            recv_stmt: None,
            rolled_back: false,
        });
        self.msg_token.push(0);
        self.metrics.app_messages += 1;
        self.metrics.app_bits += bits;
        self.push(deliver_at, Ev::Arrive { msg: idx, token: 0 });
    }

    /// Picks the next consumable message for `p` from `want` (None =
    /// any). FIFO per channel; for `any`, earliest delivery wins
    /// (ties: lowest sender rank).
    fn pick_inbox(&mut self, p: usize, want: Option<usize>) -> Option<usize> {
        match want {
            Some(s) => self.inbox[p][s].pop_front(),
            None => {
                let mut best: Option<(SimTime, usize)> = None;
                for s in 0..self.config.nprocs {
                    if let Some(&m) = self.inbox[p][s].front() {
                        let at = self.messages[m].delivered_at.expect("inboxed => delivered");
                        if best.is_none_or(|(bt, _)| at < bt) {
                            best = Some((at, s));
                        }
                    }
                }
                best.map(|(_, s)| self.inbox[p][s].pop_front().expect("nonempty"))
            }
        }
    }

    /// Completes a receive of message `m` by process `p` at local time
    /// `at`; returns the time after the receive (and any forced
    /// checkpoint).
    fn consume_message(&mut self, p: usize, m: usize, stmt: StmtId, at: SimTime) -> SimTime {
        let mut now = at;
        let piggyback = self.messages[m].piggyback;
        // A protocol may need several forced checkpoints to catch up
        // (e.g. index-based CIC when the sender is multiple indices
        // ahead); re-consult the hooks with the updated sequence number
        // until they are satisfied, with a generous runaway guard.
        let mut guard = 0u32;
        while !self.passive_hooks {
            let own_seq = self.procs[p].ckpt_seq;
            if self.hooks.on_recv(p, piggyback, own_seq, now) != RecvAction::ForceCheckpointFirst {
                break;
            }
            self.take_checkpoint(p, None, None, CkptTrigger::Forced, &mut now);
            guard += 1;
            assert!(
                guard < 100_000,
                "hooks demanded forced checkpoints without converging"
            );
        }
        // Disjoint borrows: the sender's clock is read from the message
        // records while the receiver's is updated in place — no clone.
        let proc = &mut self.procs[p];
        proc.vc.merge(&self.messages[m].send_vc);
        proc.vc.tick(p);
        proc.step += 1;
        now += self.config.cost.instr_overhead_us;
        let rec = &mut self.messages[m];
        rec.recv_at = Some(now);
        rec.recv_vc = Some(proc.vc.clone());
        rec.recv_step = Some(proc.step);
        rec.recv_stmt = Some(stmt);
        let sent_at = rec.sent_at;
        if let Some(o) = self.obs.as_deref_mut() {
            o.msg_latency_us
                .record(now.saturating_sub(sent_at).as_micros());
        }
        now
    }

    fn take_checkpoint(
        &mut self,
        p: usize,
        stmt: Option<StmtId>,
        label: Option<Arc<str>>,
        trigger: CkptTrigger,
        now: &mut SimTime,
    ) {
        let coord = if self.passive_hooks {
            CoordinationCost::default()
        } else {
            self.hooks.coordination_cost(p, *now)
        };
        let compiled = self.compiled;
        let proc = &mut self.procs[p];
        proc.vc.tick(p);
        proc.step += 1;
        proc.ckpt_seq += 1;
        let instance = match stmt {
            Some(sid) => {
                let e = &mut proc.stmt_instances[sid.0 as usize];
                *e += 1;
                *e
            }
            None => 0,
        };
        let start = *now;
        let stall = self.config.cost.ckpt_overhead_us + coord.stall_us;
        let snapshot = Snapshot {
            pc: proc.pc,
            vars: VarStore {
                names: compiled.var_names.clone(),
                values: proc.vars.clone(),
                bound: proc
                    .bound_arc
                    .get_or_insert_with(|| proc.bound.as_slice().into())
                    .clone(),
            },
            vc: proc.vc.clone(),
            ckpt_seq: proc.ckpt_seq,
            stmt_instances: StmtInstances(proc.stmt_instances.clone()),
            step: proc.step,
        };
        self.checkpoints.push(CheckpointRecord {
            proc: p,
            seq: proc.ckpt_seq,
            stmt,
            instance,
            label,
            trigger,
            start,
            durable_at: start + self.config.cost.ckpt_latency_us + coord.stall_us,
            vc: proc.vc.clone(),
            step: proc.step,
            snapshot,
            rolled_back: false,
        });
        *now = start + stall;
        if let Some(o) = self.obs.as_deref_mut() {
            o.on_ckpt_stall(p, start.as_micros(), now.as_micros());
        }
        self.metrics.ckpt_stall_us += stall;
        self.metrics.coord_stall_us += coord.stall_us;
        self.metrics.control_messages += coord.control_messages;
        self.metrics.control_bits += coord.control_bits;
        match trigger {
            CkptTrigger::AppStatement => self.metrics.app_checkpoints += 1,
            CkptTrigger::Timer => self.metrics.timer_checkpoints += 1,
            CkptTrigger::Forced => self.metrics.forced_checkpoints += 1,
            CkptTrigger::Coordinated => self.metrics.coordinated_checkpoints += 1,
        }
    }

    fn deliver(&mut self, m: usize, t: SimTime) {
        self.messages[m].delivered_at = Some(t);
        let to = self.messages[m].to;
        let from = self.messages[m].from;
        self.inbox[to][from].push_back(m);
        if let Some(o) = self.obs.as_deref_mut() {
            o.messages_delivered += 1;
        }
        // Unblock a matching waiter.
        let (want, stmt, since) = match self.procs[to].state {
            PState::Blocked { src, stmt, since } => (src, stmt, since),
            _ => return,
        };
        if want.is_some() && want != Some(from) {
            return;
        }
        let m2 = self
            .pick_inbox(to, want)
            .expect("arrival just enqueued a candidate");
        let at = SimTime(t.as_micros().max(since.as_micros()));
        self.metrics.recv_blocked_us += at - since;
        if let Some(o) = self.obs.as_deref_mut() {
            o.on_blocked(to, since.as_micros(), at.as_micros());
        }
        self.procs[to].state = PState::Ready;
        let done = self.consume_message(to, m2, stmt, at);
        if self.outcome.is_some() {
            return;
        }
        self.procs[to].pc += 1;
        if self.can_run_ahead(done) {
            self.mark_progress(to, done);
            self.execute(to, done);
        } else {
            self.yield_ready(to, done);
        }
    }

    fn handle_failure(&mut self, p: usize, t: SimTime) {
        // A failure of an already-halted process (or after global
        // completion) is ignored.
        if matches!(self.procs[p].state, PState::Halted)
            && self.procs.iter().all(|q| matches!(q.state, PState::Halted))
        {
            return;
        }
        self.metrics.failures += 1;
        let nprocs = self.config.nprocs;
        // The recovery view borrows the checkpoint records in place —
        // no per-failure cloning of snapshots.
        let mut live: Vec<Vec<&CheckpointRecord>> = vec![Vec::new(); nprocs];
        for c in &self.checkpoints {
            if !c.rolled_back {
                live[c.proc].push(c);
            }
        }
        let view = crate::failure::RecoveryView {
            live: &live,
            messages: &self.messages,
        };
        let picked = self.picker.pick(&view);
        let latest_seq: Vec<u64> = live
            .iter()
            .map(|v| v.last().map(|c| c.seq).unwrap_or(0))
            .collect();
        drop(live);
        // Cut positions (per-process step numbers) and the restored
        // checkpoints, kept as indices so the records can be mutated
        // (rollback marking) before the restore reads them back.
        let mut cut_step = vec![0u64; nprocs];
        let mut restored: Vec<Option<usize>> = vec![None; nprocs];
        for (i, c) in self.checkpoints.iter().enumerate() {
            if !c.rolled_back && picked[c.proc] == Some(c.seq) {
                cut_step[c.proc] = c.snapshot.step;
                restored[c.proc] = Some(i);
            }
        }
        for q in 0..nprocs {
            assert!(
                picked[q].is_none() || restored[q].is_some(),
                "picker chose missing seq {:?} for proc {q}",
                picked[q]
            );
        }
        // Lost work accounting.
        let mut lost_us = 0u64;
        #[allow(clippy::needless_range_loop)]
        for q in 0..nprocs {
            let back_to = restored[q]
                .map(|i| self.checkpoints[i].start)
                .unwrap_or(SimTime::ZERO);
            lost_us += self.procs[q].now.saturating_sub(back_to).as_micros();
        }
        // Mark rolled-back records.
        for c in &mut self.checkpoints {
            if !c.rolled_back && c.step > cut_step[c.proc] {
                c.rolled_back = true;
            }
        }
        let resume = t + self.config.cost.recovery_us;
        self.metrics.recovery_us += self.config.cost.recovery_us * self.config.nprocs as u64;
        let mut redeliveries: Vec<(usize, SimTime)> = Vec::new();
        for (i, m) in self.messages.iter_mut().enumerate() {
            if m.rolled_back {
                continue;
            }
            if m.send_step > cut_step[m.from] {
                // The send is undone.
                m.rolled_back = true;
                continue;
            }
            let received_before_cut = m.recv_step.is_some_and(|rs| rs <= cut_step[m.to]);
            if !received_before_cut {
                // In transit at the cut: will be re-delivered.
                m.delivered_at = None;
                m.recv_at = None;
                m.recv_vc = None;
                m.recv_step = None;
                m.recv_stmt = None;
                self.msg_token[i] += 1;
                redeliveries.push((i, resume));
            }
        }
        // Clear channel state.
        for q in 0..self.config.nprocs {
            for s in 0..self.config.nprocs {
                self.inbox[q][s].clear();
            }
        }
        for c in self.chan_last.iter_mut() {
            *c = SimTime::ZERO;
        }
        // Re-schedule in-flight deliveries (fresh jitter, FIFO per
        // channel preserved by delivery-time monotonicity below).
        redeliveries.sort_by_key(|&(i, _)| (self.messages[i].from, self.messages[i].send_step));
        for (i, at) in redeliveries {
            let m = &self.messages[i];
            let jitter = if self.config.net.jitter_us > 0 {
                self.rng.gen_u64_inclusive(self.config.net.jitter_us)
            } else {
                0
            };
            let chan = m.from * self.config.nprocs + m.to;
            let deliver_at = SimTime(
                (at.as_micros() + self.config.net.base_delay_us(m.size_bits) + jitter)
                    .max(self.chan_last[chan].as_micros()),
            );
            self.chan_last[chan] = deliver_at;
            let token = self.msg_token[i];
            self.push(deliver_at, Ev::Arrive { msg: i, token });
        }
        // Restore processes. `clone_from` reuses each process's
        // existing buffers instead of allocating fresh ones.
        #[allow(clippy::needless_range_loop)]
        for q in 0..nprocs {
            self.epochs[q] += 1;
            let proc = &mut self.procs[q];
            match restored[q] {
                Some(i) => {
                    let snap = &self.checkpoints[i].snapshot;
                    proc.pc = snap.pc;
                    proc.vars.clone_from(&snap.vars.values);
                    proc.bound.copy_from_slice(&snap.vars.bound);
                    proc.bound_arc = Some(snap.vars.bound.clone());
                    proc.vc.clone_from(&snap.vc);
                    proc.ckpt_seq = snap.ckpt_seq;
                    proc.stmt_instances.clone_from(&snap.stmt_instances.0);
                    proc.step = snap.step;
                }
                None => {
                    proc.pc = 0;
                    // As with the map-based store, values reset to 0
                    // but binding state is untouched.
                    proc.vars.fill(0);
                    proc.vc = VectorClock::new(nprocs);
                    proc.ckpt_seq = 0;
                    proc.stmt_instances.fill(0);
                    proc.step = 0;
                }
            }
            proc.state = PState::Ready;
            proc.now = resume;
            let epoch = self.epochs[q];
            self.push(resume, Ev::Ready { p: q, epoch });
        }
        self.failures.push(FailureRecord {
            proc: p,
            at: t,
            restored_seq: picked,
            latest_seq,
            lost_us,
        });
        self.note_time(resume);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::compile;
    use acfc_mpsl::{parse, programs};

    fn quick(src: &str, n: usize) -> Trace {
        run(&compile(&parse(src).unwrap()), &SimConfig::new(n))
    }

    #[test]
    fn empty_program_completes() {
        let t = quick("program t; compute 1;", 2);
        assert!(t.completed());
        assert_eq!(t.metrics.app_messages, 0);
    }

    #[test]
    fn single_message_delivered_in_order() {
        let t = quick(
            "program t; if rank == 0 { send to 1 size 1000; } else { if rank == 1 { recv from 0; } }",
            2,
        );
        assert!(t.completed());
        assert_eq!(t.messages.len(), 1);
        let m = &t.messages[0];
        assert!(m.is_received());
        assert!(m.recv_at.unwrap() > m.sent_at);
        assert!(m.send_vc.happened_before(m.recv_vc.as_ref().unwrap()));
    }

    #[test]
    fn fifo_order_preserved_per_channel() {
        let t = quick(
            "program t; var i;
             if rank == 0 {
               for i in 0..5 { send to 1 size 10000; }
             } else {
               if rank == 1 { for i in 0..5 { recv from 0; } }
             }",
            2,
        );
        assert!(t.completed());
        let mut recvs: Vec<(SimTime, u64)> = t
            .messages
            .iter()
            .map(|m| (m.recv_at.unwrap(), m.send_step))
            .collect();
        recvs.sort();
        let steps: Vec<u64> = recvs.iter().map(|&(_, s)| s).collect();
        let mut sorted = steps.clone();
        sorted.sort();
        assert_eq!(steps, sorted, "receives out of send order");
    }

    #[test]
    fn blocking_recv_waits_for_sender() {
        let t = quick(
            "program t;
             if rank == 0 { compute 100; send to 1 size 8; } else {
               if rank == 1 { recv from 0; } }",
            2,
        );
        assert!(t.completed());
        assert!(t.metrics.recv_blocked_us > 0);
    }

    #[test]
    fn unmatched_recv_deadlocks() {
        let t = quick("program t; if rank == 0 { recv from 1; }", 2);
        assert_eq!(t.outcome, Outcome::Deadlock(vec![0]));
    }

    #[test]
    fn runtime_error_on_bad_rank() {
        let t = quick("program t; send to 99;", 2);
        assert!(matches!(t.outcome, Outcome::RuntimeError(_, _)));
    }

    #[test]
    fn step_limit_stops_infinite_loop() {
        let mut cfg = SimConfig::new(1);
        cfg.max_steps_per_proc = 1000;
        let t = run(
            &compile(&parse("program t; while 1 { compute 0; }").unwrap()),
            &cfg,
        );
        assert!(matches!(t.outcome, Outcome::StepLimit(0)));
    }

    #[test]
    fn jacobi_runs_and_checkpoints() {
        let t = run(&compile(&programs::jacobi(4)), &SimConfig::new(4));
        assert!(t.completed(), "{:?}", t.outcome);
        assert_eq!(t.checkpoint_counts(), vec![4, 4, 4, 4]);
        assert_eq!(t.metrics.app_checkpoints, 16);
        // 2 sends per proc per iteration.
        assert_eq!(t.metrics.app_messages, 4 * 4 * 2);
        assert_eq!(t.aligned_depth(), 4);
        assert!(t.straight_cut(4).is_some());
        assert!(t.straight_cut(5).is_none());
    }

    #[test]
    fn all_stock_programs_complete() {
        for p in programs::all_stock() {
            // fig6 requires even nprocs; use 4 everywhere.
            let t = run(&compile(&p), &SimConfig::new(4).with_inputs(vec![3, 7]));
            assert!(t.completed(), "{}: {:?}", p.name, t.outcome);
        }
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let p = programs::jacobi_odd_even(3);
        let c = compile(&p);
        let t1 = run(&c, &SimConfig::new(4).with_seed(9));
        let t2 = run(&c, &SimConfig::new(4).with_seed(9));
        assert_eq!(t1.finished_at, t2.finished_at);
        assert_eq!(t1.messages.len(), t2.messages.len());
        for (a, b) in t1.messages.iter().zip(&t2.messages) {
            assert_eq!(a.sent_at, b.sent_at);
            assert_eq!(a.recv_at, b.recv_at);
        }
    }

    #[test]
    fn different_seed_changes_timing() {
        let p = programs::jacobi(3);
        let c = compile(&p);
        let t1 = run(&c, &SimConfig::new(4).with_seed(1));
        let t2 = run(&c, &SimConfig::new(4).with_seed(2));
        // Jitter differs; makespan almost surely differs.
        assert_ne!(t1.finished_at, t2.finished_at);
    }

    #[test]
    fn vector_clocks_order_checkpoints_causally() {
        let t = run(&compile(&programs::pingpong_skewed(2)), &SimConfig::new(2));
        assert!(t.completed());
        // Rank 0 checkpoints before its send; rank 1 after its recv:
        // same-iteration checkpoints must be causally ordered.
        let c0 = t.live_checkpoints(0);
        let c1 = t.live_checkpoints(1);
        assert!(c0[0].vc.happened_before(&c1[0].vc));
    }

    #[test]
    fn recv_any_consumes_everything() {
        let t = quick(
            "program t;
             if rank == 0 { recv from any; recv from any; } else { send to 0 size 64; }",
            3,
        );
        assert!(t.completed());
        assert!(t.messages.iter().all(|m| m.is_received()));
    }

    #[test]
    fn failure_rolls_back_and_completes() {
        let p = programs::jacobi(5);
        let c = compile(&p);
        let cfg = SimConfig::new(2);
        // Fail rank 0 mid-run.
        let plan = FailurePlan::at(vec![(SimTime::from_millis(200), 0)]);
        let mut hooks = NoHooks;
        let t = run_with_failures(&c, &cfg, &mut hooks, plan, CutPicker::AlignedSeq);
        assert!(t.completed(), "{:?}", t.outcome);
        assert_eq!(t.metrics.failures, 1);
        assert_eq!(t.failures.len(), 1);
        // Final live state: every process finished all 5 checkpoints.
        assert_eq!(t.checkpoint_counts(), vec![5, 5]);
        // Some checkpoints were rolled back or re-executed.
        let failure_free = run(&c, &cfg);
        assert!(t.finished_at > failure_free.finished_at);
    }

    #[test]
    fn failure_before_any_checkpoint_restarts_from_scratch() {
        let p = programs::jacobi(2);
        let c = compile(&p);
        let cfg = SimConfig::new(2);
        let plan = FailurePlan::at(vec![(SimTime::from_micros(100), 1)]);
        let mut hooks = NoHooks;
        let t = run_with_failures(&c, &cfg, &mut hooks, plan, CutPicker::AlignedSeq);
        assert!(t.completed(), "{:?}", t.outcome);
        assert_eq!(t.failures[0].restored_seq, vec![None, None]);
        assert_eq!(t.checkpoint_counts(), vec![2, 2]);
    }

    #[test]
    fn repeated_failures_still_complete() {
        let p = programs::ring(4, 256);
        let c = compile(&p);
        let cfg = SimConfig::new(3);
        // ring(4) with 25 ms sweeps finishes in ~100 ms failure-free;
        // early, closely spaced failures all land inside the
        // (rollback-extended) run.
        let plan = FailurePlan::at(vec![
            (SimTime::from_millis(30), 0),
            (SimTime::from_millis(60), 1),
            (SimTime::from_millis(90), 2),
        ]);
        let mut hooks = NoHooks;
        let t = run_with_failures(&c, &cfg, &mut hooks, plan, CutPicker::AlignedSeq);
        assert!(t.completed(), "{:?}", t.outcome);
        assert_eq!(t.metrics.failures, 3);
        assert_eq!(t.checkpoint_counts(), vec![4, 4, 4]);
    }

    #[test]
    fn timer_hooks_generate_checkpoints() {
        use crate::hooks::TimerCheckpoints;
        let p = programs::jacobi(4);
        let c = compile(&p);
        let cfg = SimConfig::new(2);
        let mut hooks = TimerCheckpoints::new(2, 10_000, 1_000);
        let t = run_with_hooks(&c, &cfg, &mut hooks);
        assert!(t.completed());
        assert_eq!(t.metrics.app_checkpoints, 0, "app statements suppressed");
        assert!(t.metrics.timer_checkpoints > 0);
    }
}
