//! Checkpoint state backends: the shared snapshot/restore surface.
//!
//! The engine always *records* checkpoints into the trace (that is what
//! the offline analysis and the golden pins consume); a
//! [`StateBackend`] is the complementary *durability* surface — where a
//! snapshot goes so a process can be restored from it after a real
//! crash. The simulator's own recording path is retrofitted as the
//! [`SimBackend`] implementation (attach one with
//! [`run_with_backend`](crate::engine::run_with_backend)); the real
//! runtime crate implements file-per-checkpoint and log-structured
//! backends over the same trait, so the simulator and the live workers
//! persist byte-identical [`StateSnapshot`] payloads.
//!
//! [`StateSnapshot`] is deliberately *portable*: plain owned pairs
//! instead of the engine's slot-interned [`VarStore`] and dense
//! [`StmtInstances`], plus a versioned binary codec
//! ([`StateSnapshot::encode`] / [`StateSnapshot::decode`]) with no
//! external dependencies. Conversion back to the engine's restorable
//! [`Snapshot`] is lossless ([`StateSnapshot::to_snapshot`]).

use crate::clock::VectorClock;
use crate::trace::{CheckpointRecord, CkptTrigger, Snapshot, StmtInstances, VarStore};

/// Errors surfaced by a [`StateBackend`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendError {
    /// An I/O failure in a durable backend (message carries the OS
    /// error and the path involved).
    Io(String),
    /// A stored payload failed structural validation (bad magic, bad
    /// length, failed checksum, truncation).
    Corrupt(String),
    /// The requested checkpoint is not committed.
    Missing {
        /// Process whose checkpoint was requested.
        proc: usize,
        /// Requested sequence number.
        seq: u64,
    },
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendError::Io(m) => write!(f, "backend I/O error: {m}"),
            BackendError::Corrupt(m) => write!(f, "corrupt checkpoint: {m}"),
            BackendError::Missing { proc, seq } => {
                write!(f, "no committed checkpoint seq {seq} for process {proc}")
            }
        }
    }
}

impl std::error::Error for BackendError {}

impl From<std::io::Error> for BackendError {
    fn from(e: std::io::Error) -> BackendError {
        BackendError::Io(e.to_string())
    }
}

/// A portable, self-contained checkpoint payload: everything needed to
/// restore one process, with no interned or engine-internal state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateSnapshot {
    /// Owning process rank.
    pub proc: usize,
    /// Dynamic checkpoint sequence number (1-based, the paper's §2
    /// numbering).
    pub seq: u64,
    /// What triggered the checkpoint.
    pub trigger: CkptTrigger,
    /// Optional source label.
    pub label: Option<String>,
    /// Program counter into the compiled code.
    pub pc: usize,
    /// Per-process event step counter at the checkpoint.
    pub step: u64,
    /// Number of processes (the vector-clock arity).
    pub nprocs: usize,
    /// Bound variables as `(name, value)` pairs, sorted by name.
    pub vars: Vec<(String, i64)>,
    /// Non-zero vector-clock entries, sorted by process index.
    pub vc: Vec<(u32, u64)>,
    /// Non-zero per-statement instance counters, sorted by statement id.
    pub stmt_instances: Vec<(u32, u64)>,
}

const MAGIC: &[u8; 8] = b"ACFCSNP1";

fn trigger_code(t: CkptTrigger) -> u8 {
    match t {
        CkptTrigger::AppStatement => 0,
        CkptTrigger::Timer => 1,
        CkptTrigger::Forced => 2,
        CkptTrigger::Coordinated => 3,
    }
}

fn trigger_of(code: u8) -> Result<CkptTrigger, BackendError> {
    Ok(match code {
        0 => CkptTrigger::AppStatement,
        1 => CkptTrigger::Timer,
        2 => CkptTrigger::Forced,
        3 => CkptTrigger::Coordinated,
        c => return Err(BackendError::Corrupt(format!("unknown trigger code {c}"))),
    })
}

/// Bounds-checked little-endian reader over an encoded payload.
struct Cursor<'b> {
    bytes: &'b [u8],
    at: usize,
}

impl<'b> Cursor<'b> {
    fn take(&mut self, n: usize) -> Result<&'b [u8], BackendError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| BackendError::Corrupt("truncated payload".into()))?;
        let s = &self.bytes[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, BackendError> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> Result<u64, BackendError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, BackendError> {
        let len = self.u64()? as usize;
        let s = self.take(len)?;
        String::from_utf8(s.to_vec()).map_err(|_| BackendError::Corrupt("non-UTF-8 string".into()))
    }
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

impl StateSnapshot {
    /// Extracts the portable payload from a recorded checkpoint.
    pub fn from_record(rec: &CheckpointRecord) -> StateSnapshot {
        StateSnapshot {
            proc: rec.proc,
            seq: rec.seq,
            trigger: rec.trigger,
            label: rec.label.as_deref().map(str::to_owned),
            pc: rec.snapshot.pc,
            step: rec.snapshot.step,
            nprocs: rec.vc.len(),
            vars: rec.snapshot.vars_sorted(),
            vc: rec.vc.iter_nonzero().collect(),
            stmt_instances: rec.snapshot.stmt_instances_sorted(),
        }
    }

    /// Rebuilds the engine-restorable [`Snapshot`]. Lossless: variable
    /// bindings, clock entries, and instance counters survive the round
    /// trip exactly (store layout may differ, which the set-semantics
    /// equality of the snapshot types ignores).
    pub fn to_snapshot(&self) -> Snapshot {
        Snapshot {
            pc: self.pc,
            vars: var_store(self.vars.iter().map(|(k, v)| (k.clone(), *v))),
            vc: VectorClock::from_entries(self.nprocs, self.vc.iter().copied()),
            ckpt_seq: self.seq,
            stmt_instances: stmt_instances(self.stmt_instances.iter().copied()),
            step: self.step,
        }
    }

    /// Serialises to the versioned binary payload (magic `ACFCSNP1`,
    /// little-endian, length-prefixed strings). Durable backends wrap
    /// this in their own framing (checksums, atomic rename).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + 16 * self.vars.len());
        out.extend_from_slice(MAGIC);
        put_u64(&mut out, self.proc as u64);
        put_u64(&mut out, self.seq);
        out.push(trigger_code(self.trigger));
        match &self.label {
            Some(l) => {
                out.push(1);
                put_str(&mut out, l);
            }
            None => out.push(0),
        }
        put_u64(&mut out, self.pc as u64);
        put_u64(&mut out, self.step);
        put_u64(&mut out, self.nprocs as u64);
        put_u64(&mut out, self.vars.len() as u64);
        for (k, v) in &self.vars {
            put_str(&mut out, k);
            put_u64(&mut out, *v as u64);
        }
        put_u64(&mut out, self.vc.len() as u64);
        for &(i, v) in &self.vc {
            put_u64(&mut out, i as u64);
            put_u64(&mut out, v);
        }
        put_u64(&mut out, self.stmt_instances.len() as u64);
        for &(i, v) in &self.stmt_instances {
            put_u64(&mut out, i as u64);
            put_u64(&mut out, v);
        }
        out
    }

    /// Deserialises an [`encode`](StateSnapshot::encode)d payload,
    /// validating magic, bounds, and enum codes.
    pub fn decode(bytes: &[u8]) -> Result<StateSnapshot, BackendError> {
        let mut c = Cursor { bytes, at: 0 };
        if c.take(8)? != MAGIC {
            return Err(BackendError::Corrupt("bad magic".into()));
        }
        let proc = c.u64()? as usize;
        let seq = c.u64()?;
        let trigger = trigger_of(c.u8()?)?;
        let label = match c.u8()? {
            0 => None,
            1 => Some(c.string()?),
            f => return Err(BackendError::Corrupt(format!("bad label flag {f}"))),
        };
        let pc = c.u64()? as usize;
        let step = c.u64()?;
        let nprocs = c.u64()? as usize;
        let nvars = c.u64()? as usize;
        // Each var costs at least 16 bytes, so a corrupt count cannot
        // trigger a huge allocation before the bounds check trips.
        let mut vars = Vec::with_capacity(nvars.min(bytes.len() / 16 + 1));
        for _ in 0..nvars {
            let k = c.string()?;
            let v = c.u64()? as i64;
            vars.push((k, v));
        }
        let nvc = c.u64()? as usize;
        let mut vc = Vec::with_capacity(nvc.min(bytes.len() / 16 + 1));
        for _ in 0..nvc {
            let i = c.u64()? as u32;
            let v = c.u64()?;
            vc.push((i, v));
        }
        let ninst = c.u64()? as usize;
        let mut stmt_instances = Vec::with_capacity(ninst.min(bytes.len() / 16 + 1));
        for _ in 0..ninst {
            let i = c.u64()? as u32;
            let v = c.u64()?;
            stmt_instances.push((i, v));
        }
        if c.at != bytes.len() {
            return Err(BackendError::Corrupt("trailing bytes".into()));
        }
        Ok(StateSnapshot {
            proc,
            seq,
            trigger,
            label,
            pc,
            step,
            nprocs,
            vars,
            vc,
            stmt_instances,
        })
    }
}

/// Builds a [`VarStore`] binding every `(name, value)` pair, in the
/// given slot order. The portable replacement for the deprecated
/// `VarStore::from_pairs`.
pub fn var_store(pairs: impl IntoIterator<Item = (String, i64)>) -> VarStore {
    let (names, values): (Vec<String>, Vec<i64>) = pairs.into_iter().unzip();
    let bound = vec![true; names.len()].into();
    VarStore {
        names: names.into(),
        values,
        bound,
    }
}

/// Builds [`StmtInstances`] from `(stmt_id, count)` pairs. The portable
/// replacement for the deprecated `StmtInstances::from_pairs`.
pub fn stmt_instances(pairs: impl IntoIterator<Item = (u32, u64)>) -> StmtInstances {
    let mut v = Vec::new();
    for (id, count) in pairs {
        let id = id as usize;
        if id >= v.len() {
            v.resize(id + 1, 0);
        }
        v[id] = count;
    }
    StmtInstances(v)
}

/// Where checkpoint snapshots go to survive a crash, and where recovery
/// reads them back. One instance serves all processes of a run.
///
/// Commit visibility is all-or-nothing: after [`commit`] returns `Ok`,
/// [`load`] must return the exact snapshot; a crash *during* commit
/// must leave the previous committed set observable (no torn
/// snapshots). The kill/recover property tests drive exactly this
/// contract with crash injection.
///
/// [`commit`]: StateBackend::commit
/// [`load`]: StateBackend::load
pub trait StateBackend {
    /// Short stable identifier (`"sim"`, `"mem"`, `"file"`, `"log"`)
    /// for reports and CLI selection.
    fn name(&self) -> &'static str;

    /// Durably commits one snapshot. Committing the same `(proc, seq)`
    /// twice replaces the payload (re-execution after rollback re-takes
    /// checkpoints under the same sequence numbers).
    fn commit(&mut self, snap: &StateSnapshot) -> Result<(), BackendError>;

    /// Loads a committed snapshot.
    fn load(&mut self, proc: usize, seq: u64) -> Result<StateSnapshot, BackendError>;

    /// The highest committed sequence number of `proc`, if any.
    fn latest(&mut self, proc: usize) -> Result<Option<u64>, BackendError> {
        Ok(self
            .committed()?
            .into_iter()
            .filter(|&(p, _)| p == proc)
            .map(|(_, s)| s)
            .max())
    }

    /// Every committed `(proc, seq)` pair, sorted.
    fn committed(&mut self) -> Result<Vec<(usize, u64)>, BackendError>;

    /// Discards committed snapshots of `proc` with sequence numbers
    /// strictly greater than `seq` (0 discards all). Called on rollback
    /// so the backend's committed set tracks the live checkpoint set.
    fn discard_after(&mut self, proc: usize, seq: u64) -> Result<(), BackendError>;
}

/// The simulator's own recording path as a [`StateBackend`]: an
/// in-memory committed set mirroring what the engine's trace calls
/// "live checkpoints". Attach with
/// [`run_with_backend`](crate::engine::run_with_backend); also the
/// reference implementation the durable backends are differential-
/// tested against.
#[derive(Debug, Default)]
pub struct SimBackend {
    committed: std::collections::BTreeMap<(usize, u64), StateSnapshot>,
}

impl SimBackend {
    /// An empty backend.
    pub fn new() -> SimBackend {
        SimBackend::default()
    }

    /// Number of committed snapshots.
    pub fn len(&self) -> usize {
        self.committed.len()
    }

    /// `true` when nothing is committed.
    pub fn is_empty(&self) -> bool {
        self.committed.is_empty()
    }

    /// Iterates the committed snapshots in `(proc, seq)` order.
    pub fn snapshots(&self) -> impl Iterator<Item = &StateSnapshot> {
        self.committed.values()
    }
}

impl StateBackend for SimBackend {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn commit(&mut self, snap: &StateSnapshot) -> Result<(), BackendError> {
        self.committed.insert((snap.proc, snap.seq), snap.clone());
        Ok(())
    }

    fn load(&mut self, proc: usize, seq: u64) -> Result<StateSnapshot, BackendError> {
        self.committed
            .get(&(proc, seq))
            .cloned()
            .ok_or(BackendError::Missing { proc, seq })
    }

    fn committed(&mut self) -> Result<Vec<(usize, u64)>, BackendError> {
        Ok(self.committed.keys().copied().collect())
    }

    fn discard_after(&mut self, proc: usize, seq: u64) -> Result<(), BackendError> {
        self.committed.retain(|&(p, s), _| p != proc || s <= seq);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::engine::{run, run_with_backend};
    use crate::failure::{CutPicker, FailurePlan};
    use crate::hooks::NoHooks;
    use crate::time::SimTime;
    use acfc_mpsl::programs;

    fn sample() -> StateSnapshot {
        StateSnapshot {
            proc: 3,
            seq: 7,
            trigger: CkptTrigger::Forced,
            label: Some("iter".into()),
            pc: 42,
            step: 99,
            nprocs: 8,
            vars: vec![("i".into(), -5), ("sum".into(), i64::MAX)],
            vc: vec![(0, 1), (3, 12), (7, u64::MAX)],
            stmt_instances: vec![(2, 9)],
        }
    }

    #[test]
    fn codec_round_trips() {
        for label in [None, Some(String::new()), Some("αβ∞".to_string())] {
            for trigger in [
                CkptTrigger::AppStatement,
                CkptTrigger::Timer,
                CkptTrigger::Forced,
                CkptTrigger::Coordinated,
            ] {
                let snap = StateSnapshot {
                    label: label.clone(),
                    trigger,
                    ..sample()
                };
                assert_eq!(StateSnapshot::decode(&snap.encode()), Ok(snap));
            }
        }
    }

    #[test]
    fn decode_rejects_corruption() {
        let bytes = sample().encode();
        // Truncation at every prefix length fails (except the full
        // payload).
        for n in 0..bytes.len() {
            assert!(StateSnapshot::decode(&bytes[..n]).is_err(), "prefix {n}");
        }
        // Trailing garbage fails.
        let mut long = bytes.clone();
        long.push(0);
        assert!(StateSnapshot::decode(&long).is_err());
        // Bad magic fails.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert_eq!(
            StateSnapshot::decode(&bad),
            Err(BackendError::Corrupt("bad magic".into()))
        );
        // Bad trigger code fails.
        let mut bad = bytes;
        bad[24] = 9;
        assert!(StateSnapshot::decode(&bad).is_err());
    }

    #[test]
    fn record_round_trips_to_engine_snapshot() {
        let compiled = crate::bytecode::compile(&programs::jacobi(4));
        let trace = run(&compiled, &SimConfig::new(3));
        assert!(trace.completed());
        assert!(!trace.checkpoints.is_empty());
        for rec in &trace.checkpoints {
            let port = StateSnapshot::from_record(rec);
            let back = port.to_snapshot();
            assert_eq!(back, rec.snapshot, "proc {} seq {}", rec.proc, rec.seq);
            // And the codec preserves the portable form exactly.
            assert_eq!(StateSnapshot::decode(&port.encode()).unwrap(), port);
        }
    }

    #[test]
    fn sim_backend_mirrors_live_checkpoints() {
        let compiled = crate::bytecode::compile(&programs::jacobi(5));
        let mut hooks = NoHooks;
        let mut backend = SimBackend::new();
        let trace = run_with_backend(
            &compiled,
            &SimConfig::new(4),
            &mut hooks,
            FailurePlan::none(),
            CutPicker::AlignedSeq,
            &mut backend,
        );
        assert!(trace.completed());
        let mut live: Vec<(usize, u64)> = trace
            .checkpoints
            .iter()
            .filter(|c| !c.rolled_back)
            .map(|c| (c.proc, c.seq))
            .collect();
        live.sort_unstable();
        assert_eq!(backend.committed().unwrap(), live);
        // Loaded payloads restore to the recorded snapshots.
        for c in trace.checkpoints.iter().filter(|c| !c.rolled_back) {
            let snap = backend.load(c.proc, c.seq).unwrap();
            assert_eq!(snap.to_snapshot(), c.snapshot);
        }
        assert_eq!(backend.latest(0).unwrap(), Some(5));
        assert!(matches!(
            backend.load(0, 999),
            Err(BackendError::Missing { proc: 0, seq: 999 })
        ));
    }

    #[test]
    fn rollback_discards_from_backend_too() {
        let compiled = crate::bytecode::compile(&programs::jacobi(6));
        let mut hooks = NoHooks;
        let mut backend = SimBackend::new();
        let trace = run_with_backend(
            &compiled,
            &SimConfig::new(4),
            &mut hooks,
            FailurePlan::at(vec![(SimTime::from_micros(20_000), 1)]),
            CutPicker::AlignedSeq,
            &mut backend,
        );
        assert!(trace.completed());
        assert_eq!(trace.metrics.failures, 1);
        // After the rollback and re-execution, the committed set equals
        // the final live checkpoint set (re-taken seqs overwrote, rolled
        // back ones were discarded).
        let mut live: Vec<(usize, u64)> = trace
            .checkpoints
            .iter()
            .filter(|c| !c.rolled_back)
            .map(|c| (c.proc, c.seq))
            .collect();
        live.sort_unstable();
        assert_eq!(backend.committed().unwrap(), live);
    }

    #[test]
    fn discard_after_zero_clears_a_process() {
        let mut b = SimBackend::new();
        for seq in 1..=3 {
            b.commit(&StateSnapshot {
                seq,
                proc: 0,
                ..sample()
            })
            .unwrap();
        }
        b.commit(&StateSnapshot {
            proc: 1,
            seq: 1,
            ..sample()
        })
        .unwrap();
        b.discard_after(0, 1).unwrap();
        assert_eq!(b.committed().unwrap(), vec![(0, 1), (1, 1)]);
        b.discard_after(0, 0).unwrap();
        assert_eq!(b.committed().unwrap(), vec![(1, 1)]);
        assert_eq!(b.latest(0).unwrap(), None);
    }
}
