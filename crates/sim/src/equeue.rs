//! The engine's future-event list.
//!
//! Events are keyed by `(time_us, seq)` where `seq` is a unique,
//! monotonically increasing tiebreak assigned at push time, so keys are
//! totally ordered and FIFO within equal timestamps. The engine
//! previously kept one sorted `VecDeque` and paid an O(queue) memmove
//! (`partition_point` + `insert`) on every out-of-order schedule — fine
//! at n = 8, quadratic pain at n = 2048 where thousands of deliveries
//! are in flight.
//!
//! [`CalendarQueue`] replaces it: a classic calendar queue (Brown 1988)
//! bucketing events by `time >> shift` into a power-of-two ring of
//! "days". Each bucket is a small binary min-heap ordered by key —
//! heaps rather than sorted runs because the engine's workloads are
//! tie-heavy (lock-step stencils put thousands of events in the same
//! day), and a sorted bucket degrades to an O(bucket) memmove per
//! operation exactly when buckets fill up. Push is an O(log bucket)
//! sift into one bucket; pop walks the day cursor to the next nonempty
//! in-year bucket and sifts its root out. The structure self-tunes: it
//! rebuilds when occupancy drifts outside the sweet spot or when pops
//! spend too long walking empty days (width too small for the current
//! event spread).
//!
//! Pop order is *identical* to the old sorted queue — keys are unique,
//! so both structures realise the same total order. [`SortedVecQueue`]
//! preserves the old implementation as the reference for the
//! differential tests below; the engine's golden traces double as an
//! end-to-end pin.

use std::collections::VecDeque;

/// Reference implementation: the engine's original sorted `VecDeque`
/// (binary-search insert, pop-front). Kept for differential testing.
pub struct SortedVecQueue<T> {
    q: VecDeque<(u64, u64, T)>,
}

impl<T> SortedVecQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        SortedVecQueue {
            q: VecDeque::with_capacity(256),
        }
    }

    /// Number of queued entries.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Queues `item` under the unique key `(t, seq)`.
    pub fn push(&mut self, t: u64, seq: u64, item: T) {
        let key = (t, seq);
        if self.q.back().is_none_or(|&(bt, bs, _)| (bt, bs) <= key) {
            self.q.push_back((t, seq, item));
        } else {
            let at = self.q.partition_point(|&(qt, qs, _)| (qt, qs) < key);
            self.q.insert(at, (t, seq, item));
        }
    }

    /// The minimum key, if any.
    pub fn peek_key(&self) -> Option<(u64, u64)> {
        self.q.front().map(|&(t, s, _)| (t, s))
    }

    /// Removes and returns the minimum entry.
    pub fn pop(&mut self) -> Option<(u64, u64, T)> {
        self.q.pop_front()
    }
}

impl<T> Default for SortedVecQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// How many full-year cursor sweeps (ending in a global-min scan) we
/// tolerate before concluding the bucket width is mistuned and
/// rebuilding around the observed event spread.
const MAX_OVERFLOW_SCANS: u32 = 4;

/// Re-examine tuning after this many pushes even if occupancy triggers
/// never fire (cheap: rebuilds only happen if parameters actually move).
const TUNE_INTERVAL: u32 = 8192;

/// A self-tuning calendar queue over `(time, seq, item)` entries with
/// unique `(time, seq)` keys. See the module docs.
pub struct CalendarQueue<T> {
    /// Power-of-two ring of day buckets, each a binary min-heap by key.
    buckets: Vec<Vec<(u64, u64, T)>>,
    /// `buckets.len() - 1`.
    mask: u64,
    /// Bucket width is `1 << shift` microseconds.
    shift: u32,
    /// Cursor: no live key has `time >> shift < cur_day`.
    cur_day: u64,
    len: usize,
    overflow_scans: u32,
    pushes_since_tune: u32,
}

impl<T> CalendarQueue<T> {
    /// An empty queue with the initial (16-bucket, 16 µs-day) calendar;
    /// it retunes itself as events arrive.
    pub fn new() -> Self {
        CalendarQueue {
            buckets: (0..16).map(|_| Vec::new()).collect(),
            mask: 15,
            shift: 4,
            cur_day: 0,
            len: 0,
            overflow_scans: 0,
            pushes_since_tune: 0,
        }
    }

    /// Number of queued entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queues `item` under the unique key `(t, seq)`.
    pub fn push(&mut self, t: u64, seq: u64, item: T) {
        let day = t >> self.shift;
        // Keep the cursor invariant: it must never sit past the minimum
        // live day. (The engine never schedules into the past, but the
        // structure doesn't rely on that.)
        if self.len == 0 || day < self.cur_day {
            self.cur_day = day;
        }
        let b = &mut self.buckets[(day & self.mask) as usize];
        bucket_push(b, (t, seq, item));
        self.len += 1;
        self.pushes_since_tune += 1;
        if self.len > 2 * self.buckets.len()
            || (self.buckets.len() > 16 && self.len * 8 < self.buckets.len())
            || self.pushes_since_tune >= TUNE_INTERVAL
        {
            self.retune();
        }
    }

    /// Advances `cur_day` to the minimum live key's day and returns that
    /// key. `&mut` because the cursor (and tuning stats) move; the set of
    /// queued events is untouched.
    pub fn peek_key(&mut self) -> Option<(u64, u64)> {
        if self.len == 0 {
            return None;
        }
        let mut steps = 0u64;
        loop {
            let b = &self.buckets[(self.cur_day & self.mask) as usize];
            // The heap root is the bucket minimum; it belongs to the
            // cursor's year iff its day matches exactly (any event in an
            // earlier year would itself be the minimum).
            if let Some(&(t, s, _)) = b.first() {
                if t >> self.shift == self.cur_day {
                    return Some((t, s));
                }
            }
            self.cur_day += 1;
            steps += 1;
            if steps > self.mask {
                // A full year of empty days: the next event is more than
                // nbuckets × width away. Jump straight to the global
                // minimum, and note the mistuning.
                let (t, s) = self
                    .buckets
                    .iter()
                    .filter_map(|b| b.first())
                    .map(|&(t, s, _)| (t, s))
                    .min()
                    .expect("len > 0 but no bucket has a front");
                self.cur_day = t >> self.shift;
                self.overflow_scans += 1;
                if self.overflow_scans >= MAX_OVERFLOW_SCANS {
                    self.retune();
                }
                return Some((t, s));
            }
        }
    }

    /// Removes and returns the minimum entry.
    pub fn pop(&mut self) -> Option<(u64, u64, T)> {
        self.peek_key()?;
        let b = &mut self.buckets[(self.cur_day & self.mask) as usize];
        let out = bucket_pop(b);
        self.len -= 1;
        Some(out)
    }

    /// Rebuilds the bucket array sized to the current population, with
    /// the width chosen so the live events spread across roughly one
    /// year (mean gap ≈ one day).
    fn retune(&mut self) {
        self.pushes_since_tune = 0;
        self.overflow_scans = 0;
        let (mut min_t, mut max_t) = (u64::MAX, 0u64);
        for b in &self.buckets {
            for &(t, _, _) in b {
                min_t = min_t.min(t);
                max_t = max_t.max(t);
            }
        }
        let nbuckets = self.len.clamp(16, 1 << 16).next_power_of_two();
        let shift = if self.len < 2 {
            4
        } else {
            let gap = ((max_t - min_t) / self.len as u64).max(1);
            (63 - gap.leading_zeros()).min(40)
        };
        if nbuckets == self.buckets.len() && shift == self.shift {
            return;
        }
        let mut items: Vec<(u64, u64, T)> = Vec::with_capacity(self.len);
        for b in &mut self.buckets {
            items.append(b);
        }
        items.sort_unstable_by_key(|&(t, s, _)| (t, s));
        if self.buckets.len() < nbuckets {
            self.buckets.resize_with(nbuckets, Vec::new);
        } else {
            self.buckets.truncate(nbuckets);
        }
        self.mask = nbuckets as u64 - 1;
        self.shift = shift;
        self.cur_day = if items.is_empty() {
            0
        } else {
            items[0].0 >> shift
        };
        // Sorted reinsert: appending ascending keys keeps every bucket
        // a valid heap with zero sift work.
        for (t, seq, item) in items {
            let b = &mut self.buckets[((t >> shift) & self.mask) as usize];
            b.push((t, seq, item));
        }
    }
}

/// Sift-up insertion into one bucket heap (min by `(t, seq)`).
fn bucket_push<T>(b: &mut Vec<(u64, u64, T)>, entry: (u64, u64, T)) {
    b.push(entry);
    let mut i = b.len() - 1;
    while i > 0 {
        let parent = (i - 1) / 2;
        if (b[parent].0, b[parent].1) <= (b[i].0, b[i].1) {
            break;
        }
        b.swap(i, parent);
        i = parent;
    }
}

/// Removes the root (minimum) of one nonempty bucket heap.
fn bucket_pop<T>(b: &mut Vec<(u64, u64, T)>) -> (u64, u64, T) {
    let last = b.len() - 1;
    b.swap(0, last);
    let out = b.pop().expect("bucket_pop on empty bucket");
    let mut i = 0;
    loop {
        let l = 2 * i + 1;
        if l >= b.len() {
            break;
        }
        let r = l + 1;
        let c = if r < b.len() && (b[r].0, b[r].1) < (b[l].0, b[l].1) {
            r
        } else {
            l
        };
        if (b[c].0, b[c].1) < (b[i].0, b[i].1) {
            b.swap(i, c);
            i = c;
        } else {
            break;
        }
    }
    out
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acfc_util::rng::Rng;

    /// Drives both queues through the same randomized push/pop schedule
    /// and asserts identical pop order (keys and payloads).
    fn differential(seed: u64, ops: usize, time_gen: impl Fn(&mut Rng, u64) -> u64) {
        let mut rng = Rng::seed_from_u64(seed);
        let mut cal: CalendarQueue<u64> = CalendarQueue::new();
        let mut refq: SortedVecQueue<u64> = SortedVecQueue::new();
        let mut seq = 0u64;
        let mut clock = 0u64; // loosely advancing "now"
        for op in 0..ops {
            // Bias towards pushes early, drain later.
            let push = refq.is_empty() || rng.next_u64() % 100 < if op < ops / 2 { 70 } else { 35 };
            if push {
                let t = time_gen(&mut rng, clock);
                cal.push(t, seq, seq);
                refq.push(t, seq, seq);
                seq += 1;
            } else {
                let want = refq.pop().unwrap();
                assert_eq!(cal.peek_key(), Some((want.0, want.1)));
                let got = cal.pop().unwrap();
                assert_eq!(got, want, "divergent pop at op {op}");
                clock = clock.max(want.0);
            }
            assert_eq!(cal.len(), refq.len());
        }
        // Drain both completely.
        while let Some(want) = refq.pop() {
            assert_eq!(cal.pop().unwrap(), want);
        }
        assert_eq!(cal.len(), 0);
    }

    #[test]
    fn differential_uniform_times() {
        differential(1, 4000, |rng, now| now + rng.next_u64() % 1000);
    }

    #[test]
    fn differential_heavy_ties_fifo_within_key() {
        // Timestamps drawn from a tiny set: most keys collide on time
        // and order is decided by seq (FIFO). This pins the tiebreak.
        differential(2, 4000, |rng, _| rng.next_u64() % 8);
    }

    #[test]
    fn differential_clustered_with_huge_gaps() {
        // Bursts around "now" plus occasional far-future outliers — the
        // shape that forces cursor overflow scans and retuning.
        differential(3, 4000, |rng, now| {
            if rng.next_u64() % 20 == 0 {
                now + 1_000_000 + rng.next_u64() % 1_000_000
            } else {
                now + rng.next_u64() % 64
            }
        });
    }

    #[test]
    fn differential_engine_like_schedule() {
        // Mimics the engine: mostly short compute yields at `now`, plus
        // message deliveries ~setup+jitter in the future.
        differential(4, 6000, |rng, now| match rng.next_u64() % 10 {
            0..=5 => now,
            6..=8 => now + 100 + rng.next_u64() % 40,
            _ => now + 4000,
        });
    }

    #[test]
    fn differential_large_population() {
        // Enough live entries to force several grow/shrink rebuilds.
        differential(5, 60_000, |rng, now| now + rng.next_u64() % 10_000);
    }

    #[test]
    fn push_below_cursor_is_found_first() {
        let mut q: CalendarQueue<&str> = CalendarQueue::new();
        q.push(10_000, 0, "late");
        assert_eq!(q.peek_key(), Some((10_000, 0)));
        // Cursor has advanced to the late event's day; an earlier push
        // must still come out first.
        q.push(5, 1, "early");
        assert_eq!(q.pop().unwrap().2, "early");
        assert_eq!(q.pop().unwrap().2, "late");
        assert!(q.pop().is_none());
    }

    #[test]
    fn empty_queue_behaves() {
        let mut q: CalendarQueue<()> = CalendarQueue::new();
        assert_eq!(q.len(), 0);
        assert_eq!(q.peek_key(), None);
        assert!(q.pop().is_none());
    }
}
