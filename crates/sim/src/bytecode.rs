//! Compilation of MPSL programs to a flat instruction sequence.
//!
//! The simulator does not interpret the AST directly: structured control
//! flow is compiled to jumps so that per-process execution state is a
//! single program counter plus a variable store — which is exactly what a
//! checkpoint snapshot needs to capture.
//!
//! Compilation produces two parallel representations of the same code:
//!
//! * [`Instr`] — the AST-carrying form, kept as the analysis-facing
//!   surface (expressions are inspectable trees, names are strings);
//! * [`LowInstr`] — the **lowered** form the engine executes: `Copy`
//!   instructions whose expressions are [`ExprRef`] ranges into one
//!   shared constant-folded postfix [`Op`] pool, and whose variable and
//!   parameter names are interned into dense slot indices
//!   ([`Compiled::var_names`] / [`Compiled::param_names`]).
//!
//! The two arrays are index-for-index identical (`lowered[pc]` lowers
//! `code[pc]`), so program counters — including the `pc` captured in
//! checkpoint snapshots — mean the same thing in both.

use acfc_mpsl::lowered::{lower_expr, Op, SlotResolver};
use acfc_mpsl::{BinOp, Block, Expr, Program, RecvSrc, StmtId, StmtKind};
use std::collections::HashMap;
use std::sync::Arc;

/// One executable instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// Local computation costing `cost` (expression value, in
    /// milliseconds of simulated time).
    Compute {
        /// Cost expression.
        cost: Expr,
        /// Originating statement.
        stmt: StmtId,
    },
    /// Variable assignment.
    Assign {
        /// Target variable.
        var: String,
        /// Right-hand side.
        value: Expr,
        /// Originating statement.
        stmt: StmtId,
    },
    /// Send a message.
    Send {
        /// Destination rank expression.
        dest: Expr,
        /// Size in bits.
        size_bits: Expr,
        /// Originating statement.
        stmt: StmtId,
    },
    /// Blocking receive.
    Recv {
        /// Source spec.
        src: RecvSrc,
        /// Originating statement.
        stmt: StmtId,
    },
    /// Take a checkpoint.
    Checkpoint {
        /// Originating statement (the paper's static checkpoint node id).
        stmt: StmtId,
        /// Optional label.
        label: Option<String>,
    },
    /// Unconditional jump.
    Jump {
        /// Target pc.
        target: usize,
    },
    /// Jump when the condition evaluates to zero.
    JumpIfFalse {
        /// Condition.
        cond: Expr,
        /// Target pc when false.
        target: usize,
        /// Originating statement.
        stmt: StmtId,
    },
    /// Normal termination.
    Halt,
}

/// A range of a [`Compiled::ops`] pool holding one lowered expression
/// in postfix order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExprRef {
    /// First op index.
    pub start: u32,
    /// Number of ops.
    pub len: u32,
}

impl ExprRef {
    /// The ops of this expression within `pool`.
    #[inline]
    pub fn ops<'a>(&self, pool: &'a [Op]) -> &'a [Op] {
        &pool[self.start as usize..(self.start + self.len) as usize]
    }
}

/// Sentinel for "no label" in [`LowInstr::Checkpoint`].
pub const NO_LABEL: u32 = u32::MAX;

/// Lowered receive source.
#[derive(Debug, Clone, Copy)]
pub enum LowSrc {
    /// Receive from any sender.
    Any,
    /// Receive from the rank this expression evaluates to.
    Rank(ExprRef),
}

/// One lowered instruction: the `Copy` mirror of [`Instr`] the engine
/// steps without cloning. Statement ids are kept only where the engine
/// records them (sends, receives, checkpoints).
#[derive(Debug, Clone, Copy)]
pub enum LowInstr {
    /// Local computation costing `cost` expression value.
    Compute {
        /// Cost expression.
        cost: ExprRef,
    },
    /// Assignment to variable slot `var`.
    Assign {
        /// Target variable slot.
        var: u32,
        /// Right-hand side.
        value: ExprRef,
    },
    /// Send a message.
    Send {
        /// Destination rank expression.
        dest: ExprRef,
        /// Size in bits.
        size_bits: ExprRef,
        /// Originating statement.
        stmt: StmtId,
    },
    /// Blocking receive.
    Recv {
        /// Source spec.
        src: LowSrc,
        /// Originating statement.
        stmt: StmtId,
    },
    /// Take a checkpoint.
    Checkpoint {
        /// Originating statement.
        stmt: StmtId,
        /// Index into [`Compiled::labels`], or [`NO_LABEL`].
        label: u32,
    },
    /// Unconditional jump.
    Jump {
        /// Target pc.
        target: u32,
    },
    /// Jump when the condition evaluates to zero.
    JumpIfFalse {
        /// Condition.
        cond: ExprRef,
        /// Target pc when false.
        target: u32,
    },
    /// Normal termination.
    Halt,
}

/// A compiled program: the shared instruction sequence every process
/// executes (SPMD), plus metadata.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// Program name.
    pub name: String,
    /// Flat code; `Halt` terminated.
    pub code: Vec<Instr>,
    /// Default parameter bindings from the program header.
    pub params: Vec<(String, i64)>,
    /// Declared variables (all initialised to 0).
    pub vars: Vec<String>,
    /// Lowered code, index-for-index parallel to [`Compiled::code`].
    pub lowered: Vec<LowInstr>,
    /// The shared postfix op pool [`ExprRef`]s point into.
    pub ops: Vec<Op>,
    /// Variable slot names: the declared variables first (in
    /// declaration order), then any undeclared names the code assigns
    /// or reads.
    pub var_names: Arc<[String]>,
    /// Parameter slot names: declared parameters first, then any
    /// undeclared names the code references.
    pub param_names: Vec<String>,
    /// Checkpoint label table ([`LowInstr::Checkpoint`] indexes this).
    /// `Arc<str>` so recording a labelled checkpoint is a refcount
    /// bump, not a heap copy.
    pub labels: Vec<Arc<str>>,
    /// One past the largest statement id appearing in the code (the
    /// size of dense per-statement tables).
    pub stmt_limit: u32,
}

impl Compiled {
    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// `true` when the program is just `Halt`.
    pub fn is_empty(&self) -> bool {
        self.code.len() <= 1
    }
}

/// Compiles a program. Collectives are lowered first (on a clone).
///
/// # Examples
///
/// ```
/// let p = acfc_mpsl::parse("program t; var i; for i in 0..2 { checkpoint; }").unwrap();
/// let c = acfc_sim::compile(&p);
/// assert!(c.code.iter().any(|i| matches!(i, acfc_sim::Instr::Checkpoint { .. })));
/// ```
pub fn compile(program: &Program) -> Compiled {
    let _span = acfc_obs::span("sim/lower");
    let mut source = program.clone();
    if source.has_collectives() {
        source.lower_collectives();
    }
    let mut code = Vec::new();
    emit_block(&mut code, &source.body);
    code.push(Instr::Halt);
    let mut interner = Interner::new(
        source.vars.iter().cloned(),
        source.params.iter().map(|(name, _)| name.clone()),
    );
    let mut ops = Vec::new();
    let mut labels = Vec::new();
    let mut stmt_limit = 0u32;
    let lowered = code
        .iter()
        .map(|instr| lower_instr(instr, &mut interner, &mut ops, &mut labels, &mut stmt_limit))
        .collect();
    Compiled {
        name: source.name.clone(),
        code,
        params: source.params.clone(),
        vars: source.vars.clone(),
        lowered,
        ops,
        var_names: interner.var_names.into(),
        param_names: interner.param_names,
        labels,
        stmt_limit,
    }
}

/// Interns names to dense slots during lowering; declared names get the
/// leading slots so the engine can mark exactly that prefix as bound at
/// start-up.
struct Interner {
    var_names: Vec<String>,
    var_index: HashMap<String, u32>,
    param_names: Vec<String>,
    param_index: HashMap<String, u32>,
}

impl Interner {
    fn new(
        declared_vars: impl Iterator<Item = String>,
        declared_params: impl Iterator<Item = String>,
    ) -> Interner {
        let mut interner = Interner {
            var_names: Vec::new(),
            var_index: HashMap::new(),
            param_names: Vec::new(),
            param_index: HashMap::new(),
        };
        for v in declared_vars {
            interner.var_slot(&v);
        }
        for p in declared_params {
            interner.param_slot(&p);
        }
        interner
    }
}

impl SlotResolver for Interner {
    fn var_slot(&mut self, name: &str) -> u32 {
        if let Some(&slot) = self.var_index.get(name) {
            return slot;
        }
        let slot = self.var_names.len() as u32;
        self.var_names.push(name.to_string());
        self.var_index.insert(name.to_string(), slot);
        slot
    }

    fn param_slot(&mut self, name: &str) -> u32 {
        if let Some(&slot) = self.param_index.get(name) {
            return slot;
        }
        let slot = self.param_names.len() as u32;
        self.param_names.push(name.to_string());
        self.param_index.insert(name.to_string(), slot);
        slot
    }
}

fn lower_instr(
    instr: &Instr,
    interner: &mut Interner,
    ops: &mut Vec<Op>,
    labels: &mut Vec<Arc<str>>,
    stmt_limit: &mut u32,
) -> LowInstr {
    let mut expr = |e: &Expr| -> ExprRef {
        let start = ops.len() as u32;
        lower_expr(e, interner, ops);
        ExprRef {
            start,
            len: ops.len() as u32 - start,
        }
    };
    let mut note_stmt = |sid: StmtId| *stmt_limit = (*stmt_limit).max(sid.0 + 1);
    match instr {
        Instr::Compute { cost, stmt } => {
            note_stmt(*stmt);
            LowInstr::Compute { cost: expr(cost) }
        }
        Instr::Assign { var, value, stmt } => {
            note_stmt(*stmt);
            let value = expr(value);
            LowInstr::Assign {
                var: interner.var_slot(var),
                value,
            }
        }
        Instr::Send {
            dest,
            size_bits,
            stmt,
        } => {
            note_stmt(*stmt);
            LowInstr::Send {
                dest: expr(dest),
                size_bits: expr(size_bits),
                stmt: *stmt,
            }
        }
        Instr::Recv { src, stmt } => {
            note_stmt(*stmt);
            LowInstr::Recv {
                src: match src {
                    RecvSrc::Any => LowSrc::Any,
                    RecvSrc::Rank(e) => LowSrc::Rank(expr(e)),
                },
                stmt: *stmt,
            }
        }
        Instr::Checkpoint { stmt, label } => {
            note_stmt(*stmt);
            let label = match label {
                Some(text) => {
                    labels.push(text.as_str().into());
                    (labels.len() - 1) as u32
                }
                None => NO_LABEL,
            };
            LowInstr::Checkpoint { stmt: *stmt, label }
        }
        Instr::Jump { target } => LowInstr::Jump {
            target: *target as u32,
        },
        Instr::JumpIfFalse { cond, target, stmt } => {
            note_stmt(*stmt);
            LowInstr::JumpIfFalse {
                cond: expr(cond),
                target: *target as u32,
            }
        }
        Instr::Halt => LowInstr::Halt,
    }
}

fn emit_block(code: &mut Vec<Instr>, block: &Block) {
    for stmt in block {
        let sid = stmt.id;
        match &stmt.kind {
            StmtKind::Compute { cost } => code.push(Instr::Compute {
                cost: cost.clone(),
                stmt: sid,
            }),
            StmtKind::Assign { var, value } => code.push(Instr::Assign {
                var: var.clone(),
                value: value.clone(),
                stmt: sid,
            }),
            StmtKind::Send { dest, size_bits } => code.push(Instr::Send {
                dest: dest.clone(),
                size_bits: size_bits.clone(),
                stmt: sid,
            }),
            StmtKind::Recv { src } => code.push(Instr::Recv {
                src: src.clone(),
                stmt: sid,
            }),
            StmtKind::Checkpoint { label } => code.push(Instr::Checkpoint {
                stmt: sid,
                label: label.clone(),
            }),
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let jif_at = code.len();
                code.push(Instr::JumpIfFalse {
                    cond: cond.clone(),
                    target: usize::MAX,
                    stmt: sid,
                });
                emit_block(code, then_branch);
                if else_branch.is_empty() {
                    let after = code.len();
                    patch_jif(code, jif_at, after);
                } else {
                    let jmp_at = code.len();
                    code.push(Instr::Jump { target: usize::MAX });
                    let else_start = code.len();
                    patch_jif(code, jif_at, else_start);
                    emit_block(code, else_branch);
                    let after = code.len();
                    patch_jump(code, jmp_at, after);
                }
            }
            StmtKind::While { cond, body } => {
                let check_at = code.len();
                code.push(Instr::JumpIfFalse {
                    cond: cond.clone(),
                    target: usize::MAX,
                    stmt: sid,
                });
                emit_block(code, body);
                code.push(Instr::Jump { target: check_at });
                let after = code.len();
                patch_jif(code, check_at, after);
            }
            StmtKind::For {
                var,
                from,
                to,
                body,
            } => {
                code.push(Instr::Assign {
                    var: var.clone(),
                    value: from.clone(),
                    stmt: sid,
                });
                let check_at = code.len();
                code.push(Instr::JumpIfFalse {
                    cond: Expr::bin(BinOp::Lt, Expr::Var(var.clone()), to.clone()),
                    target: usize::MAX,
                    stmt: sid,
                });
                emit_block(code, body);
                code.push(Instr::Assign {
                    var: var.clone(),
                    value: Expr::bin(BinOp::Add, Expr::Var(var.clone()), Expr::Int(1)),
                    stmt: sid,
                });
                code.push(Instr::Jump { target: check_at });
                let after = code.len();
                patch_jif(code, check_at, after);
            }
            StmtKind::Bcast { .. } | StmtKind::Exchange { .. } => {
                unreachable!("collectives lowered before compilation")
            }
        }
    }
}

fn patch_jif(code: &mut [Instr], at: usize, to: usize) {
    if let Instr::JumpIfFalse { target, .. } = &mut code[at] {
        *target = to;
    } else {
        unreachable!("patch_jif on non-JumpIfFalse");
    }
}

fn patch_jump(code: &mut [Instr], at: usize, to: usize) {
    if let Instr::Jump { target } = &mut code[at] {
        *target = to;
    } else {
        unreachable!("patch_jump on non-Jump");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acfc_mpsl::parse;

    fn compile_src(src: &str) -> Compiled {
        compile(&parse(src).unwrap())
    }

    #[test]
    fn straight_line_compiles_in_order() {
        let c = compile_src("program t; compute 1; checkpoint; send to 0;");
        assert!(matches!(c.code[0], Instr::Compute { .. }));
        assert!(matches!(c.code[1], Instr::Checkpoint { .. }));
        assert!(matches!(c.code[2], Instr::Send { .. }));
        assert!(matches!(c.code[3], Instr::Halt));
    }

    #[test]
    fn if_else_jumps_are_patched() {
        let c =
            compile_src("program t; if rank == 0 { compute 1; } else { compute 2; } checkpoint;");
        // 0: JIF -> 3 (else), 1: compute, 2: Jump -> 4, 3: compute, 4: chkpt
        let Instr::JumpIfFalse { target, .. } = &c.code[0] else {
            panic!()
        };
        assert_eq!(*target, 3);
        let Instr::Jump { target } = &c.code[2] else {
            panic!()
        };
        assert_eq!(*target, 4);
        assert!(matches!(c.code[4], Instr::Checkpoint { .. }));
    }

    #[test]
    fn if_without_else_falls_through() {
        let c = compile_src("program t; if rank == 0 { compute 1; } checkpoint;");
        let Instr::JumpIfFalse { target, .. } = &c.code[0] else {
            panic!()
        };
        assert_eq!(*target, 2);
        assert!(matches!(c.code[2], Instr::Checkpoint { .. }));
    }

    #[test]
    fn while_loops_back_to_check() {
        let c = compile_src("program t; var i; while i < 2 { i := i + 1; } checkpoint;");
        // 0: JIF -> 3, 1: assign, 2: Jump -> 0, 3: chkpt
        let Instr::JumpIfFalse { target, .. } = &c.code[0] else {
            panic!()
        };
        assert_eq!(*target, 3);
        let Instr::Jump { target } = &c.code[2] else {
            panic!()
        };
        assert_eq!(*target, 0);
    }

    #[test]
    fn for_desugars_with_init_and_incr() {
        let c = compile_src("program t; var i; for i in 0..3 { compute 1; }");
        assert!(matches!(c.code[0], Instr::Assign { .. })); // init
        assert!(matches!(c.code[1], Instr::JumpIfFalse { .. }));
        assert!(matches!(c.code[2], Instr::Compute { .. }));
        assert!(matches!(c.code[3], Instr::Assign { .. })); // incr
        assert!(matches!(c.code[4], Instr::Jump { .. }));
        assert!(matches!(c.code[5], Instr::Halt));
    }

    #[test]
    fn no_unpatched_targets_in_stock_programs() {
        for p in acfc_mpsl::programs::all_stock() {
            let c = compile(&p);
            for (pc, instr) in c.code.iter().enumerate() {
                let target = match instr {
                    Instr::Jump { target } => Some(*target),
                    Instr::JumpIfFalse { target, .. } => Some(*target),
                    _ => None,
                };
                if let Some(t) = target {
                    assert!(t <= c.code.len(), "{}: pc {pc} target {t} wild", p.name);
                    assert_ne!(t, usize::MAX, "{}: pc {pc} unpatched", p.name);
                }
            }
            assert!(matches!(c.code.last(), Some(Instr::Halt)));
        }
    }

    #[test]
    fn collectives_compile_to_point_to_point() {
        let c = compile_src("program t; exchange with rank + 1 size 64;");
        assert!(c.code.iter().any(|i| matches!(i, Instr::Send { .. })));
        assert!(c.code.iter().any(|i| matches!(i, Instr::Recv { .. })));
    }
}
