//! Compilation of MPSL programs to a flat instruction sequence.
//!
//! The simulator does not interpret the AST directly: structured control
//! flow is compiled to jumps so that per-process execution state is a
//! single program counter plus a variable store — which is exactly what a
//! checkpoint snapshot needs to capture.

use acfc_mpsl::{BinOp, Block, Expr, Program, RecvSrc, StmtId, StmtKind};

/// One executable instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// Local computation costing `cost` (expression value, in
    /// milliseconds of simulated time).
    Compute {
        /// Cost expression.
        cost: Expr,
        /// Originating statement.
        stmt: StmtId,
    },
    /// Variable assignment.
    Assign {
        /// Target variable.
        var: String,
        /// Right-hand side.
        value: Expr,
        /// Originating statement.
        stmt: StmtId,
    },
    /// Send a message.
    Send {
        /// Destination rank expression.
        dest: Expr,
        /// Size in bits.
        size_bits: Expr,
        /// Originating statement.
        stmt: StmtId,
    },
    /// Blocking receive.
    Recv {
        /// Source spec.
        src: RecvSrc,
        /// Originating statement.
        stmt: StmtId,
    },
    /// Take a checkpoint.
    Checkpoint {
        /// Originating statement (the paper's static checkpoint node id).
        stmt: StmtId,
        /// Optional label.
        label: Option<String>,
    },
    /// Unconditional jump.
    Jump {
        /// Target pc.
        target: usize,
    },
    /// Jump when the condition evaluates to zero.
    JumpIfFalse {
        /// Condition.
        cond: Expr,
        /// Target pc when false.
        target: usize,
        /// Originating statement.
        stmt: StmtId,
    },
    /// Normal termination.
    Halt,
}

/// A compiled program: the shared instruction sequence every process
/// executes (SPMD), plus metadata.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// Program name.
    pub name: String,
    /// Flat code; `Halt` terminated.
    pub code: Vec<Instr>,
    /// Default parameter bindings from the program header.
    pub params: Vec<(String, i64)>,
    /// Declared variables (all initialised to 0).
    pub vars: Vec<String>,
}

impl Compiled {
    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// `true` when the program is just `Halt`.
    pub fn is_empty(&self) -> bool {
        self.code.len() <= 1
    }
}

/// Compiles a program. Collectives are lowered first (on a clone).
///
/// # Examples
///
/// ```
/// let p = acfc_mpsl::parse("program t; var i; for i in 0..2 { checkpoint; }").unwrap();
/// let c = acfc_sim::compile(&p);
/// assert!(c.code.iter().any(|i| matches!(i, acfc_sim::Instr::Checkpoint { .. })));
/// ```
pub fn compile(program: &Program) -> Compiled {
    let mut lowered = program.clone();
    if lowered.has_collectives() {
        lowered.lower_collectives();
    }
    let mut code = Vec::new();
    emit_block(&mut code, &lowered.body);
    code.push(Instr::Halt);
    Compiled {
        name: lowered.name.clone(),
        code,
        params: lowered.params.clone(),
        vars: lowered.vars.clone(),
    }
}

fn emit_block(code: &mut Vec<Instr>, block: &Block) {
    for stmt in block {
        let sid = stmt.id;
        match &stmt.kind {
            StmtKind::Compute { cost } => code.push(Instr::Compute {
                cost: cost.clone(),
                stmt: sid,
            }),
            StmtKind::Assign { var, value } => code.push(Instr::Assign {
                var: var.clone(),
                value: value.clone(),
                stmt: sid,
            }),
            StmtKind::Send { dest, size_bits } => code.push(Instr::Send {
                dest: dest.clone(),
                size_bits: size_bits.clone(),
                stmt: sid,
            }),
            StmtKind::Recv { src } => code.push(Instr::Recv {
                src: src.clone(),
                stmt: sid,
            }),
            StmtKind::Checkpoint { label } => code.push(Instr::Checkpoint {
                stmt: sid,
                label: label.clone(),
            }),
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let jif_at = code.len();
                code.push(Instr::JumpIfFalse {
                    cond: cond.clone(),
                    target: usize::MAX,
                    stmt: sid,
                });
                emit_block(code, then_branch);
                if else_branch.is_empty() {
                    let after = code.len();
                    patch_jif(code, jif_at, after);
                } else {
                    let jmp_at = code.len();
                    code.push(Instr::Jump { target: usize::MAX });
                    let else_start = code.len();
                    patch_jif(code, jif_at, else_start);
                    emit_block(code, else_branch);
                    let after = code.len();
                    patch_jump(code, jmp_at, after);
                }
            }
            StmtKind::While { cond, body } => {
                let check_at = code.len();
                code.push(Instr::JumpIfFalse {
                    cond: cond.clone(),
                    target: usize::MAX,
                    stmt: sid,
                });
                emit_block(code, body);
                code.push(Instr::Jump { target: check_at });
                let after = code.len();
                patch_jif(code, check_at, after);
            }
            StmtKind::For {
                var,
                from,
                to,
                body,
            } => {
                code.push(Instr::Assign {
                    var: var.clone(),
                    value: from.clone(),
                    stmt: sid,
                });
                let check_at = code.len();
                code.push(Instr::JumpIfFalse {
                    cond: Expr::bin(BinOp::Lt, Expr::Var(var.clone()), to.clone()),
                    target: usize::MAX,
                    stmt: sid,
                });
                emit_block(code, body);
                code.push(Instr::Assign {
                    var: var.clone(),
                    value: Expr::bin(BinOp::Add, Expr::Var(var.clone()), Expr::Int(1)),
                    stmt: sid,
                });
                code.push(Instr::Jump { target: check_at });
                let after = code.len();
                patch_jif(code, check_at, after);
            }
            StmtKind::Bcast { .. } | StmtKind::Exchange { .. } => {
                unreachable!("collectives lowered before compilation")
            }
        }
    }
}

fn patch_jif(code: &mut [Instr], at: usize, to: usize) {
    if let Instr::JumpIfFalse { target, .. } = &mut code[at] {
        *target = to;
    } else {
        unreachable!("patch_jif on non-JumpIfFalse");
    }
}

fn patch_jump(code: &mut [Instr], at: usize, to: usize) {
    if let Instr::Jump { target } = &mut code[at] {
        *target = to;
    } else {
        unreachable!("patch_jump on non-Jump");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acfc_mpsl::parse;

    fn compile_src(src: &str) -> Compiled {
        compile(&parse(src).unwrap())
    }

    #[test]
    fn straight_line_compiles_in_order() {
        let c = compile_src("program t; compute 1; checkpoint; send to 0;");
        assert!(matches!(c.code[0], Instr::Compute { .. }));
        assert!(matches!(c.code[1], Instr::Checkpoint { .. }));
        assert!(matches!(c.code[2], Instr::Send { .. }));
        assert!(matches!(c.code[3], Instr::Halt));
    }

    #[test]
    fn if_else_jumps_are_patched() {
        let c = compile_src("program t; if rank == 0 { compute 1; } else { compute 2; } checkpoint;");
        // 0: JIF -> 3 (else), 1: compute, 2: Jump -> 4, 3: compute, 4: chkpt
        let Instr::JumpIfFalse { target, .. } = &c.code[0] else {
            panic!()
        };
        assert_eq!(*target, 3);
        let Instr::Jump { target } = &c.code[2] else {
            panic!()
        };
        assert_eq!(*target, 4);
        assert!(matches!(c.code[4], Instr::Checkpoint { .. }));
    }

    #[test]
    fn if_without_else_falls_through() {
        let c = compile_src("program t; if rank == 0 { compute 1; } checkpoint;");
        let Instr::JumpIfFalse { target, .. } = &c.code[0] else {
            panic!()
        };
        assert_eq!(*target, 2);
        assert!(matches!(c.code[2], Instr::Checkpoint { .. }));
    }

    #[test]
    fn while_loops_back_to_check() {
        let c = compile_src("program t; var i; while i < 2 { i := i + 1; } checkpoint;");
        // 0: JIF -> 3, 1: assign, 2: Jump -> 0, 3: chkpt
        let Instr::JumpIfFalse { target, .. } = &c.code[0] else {
            panic!()
        };
        assert_eq!(*target, 3);
        let Instr::Jump { target } = &c.code[2] else {
            panic!()
        };
        assert_eq!(*target, 0);
    }

    #[test]
    fn for_desugars_with_init_and_incr() {
        let c = compile_src("program t; var i; for i in 0..3 { compute 1; }");
        assert!(matches!(c.code[0], Instr::Assign { .. })); // init
        assert!(matches!(c.code[1], Instr::JumpIfFalse { .. }));
        assert!(matches!(c.code[2], Instr::Compute { .. }));
        assert!(matches!(c.code[3], Instr::Assign { .. })); // incr
        assert!(matches!(c.code[4], Instr::Jump { .. }));
        assert!(matches!(c.code[5], Instr::Halt));
    }

    #[test]
    fn no_unpatched_targets_in_stock_programs() {
        for p in acfc_mpsl::programs::all_stock() {
            let c = compile(&p);
            for (pc, instr) in c.code.iter().enumerate() {
                let target = match instr {
                    Instr::Jump { target } => Some(*target),
                    Instr::JumpIfFalse { target, .. } => Some(*target),
                    _ => None,
                };
                if let Some(t) = target {
                    assert!(t <= c.code.len(), "{}: pc {pc} target {t} wild", p.name);
                    assert_ne!(t, usize::MAX, "{}: pc {pc} unpatched", p.name);
                }
            }
            assert!(matches!(c.code.last(), Some(Instr::Halt)));
        }
    }

    #[test]
    fn collectives_compile_to_point_to_point() {
        let c = compile_src("program t; exchange with rank + 1 size 64;");
        assert!(c.code.iter().any(|i| matches!(i, Instr::Send { .. })));
        assert!(c.code.iter().any(|i| matches!(i, Instr::Recv { .. })));
    }
}
