//! Protocol hook points.
//!
//! The engine executes the *application*; checkpointing **protocols**
//! (the paper's comparison baselines — uncoordinated, sync-and-stop,
//! Chandy–Lamport, communication-induced) customise its behaviour through
//! this trait. The application-driven protocol of the paper is the
//! degenerate case: no hooks at all ([`NoHooks`]) — checkpoints happen
//! exactly where the offline analysis placed the statements, with no
//! control messages and no coordination stall, which is the paper's
//! central claim.

use crate::time::SimTime;
use crate::trace::CkptTrigger;

/// Action a protocol can demand when a message is received.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvAction {
    /// Deliver normally.
    Deliver,
    /// Take a forced checkpoint *before* delivering (communication-
    /// induced checkpointing).
    ForceCheckpointFirst,
}

/// Extra cost a protocol charges when a checkpoint is taken.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoordinationCost {
    /// Additional stall imposed on the process, µs (e.g. the
    /// synchronise-and-stop quiesce time).
    pub stall_us: u64,
    /// Control messages exchanged (counted into metrics; modelled as
    /// off-band traffic).
    pub control_messages: u64,
    /// Control bits exchanged.
    pub control_bits: u64,
}

/// Protocol customisation points. All methods have no-op defaults.
pub trait Hooks {
    /// Value to piggyback on an outgoing application message from `p`
    /// to `to`. The engine passes the sender's current dynamic
    /// checkpoint sequence number, which index-based CIC protocols
    /// piggyback verbatim; vector-carrying protocols use `to` for
    /// per-peer send tracking and return a token into their own
    /// payload store.
    fn piggyback(&mut self, _p: usize, _to: usize, ckpt_seq: u64, _now: SimTime) -> u64 {
        ckpt_seq
    }

    /// Called when process `p` is about to consume a message carrying
    /// `piggyback`; `own_seq` is `p`'s current checkpoint count.
    fn on_recv(&mut self, _p: usize, _piggyback: u64, _own_seq: u64, _now: SimTime) -> RecvAction {
        RecvAction::Deliver
    }

    /// Whether an application `checkpoint` statement should actually
    /// take a checkpoint (`false` = skip; baseline protocols that use
    /// their own schedule return `false`).
    fn take_app_checkpoint(&mut self, _p: usize, _now: SimTime) -> bool {
        true
    }

    /// Polled at instruction boundaries: return `true` to take a
    /// protocol-scheduled (timer) checkpoint now.
    fn timer_checkpoint_due(&mut self, _p: usize, _now: SimTime) -> bool {
        false
    }

    /// Whether [`Hooks::timer_checkpoint_due`] can ever return `true`.
    /// Queried once per run: when `false`, the engine elides the
    /// per-instruction timer poll entirely. The default is
    /// conservatively `true` — an implementation that never schedules
    /// timer checkpoints may override this to `false` as a pure
    /// optimisation, and forgetting to do so only costs the poll.
    fn uses_timers(&mut self) -> bool {
        true
    }

    /// Whether every customisation point keeps its default behaviour.
    /// Queried once per run: when `true`, the engine skips the dynamic
    /// hook dispatch on the per-message and per-checkpoint hot paths
    /// and inlines the defaults (deliver, piggyback the sequence
    /// number, honour application checkpoints, charge nothing).
    /// [`NoHooks`] — the paper's application-driven protocol — answers
    /// `true`; an implementation overriding any other method must leave
    /// this `false` (the default).
    fn passive(&mut self) -> bool {
        false
    }

    /// The trigger recorded for checkpoints fired by
    /// [`Hooks::timer_checkpoint_due`]. Coordinated protocols (SaS,
    /// Chandy–Lamport) override this to
    /// [`CkptTrigger::Coordinated`].
    fn timer_trigger(&mut self, _p: usize) -> CkptTrigger {
        CkptTrigger::Timer
    }

    /// Coordination cost charged whenever a checkpoint is taken
    /// (any trigger). The paper's application-driven protocol charges
    /// nothing — that is the point.
    fn coordination_cost(&mut self, _p: usize, _now: SimTime) -> CoordinationCost {
        CoordinationCost::default()
    }

    /// Called after a checkpoint of `p` has been recorded (any
    /// trigger). Index-based CIC protocols use this to advance their
    /// logical clocks: a timer checkpoint bumps the local index, a
    /// forced one absorbs the piggybacked value that demanded it.
    fn checkpoint_taken(&mut self, _p: usize, _trigger: CkptTrigger, _now: SimTime) {}
}

/// The application-driven (coordination-free) behaviour: checkpoints
/// exactly at the analysis-placed statements, zero protocol cost.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoHooks;

impl Hooks for NoHooks {
    fn uses_timers(&mut self) -> bool {
        false
    }

    fn passive(&mut self) -> bool {
        true
    }
}

/// A simple timer-driven schedule: take a local checkpoint every
/// `interval_us`, optionally skewed per process, ignoring application
/// checkpoint statements. This is the *uncoordinated* baseline; the
/// richer protocols in `acfc-protocols` build on the same mechanism.
#[derive(Debug, Clone)]
pub struct TimerCheckpoints {
    intervals: Vec<u64>,
    next_due: Vec<u64>,
    /// Whether application checkpoint statements are honoured too.
    pub keep_app_checkpoints: bool,
}

impl TimerCheckpoints {
    /// Every process checkpoints every `interval_us`, with process `p`
    /// phase-shifted by `p * skew_us`.
    pub fn new(nprocs: usize, interval_us: u64, skew_us: u64) -> TimerCheckpoints {
        assert!(interval_us > 0, "interval must be positive");
        TimerCheckpoints {
            intervals: vec![interval_us; nprocs],
            next_due: (0..nprocs)
                .map(|p| interval_us + p as u64 * skew_us)
                .collect(),
            keep_app_checkpoints: false,
        }
    }
}

impl Hooks for TimerCheckpoints {
    fn take_app_checkpoint(&mut self, _p: usize, _now: SimTime) -> bool {
        self.keep_app_checkpoints
    }

    fn timer_checkpoint_due(&mut self, p: usize, now: SimTime) -> bool {
        if now.as_micros() >= self.next_due[p] {
            // Schedule strictly after `now` so one poll fires at most one
            // checkpoint even if the process fell behind.
            let iv = self.intervals[p];
            let mut due = self.next_due[p];
            while due <= now.as_micros() {
                due += iv;
            }
            self.next_due[p] = due;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nohooks_defaults() {
        let mut h = NoHooks;
        assert_eq!(h.piggyback(0, 1, 7, SimTime::ZERO), 7);
        assert_eq!(h.on_recv(0, 3, 1, SimTime::ZERO), RecvAction::Deliver);
        assert!(h.take_app_checkpoint(0, SimTime::ZERO));
        assert!(!h.timer_checkpoint_due(0, SimTime::ZERO));
        assert_eq!(
            h.coordination_cost(0, SimTime::ZERO),
            CoordinationCost::default()
        );
    }

    #[test]
    fn timer_fires_once_per_interval() {
        let mut h = TimerCheckpoints::new(1, 100, 0);
        assert!(!h.timer_checkpoint_due(0, SimTime::from_micros(50)));
        assert!(h.timer_checkpoint_due(0, SimTime::from_micros(100)));
        // Immediately after firing, not due again.
        assert!(!h.timer_checkpoint_due(0, SimTime::from_micros(100)));
        assert!(h.timer_checkpoint_due(0, SimTime::from_micros(200)));
    }

    #[test]
    fn timer_catches_up_without_bursts() {
        let mut h = TimerCheckpoints::new(1, 100, 0);
        // Process was busy until t=550; only one checkpoint fires, and
        // the next is due at 600.
        assert!(h.timer_checkpoint_due(0, SimTime::from_micros(550)));
        assert!(!h.timer_checkpoint_due(0, SimTime::from_micros(550)));
        assert!(h.timer_checkpoint_due(0, SimTime::from_micros(600)));
    }

    #[test]
    fn skew_offsets_processes() {
        let mut h = TimerCheckpoints::new(2, 100, 30);
        assert!(h.timer_checkpoint_due(0, SimTime::from_micros(100)));
        assert!(!h.timer_checkpoint_due(1, SimTime::from_micros(100)));
        assert!(h.timer_checkpoint_due(1, SimTime::from_micros(130)));
    }

    #[test]
    fn app_checkpoints_suppressed_by_default() {
        let mut h = TimerCheckpoints::new(1, 100, 0);
        assert!(!h.take_app_checkpoint(0, SimTime::ZERO));
        h.keep_app_checkpoints = true;
        assert!(h.take_app_checkpoint(0, SimTime::ZERO));
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn zero_interval_panics() {
        let _ = TimerCheckpoints::new(1, 0, 0);
    }
}
