//! Simulation configuration: network delay model, cost model, and the
//! vector-clock representation policy.

/// Largest process count at which [`ClockMode::Auto`] keeps dense
/// vector-clock piggybacks. Below this, every send clones the full
/// clock into the message record (cheap — inline or one small `Vec`)
/// and traces carry complete per-message stamps. Above it the engine
/// switches to O(Δ) delta piggybacks and sparse checkpoint stamps:
/// semantically equivalent clocks, but message records no longer embed
/// per-message stamps (n² × 8 bytes each would dominate memory).
pub const DENSE_CLOCK_MAX: usize = 64;

/// How the engine represents and transports vector clocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClockMode {
    /// Dense for `nprocs ≤` [`DENSE_CLOCK_MAX`], delta above. The
    /// default: small runs keep byte-identical traces, large runs scale.
    #[default]
    Auto,
    /// Full clocks on every message and checkpoint regardless of n.
    Dense,
    /// Delta-encoded piggybacks (only components changed since the last
    /// send on the channel) and sparse checkpoint stamps, at any n.
    Delta,
}

impl ClockMode {
    /// Resolves the policy for a given process count.
    pub fn is_delta(self, nprocs: usize) -> bool {
        match self {
            ClockMode::Auto => nprocs > DENSE_CLOCK_MAX,
            ClockMode::Dense => false,
            ClockMode::Delta => true,
        }
    }
}

/// Network delay model, following the paper's §4 parameterisation: the
/// cost of a message is a per-message *setup time* `w_m` plus a *per-bit
/// delay* `w_b`, with optional bounded uniform jitter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkModel {
    /// `w_m`: per-message setup time, microseconds.
    pub setup_us: u64,
    /// `w_b`: per-bit transmission delay, **nanoseconds per bit** (kept
    /// in nanoseconds so that small control messages get nonzero cost
    /// without floating point).
    pub per_bit_ns: u64,
    /// Uniform jitter in `[0, jitter_us]` added per message (seeded,
    /// deterministic).
    pub jitter_us: u64,
}

impl NetworkModel {
    /// Deterministic portion of the delay for a message of `size_bits`.
    pub fn base_delay_us(&self, size_bits: u64) -> u64 {
        self.setup_us + (size_bits * self.per_bit_ns) / 1000
    }
}

impl Default for NetworkModel {
    /// A LAN-ish default: 100 µs setup, 1 ns/bit (~1 Gb/s), 20 µs jitter.
    fn default() -> NetworkModel {
        NetworkModel {
            setup_us: 100,
            per_bit_ns: 1,
            jitter_us: 20,
        }
    }
}

/// Local cost model for instruction execution and checkpointing.
///
/// The checkpoint parameters mirror the paper's: `o` (overhead: how long
/// the process is stalled), `l ≥ o` (latency: when the checkpoint is
/// durable on stable storage), and `R` (recovery: time to restart from a
/// checkpoint).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    /// Simulated microseconds per `compute` cost unit (default: one
    /// cost unit = 1 ms).
    pub compute_unit_us: u64,
    /// Bookkeeping cost of any other instruction, microseconds (≥ 1 so
    /// simulated time always advances).
    pub instr_overhead_us: u64,
    /// Local cost of issuing a send, microseconds.
    pub send_overhead_us: u64,
    /// `o`: checkpoint overhead (process stall), microseconds.
    pub ckpt_overhead_us: u64,
    /// `l`: checkpoint latency (time to stable storage), microseconds.
    pub ckpt_latency_us: u64,
    /// `R`: recovery overhead on rollback, microseconds.
    pub recovery_us: u64,
}

impl Default for CostModel {
    /// Small, test-friendly defaults (checkpoints cost 2 ms, recover in
    /// 5 ms). The paper's measured constants (`o = 1.78 s`,
    /// `l = 4.292 s`, `R = 3.32 s`) are available via
    /// [`CostModel::paper_starfish`].
    fn default() -> CostModel {
        CostModel {
            compute_unit_us: 1_000,
            instr_overhead_us: 1,
            send_overhead_us: 5,
            ckpt_overhead_us: 2_000,
            ckpt_latency_us: 4_000,
            recovery_us: 5_000,
        }
    }
}

impl CostModel {
    /// The constants the paper measured on Starfish (§4): `o = 1.78 s`,
    /// `l = 4.292 s`, `R = 3.32 s`.
    pub fn paper_starfish() -> CostModel {
        CostModel {
            ckpt_overhead_us: 1_780_000,
            ckpt_latency_us: 4_292_000,
            recovery_us: 3_320_000,
            ..CostModel::default()
        }
    }
}

/// Full simulation configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of processes.
    pub nprocs: usize,
    /// RNG seed (jitter and any scheduling randomisation).
    pub seed: u64,
    /// Program input vector (`input(k)` reads `inputs[k]`).
    pub inputs: Vec<i64>,
    /// Parameter overrides applied on top of the program defaults.
    pub param_overrides: Vec<(String, i64)>,
    /// Network delay model.
    pub net: NetworkModel,
    /// Local cost model.
    pub cost: CostModel,
    /// Hard cap on instructions executed per process (runaway guard).
    pub max_steps_per_proc: u64,
    /// Vector-clock representation policy (see [`ClockMode`]).
    pub clock_mode: ClockMode,
}

impl SimConfig {
    /// A configuration for `nprocs` processes with all defaults.
    pub fn new(nprocs: usize) -> SimConfig {
        SimConfig {
            nprocs,
            seed: 0xACFC,
            inputs: Vec::new(),
            param_overrides: Vec::new(),
            net: NetworkModel::default(),
            cost: CostModel::default(),
            max_steps_per_proc: 2_000_000,
            clock_mode: ClockMode::Auto,
        }
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> SimConfig {
        self.seed = seed;
        self
    }

    /// Sets the input vector.
    pub fn with_inputs(mut self, inputs: Vec<i64>) -> SimConfig {
        self.inputs = inputs;
        self
    }

    /// Adds a parameter override.
    pub fn with_param(mut self, name: &str, value: i64) -> SimConfig {
        self.param_overrides.push((name.to_string(), value));
        self
    }

    /// Sets the vector-clock representation policy.
    pub fn with_clock_mode(mut self, mode: ClockMode) -> SimConfig {
        self.clock_mode = mode;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_delay_combines_setup_and_bits() {
        let net = NetworkModel {
            setup_us: 100,
            per_bit_ns: 2,
            jitter_us: 0,
        };
        // 4000 bits * 2 ns = 8000 ns = 8 us.
        assert_eq!(net.base_delay_us(4000), 108);
        assert_eq!(net.base_delay_us(0), 100);
    }

    #[test]
    fn sub_microsecond_bits_truncate() {
        let net = NetworkModel {
            setup_us: 0,
            per_bit_ns: 1,
            jitter_us: 0,
        };
        assert_eq!(net.base_delay_us(999), 0);
        assert_eq!(net.base_delay_us(1000), 1);
    }

    #[test]
    fn paper_constants() {
        let c = CostModel::paper_starfish();
        assert_eq!(c.ckpt_overhead_us, 1_780_000);
        assert_eq!(c.ckpt_latency_us, 4_292_000);
        assert_eq!(c.recovery_us, 3_320_000);
        assert!(c.ckpt_latency_us >= c.ckpt_overhead_us);
    }

    #[test]
    fn clock_mode_resolution() {
        assert!(!ClockMode::Auto.is_delta(DENSE_CLOCK_MAX));
        assert!(ClockMode::Auto.is_delta(DENSE_CLOCK_MAX + 1));
        assert!(!ClockMode::Dense.is_delta(4096));
        assert!(ClockMode::Delta.is_delta(2));
        assert_eq!(SimConfig::new(4).clock_mode, ClockMode::Auto);
        assert_eq!(
            SimConfig::new(4)
                .with_clock_mode(ClockMode::Delta)
                .clock_mode,
            ClockMode::Delta
        );
    }

    #[test]
    fn builder_methods() {
        let cfg = SimConfig::new(4)
            .with_seed(7)
            .with_inputs(vec![1, 2])
            .with_param("iters", 9);
        assert_eq!(cfg.nprocs, 4);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.inputs, vec![1, 2]);
        assert_eq!(cfg.param_overrides, vec![("iters".to_string(), 9)]);
    }
}
