//! Simulated time.
//!
//! The engine is a discrete-event simulator; time is a `u64` count of
//! **microseconds** since the start of the run. Microsecond resolution is
//! fine-grained enough for the paper's parameters (checkpoint overheads
//! are seconds, message setup times are milliseconds) while keeping the
//! arithmetic exact and the runs bit-for-bit reproducible.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time (microseconds since run start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds a time from whole seconds.
    pub fn from_secs(s: u64) -> SimTime {
        SimTime(s * 1_000_000)
    }

    /// Builds a time from milliseconds.
    pub fn from_millis(ms: u64) -> SimTime {
        SimTime(ms * 1_000)
    }

    /// Builds a time from microseconds.
    pub fn from_micros(us: u64) -> SimTime {
        SimTime(us)
    }

    /// The value in microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// The value in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating difference.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    fn add(self, us: u64) -> SimTime {
        SimTime(self.0 + us)
    }
}

impl AddAssign<u64> for SimTime {
    fn add_assign(&mut self, us: u64) {
        self.0 += us;
    }
}

impl Sub for SimTime {
    type Output = u64;
    fn sub(self, other: SimTime) -> u64 {
        self.0
            .checked_sub(other.0)
            .expect("SimTime subtraction underflow")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_micros(7).as_micros(), 7);
        assert!((SimTime::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_micros(10);
        assert_eq!((t + 5).as_micros(), 15);
        let mut u = t;
        u += 2;
        assert_eq!(u.as_micros(), 12);
        assert_eq!(u - t, 2);
        assert_eq!(t.saturating_sub(u), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimTime(1) - SimTime(2);
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime(1) < SimTime(2));
        assert_eq!(SimTime::from_secs(1).to_string(), "1.000000s");
    }
}
