//! Cut-consistency checking.
//!
//! Definition 2.1 of the paper: a cut of checkpoints `S` (one per
//! process) is a **recovery line** iff there are no `C, C' ∈ S` with
//! `C →hb C'`. Two equivalent checkers are provided:
//!
//! * [`cut_consistency`] — pairwise vector-clock comparison (`C → C'`
//!   iff `VC(C) < VC(C')`), the production checker;
//! * [`cut_consistency_oracle`] — the orphan-message definition: the cut
//!   is inconsistent iff some message was received before the receiver's
//!   cut checkpoint but sent after the sender's. Used by property tests
//!   to cross-validate the vector clocks.
//!
//! Both operate on a [`Trace`] plus a cut given as per-process
//! checkpoint sequence numbers.

use crate::trace::{CheckpointRecord, Trace};

/// A violation: checkpoint of `earlier_proc` happened before checkpoint
/// of `later_proc` within the cut.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CutViolation {
    /// The process whose cut checkpoint is causally earlier.
    pub earlier_proc: usize,
    /// The process whose cut checkpoint is causally later.
    pub later_proc: usize,
}

/// Resolves a cut (`seq` per process; must exist) to checkpoint records.
///
/// Returns `None` if any process lacks a live checkpoint with that seq.
pub fn resolve_cut<'t>(trace: &'t Trace, cut: &[u64]) -> Option<Vec<&'t CheckpointRecord>> {
    assert_eq!(cut.len(), trace.nprocs, "cut arity mismatch");
    let mut out = Vec::with_capacity(trace.nprocs);
    for (p, &seq) in cut.iter().enumerate() {
        let c = trace
            .checkpoints
            .iter()
            .find(|c| c.proc == p && !c.rolled_back && c.seq == seq)?;
        out.push(c);
    }
    Some(out)
}

/// Vector-clock consistency check of an explicit cut of records.
///
/// Returns all ordered pairs (violations); empty = recovery line.
pub fn cut_violations(cut: &[&CheckpointRecord]) -> Vec<CutViolation> {
    let mut out = Vec::new();
    for a in cut {
        for b in cut {
            if a.proc != b.proc && a.vc.happened_before(&b.vc) {
                out.push(CutViolation {
                    earlier_proc: a.proc,
                    later_proc: b.proc,
                });
            }
        }
    }
    out
}

/// `true` iff the cut (given as per-process `seq`s) is a recovery line,
/// by vector clocks.
///
/// # Panics
///
/// Panics if the cut does not exist in the trace.
pub fn cut_consistency(trace: &Trace, cut: &[u64]) -> bool {
    let records = resolve_cut(trace, cut).expect("cut must exist in trace");
    cut_violations(&records).is_empty()
}

/// Oracle checker via orphan messages: the cut is inconsistent iff some
/// live message `m` satisfies
/// `recv_step(m) ≤ step(cut[to])` **and** `send_step(m) > step(cut[from])`.
///
/// # Panics
///
/// Panics if the cut does not exist in the trace.
pub fn cut_consistency_oracle(trace: &Trace, cut: &[u64]) -> bool {
    let records = resolve_cut(trace, cut).expect("cut must exist in trace");
    let cut_step: Vec<u64> = records.iter().map(|c| c.step).collect();
    for m in trace.live_messages() {
        if let Some(rs) = m.recv_step {
            let received_before = rs <= cut_step[m.to];
            let sent_after = m.send_step > cut_step[m.from];
            if received_before && sent_after {
                return false;
            }
        }
    }
    true
}

/// Checks every *straight cut* of the trace (Definition 2.2/2.3: the
/// collection of the `i`-th checkpoints of every process, for each `i`
/// up to the aligned depth). Returns the list of `i` whose cut is
/// **not** a recovery line; empty means the paper's guarantee held for
/// this execution.
pub fn straight_cut_failures(trace: &Trace) -> Vec<u64> {
    let depth = trace.aligned_depth() as u64;
    let mut bad = Vec::new();
    for i in 1..=depth {
        let cut = vec![i; trace.nprocs];
        if !cut_consistency(trace, &cut) {
            bad.push(i);
        }
    }
    bad
}

/// `true` iff every straight cut of the trace is a recovery line.
pub fn all_straight_cuts_consistent(trace: &Trace) -> bool {
    straight_cut_failures(trace).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::compile;
    use crate::config::SimConfig;
    use crate::engine::run;
    use acfc_mpsl::programs;

    #[test]
    fn uniform_jacobi_straight_cuts_are_recovery_lines() {
        // Figure 1: uniform placement => every straight cut consistent.
        let t = run(&compile(&programs::jacobi(4)), &SimConfig::new(4));
        assert!(t.completed());
        assert!(all_straight_cuts_consistent(&t));
    }

    #[test]
    fn odd_even_jacobi_straight_cuts_violate() {
        // Figures 2/3: odd/even placement => straight cuts inconsistent.
        let t = run(&compile(&programs::jacobi_odd_even(4)), &SimConfig::new(4));
        assert!(t.completed());
        let bad = straight_cut_failures(&t);
        assert!(!bad.is_empty(), "expected Figure-3 style violations");
    }

    #[test]
    fn oracle_agrees_with_vector_clocks_on_stock_programs() {
        for p in programs::all_stock() {
            let t = run(&compile(&p), &SimConfig::new(4).with_inputs(vec![2, 5]));
            if !t.completed() {
                continue;
            }
            for i in 1..=t.aligned_depth() as u64 {
                let cut = vec![i; t.nprocs];
                assert_eq!(
                    cut_consistency(&t, &cut),
                    cut_consistency_oracle(&t, &cut),
                    "{} cut {i}: VC and orphan oracle disagree",
                    p.name
                );
            }
        }
    }

    #[test]
    fn violations_identify_direction() {
        let t = run(&compile(&programs::pingpong_skewed(2)), &SimConfig::new(2));
        assert!(t.completed());
        let cut = resolve_cut(&t, &[1, 1]).unwrap();
        let v = cut_violations(&cut);
        assert!(!v.is_empty());
        // Rank 0 checkpoints before serving; rank 1 after returning:
        // 0's checkpoint happens before 1's.
        assert!(v.iter().any(|x| x.earlier_proc == 0 && x.later_proc == 1));
    }

    #[test]
    fn missing_cut_resolves_to_none() {
        let t = run(&compile(&programs::jacobi(2)), &SimConfig::new(2));
        assert!(resolve_cut(&t, &[99, 99]).is_none());
    }

    #[test]
    #[should_panic(expected = "cut must exist")]
    fn consistency_on_missing_cut_panics() {
        let t = run(&compile(&programs::jacobi(2)), &SimConfig::new(2));
        let _ = cut_consistency(&t, &[99, 99]);
    }
}
