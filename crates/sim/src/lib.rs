//! # Deterministic message-passing simulator for ACFC
//!
//! The paper's claims quantify over *executions* of a message-passing
//! program on the §2 system model: asynchronous reliable FIFO channels,
//! blocking receives, deterministic processes, and crash failures with
//! rollback to checkpoints. This crate is that model, made executable:
//!
//! * [`compile`] — MPSL programs to a flat instruction stream,
//! * [`run`] / [`run_with_hooks`] / [`run_with_failures`] — the
//!   discrete-event engine ([`SimConfig`] holds the paper's network and
//!   checkpoint cost parameters: `w_m`, `w_b`, `o`, `l`, `R`),
//! * [`VectorClock`] — happened-before tracking on every send/receive/
//!   checkpoint event,
//! * [`Trace`] — the full record of a run, with restorable snapshots,
//! * [`consistency`] — recovery-line checking (Definition 2.1) both via
//!   vector clocks and via the orphan-message oracle,
//! * [`FailurePlan`] / [`CutPicker`] — exponential failure injection and
//!   recovery-line selection (the paper's straight-cut recovery is
//!   [`CutPicker::AlignedSeq`]),
//! * [`Hooks`] — protocol customisation points used by `acfc-protocols`
//!   to implement the baselines the paper compares against.
//!
//! Substitution note (documented in `DESIGN.md`): the paper evaluated on
//! a Starfish/MPI cluster; this simulator replaces that testbed. The
//! analysis only depends on message ordering, causality, and the scalar
//! cost parameters, all of which the simulator reproduces — and runs are
//! bit-for-bit reproducible from a seed, which the cluster was not.
//!
//! ```
//! use acfc_sim::{compile, run, SimConfig, consistency};
//!
//! // Figure 1 (uniform Jacobi): every straight cut is a recovery line.
//! let trace = run(&compile(&acfc_mpsl::programs::jacobi(5)), &SimConfig::new(4));
//! assert!(trace.completed());
//! assert!(consistency::all_straight_cuts_consistent(&trace));
//!
//! // Figure 2 (odd/even Jacobi): they are not.
//! let trace = run(&compile(&acfc_mpsl::programs::jacobi_odd_even(5)), &SimConfig::new(4));
//! assert!(!consistency::all_straight_cuts_consistent(&trace));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod backend;
pub mod bytecode;
pub mod clock;
pub mod config;
pub mod consistency;
pub mod engine;
pub mod equeue;
pub mod export;
pub mod failure;
pub mod hooks;
pub mod obs;
pub mod perfetto;
pub mod stats;
pub mod time;
pub mod trace;

pub use backend::{BackendError, SimBackend, StateBackend, StateSnapshot};
pub use bytecode::{compile, Compiled, Instr};
pub use clock::VectorClock;
pub use config::{ClockMode, CostModel, NetworkModel, SimConfig, DENSE_CLOCK_MAX};
pub use engine::{
    run, run_observed, run_observed_with, run_with_backend, run_with_failures, run_with_hooks,
};
pub use equeue::{CalendarQueue, SortedVecQueue};
pub use export::{checkpoints_tsv, golden, messages_tsv, spacetime, summary};
pub use failure::{CutPicker, FailurePlan, PickerFn, RecoveryView};
pub use hooks::{CoordinationCost, Hooks, NoHooks, RecvAction, TimerCheckpoints};
pub use obs::{ProcObs, SimObs};
pub use perfetto::{merged_timeline, merged_timeline_json, timeline, timeline_json, MergedRun};
pub use stats::{render_stats, trace_stats, ProcBreakdown, TraceStats};
pub use time::SimTime;
pub use trace::{
    CheckpointRecord, CkptTrigger, FailureRecord, MessageRecord, Metrics, MsgId, Outcome, Snapshot,
    StmtInstances, Trace, VarStore,
};
