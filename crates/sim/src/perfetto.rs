//! Simulated-time Perfetto timeline export.
//!
//! Renders one run as a Chrome-trace JSON document with **simulated
//! time on the x-axis** (`SimTime` is already microseconds, the trace
//! format's native unit): one track per simulated process carrying
//! `compute` / `blocked` / `checkpoint` slices, a flow arrow per
//! delivered message (send → receive), and a global instant marker at
//! each straight cut `S_i` — the same picture as the paper's Fig. 4
//! process timelines, but interactive.
//!
//! Needs a [`SimObs`] in timeline mode from the same run: the trace
//! alone does not keep blocked intervals (the engine's blocked-time
//! metric is a scalar), and re-deriving them would duplicate engine
//! logic.

use crate::obs::{Interval, SimObs};
use crate::trace::Trace;
use acfc_obs::TraceBuilder;

/// The `pid` under which all simulated-process tracks are grouped.
const SIM_PID: u64 = 1;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Blocked,
    Ckpt,
    Compute,
}

impl Kind {
    fn name(self) -> &'static str {
        match self {
            Kind::Blocked => "blocked",
            Kind::Ckpt => "checkpoint",
            Kind::Compute => "compute",
        }
    }
}

/// One track event before emission: slices open/close plus flow
/// endpoints, mergeable into a single time-sorted stream per track.
#[derive(Debug, Clone, Copy)]
enum TrackEv<'a> {
    Begin(u64, Kind),
    End(u64),
    Flow(u64, bool /* start */, u64 /* id */, &'a str),
}

impl TrackEv<'_> {
    fn ts(&self) -> u64 {
        match *self {
            TrackEv::Begin(ts, _) | TrackEv::End(ts) | TrackEv::Flow(ts, _, _, _) => ts,
        }
    }

    /// Tie order at equal timestamps: close the previous slice, then
    /// flow endpoints, then open the next slice — keeps adjacent
    /// slices from nesting and flows bound between them.
    fn rank(&self) -> u8 {
        match self {
            TrackEv::End(_) => 0,
            TrackEv::Flow(..) => 1,
            TrackEv::Begin(..) => 2,
        }
    }
}

/// Builds the simulated-time trace for `trace`, using the blocked and
/// checkpoint intervals collected in `obs` (must be from the same run,
/// in [`SimObs::timeline`] mode). The returned builder validates
/// structurally; call `.render()` for the JSON document.
pub fn timeline(trace: &Trace, obs: &SimObs) -> TraceBuilder {
    let mut tb = TraceBuilder::new();
    emit_run(
        &mut tb,
        SIM_PID,
        &format!("{} (simulated time)", trace.program),
        trace,
        obs,
        0,
    );
    tb
}

/// One labeled run of a multi-protocol comparison, ready for
/// [`merged_timeline`].
#[derive(Debug)]
pub struct MergedRun<'a> {
    /// Track-group label (typically the protocol name).
    pub label: &'a str,
    /// The run's trace.
    pub trace: &'a Trace,
    /// The run's collector, in [`SimObs::timeline`] mode.
    pub obs: &'a SimObs,
}

/// Merges several runs of the *same* program — one per protocol — into
/// a single Perfetto document: one `pid` (track group) per protocol,
/// each with the identical per-process track structure the
/// single-run [`timeline`] emits. Loading the result shows the
/// "coordination-free vs coordinated" story in one tab: the same
/// workload's timelines stacked, stalls and extra checkpoints lining
/// up against the app-driven baseline.
///
/// Flow-arrow ids are namespaced per run so message arrows never
/// alias across protocols.
pub fn merged_timeline(runs: &[MergedRun<'_>]) -> TraceBuilder {
    let mut tb = TraceBuilder::new();
    let mut flow_base = 0u64;
    for (i, run) in runs.iter().enumerate() {
        let pid = i as u64 + 1;
        emit_run(
            &mut tb,
            pid,
            &format!("{} — {}", run.label, run.trace.program),
            run.trace,
            run.obs,
            flow_base,
        );
        flow_base += run.trace.messages.len() as u64;
    }
    tb
}

/// Convenience: builds, validates, and renders the merged JSON.
/// Panics on a structurally invalid trace (an exporter bug, not user
/// error), like [`timeline_json`].
pub fn merged_timeline_json(runs: &[MergedRun<'_>]) -> String {
    let tb = merged_timeline(runs);
    if let Err(e) = tb.validate() {
        panic!("merged simulated-time trace failed validation: {e}");
    }
    tb.render()
}

/// Emits one run's tracks under `pid`, offsetting flow ids by
/// `flow_base` (message ids are indices into `trace.messages`, so a
/// base of the preceding runs' message counts keeps ids disjoint).
fn emit_run(
    tb: &mut TraceBuilder,
    pid: u64,
    title: &str,
    trace: &Trace,
    obs: &SimObs,
    flow_base: u64,
) {
    let n = trace.nprocs;
    tb.process_name(pid, title);

    // Non-overlapping busy intervals per process, then compute slices
    // as the gaps up to the process's last activity.
    let mut per_proc: Vec<Vec<(u64, u64, Kind)>> = vec![Vec::new(); n];
    for &Interval {
        proc,
        start_us,
        end_us,
    } in &obs.blocked
    {
        per_proc[proc].push((start_us, end_us, Kind::Blocked));
    }
    for &Interval {
        proc,
        start_us,
        end_us,
    } in &obs.ckpts
    {
        per_proc[proc].push((start_us, end_us, Kind::Ckpt));
    }

    let mut flows: Vec<Vec<TrackEv>> = vec![Vec::new(); n];
    for m in trace.live_messages() {
        let Some(recv_at) = m.recv_at else { continue };
        let id = flow_base + m.id.0;
        flows[m.from].push(TrackEv::Flow(m.sent_at.as_micros(), true, id, "msg"));
        flows[m.to].push(TrackEv::Flow(recv_at.as_micros(), false, id, "msg"));
    }

    for (p, mut busy) in per_proc.into_iter().enumerate() {
        tb.thread_name(pid, p as u64, &format!("P{p}"));
        busy.sort_unstable_by_key(|&(s, e, _)| (s, e));
        let end = trace.proc_end[p].as_micros();
        let mut evs: Vec<TrackEv> = Vec::with_capacity(busy.len() * 2 + flows[p].len());
        let mut cursor = 0u64;
        for (s, e, kind) in busy {
            debug_assert!(s >= cursor, "busy intervals overlap on P{p}");
            if s > cursor {
                evs.push(TrackEv::Begin(cursor, Kind::Compute));
                evs.push(TrackEv::End(s));
            }
            evs.push(TrackEv::Begin(s, kind));
            evs.push(TrackEv::End(e));
            cursor = e;
        }
        if end > cursor {
            evs.push(TrackEv::Begin(cursor, Kind::Compute));
            evs.push(TrackEv::End(end));
        }
        evs.append(&mut flows[p]);
        evs.sort_by_key(|e| (e.ts(), e.rank()));
        for ev in evs {
            match ev {
                TrackEv::Begin(ts, kind) => tb.begin(pid, p as u64, ts, kind.name(), "sim"),
                TrackEv::End(ts) => tb.end(pid, p as u64, ts),
                TrackEv::Flow(ts, true, id, name) => tb.flow_start(pid, p as u64, ts, name, id),
                TrackEv::Flow(ts, false, id, name) => tb.flow_end(pid, p as u64, ts, name, id),
            }
        }
    }

    // Recovery lines: one global marker per straight cut S_i, at the
    // time its latest member checkpoint starts (the earliest moment
    // the cut exists on every process). They live on a dedicated track
    // so marker timestamps never interleave with slice ordering; cut
    // times are monotone in `i`, satisfying the track's ordering.
    let marker_tid = n as u64;
    tb.thread_name(pid, marker_tid, "recovery lines");
    for i in 1..=trace.aligned_depth() as u64 {
        if let Some(cut) = trace.straight_cut(i) {
            let at = cut.iter().map(|c| c.start.as_micros()).max().unwrap_or(0);
            tb.instant(pid, marker_tid, at, &format!("recovery line S{i}"), 'g');
        }
    }
}

/// Convenience: builds, validates, and renders the timeline JSON.
/// Panics if the constructed trace is structurally invalid (an engine
/// or collector bug, not user error).
pub fn timeline_json(trace: &Trace, obs: &SimObs) -> String {
    let tb = timeline(trace, obs);
    if let Err(e) = tb.validate() {
        panic!("simulated-time trace failed validation: {e}");
    }
    tb.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::compile;
    use crate::config::SimConfig;
    use crate::engine::run_observed;
    use acfc_mpsl::programs;

    #[test]
    fn jacobi_timeline_validates_and_has_tracks() {
        let c = compile(&programs::jacobi(4));
        let mut obs = SimObs::timeline();
        let trace = run_observed(&c, &SimConfig::new(4), &mut obs);
        assert!(trace.completed());
        let tb = timeline(&trace, &obs);
        assert!(tb.validate().is_ok(), "{:?}", tb.validate());
        let json = tb.render();
        for p in 0..4 {
            assert!(json.contains(&format!("\"P{p}\"")), "track P{p} present");
        }
        assert!(json.contains("\"checkpoint\""));
        assert!(json.contains("\"blocked\""));
        assert!(json.contains("\"compute\""));
        // Jacobi aligns 4 checkpoint depths → 4 recovery-line markers.
        for i in 1..=4 {
            assert!(json.contains(&format!("recovery line S{i}")));
        }
        // One flow arrow (s + f) per received message.
        let starts = json.matches("\"ph\": \"s\"").count();
        let ends = json.matches("\"ph\": \"f\"").count();
        assert_eq!(starts, trace.messages.len());
        assert_eq!(ends, starts);
    }

    #[test]
    fn merged_timeline_keeps_runs_disjoint_and_valid() {
        let c = compile(&programs::pingpong(2));
        let mut runs = Vec::new();
        for _ in 0..3 {
            let mut obs = SimObs::timeline();
            let trace = run_observed(&c, &SimConfig::new(2), &mut obs);
            assert!(trace.completed());
            runs.push((trace, obs));
        }
        let labeled: Vec<MergedRun> = runs
            .iter()
            .zip(["appl-driven", "SaS", "C-L"])
            .map(|((trace, obs), label)| MergedRun { label, trace, obs })
            .collect();
        let tb = merged_timeline(&labeled);
        assert!(tb.validate().is_ok(), "{:?}", tb.validate());
        let json = tb.render();
        // One pid per protocol, each labeled with protocol + program.
        for (i, label) in ["appl-driven", "SaS", "C-L"].iter().enumerate() {
            assert!(json.contains(&format!("\"pid\": {}", i + 1)));
            assert!(json.contains(&format!("{} — {}", label, runs[i].0.program)));
        }
        // Every run's flow arrows survive: ids are offset per run, so
        // identical traces still contribute distinct arrows.
        let total_msgs: usize = runs.iter().map(|(t, _)| t.messages.len()).sum();
        assert_eq!(json.matches("\"ph\": \"s\"").count(), total_msgs);
        assert_eq!(json.matches("\"ph\": \"f\"").count(), total_msgs);
    }

    #[test]
    fn counters_mode_yields_empty_timeline_slices() {
        let c = compile(&programs::pingpong(2));
        let mut obs = SimObs::counters();
        let trace = run_observed(&c, &SimConfig::new(2), &mut obs);
        assert!(trace.completed());
        assert!(obs.blocked.is_empty());
        assert!(obs.ckpts.is_empty());
        assert!(obs.per_proc.iter().any(|p| p.blocked_us > 0));
    }
}
