//! Post-hoc trace statistics: where did the time go, and who talked to
//! whom. Used by the examples and benches to report utilisation
//! breakdowns alongside the paper's overhead ratios.

use crate::time::SimTime;
use crate::trace::Trace;
use acfc_obs::{HistSnapshot, LocalHist, Quantiles};
use std::fmt::Write;

/// Per-process time breakdown (microseconds).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProcBreakdown {
    /// Time blocked waiting in `recv`.
    pub blocked_us: u64,
    /// Time stalled taking checkpoints (o per checkpoint, from records).
    pub ckpt_us: u64,
    /// End of the process's activity.
    pub end_us: u64,
}

/// Aggregated trace statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Per-process breakdowns.
    pub procs: Vec<ProcBreakdown>,
    /// `traffic[from][to]` = live bits sent on the channel.
    pub traffic_bits: Vec<Vec<u64>>,
    /// Live message count.
    pub messages: u64,
    /// Mean network latency of received live messages, µs.
    pub mean_latency_us: f64,
    /// Maximum network latency, µs.
    pub max_latency_us: u64,
    /// Mean interval between consecutive checkpoints of the same
    /// process, µs (0 if fewer than two checkpoints anywhere).
    pub mean_ckpt_interval_us: f64,
    /// Full latency distribution of received live messages, µs —
    /// power-of-two buckets carrying p50/p90/p99
    /// ([`HistSnapshot::percentiles`]) so tail regressions are visible,
    /// not just mean shifts. `latency.mean()` equals
    /// [`mean_latency_us`](TraceStats::mean_latency_us) and
    /// `latency.max` equals [`max_latency_us`](TraceStats::max_latency_us).
    pub latency: HistSnapshot,
    /// Full distribution of start-to-start intervals between
    /// consecutive live checkpoints of the same process, µs.
    pub ckpt_interval: HistSnapshot,
    /// Event-queue depth, systematically sampled by the engine at every
    /// 8th event pop and carried on the trace — the post-hoc view is the
    /// *same histogram* a live [`SimObs`](crate::obs::SimObs) collector
    /// sees, bucket for bucket (closing the former observed-run-only
    /// gap). Empty for traces from engines that predate the field.
    pub queue_depth: HistSnapshot,
}

impl TraceStats {
    /// p50/p90/p99 bucket bounds of the message latency, µs.
    pub fn latency_percentiles(&self) -> Quantiles {
        self.latency.percentiles()
    }

    /// p50/p90/p99 bucket bounds of the checkpoint interval, µs.
    pub fn ckpt_interval_percentiles(&self) -> Quantiles {
        self.ckpt_interval.percentiles()
    }

    /// p50/p90/p99 bucket bounds of the sampled event-queue depth.
    pub fn queue_depth_percentiles(&self) -> Quantiles {
        self.queue_depth.percentiles()
    }
}

/// Computes statistics over the live events of a trace.
pub fn trace_stats(trace: &Trace) -> TraceStats {
    let n = trace.nprocs;
    let mut procs = vec![ProcBreakdown::default(); n];
    for (p, breakdown) in procs.iter_mut().enumerate() {
        breakdown.end_us = trace.proc_end[p].as_micros();
    }
    let mut traffic_bits = vec![vec![0u64; n]; n];
    let mut messages = 0u64;
    let mut lat_sum = 0u128;
    let mut lat_n = 0u64;
    let mut lat_max = 0u64;
    let mut latency = LocalHist::new();
    for m in trace.live_messages() {
        traffic_bits[m.from][m.to] += m.size_bits;
        messages += 1;
        if let Some(at) = m.recv_at {
            let lat = at.saturating_sub(m.sent_at).as_micros();
            lat_sum += lat as u128;
            lat_n += 1;
            lat_max = lat_max.max(lat);
            latency.record(lat);
            // Blocked time approximation: receive completion minus
            // delivery is bookkeeping; the engine's metric holds the
            // exact number. Here we attribute per process from the
            // trace where possible.
        }
    }
    // Checkpoint stall per process and inter-checkpoint intervals.
    let mut interval_sum = 0u128;
    let mut interval_n = 0u64;
    let mut ckpt_interval = LocalHist::new();
    #[allow(clippy::needless_range_loop)]
    for p in 0..n {
        let ckpts = trace.live_checkpoints(p);
        for c in &ckpts {
            // The per-record stall is `durable - start` capped by the
            // configured overhead; the precise stall (o + coordination)
            // is in the metrics aggregate. Use start-to-durable as the
            // storage-latency view.
            procs[p].ckpt_us += c.durable_at.saturating_sub(c.start).as_micros();
        }
        for w in ckpts.windows(2) {
            let gap = (w[1].start.saturating_sub(w[0].start)).as_micros();
            interval_sum += gap as u128;
            interval_n += 1;
            ckpt_interval.record(gap);
        }
    }
    // Engine-exact blocked time is global; attribute it evenly as an
    // upper-level summary (per-process blocked time would need
    // per-event records, which the trace intentionally keeps lean).
    let per_proc_blocked = trace.metrics.recv_blocked_us / n as u64;
    for b in &mut procs {
        b.blocked_us = per_proc_blocked;
    }
    TraceStats {
        procs,
        traffic_bits,
        messages,
        mean_latency_us: if lat_n > 0 {
            lat_sum as f64 / lat_n as f64
        } else {
            0.0
        },
        max_latency_us: lat_max,
        mean_ckpt_interval_us: if interval_n > 0 {
            interval_sum as f64 / interval_n as f64
        } else {
            0.0
        },
        latency: latency.snap(),
        ckpt_interval: ckpt_interval.snap(),
        queue_depth: trace.queue_depth.clone(),
    }
}

/// Renders statistics as text.
pub fn render_stats(stats: &TraceStats) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "messages: {} (mean latency {:.1} µs, max {} µs); mean checkpoint interval {:.1} ms",
        stats.messages,
        stats.mean_latency_us,
        stats.max_latency_us,
        stats.mean_ckpt_interval_us / 1000.0
    );
    let lat = stats.latency_percentiles();
    let ivl = stats.ckpt_interval_percentiles();
    let _ = writeln!(
        out,
        "latency p50/p90/p99 < {}/{}/{} µs; checkpoint interval p50/p90/p99 < {:.1}/{:.1}/{:.1} ms",
        lat.p50,
        lat.p90,
        lat.p99,
        ivl.p50 as f64 / 1000.0,
        ivl.p90 as f64 / 1000.0,
        ivl.p99 as f64 / 1000.0
    );
    if stats.queue_depth.count > 0 {
        let q = stats.queue_depth_percentiles();
        let _ = writeln!(
            out,
            "queue depth p50/p90/p99 < {}/{}/{} (max {}, {} samples)",
            q.p50, q.p90, q.p99, stats.queue_depth.max, stats.queue_depth.count
        );
    }
    for (p, b) in stats.procs.iter().enumerate() {
        let _ = writeln!(
            out,
            "P{p}: active to {:.3}s, ~{:.1} ms blocked in recv, {:.1} ms in checkpoint latency",
            SimTime(b.end_us).as_secs_f64(),
            b.blocked_us as f64 / 1000.0,
            b.ckpt_us as f64 / 1000.0
        );
    }
    let _ = writeln!(out, "traffic (bits):");
    for (from, row) in stats.traffic_bits.iter().enumerate() {
        let _ = write!(out, "  P{from} ->");
        for (to, bits) in row.iter().enumerate() {
            if *bits > 0 {
                let _ = write!(out, " P{to}:{bits}");
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::compile;
    use crate::config::SimConfig;
    use crate::engine::run;
    use acfc_mpsl::programs;

    #[test]
    fn ring_traffic_matrix_is_a_ring() {
        let t = run(&compile(&programs::ring(4, 1000)), &SimConfig::new(4));
        let s = trace_stats(&t);
        assert_eq!(s.messages, 16);
        for p in 0..4usize {
            let right = (p + 1) % 4;
            assert_eq!(s.traffic_bits[p][right], 4 * 1000);
            // Nothing off-ring.
            for q in 0..4 {
                if q != right {
                    assert_eq!(s.traffic_bits[p][q], 0, "({p},{q})");
                }
            }
        }
    }

    #[test]
    fn latencies_are_positive_and_bounded() {
        let t = run(&compile(&programs::jacobi(3)), &SimConfig::new(4));
        let s = trace_stats(&t);
        assert!(s.mean_latency_us > 0.0);
        assert!(s.max_latency_us as f64 >= s.mean_latency_us);
        // Base delay is setup 100µs + ~4µs transmission (+ jitter ≤ 20 + FIFO queueing).
        assert!(s.mean_latency_us >= 100.0);
    }

    #[test]
    fn checkpoint_intervals_reflect_iteration_cadence() {
        let t = run(&compile(&programs::jacobi(5)), &SimConfig::new(2));
        let s = trace_stats(&t);
        // One checkpoint per ~50ms sweep (+ exchange + o).
        assert!(s.mean_ckpt_interval_us > 50_000.0);
        assert!(
            s.mean_ckpt_interval_us < 80_000.0,
            "{}",
            s.mean_ckpt_interval_us
        );
    }

    #[test]
    fn render_is_complete() {
        let t = run(&compile(&programs::pingpong(2)), &SimConfig::new(2));
        let text = render_stats(&trace_stats(&t));
        assert!(text.contains("messages: 4"));
        assert!(text.contains("P0 ->"));
        assert!(text.contains("P1 -> P0:"));
    }

    /// Pins [`trace_stats`] on a hand-computed deterministic trace:
    /// `pingpong(2)` at 2 procs with jitter zeroed.
    ///
    /// Per message (64 bits): the receiver is already blocked when the
    /// message arrives, so `recv_at − sent_at` is exactly the network
    /// delay plus one instruction overhead —
    /// `setup (100) + 64·1ns/1000 (0) + instr (1) = 101 µs`.
    /// Per checkpoint: `durable_at − start = ckpt_latency = 4000 µs`,
    /// one checkpoint per iteration per process.
    #[test]
    fn pinned_stats_on_jitter_free_pingpong() {
        let mut cfg = SimConfig::new(2);
        cfg.net.jitter_us = 0;
        let t = run(&compile(&programs::pingpong(2)), &cfg);
        assert!(t.completed());
        let s = trace_stats(&t);
        // 2 iterations × (ping + pong).
        assert_eq!(s.messages, 4);
        assert_eq!(s.mean_latency_us, 101.0);
        assert_eq!(s.max_latency_us, 101);
        // 2 × 64 bits each way, nothing else.
        assert_eq!(s.traffic_bits[0][1], 128);
        assert_eq!(s.traffic_bits[1][0], 128);
        assert_eq!(s.traffic_bits[0][0], 0);
        assert_eq!(s.traffic_bits[1][1], 0);
        // One checkpoint per iteration per proc, each 4000 µs to
        // stable storage.
        for p in 0..2 {
            assert_eq!(s.procs[p].ckpt_us, 2 * 4000, "P{p}");
            assert!(s.procs[p].end_us > 0);
            // Blocked time is the engine-exact total attributed evenly.
            assert_eq!(s.procs[p].blocked_us, t.metrics.recv_blocked_us / 2);
        }
        // Both procs checkpoint once per ~round-trip; the interval is
        // at least one round trip (2 × 101 µs) plus the 2000 µs
        // checkpoint stall of the previous iteration.
        assert!(s.mean_ckpt_interval_us > 2.0 * 101.0 + 2000.0);
        // Histogram-native view agrees with the scalar pins: every
        // latency is exactly 101 µs, so all three percentiles land on
        // the [64,128) bucket's upper edge.
        assert_eq!(s.latency.count, 4);
        assert_eq!(s.latency.mean(), s.mean_latency_us);
        assert_eq!(s.latency.max, s.max_latency_us);
        let q = s.latency_percentiles();
        assert_eq!((q.p50, q.p90, q.p99), (128, 128, 128));
        // One interval per process (2 checkpoints each).
        assert_eq!(s.ckpt_interval.count, 2);
        assert_eq!(s.ckpt_interval.mean(), s.mean_ckpt_interval_us);
        let q = s.ckpt_interval_percentiles();
        assert!(q.p50 > 0 && q.p50 <= q.p99);
    }

    /// The per-run [`SimObs`] counters and the post-hoc [`trace_stats`]
    /// are two independent derivations of the same run; where they
    /// measure the same quantity they must agree exactly.
    #[test]
    fn obs_counters_agree_with_trace_stats() {
        use crate::engine::run_observed;
        use crate::obs::SimObs;
        let compiled = compile(&programs::jacobi(5));
        let cfg = SimConfig::new(4);
        let mut obs = SimObs::counters();
        let t = run_observed(&compiled, &cfg, &mut obs);
        assert!(t.completed());
        let s = trace_stats(&t);

        // Every live message was delivered and consumed exactly once.
        assert_eq!(obs.messages_delivered, s.messages);
        let lat = obs.msg_latency_us.snap();
        assert_eq!(lat.count, s.messages);
        assert_eq!(lat.mean(), s.mean_latency_us);
        assert_eq!(lat.max, s.max_latency_us);
        // Bucket-for-bucket: the online histogram and the post-hoc one
        // saw the identical multiset of latencies, so the percentiles
        // agree exactly too.
        assert_eq!(lat, s.latency);
        assert_eq!(lat.percentiles(), s.latency_percentiles());

        // Checkpoint intervals: failure-free, so the online
        // (all-checkpoints) and post-hoc (live-checkpoints) interval
        // histograms are the same distribution.
        assert_eq!(obs.ckpt_interval_us.snap(), s.ckpt_interval);

        // Blocked time: the collector attributes per process what the
        // engine metric accumulates globally, at the same probe site.
        let blocked: u64 = obs.per_proc.iter().map(|p| p.blocked_us).sum();
        assert_eq!(blocked, t.metrics.recv_blocked_us);

        // Checkpoint stalls: obs records o + coordination per
        // checkpoint, the metric the same total.
        let ckpt: u64 = obs.per_proc.iter().map(|p| p.ckpt_us).sum();
        assert_eq!(ckpt, t.metrics.ckpt_stall_us);

        // The engine popped at least one event per delivered message
        // and ran ahead at least once on this workload.
        assert!(obs.events_processed >= obs.messages_delivered);
        assert!(obs.run_ahead_hits > 0);
        // Queue depth is systematically sampled at 1-in-8 event pops,
        // and the trace carries the very same histogram the collector
        // saw: the post-hoc and observed views agree bucket-for-bucket.
        let qd = obs.queue_depth.snap();
        assert_eq!(qd.count, obs.events_processed / 8);
        assert_eq!(qd, s.queue_depth);
        assert_eq!(qd.percentiles(), s.queue_depth_percentiles());
        assert!(qd.count > 0, "workload too small to sample the queue");
    }

    /// Queue depth reaches post-hoc stats even on *unobserved* runs:
    /// the engine samples unconditionally, so `trace_stats` exposes the
    /// histogram without a `SimObs` collector attached.
    #[test]
    fn queue_depth_present_without_a_collector() {
        let t = run(&compile(&programs::jacobi(5)), &SimConfig::new(4));
        let s = trace_stats(&t);
        assert!(s.queue_depth.count > 0);
        assert_eq!(s.queue_depth, t.queue_depth);
        assert!(s.queue_depth.max >= 1);
    }

    #[test]
    fn no_messages_means_zero_latency() {
        let p = acfc_mpsl::parse("program t; compute 5; checkpoint;").unwrap();
        let t = run(&compile(&p), &SimConfig::new(2));
        let s = trace_stats(&t);
        assert_eq!(s.messages, 0);
        assert_eq!(s.mean_latency_us, 0.0);
        assert_eq!(s.mean_ckpt_interval_us, 0.0);
    }
}
