//! Durable [`StateBackend`] implementations for the live runtime.
//!
//! Three stores, one contract (commit visibility is all-or-nothing,
//! crash during commit leaves the previous committed set intact):
//!
//! * [`InMemoryBackend`] — a plain map; the fastest option and the
//!   reference the durable backends are differential-tested against.
//! * [`FileBackend`] — one file per checkpoint under
//!   `<dir>/p<rank>/`, written as tmp-file + CRC32 frame + atomic
//!   rename, so a torn write can never be observed under the committed
//!   name.
//! * [`LogStructuredBackend`] — a single append-only log of CRC-framed
//!   snapshot and tombstone records with offline compaction; a torn
//!   tail frame is detected and truncated on reopen.
//!
//! Both durable backends expose a one-shot [`CrashPoint`] injection so
//! the kill/recover property tests can crash a commit at its most
//! hostile instant and assert the contract holds.

use acfc_sim::{BackendError, StateBackend, StateSnapshot};
use std::collections::BTreeMap;
use std::io::{Read, Seek, Write};
use std::path::{Path, PathBuf};

/// CRC-32 (IEEE 802.3, reflected) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    // Table built once; 256 entries of the reflected polynomial.
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        let mut i = 0u32;
        while i < 256 {
            let mut c = i;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            t[i as usize] = c;
            i += 1;
        }
        t
    });
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Where an injected crash fires during a durable commit. One-shot:
/// the injection trips once, fails the commit with
/// [`BackendError::Io`], and resets to [`CrashPoint::None`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CrashPoint {
    /// No injection.
    #[default]
    None,
    /// Crash after writing roughly half the payload bytes (a torn
    /// write).
    MidWrite,
    /// Crash after the payload is fully written and synced but before
    /// it becomes visible under the committed name (before the rename,
    /// or before the log index accepts the frame).
    BeforeCommit,
}

/// The all-in-memory backend (`"mem"`): no durability, full speed.
#[derive(Debug, Default)]
pub struct InMemoryBackend {
    committed: BTreeMap<(usize, u64), StateSnapshot>,
}

impl InMemoryBackend {
    /// An empty backend.
    pub fn new() -> InMemoryBackend {
        InMemoryBackend::default()
    }
}

impl StateBackend for InMemoryBackend {
    fn name(&self) -> &'static str {
        "mem"
    }

    fn commit(&mut self, snap: &StateSnapshot) -> Result<(), BackendError> {
        self.committed.insert((snap.proc, snap.seq), snap.clone());
        Ok(())
    }

    fn load(&mut self, proc: usize, seq: u64) -> Result<StateSnapshot, BackendError> {
        self.committed
            .get(&(proc, seq))
            .cloned()
            .ok_or(BackendError::Missing { proc, seq })
    }

    fn committed(&mut self) -> Result<Vec<(usize, u64)>, BackendError> {
        Ok(self.committed.keys().copied().collect())
    }

    fn discard_after(&mut self, proc: usize, seq: u64) -> Result<(), BackendError> {
        self.committed.retain(|&(p, s), _| p != proc || s <= seq);
        Ok(())
    }
}

/// Frame layout shared by the durable stores: payload length, CRC-32
/// of the payload, then the payload.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + payload.len());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Parses one frame from `bytes`, returning the payload and the total
/// frame length consumed.
fn unframe(bytes: &[u8]) -> Result<(&[u8], usize), BackendError> {
    if bytes.len() < 12 {
        return Err(BackendError::Corrupt("short frame header".into()));
    }
    let len = u64::from_le_bytes(bytes[0..8].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    let end = 12usize
        .checked_add(len)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| BackendError::Corrupt("truncated frame".into()))?;
    let payload = &bytes[12..end];
    if crc32(payload) != crc {
        return Err(BackendError::Corrupt("frame checksum mismatch".into()));
    }
    Ok((payload, end))
}

/// One file per checkpoint (`"file"`): `<dir>/p<rank>/s<seq>.ckpt`,
/// committed by atomic rename of a CRC-framed tmp file.
#[derive(Debug)]
pub struct FileBackend {
    dir: PathBuf,
    crash: CrashPoint,
    tmp_counter: u64,
}

impl FileBackend {
    /// Opens (creating if needed) a backend rooted at `dir`. Any stale
    /// `*.tmp` files from a previous crash are removed — they were
    /// never committed.
    pub fn open(dir: impl Into<PathBuf>) -> Result<FileBackend, BackendError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        for proc_dir in std::fs::read_dir(&dir)? {
            let proc_dir = proc_dir?.path();
            if !proc_dir.is_dir() {
                continue;
            }
            for f in std::fs::read_dir(&proc_dir)? {
                let f = f?.path();
                if f.extension().is_some_and(|e| e == "tmp") {
                    std::fs::remove_file(&f)?;
                }
            }
        }
        Ok(FileBackend {
            dir,
            crash: CrashPoint::None,
            tmp_counter: 0,
        })
    }

    /// The backend's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Arms a one-shot crash injection for the next commit.
    pub fn set_crash(&mut self, at: CrashPoint) {
        self.crash = at;
    }

    fn path_of(&self, proc: usize, seq: u64) -> PathBuf {
        self.dir
            .join(format!("p{proc}"))
            .join(format!("s{seq:010}.ckpt"))
    }

    fn parse_entry(path: &Path) -> Option<u64> {
        let name = path.file_name()?.to_str()?;
        let seq = name.strip_prefix('s')?.strip_suffix(".ckpt")?;
        seq.parse().ok()
    }
}

impl StateBackend for FileBackend {
    fn name(&self) -> &'static str {
        "file"
    }

    fn commit(&mut self, snap: &StateSnapshot) -> Result<(), BackendError> {
        let crash = std::mem::take(&mut self.crash);
        let final_path = self.path_of(snap.proc, snap.seq);
        std::fs::create_dir_all(final_path.parent().expect("proc dir"))?;
        self.tmp_counter += 1;
        let tmp = final_path.with_extension(format!("{}.tmp", self.tmp_counter));
        let framed = frame(&snap.encode());
        let mut f = std::fs::File::create(&tmp)?;
        if crash == CrashPoint::MidWrite {
            f.write_all(&framed[..framed.len() / 2])?;
            f.sync_all()?;
            return Err(BackendError::Io("injected crash mid-write".into()));
        }
        f.write_all(&framed)?;
        f.sync_all()?;
        if crash == CrashPoint::BeforeCommit {
            return Err(BackendError::Io("injected crash before rename".into()));
        }
        std::fs::rename(&tmp, &final_path)?;
        Ok(())
    }

    fn load(&mut self, proc: usize, seq: u64) -> Result<StateSnapshot, BackendError> {
        let path = self.path_of(proc, seq);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(BackendError::Missing { proc, seq })
            }
            Err(e) => return Err(e.into()),
        };
        let (payload, used) = unframe(&bytes)?;
        if used != bytes.len() {
            return Err(BackendError::Corrupt("trailing bytes in frame".into()));
        }
        let snap = StateSnapshot::decode(payload)?;
        if snap.proc != proc || snap.seq != seq {
            return Err(BackendError::Corrupt(format!(
                "payload identity ({}, {}) does not match path ({proc}, {seq})",
                snap.proc, snap.seq
            )));
        }
        Ok(snap)
    }

    fn committed(&mut self) -> Result<Vec<(usize, u64)>, BackendError> {
        let mut out = Vec::new();
        for proc_dir in std::fs::read_dir(&self.dir)? {
            let proc_dir = proc_dir?.path();
            let Some(proc) = proc_dir
                .file_name()
                .and_then(|n| n.to_str())
                .and_then(|n| n.strip_prefix('p'))
                .and_then(|n| n.parse::<usize>().ok())
            else {
                continue;
            };
            for f in std::fs::read_dir(&proc_dir)? {
                let f = f?.path();
                if let Some(seq) = Self::parse_entry(&f) {
                    out.push((proc, seq));
                }
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    fn discard_after(&mut self, proc: usize, seq: u64) -> Result<(), BackendError> {
        for (p, s) in self.committed()? {
            if p == proc && s > seq {
                std::fs::remove_file(self.path_of(p, s))?;
            }
        }
        Ok(())
    }
}

/// Record kinds in the log-structured store.
const REC_SNAPSHOT: u8 = 1;
const REC_TOMBSTONE: u8 = 2;

/// A single append-only log (`"log"`): CRC-framed snapshot and
/// tombstone records, with an in-memory index rebuilt by replay and
/// [`compact`](LogStructuredBackend::compact) rewriting the live set.
#[derive(Debug)]
pub struct LogStructuredBackend {
    path: PathBuf,
    file: std::fs::File,
    /// Committed set → byte offset and payload length of the latest
    /// snapshot record.
    index: BTreeMap<(usize, u64), (u64, usize)>,
    /// Bytes of dead (superseded or tombstoned) records — the
    /// compaction trigger metric.
    dead_bytes: u64,
    crash: CrashPoint,
}

impl LogStructuredBackend {
    /// Opens (creating if needed) the log at `path`, replaying it to
    /// rebuild the index. A torn tail frame — the signature of a crash
    /// mid-append — is truncated away; any earlier corruption is an
    /// error.
    pub fn open(path: impl Into<PathBuf>) -> Result<LogStructuredBackend, BackendError> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let mut index = BTreeMap::new();
        let mut dead_bytes = 0u64;
        let mut at = 0usize;
        while at < bytes.len() {
            let (payload, used) = match unframe(&bytes[at..]) {
                Ok(x) => x,
                Err(_) if at + 12 + frame_len_hint(&bytes[at..]) > bytes.len() => {
                    // Torn tail: drop it and everything after.
                    drop(file);
                    let f = std::fs::OpenOptions::new().write(true).open(&path)?;
                    f.set_len(at as u64)?;
                    f.sync_all()?;
                    file = std::fs::OpenOptions::new()
                        .create(true)
                        .read(true)
                        .append(true)
                        .open(&path)?;
                    file.seek(std::io::SeekFrom::End(0))?;
                    break;
                }
                Err(e) => return Err(e),
            };
            match payload.first() {
                Some(&REC_SNAPSHOT) => {
                    let snap = StateSnapshot::decode(&payload[1..])?;
                    if let Some((_, old_len)) = index.insert(
                        (snap.proc, snap.seq),
                        (at as u64 + 12 + 1, payload.len() - 1),
                    ) {
                        dead_bytes += old_len as u64 + 13;
                    }
                }
                Some(&REC_TOMBSTONE) => {
                    if payload.len() != 17 {
                        return Err(BackendError::Corrupt("bad tombstone length".into()));
                    }
                    let proc = u64::from_le_bytes(payload[1..9].try_into().unwrap()) as usize;
                    let seq = u64::from_le_bytes(payload[9..17].try_into().unwrap());
                    let before = index.len();
                    index.retain(|&(p, s), _| p != proc || s <= seq);
                    dead_bytes += (before - index.len()) as u64 * 64 + 29;
                }
                _ => return Err(BackendError::Corrupt("unknown record kind".into())),
            }
            at += used;
        }
        Ok(LogStructuredBackend {
            path,
            file,
            index,
            dead_bytes,
            crash: CrashPoint::None,
        })
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Arms a one-shot crash injection for the next commit.
    pub fn set_crash(&mut self, at: CrashPoint) {
        self.crash = at;
    }

    /// Bytes occupied by superseded or tombstoned records.
    pub fn dead_bytes(&self) -> u64 {
        self.dead_bytes
    }

    fn append(&mut self, payload: &[u8], crash: CrashPoint) -> Result<u64, BackendError> {
        let framed = frame(payload);
        let offset = self.file.seek(std::io::SeekFrom::End(0))?;
        if crash == CrashPoint::MidWrite {
            self.file.write_all(&framed[..framed.len() / 2])?;
            self.file.sync_all()?;
            return Err(BackendError::Io("injected crash mid-append".into()));
        }
        self.file.write_all(&framed)?;
        self.file.sync_all()?;
        Ok(offset)
    }

    /// Rewrites the log keeping only the live snapshot set (newest
    /// record per committed `(proc, seq)`), via tmp file + atomic
    /// rename. Resets [`dead_bytes`](LogStructuredBackend::dead_bytes)
    /// to zero.
    pub fn compact(&mut self) -> Result<(), BackendError> {
        let live: Vec<StateSnapshot> = self
            .index
            .keys()
            .copied()
            .collect::<Vec<_>>()
            .into_iter()
            .map(|(p, s)| self.load(p, s))
            .collect::<Result<_, _>>()?;
        let tmp = self.path.with_extension("compact.tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            for snap in &live {
                let mut payload = Vec::with_capacity(64);
                payload.push(REC_SNAPSHOT);
                payload.extend_from_slice(&snap.encode());
                f.write_all(&frame(&payload))?;
            }
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        // Reopen and rebuild the index against the fresh file.
        *self = LogStructuredBackend::open(std::mem::take(&mut self.path))?;
        Ok(())
    }
}

/// Best-effort frame length from a possibly-short header, for the
/// torn-tail test in replay.
fn frame_len_hint(bytes: &[u8]) -> usize {
    if bytes.len() < 8 {
        return usize::MAX / 4;
    }
    u64::from_le_bytes(bytes[0..8].try_into().unwrap()) as usize
}

impl StateBackend for LogStructuredBackend {
    fn name(&self) -> &'static str {
        "log"
    }

    fn commit(&mut self, snap: &StateSnapshot) -> Result<(), BackendError> {
        let crash = std::mem::take(&mut self.crash);
        let mut payload = Vec::with_capacity(64);
        payload.push(REC_SNAPSHOT);
        payload.extend_from_slice(&snap.encode());
        let offset = self.append(&payload, crash)?;
        if crash == CrashPoint::BeforeCommit {
            // The frame is durable but the index never accepts it; on
            // reopen the replay *will* see it, which is fine — commit
            // is allowed to complete durably and only report failure.
            return Err(BackendError::Io("injected crash before index".into()));
        }
        if let Some((_, old_len)) = self
            .index
            .insert((snap.proc, snap.seq), (offset + 13, payload.len() - 1))
        {
            self.dead_bytes += old_len as u64 + 13;
        }
        Ok(())
    }

    fn load(&mut self, proc: usize, seq: u64) -> Result<StateSnapshot, BackendError> {
        let &(offset, len) = self
            .index
            .get(&(proc, seq))
            .ok_or(BackendError::Missing { proc, seq })?;
        let mut buf = vec![0u8; len];
        self.file.seek(std::io::SeekFrom::Start(offset))?;
        self.file.read_exact(&mut buf)?;
        StateSnapshot::decode(&buf)
    }

    fn committed(&mut self) -> Result<Vec<(usize, u64)>, BackendError> {
        Ok(self.index.keys().copied().collect())
    }

    fn discard_after(&mut self, proc: usize, seq: u64) -> Result<(), BackendError> {
        let dropped: Vec<(usize, u64)> = self
            .index
            .keys()
            .copied()
            .filter(|&(p, s)| p == proc && s > seq)
            .collect();
        if dropped.is_empty() {
            return Ok(());
        }
        let mut payload = Vec::with_capacity(17);
        payload.push(REC_TOMBSTONE);
        payload.extend_from_slice(&(proc as u64).to_le_bytes());
        payload.extend_from_slice(&seq.to_le_bytes());
        self.append(&payload, CrashPoint::None)?;
        for k in dropped {
            if let Some((_, len)) = self.index.remove(&k) {
                self.dead_bytes += len as u64 + 13;
            }
        }
        Ok(())
    }
}

/// Builds a backend by CLI name (`mem` | `file` | `log`). File-backed
/// stores live under `dir`.
pub fn backend_for(name: &str, dir: &Path) -> Result<Box<dyn StateBackend + Send>, BackendError> {
    match name {
        "mem" => Ok(Box::new(InMemoryBackend::new())),
        "file" => Ok(Box::new(FileBackend::open(dir)?)),
        "log" => Ok(Box::new(LogStructuredBackend::open(dir.join("log.acfc"))?)),
        other => Err(BackendError::Io(format!(
            "unknown backend `{other}` (expected mem, file, or log)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(proc: usize, seq: u64) -> StateSnapshot {
        StateSnapshot {
            proc,
            seq,
            trigger: acfc_sim::CkptTrigger::AppStatement,
            label: None,
            pc: seq as usize * 3,
            step: seq * 10,
            nprocs: 4,
            vars: vec![("x".into(), seq as i64)],
            vc: vec![(proc as u32, seq)],
            stmt_instances: vec![(1, seq)],
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("acfc-backend-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn exercise(b: &mut dyn StateBackend) {
        for p in 0..3 {
            for s in 1..=4 {
                b.commit(&snap(p, s)).unwrap();
            }
        }
        // Replace-on-recommit.
        b.commit(&snap(1, 2)).unwrap();
        assert_eq!(b.committed().unwrap().len(), 12);
        assert_eq!(b.latest(2).unwrap(), Some(4));
        assert_eq!(b.load(1, 2).unwrap(), snap(1, 2));
        assert!(matches!(
            b.load(0, 99),
            Err(BackendError::Missing { proc: 0, seq: 99 })
        ));
        b.discard_after(1, 2).unwrap();
        assert_eq!(b.latest(1).unwrap(), Some(2));
        assert_eq!(b.committed().unwrap().len(), 10);
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn all_backends_honour_the_contract() {
        exercise(&mut InMemoryBackend::new());
        let d = tmpdir("file-contract");
        exercise(&mut FileBackend::open(&d).unwrap());
        let _ = std::fs::remove_dir_all(&d);
        let d = tmpdir("log-contract");
        exercise(&mut LogStructuredBackend::open(d.join("log.acfc")).unwrap());
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn file_backend_survives_reopen_and_crash_points() {
        let d = tmpdir("file-crash");
        let mut b = FileBackend::open(&d).unwrap();
        b.commit(&snap(0, 1)).unwrap();
        // Mid-write crash: tmp file torn, committed set untouched.
        b.set_crash(CrashPoint::MidWrite);
        assert!(b.commit(&snap(0, 2)).is_err());
        // Before-rename crash: payload durable but invisible.
        b.set_crash(CrashPoint::BeforeCommit);
        assert!(b.commit(&snap(0, 3)).is_err());
        let mut b = FileBackend::open(&d).unwrap();
        assert_eq!(b.committed().unwrap(), vec![(0, 1)]);
        assert_eq!(b.load(0, 1).unwrap(), snap(0, 1));
        // And the crashed commits can be retried.
        b.commit(&snap(0, 2)).unwrap();
        assert_eq!(b.committed().unwrap(), vec![(0, 1), (0, 2)]);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn log_backend_truncates_torn_tail_on_reopen() {
        let d = tmpdir("log-torn");
        let path = d.join("log.acfc");
        {
            let mut b = LogStructuredBackend::open(&path).unwrap();
            b.commit(&snap(0, 1)).unwrap();
            b.commit(&snap(1, 1)).unwrap();
            b.set_crash(CrashPoint::MidWrite);
            assert!(b.commit(&snap(0, 2)).is_err());
        }
        let mut b = LogStructuredBackend::open(&path).unwrap();
        assert_eq!(b.committed().unwrap(), vec![(0, 1), (1, 1)]);
        assert_eq!(b.load(0, 1).unwrap(), snap(0, 1));
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn log_backend_compacts_to_live_set() {
        let d = tmpdir("log-compact");
        let path = d.join("log.acfc");
        let mut b = LogStructuredBackend::open(&path).unwrap();
        for s in 1..=5 {
            b.commit(&snap(0, s)).unwrap();
        }
        b.commit(&snap(0, 3)).unwrap(); // supersede
        b.discard_after(0, 3).unwrap(); // tombstone 4, 5
        assert!(b.dead_bytes() > 0);
        let before = std::fs::metadata(&path).unwrap().len();
        b.compact().unwrap();
        let after = std::fs::metadata(&path).unwrap().len();
        assert!(after < before, "{after} >= {before}");
        assert_eq!(b.dead_bytes(), 0);
        assert_eq!(b.committed().unwrap(), vec![(0, 1), (0, 2), (0, 3)]);
        assert_eq!(b.load(0, 3).unwrap(), snap(0, 3));
        // Reopen agrees.
        drop(b);
        let mut b = LogStructuredBackend::open(&path).unwrap();
        assert_eq!(b.committed().unwrap(), vec![(0, 1), (0, 2), (0, 3)]);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn backend_for_selects_by_name() {
        let d = tmpdir("select");
        assert_eq!(backend_for("mem", &d).unwrap().name(), "mem");
        assert_eq!(backend_for("file", &d).unwrap().name(), "file");
        assert_eq!(backend_for("log", &d).unwrap().name(), "log");
        assert!(backend_for("zfs", &d).is_err());
        let _ = std::fs::remove_dir_all(&d);
    }
}
