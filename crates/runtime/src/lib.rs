//! Real checkpointing runtime: executes lowered MPSL programs outside
//! the simulator, with actual state snapshots committed to durable
//! storage and actual crash recovery.
//!
//! The public API is a trait pair, mirroring the paper's separation of
//! *placement* from *persistence*:
//!
//! - [`CheckpointCoordinator`] decides **when** each worker checkpoints
//!   (the application-driven no-op, timer-driven uncoordinated, and
//!   SaS / C-L / CIC adapters that reuse the simulator's protocol
//!   hooks verbatim) — built from a
//!   [`ProtocolKind`](acfc_protocols::ProtocolKind) via
//!   [`coordinator_for`].
//! - [`StateBackend`](acfc_sim::StateBackend) decides **where**
//!   snapshots go: [`InMemoryBackend`], [`FileBackend`] (one file per
//!   snapshot, CRC-framed, atomic rename), or [`LogStructuredBackend`]
//!   (single append-only log with tombstones and compaction) — built
//!   from a name via [`backend_for`].
//!
//! Two schedulers execute the program:
//!
//! - [`run_det`] — deterministic virtual-time mode, a faithful mirror
//!   of the simulator engine: same event order, same traces
//!   (differentially pinned), but dispatching through the trait pair
//!   and committing real snapshots.
//! - [`run_free`] — free-running mode: one OS thread per worker over
//!   real `mpsc` channels, virtual cost-model clocks for protocol
//!   timers, a [`FailureInjector`] that kills live workers, and
//!   stop-the-world recovery that restores every worker from the
//!   latest consistent cut read back out of the backend.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backends;
pub mod coordinator;
pub mod det;
pub mod free;
pub mod report;

pub use backends::{
    backend_for, crc32, CrashPoint, FileBackend, InMemoryBackend, LogStructuredBackend,
};
pub use coordinator::{coordinator_for, CheckpointCoordinator, HookCoordinator, PreparedRun};
pub use det::{run_det, DetRun};
pub use free::{run_free, FailureInjector, FreeConfig};
pub use report::{outcome_name, trigger_name, RunEvent, RunReport};
