//! Free-running scheduler: one OS thread per worker over real `mpsc`
//! channels.
//!
//! Each worker executes its lowered instruction stream on its own
//! thread, advancing a *virtual* cost-model clock (the same cost
//! constants as the simulator) that drives protocol timers and the
//! [`FailureInjector`]'s kill schedule. Receives block on the worker's
//! real channel; sends go through real `Sender` handles. Interleaving
//! is whatever the OS scheduler produces — the point of this mode is
//! that checkpointing correctness must not depend on event order, and
//! the kill/recover tests drive exactly that.
//!
//! Recovery is stop-the-world and *backend-driven*: when a worker
//! crashes, every worker winds down, the controller reads the committed
//! snapshot set back out of the [`StateBackend`] (nothing is recovered
//! from worker memory — the dead thread's state is gone), picks the
//! recovery line with the coordinator's [`CutPicker`], re-injects the
//! messages that were in transit at the cut from the sender-side send
//! log, and respawns all workers from the restored states. Messages a
//! rolled-back send produced are dropped; messages received after the
//! cut are re-delivered — the same orphan/in-transit classification the
//! simulator's rollback performs, driven by the same per-process step
//! numbers.

use crate::coordinator::CheckpointCoordinator;
use crate::report::{outcome_name, trigger_name, RunEvent, RunReport};
use acfc_mpsl::lowered::{eval_ops, Op, SlotEnv};
use acfc_mpsl::{EvalError, StmtId};
use acfc_sim::backend::{StateBackend, StateSnapshot};
use acfc_sim::bytecode::{Compiled, ExprRef, LowInstr, LowSrc, NO_LABEL};
use acfc_sim::failure::RecoveryView;
use acfc_sim::trace::{CheckpointRecord, CkptTrigger, MessageRecord, MsgId, Outcome};
use acfc_sim::{CoordinationCost, CutPicker, FailurePlan, SimConfig, SimTime, VectorClock};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Kill schedule for the failure injector: `(virtual_time_us, proc)`
/// pairs. A kill fires the first time the victim's virtual clock
/// reaches the deadline; each entry fires at most once.
#[derive(Debug, Clone, Default)]
pub struct FailureInjector {
    kills: Vec<(u64, usize)>,
}

impl FailureInjector {
    /// No kills.
    pub fn none() -> FailureInjector {
        FailureInjector::default()
    }

    /// Kills from explicit `(virtual_time_us, proc)` pairs.
    pub fn at(kills: Vec<(u64, usize)>) -> FailureInjector {
        let mut f = FailureInjector { kills };
        f.kills.sort_unstable();
        f
    }

    /// Parses one CLI kill spec `proc@vtime_us` (e.g. `1@250000`).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed specs.
    pub fn parse_spec(spec: &str) -> Result<(u64, usize), String> {
        let (p, t) = spec
            .split_once('@')
            .ok_or_else(|| format!("kill spec '{spec}' is not of the form proc@vtime_us"))?;
        let proc: usize = p
            .trim()
            .parse()
            .map_err(|_| format!("kill spec '{spec}': bad proc '{p}'"))?;
        let at: u64 = t
            .trim()
            .parse()
            .map_err(|_| format!("kill spec '{spec}': bad virtual time '{t}'"))?;
        Ok((at, proc))
    }

    /// Adds one kill.
    pub fn push(&mut self, at_us: u64, proc: usize) {
        self.kills.push((at_us, proc));
        self.kills.sort_unstable();
    }

    /// The schedule as a simulator [`FailurePlan`] (for the
    /// deterministic scheduler).
    pub fn plan(&self) -> FailurePlan {
        FailurePlan::at(
            self.kills
                .iter()
                .map(|&(at, p)| (SimTime::from_micros(at), p))
                .collect(),
        )
    }

    /// Whether any kills are scheduled.
    pub fn is_empty(&self) -> bool {
        self.kills.is_empty()
    }
}

/// Wall-clock knobs of the free-running scheduler (virtual time is
/// governed by [`SimConfig`]'s cost model, not by these).
#[derive(Debug, Clone)]
pub struct FreeConfig {
    /// Poll interval while blocked on a receive (abort checks).
    pub poll: Duration,
    /// A worker blocked longer than this without any arrival declares
    /// the run deadlocked.
    pub idle_timeout: Duration,
    /// Upper bound on recovery rounds (defence against a kill schedule
    /// that keeps restoring to a state that re-crashes).
    pub max_recoveries: u32,
}

impl Default for FreeConfig {
    fn default() -> FreeConfig {
        FreeConfig {
            poll: Duration::from_millis(1),
            idle_timeout: Duration::from_secs(5),
            max_recoveries: 64,
        }
    }
}

/// One wire message between workers. Clocks travel dense (`n` is small
/// in free mode — real threads, not simulated ranks).
struct Packet {
    from: usize,
    /// Index into the shared send log.
    idx: usize,
    vc: Vec<u64>,
    piggyback: u64,
    bits: u64,
    sent_at: u64,
}

/// Sender-side log entry: everything recovery needs to classify the
/// message against a cut and re-inject it if it was in transit.
struct SentMsg {
    from: usize,
    to: usize,
    bits: u64,
    stmt: StmtId,
    send_step: u64,
    send_vc: Vec<u64>,
    piggyback: u64,
    sent_at: u64,
    recv_step: Option<u64>,
    rolled_back: bool,
}

struct Shared<'a> {
    compiled: &'a Compiled,
    config: &'a SimConfig,
    params: Vec<Option<i64>>,
    coord: Mutex<&'a mut dyn CheckpointCoordinator>,
    backend: Mutex<&'a mut (dyn StateBackend + Send)>,
    log: Mutex<Vec<SentMsg>>,
    events: Mutex<Vec<RunEvent>>,
    /// Virtual commit time of each `(proc, seq)` — lost-work accounting
    /// (the portable snapshot itself carries no clock).
    ckpt_times: Mutex<BTreeMap<(usize, u64), u64>>,
    abort: AtomicBool,
    crash: Mutex<Option<(usize, u64)>>,
    fatal: Mutex<Option<Outcome>>,
    use_timer: bool,
    passive: bool,
}

impl Shared<'_> {
    fn raise(&self, o: Outcome) {
        self.fatal.lock().unwrap().get_or_insert(o);
        self.abort.store(true, Ordering::SeqCst);
    }

    fn event(&self, e: RunEvent) {
        self.events.lock().unwrap().push(e);
    }
}

/// Everything a worker thread owns between rounds; survives recovery in
/// the controller (restored from the backend, not from here).
#[derive(Clone)]
struct WorkerState {
    pc: usize,
    vars: Vec<i64>,
    bound: Vec<bool>,
    vc: VectorClock,
    step: u64,
    ckpt_seq: u64,
    insts: Vec<u64>,
    executed: u64,
    now: u64,
    halted: bool,
}

struct Worker<'s, 'a> {
    rank: usize,
    st: WorkerState,
    shared: &'s Shared<'a>,
    rx: Receiver<Packet>,
    txs: Vec<Sender<Packet>>,
    /// Earliest unfired kill deadline for this rank this round.
    kill_at: Option<u64>,
    /// Buffered arrivals per source rank.
    pending: Vec<VecDeque<Packet>>,
    eval_stack: Vec<i64>,
    fc: FreeConfig,
}

enum Exit {
    Halted,
    /// Aborted (crash elsewhere, fatal error, or own kill).
    Wound,
}

impl Worker<'_, '_> {
    fn eval_ref(&mut self, r: ExprRef) -> Result<i64, EvalError> {
        let compiled = self.shared.compiled;
        match r.ops(&compiled.ops) {
            [Op::Const(v)] => return Ok(*v),
            [Op::Load(s)] => {
                let s = *s as usize;
                return if self.st.bound[s] {
                    Ok(self.st.vars[s])
                } else {
                    Err(EvalError::UnboundVar(compiled.var_names[s].clone()))
                };
            }
            _ => {}
        }
        let env = SlotEnv {
            rank: self.rank as i64,
            nprocs: self.shared.config.nprocs as i64,
            vars: &self.st.vars,
            bound: &self.st.bound,
            var_names: &compiled.var_names,
            params: &self.shared.params,
            param_names: &compiled.param_names,
            inputs: &self.shared.config.inputs,
        };
        eval_ops(r.ops(&compiled.ops), &env, &mut self.eval_stack)
    }

    fn resolve_rank(&mut self, expr: ExprRef) -> Option<usize> {
        match self.eval_ref(expr) {
            Ok(v) if v >= 0 && (v as usize) < self.shared.config.nprocs => Some(v as usize),
            Ok(v) => {
                self.shared.raise(Outcome::RuntimeError(
                    self.rank,
                    format!("rank expression evaluated to {v}, out of range"),
                ));
                None
            }
            Err(e) => {
                self.shared
                    .raise(Outcome::RuntimeError(self.rank, e.to_string()));
                None
            }
        }
    }

    /// Fires this round's kill if the virtual clock has reached it.
    fn check_kill(&mut self) -> bool {
        if let Some(at) = self.kill_at {
            if self.st.now >= at {
                let mut c = self.shared.crash.lock().unwrap();
                if c.is_none() {
                    *c = Some((self.rank, at));
                }
                drop(c);
                self.shared.abort.store(true, Ordering::SeqCst);
                return true;
            }
        }
        false
    }

    fn take_checkpoint(&mut self, stmt: Option<StmtId>, label: Option<String>, t: CkptTrigger) {
        let rank = self.rank;
        let coord = if self.shared.passive {
            CoordinationCost::default()
        } else {
            self.shared
                .coord
                .lock()
                .unwrap()
                .coordination_cost(rank, SimTime::from_micros(self.st.now))
        };
        self.st.vc.tick(rank);
        self.st.step += 1;
        self.st.ckpt_seq += 1;
        if let Some(sid) = stmt {
            self.st.insts[sid.0 as usize] += 1;
        }
        let compiled = self.shared.compiled;
        let mut vars: Vec<(String, i64)> = compiled
            .var_names
            .iter()
            .enumerate()
            .filter(|&(s, _)| self.st.bound[s])
            .map(|(s, name)| (name.clone(), self.st.vars[s]))
            .collect();
        vars.sort();
        let snap = StateSnapshot {
            proc: rank,
            seq: self.st.ckpt_seq,
            trigger: t,
            label,
            pc: self.st.pc,
            step: self.st.step,
            nprocs: self.shared.config.nprocs,
            vars,
            vc: self.st.vc.iter_nonzero().collect(),
            stmt_instances: self
                .st
                .insts
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c > 0)
                .map(|(i, &c)| (i as u32, c))
                .collect(),
        };
        if let Err(e) = self.shared.backend.lock().unwrap().commit(&snap) {
            self.shared
                .raise(Outcome::RuntimeError(rank, format!("backend commit: {e}")));
            return;
        }
        self.shared
            .ckpt_times
            .lock()
            .unwrap()
            .insert((rank, self.st.ckpt_seq), self.st.now);
        self.shared.event(RunEvent::Checkpoint {
            proc: rank,
            seq: self.st.ckpt_seq,
            trigger: trigger_name(t),
            vtime_us: self.st.now,
        });
        self.st.now += self.shared.config.cost.ckpt_overhead_us + coord.stall_us;
        if !self.shared.passive {
            self.shared.coord.lock().unwrap().checkpoint_taken(
                rank,
                t,
                SimTime::from_micros(self.st.now),
            );
        }
    }

    fn do_send(&mut self, to: usize, bits: u64, stmt: StmtId) {
        let rank = self.rank;
        self.st.vc.tick(rank);
        self.st.step += 1;
        let piggyback = if self.shared.passive {
            self.st.ckpt_seq
        } else {
            self.shared.coord.lock().unwrap().piggyback(
                rank,
                to,
                self.st.ckpt_seq,
                SimTime::from_micros(self.st.now),
            )
        };
        let sent_at = self.st.now + self.shared.config.cost.send_overhead_us;
        let vc: Vec<u64> = self.st.vc.components().to_vec();
        let idx = {
            let mut log = self.shared.log.lock().unwrap();
            log.push(SentMsg {
                from: rank,
                to,
                bits,
                stmt,
                send_step: self.st.step,
                send_vc: vc.clone(),
                piggyback,
                sent_at,
                recv_step: None,
                rolled_back: false,
            });
            log.len() - 1
        };
        // A closed channel means the run is already winding down.
        let _ = self.txs[to].send(Packet {
            from: rank,
            idx,
            vc,
            piggyback,
            bits,
            sent_at,
        });
        self.st.now += self.shared.config.cost.send_overhead_us;
    }

    /// Takes a buffered packet matching `want` (lowest sender rank
    /// first for `any` — arrival order between channels is up to the OS
    /// anyway).
    fn take_pending(&mut self, want: Option<usize>) -> Option<Packet> {
        match want {
            Some(src) => self.pending[src].pop_front(),
            None => self
                .pending
                .iter_mut()
                .find(|q| !q.is_empty())
                .and_then(|q| q.pop_front()),
        }
    }

    /// Blocks until a packet matching `want` is available, buffering
    /// others. Returns `None` on abort or idle timeout.
    fn wait_for(&mut self, want: Option<usize>) -> Option<Packet> {
        let start = Instant::now();
        loop {
            if let Some(p) = self.take_pending(want) {
                return Some(p);
            }
            if self.shared.abort.load(Ordering::SeqCst) {
                return None;
            }
            match self.rx.recv_timeout(self.fc.poll) {
                Ok(p) => {
                    let from = p.from;
                    self.pending[from].push_back(p);
                }
                Err(RecvTimeoutError::Timeout) => {
                    if start.elapsed() > self.fc.idle_timeout {
                        self.shared.raise(Outcome::Deadlock(vec![self.rank]));
                        return None;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    // All senders gone: either everyone halted (then a
                    // blocked recv is a deadlock) or the run aborted.
                    if !self.shared.abort.load(Ordering::SeqCst) {
                        self.shared.raise(Outcome::Deadlock(vec![self.rank]));
                    }
                    return None;
                }
            }
        }
    }

    fn consume(&mut self, p: Packet) {
        let rank = self.rank;
        if !self.shared.passive {
            let mut guard = 0u32;
            loop {
                let act = self.shared.coord.lock().unwrap().on_recv(
                    rank,
                    p.piggyback,
                    self.st.ckpt_seq,
                    SimTime::from_micros(self.st.now),
                );
                if act != acfc_sim::RecvAction::ForceCheckpointFirst {
                    break;
                }
                self.take_checkpoint(None, None, CkptTrigger::Forced);
                guard += 1;
                assert!(
                    guard < 100_000,
                    "coordinator demanded forced checkpoints without converging"
                );
            }
        }
        let n = self.shared.config.nprocs;
        let sender_vc = VectorClock::from_entries(
            n,
            p.vc.iter()
                .enumerate()
                .filter(|&(_, &v)| v > 0)
                .map(|(i, &v)| (i as u32, v)),
        );
        self.st.vc.merge(&sender_vc);
        self.st.vc.tick(rank);
        self.st.step += 1;
        // Virtual arrival: the message cannot be seen before it spent
        // its modelled latency in the network.
        let arrive = p.sent_at + self.shared.config.net.base_delay_us(p.bits);
        self.st.now = self.st.now.max(arrive) + self.shared.config.cost.instr_overhead_us;
        self.shared.log.lock().unwrap()[p.idx].recv_step = Some(self.st.step);
    }

    fn run(mut self) -> (WorkerState, Exit) {
        let compiled = self.shared.compiled;
        let max_steps = self.shared.config.max_steps_per_proc;
        let instr_us = self.shared.config.cost.instr_overhead_us;
        loop {
            if self.shared.abort.load(Ordering::SeqCst) || self.check_kill() {
                return (self.st, Exit::Wound);
            }
            if self.st.executed >= max_steps {
                self.shared.raise(Outcome::StepLimit(self.rank));
                return (self.st, Exit::Wound);
            }
            if self.shared.use_timer {
                let due = self
                    .shared
                    .coord
                    .lock()
                    .unwrap()
                    .timer_due(self.rank, SimTime::from_micros(self.st.now));
                if due {
                    self.st.executed += 1;
                    let trigger = self.shared.coord.lock().unwrap().timer_trigger(self.rank);
                    self.take_checkpoint(None, None, trigger);
                    continue;
                }
            }
            let pc = self.st.pc;
            let instr = compiled.lowered[pc];
            self.st.executed += 1;
            match instr {
                LowInstr::Compute { cost } => {
                    let c = match self.eval_ref(cost) {
                        Ok(v) if v >= 0 => v as u64,
                        Ok(v) => {
                            self.shared.raise(Outcome::RuntimeError(
                                self.rank,
                                format!("negative compute cost {v}"),
                            ));
                            return (self.st, Exit::Wound);
                        }
                        Err(e) => {
                            self.shared
                                .raise(Outcome::RuntimeError(self.rank, e.to_string()));
                            return (self.st, Exit::Wound);
                        }
                    };
                    self.st.now += c * self.shared.config.cost.compute_unit_us + instr_us;
                    self.st.pc = pc + 1;
                }
                LowInstr::Assign { var, value } => {
                    match self.eval_ref(value) {
                        Ok(v) => {
                            self.st.vars[var as usize] = v;
                            self.st.bound[var as usize] = true;
                        }
                        Err(e) => {
                            self.shared
                                .raise(Outcome::RuntimeError(self.rank, e.to_string()));
                            return (self.st, Exit::Wound);
                        }
                    }
                    self.st.now += instr_us;
                    self.st.pc = pc + 1;
                }
                LowInstr::Jump { target } => {
                    self.st.now += instr_us;
                    self.st.pc = target as usize;
                }
                LowInstr::JumpIfFalse { cond, target } => {
                    let v = match self.eval_ref(cond) {
                        Ok(v) => v,
                        Err(e) => {
                            self.shared
                                .raise(Outcome::RuntimeError(self.rank, e.to_string()));
                            return (self.st, Exit::Wound);
                        }
                    };
                    self.st.now += instr_us;
                    self.st.pc = if v == 0 { target as usize } else { pc + 1 };
                }
                LowInstr::Send {
                    dest,
                    size_bits,
                    stmt,
                } => {
                    let Some(to) = self.resolve_rank(dest) else {
                        return (self.st, Exit::Wound);
                    };
                    let bits = match self.eval_ref(size_bits) {
                        Ok(v) if v >= 0 => v as u64,
                        Ok(v) => {
                            self.shared.raise(Outcome::RuntimeError(
                                self.rank,
                                format!("negative message size {v}"),
                            ));
                            return (self.st, Exit::Wound);
                        }
                        Err(e) => {
                            self.shared
                                .raise(Outcome::RuntimeError(self.rank, e.to_string()));
                            return (self.st, Exit::Wound);
                        }
                    };
                    self.do_send(to, bits, stmt);
                    self.st.pc = pc + 1;
                }
                LowInstr::Recv { src, stmt } => {
                    let want: Option<usize> = match src {
                        LowSrc::Any => None,
                        LowSrc::Rank(e) => {
                            let Some(s) = self.resolve_rank(e) else {
                                return (self.st, Exit::Wound);
                            };
                            Some(s)
                        }
                    };
                    let Some(packet) = self.wait_for(want) else {
                        return (self.st, Exit::Wound);
                    };
                    let _ = stmt;
                    self.consume(packet);
                    self.st.pc = pc + 1;
                }
                LowInstr::Checkpoint { stmt, label } => {
                    self.st.pc = pc + 1;
                    let take = self.shared.passive
                        || self
                            .shared
                            .coord
                            .lock()
                            .unwrap()
                            .take_app_checkpoint(self.rank, SimTime::from_micros(self.st.now));
                    if take {
                        let label = if label == NO_LABEL {
                            None
                        } else {
                            Some(compiled.labels[label as usize].to_string())
                        };
                        self.take_checkpoint(Some(stmt), label, CkptTrigger::AppStatement);
                    } else {
                        self.st.now += instr_us;
                    }
                }
                LowInstr::Halt => {
                    self.st.halted = true;
                    self.shared.event(RunEvent::Halt {
                        proc: self.rank,
                        vtime_us: self.st.now,
                    });
                    return (self.st, Exit::Halted);
                }
            }
        }
    }
}

/// Runs `compiled` on live OS threads. See the module docs for the
/// execution and recovery model.
pub fn run_free(
    compiled: &Compiled,
    config: &SimConfig,
    coordinator: &mut dyn CheckpointCoordinator,
    backend: &mut (dyn StateBackend + Send),
    injector: &FailureInjector,
    fc: &FreeConfig,
) -> RunReport {
    let _span = acfc_obs::span("runtime/free_run");
    let n = config.nprocs;
    assert!(n >= 1, "need at least one worker");
    let picker = coordinator.picker();
    let coordinator_name = coordinator.name().to_string();
    let use_timer = coordinator.uses_timers();
    let passive = coordinator.passive();
    let backend_name = backend.name().to_string();

    let mut params: Vec<Option<i64>> = vec![None; compiled.param_names.len()];
    let slot_of = |name: &str| compiled.param_names.iter().position(|p| p == name);
    for (k, v) in &compiled.params {
        if let Some(s) = slot_of(k) {
            params[s] = Some(*v);
        }
    }
    for (k, v) in &config.param_overrides {
        if let Some(s) = slot_of(k) {
            params[s] = Some(*v);
        }
    }

    let nslots = compiled.var_names.len();
    let declared = compiled.vars.len();
    let stmt_limit = compiled.stmt_limit as usize;
    let mut states: Vec<WorkerState> = (0..n)
        .map(|_| {
            let mut bound = vec![false; nslots];
            bound[..declared].fill(true);
            WorkerState {
                pc: 0,
                vars: vec![0; nslots],
                bound,
                vc: VectorClock::new(n),
                step: 0,
                ckpt_seq: 0,
                insts: vec![0; stmt_limit],
                executed: 0,
                now: 0,
                halted: false,
            }
        })
        .collect();

    let shared = Shared {
        compiled,
        config,
        params,
        coord: Mutex::new(coordinator),
        backend: Mutex::new(backend),
        log: Mutex::new(Vec::new()),
        events: Mutex::new(vec![RunEvent::RunStart {
            program: compiled.name.clone(),
            nprocs: n,
            coordinator: coordinator_name.clone(),
            backend: backend_name.clone(),
            mode: "free",
        }]),
        ckpt_times: Mutex::new(BTreeMap::new()),
        abort: AtomicBool::new(false),
        crash: Mutex::new(None),
        fatal: Mutex::new(None),
        use_timer,
        passive,
    };

    let mut kills = injector.kills.clone();
    let mut preload: Vec<Packet> = Vec::new();
    let mut failures = 0u64;
    let mut recoveries = 0u32;
    let outcome;

    loop {
        // Fresh channels each round: nothing stale survives a rollback.
        let mut txs = Vec::with_capacity(n);
        let mut rxs = VecDeque::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = channel::<Packet>();
            txs.push(tx);
            rxs.push_back(rx);
        }
        for p in preload.drain(..) {
            let to = shared.log.lock().unwrap()[p.idx].to;
            let _ = txs[to].send(p);
        }
        let round_states: Vec<Option<(WorkerState, Exit)>> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for (rank, st) in states.iter().enumerate() {
                if st.halted {
                    // Drop the halted worker's receiver; senders to it
                    // get a closed channel, which they ignore.
                    rxs.pop_front();
                    handles.push(None);
                    continue;
                }
                let worker = Worker {
                    rank,
                    st: st.clone(),
                    shared: &shared,
                    rx: rxs.pop_front().expect("one receiver per rank"),
                    txs: txs.clone(),
                    kill_at: kills
                        .iter()
                        .filter(|&&(_, p)| p == rank)
                        .map(|&(at, _)| at)
                        .min(),
                    pending: (0..n).map(|_| VecDeque::new()).collect(),
                    eval_stack: Vec::new(),
                    fc: fc.clone(),
                };
                handles.push(Some(scope.spawn(move || worker.run())));
            }
            drop(txs);
            handles
                .into_iter()
                .map(|h| h.map(|h| h.join().expect("worker thread panicked")))
                .collect()
        });
        for (rank, r) in round_states.into_iter().enumerate() {
            if let Some((st, _)) = r {
                states[rank] = st;
            }
        }

        if let Some(o) = shared.fatal.lock().unwrap().take() {
            outcome = o;
            break;
        }
        let crash = shared.crash.lock().unwrap().take();
        if let Some((victim, at)) = crash {
            failures += 1;
            recoveries += 1;
            if recoveries > fc.max_recoveries {
                outcome = Outcome::RuntimeError(
                    victim,
                    format!("recovery limit ({}) exceeded", fc.max_recoveries),
                );
                break;
            }
            // This kill has fired; it must not fire again after restore.
            if let Some(i) = kills.iter().position(|&(t, p)| p == victim && t == at) {
                kills.remove(i);
            }
            shared.abort.store(false, Ordering::SeqCst);
            shared.event(RunEvent::Kill {
                proc: victim,
                vtime_us: at,
            });
            preload = recover(&shared, &picker, &mut states, victim, at);
            continue;
        }
        if states.iter().all(|s| s.halted) {
            outcome = Outcome::Completed;
        } else {
            outcome = Outcome::Deadlock(
                states
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| !s.halted)
                    .map(|(i, _)| i)
                    .collect(),
            );
        }
        break;
    }

    let vtime_us = states.iter().map(|s| s.now).max().unwrap_or(0);
    let final_vars: Vec<Vec<(String, i64)>> = states
        .iter()
        .map(|s| {
            let mut pairs: Vec<(String, i64)> = compiled
                .var_names
                .iter()
                .enumerate()
                .filter(|&(i, _)| s.bound[i])
                .map(|(i, name)| (name.clone(), s.vars[i]))
                .collect();
            pairs.sort();
            pairs
        })
        .collect();
    let mut events = shared.events.into_inner().unwrap();
    let checkpoints = events
        .iter()
        .filter(|e| matches!(e, RunEvent::Checkpoint { .. }))
        .count() as u64;
    let messages = shared.log.into_inner().unwrap().len() as u64;
    events.push(RunEvent::RunEnd {
        outcome: outcome_name(&outcome),
        vtime_us,
        checkpoints,
        messages,
        failures,
    });
    RunReport {
        program: compiled.name.clone(),
        nprocs: n,
        coordinator: coordinator_name,
        backend: backend_name,
        mode: "free",
        outcome,
        vtime_us,
        events,
        final_vars,
    }
}

/// Stop-the-world recovery: rebuilds the recovery view *from the
/// backend's committed set* and the send log, picks the cut, restores
/// every worker state from loaded snapshots, and returns the in-transit
/// packets to re-inject into the next round's channels.
fn recover(
    shared: &Shared<'_>,
    picker: &CutPicker,
    states: &mut [WorkerState],
    victim: usize,
    at: u64,
) -> Vec<Packet> {
    let n = shared.config.nprocs;
    let mut backend = shared.backend.lock().unwrap();
    let committed = backend
        .committed()
        .expect("backend enumerates committed snapshots");
    // Materialise committed snapshots as checkpoint records so the
    // simulator-side pickers (which consume `RecoveryView`) apply
    // unchanged. Times are not persisted — pickers never read them.
    let loaded: Vec<StateSnapshot> = committed
        .iter()
        .map(|&(p, seq)| backend.load(p, seq).expect("committed snapshot loads"))
        .collect();
    let records: Vec<CheckpointRecord> = loaded
        .iter()
        .map(|s| {
            let snapshot = s.to_snapshot();
            CheckpointRecord {
                proc: s.proc,
                seq: s.seq,
                stmt: None,
                instance: 0,
                label: s.label.as_deref().map(Into::into),
                trigger: s.trigger,
                start: SimTime::ZERO,
                durable_at: SimTime::ZERO,
                vc: snapshot.vc.clone(),
                step: s.step,
                snapshot,
                rolled_back: false,
            }
        })
        .collect();
    let mut live: Vec<Vec<&CheckpointRecord>> = vec![Vec::new(); n];
    for r in &records {
        live[r.proc].push(r);
    }
    let log = shared.log.lock().unwrap();
    let messages: Vec<MessageRecord> = log
        .iter()
        .enumerate()
        .map(|(i, m)| MessageRecord {
            id: MsgId(i as u64),
            from: m.from,
            to: m.to,
            size_bits: m.bits,
            send_stmt: m.stmt,
            sent_at: SimTime::from_micros(m.sent_at),
            send_vc: VectorClock::from_entries(
                n,
                m.send_vc
                    .iter()
                    .enumerate()
                    .filter(|&(_, &v)| v > 0)
                    .map(|(i, &v)| (i as u32, v)),
            ),
            send_step: m.send_step,
            piggyback: m.piggyback,
            delivered_at: None,
            recv_at: None,
            recv_vc: None,
            recv_step: m.recv_step,
            recv_stmt: None,
            rolled_back: m.rolled_back,
        })
        .collect();
    drop(log);
    let view = RecoveryView {
        live: &live,
        messages: &messages,
    };
    let picked = picker.pick(&view);
    let cut_step: Vec<u64> = (0..n)
        .map(|q| {
            picked[q]
                .and_then(|seq| loaded.iter().find(|s| s.proc == q && s.seq == seq))
                .map(|s| s.step)
                .unwrap_or(0)
        })
        .collect();
    for q in 0..n {
        assert!(
            picked[q].is_none() || cut_step[q] > 0,
            "picker chose a seq the backend does not hold for proc {q}"
        );
    }
    // Lost work: virtual time since each worker's restored checkpoint.
    let times = shared.ckpt_times.lock().unwrap();
    let lost_us: u64 = (0..n)
        .map(|q| {
            let back_to = picked[q]
                .and_then(|seq| times.get(&(q, seq)).copied())
                .unwrap_or(0);
            states[q].now.saturating_sub(back_to)
        })
        .sum();
    drop(times);
    // The backend keeps only the cut and earlier.
    for (q, p) in picked.iter().enumerate() {
        backend
            .discard_after(q, p.unwrap_or(0))
            .expect("backend discards rolled-back snapshots");
    }
    drop(backend);
    // Classify the log against the cut; in-transit messages become next
    // round's preloaded packets, FIFO per sender.
    let mut log = shared.log.lock().unwrap();
    let mut intransit: Vec<usize> = Vec::new();
    for (i, m) in log.iter_mut().enumerate() {
        if m.rolled_back {
            continue;
        }
        if m.send_step > cut_step[m.from] {
            m.rolled_back = true;
            continue;
        }
        let received_before_cut = m.recv_step.is_some_and(|rs| rs <= cut_step[m.to]);
        if !received_before_cut {
            m.recv_step = None;
            intransit.push(i);
        }
    }
    intransit.sort_by_key(|&i| (log[i].from, log[i].send_step));
    let resume = at + shared.config.cost.recovery_us;
    let preload: Vec<Packet> = intransit
        .iter()
        .map(|&i| {
            let m = &log[i];
            Packet {
                from: m.from,
                idx: i,
                vc: m.send_vc.clone(),
                piggyback: m.piggyback,
                bits: m.bits,
                // Redelivery happens after the recovery pause.
                sent_at: resume,
            }
        })
        .collect();
    drop(log);
    // Restore every worker from the backend-loaded snapshot (or to the
    // initial state when its line has no checkpoint).
    let compiled = shared.compiled;
    for q in 0..n {
        let st = &mut states[q];
        match picked[q].and_then(|seq| loaded.iter().find(|s| s.proc == q && s.seq == seq)) {
            Some(s) => {
                st.pc = s.pc;
                st.vars.fill(0);
                st.bound.fill(false);
                for (name, v) in &s.vars {
                    let slot = compiled
                        .var_names
                        .iter()
                        .position(|x| x == name)
                        .expect("snapshot variable exists in the program");
                    st.vars[slot] = *v;
                    st.bound[slot] = true;
                }
                // Dense, mutable clock (from_entries alone yields an
                // immutable sparse stamp unfit for tick/merge).
                let mut vc = VectorClock::new(n);
                vc.merge(&VectorClock::from_entries(n, s.vc.iter().copied()));
                st.vc = vc;
                st.ckpt_seq = s.seq;
                st.insts.fill(0);
                for &(sid, c) in &s.stmt_instances {
                    st.insts[sid as usize] = c;
                }
                st.step = s.step;
            }
            None => {
                st.pc = 0;
                // Values reset to 0; binding state is untouched
                // (mirrors the simulator's restore-to-initial).
                st.vars.fill(0);
                st.vc = VectorClock::new(n);
                st.ckpt_seq = 0;
                st.insts.fill(0);
                st.step = 0;
            }
        }
        st.halted = false;
        st.now = resume;
    }
    shared.event(RunEvent::Recovery {
        killed: victim,
        vtime_us: resume,
        restored: picked,
        redelivered: preload.len(),
        lost_us,
    });
    preload
}
