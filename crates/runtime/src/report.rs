//! Run reporting: the event log a runtime execution emits and its
//! JSONL rendering (one event per line, machine-checkable — the CI
//! smoke job validates recovery transcripts from this format).

use acfc_sim::{CkptTrigger, Outcome};

/// Stable lowercase name of a checkpoint trigger.
pub fn trigger_name(t: CkptTrigger) -> &'static str {
    match t {
        CkptTrigger::AppStatement => "app",
        CkptTrigger::Timer => "timer",
        CkptTrigger::Forced => "forced",
        CkptTrigger::Coordinated => "coordinated",
    }
}

/// One observable event of a runtime execution, in emission order. All
/// times are virtual cost-model microseconds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunEvent {
    /// The run began.
    RunStart {
        /// Program name.
        program: String,
        /// Worker count.
        nprocs: usize,
        /// Coordinator name.
        coordinator: String,
        /// Backend name.
        backend: String,
        /// `"det"` or `"free"`.
        mode: &'static str,
    },
    /// A checkpoint was committed to the backend.
    Checkpoint {
        /// Owning worker.
        proc: usize,
        /// Sequence number (1-based).
        seq: u64,
        /// Trigger name ([`trigger_name`]).
        trigger: &'static str,
        /// Virtual time at the checkpoint.
        vtime_us: u64,
    },
    /// A worker was killed by the failure injector.
    Kill {
        /// The killed worker.
        proc: usize,
        /// Virtual time of the kill.
        vtime_us: u64,
    },
    /// A recovery rolled every worker back to a consistent cut.
    Recovery {
        /// The worker whose death triggered recovery.
        killed: usize,
        /// Virtual time of the recovery.
        vtime_us: u64,
        /// Restored checkpoint `seq` per worker (`None` = initial
        /// state).
        restored: Vec<Option<u64>>,
        /// In-transit messages re-delivered at the cut.
        redelivered: usize,
        /// Work rolled back, summed over workers (µs).
        lost_us: u64,
    },
    /// A worker halted normally.
    Halt {
        /// The halted worker.
        proc: usize,
        /// Virtual time of the halt.
        vtime_us: u64,
    },
    /// The run ended.
    RunEnd {
        /// Outcome name (`completed`, `deadlock`, `steplimit`,
        /// `error`).
        outcome: String,
        /// Final virtual time.
        vtime_us: u64,
        /// Live checkpoints at the end.
        checkpoints: u64,
        /// Application messages sent.
        messages: u64,
        /// Failures injected.
        failures: u64,
    },
}

fn esc(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl RunEvent {
    /// Renders the event as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        match self {
            RunEvent::RunStart {
                program,
                nprocs,
                coordinator,
                backend,
                mode,
            } => {
                s.push_str("{\"ev\":\"run_start\",\"program\":");
                esc(program, &mut s);
                s.push_str(&format!(",\"nprocs\":{nprocs},\"coordinator\":"));
                esc(coordinator, &mut s);
                s.push_str(",\"backend\":");
                esc(backend, &mut s);
                s.push_str(&format!(",\"mode\":\"{mode}\"}}"));
            }
            RunEvent::Checkpoint {
                proc,
                seq,
                trigger,
                vtime_us,
            } => s.push_str(&format!(
                "{{\"ev\":\"checkpoint\",\"proc\":{proc},\"seq\":{seq},\"trigger\":\"{trigger}\",\"vtime_us\":{vtime_us}}}"
            )),
            RunEvent::Kill { proc, vtime_us } => s.push_str(&format!(
                "{{\"ev\":\"kill\",\"proc\":{proc},\"vtime_us\":{vtime_us}}}"
            )),
            RunEvent::Recovery {
                killed,
                vtime_us,
                restored,
                redelivered,
                lost_us,
            } => {
                s.push_str(&format!(
                    "{{\"ev\":\"recovery\",\"killed\":{killed},\"vtime_us\":{vtime_us},\"restored\":["
                ));
                for (i, r) in restored.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    match r {
                        Some(seq) => s.push_str(&seq.to_string()),
                        None => s.push_str("null"),
                    }
                }
                s.push_str(&format!(
                    "],\"redelivered\":{redelivered},\"lost_us\":{lost_us}}}"
                ));
            }
            RunEvent::Halt { proc, vtime_us } => s.push_str(&format!(
                "{{\"ev\":\"halt\",\"proc\":{proc},\"vtime_us\":{vtime_us}}}"
            )),
            RunEvent::RunEnd {
                outcome,
                vtime_us,
                checkpoints,
                messages,
                failures,
            } => {
                s.push_str("{\"ev\":\"run_end\",\"outcome\":");
                esc(outcome, &mut s);
                s.push_str(&format!(
                    ",\"vtime_us\":{vtime_us},\"checkpoints\":{checkpoints},\"messages\":{messages},\"failures\":{failures}}}"
                ));
            }
        }
        s
    }
}

/// Stable lowercase outcome name for reports.
pub fn outcome_name(o: &Outcome) -> String {
    match o {
        Outcome::Completed => "completed".into(),
        Outcome::Deadlock(procs) => format!("deadlock({procs:?})"),
        Outcome::StepLimit(p) => format!("steplimit({p})"),
        Outcome::RuntimeError(p, m) => format!("error({p}: {m})"),
    }
}

/// Summary of a runtime execution: the event log plus end-of-run
/// aggregates, independent of the scheduler mode that produced it.
#[derive(Debug)]
pub struct RunReport {
    /// Program name.
    pub program: String,
    /// Worker count.
    pub nprocs: usize,
    /// Coordinator name.
    pub coordinator: String,
    /// Backend name.
    pub backend: String,
    /// `"det"` or `"free"`.
    pub mode: &'static str,
    /// How the run ended.
    pub outcome: Outcome,
    /// Final virtual time (max over workers).
    pub vtime_us: u64,
    /// The ordered event log (starts with `RunStart`, ends with
    /// `RunEnd`).
    pub events: Vec<RunEvent>,
    /// Final bound variables per worker, sorted by name.
    pub final_vars: Vec<Vec<(String, i64)>>,
}

impl RunReport {
    /// Renders the whole event log as JSONL.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_render_as_json_objects() {
        let evs = [
            RunEvent::RunStart {
                program: "jacobi \"q\"".into(),
                nprocs: 4,
                coordinator: "appl-driven".into(),
                backend: "mem".into(),
                mode: "det",
            },
            RunEvent::Checkpoint {
                proc: 1,
                seq: 2,
                trigger: "app",
                vtime_us: 123,
            },
            RunEvent::Kill {
                proc: 0,
                vtime_us: 5,
            },
            RunEvent::Recovery {
                killed: 0,
                vtime_us: 10,
                restored: vec![Some(2), None],
                redelivered: 3,
                lost_us: 77,
            },
            RunEvent::Halt {
                proc: 2,
                vtime_us: 9,
            },
            RunEvent::RunEnd {
                outcome: "completed".into(),
                vtime_us: 100,
                checkpoints: 8,
                messages: 12,
                failures: 1,
            },
        ];
        for e in &evs {
            let j = e.to_json();
            assert!(j.starts_with('{') && j.ends_with('}'), "{j}");
            assert!(j.contains("\"ev\":"), "{j}");
        }
        // Escaping: the embedded quote survives as an escape.
        assert!(evs[0].to_json().contains("jacobi \\\"q\\\""));
        // Restored nulls render as JSON null.
        assert!(evs[3].to_json().contains("[2,null]"));
    }
}
