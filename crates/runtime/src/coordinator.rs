//! Checkpoint coordinators: *when* a worker checkpoints.
//!
//! [`CheckpointCoordinator`] is the runtime half of the trait pair
//! (its sibling [`StateBackend`](acfc_sim::StateBackend) decides
//! *where* snapshots go). The surface deliberately mirrors the
//! simulator's [`Hooks`] customisation points — same piggyback /
//! on-recv / timer / coordination-cost decisions, against the worker's
//! virtual cost-model clock — so every protocol the paper compares
//! against runs unmodified on live workers via [`HookCoordinator`],
//! and the deterministic scheduler reproduces the simulator's event
//! order exactly.

use acfc_mpsl::Program;
use acfc_protocols::{
    max_consistent_picker, uncoordinated_hooks, uncoordinated_picker, AppDriven, ChandyLamport,
    CicProtocol, ProtocolKind, SyncAndStop,
};
use acfc_sim::{
    compile, CkptTrigger, Compiled, CoordinationCost, CutPicker, Hooks, NetworkModel, NoHooks,
    RecvAction, SimTime,
};

/// Decides when each worker checkpoints, what protocol metadata rides
/// on messages, and which recovery line a rollback restores.
///
/// All times are the worker's *virtual* cost-model clock (µs of
/// modelled execution, not wall clock), so coordinator behaviour is
/// identical across hardware speeds and between the deterministic and
/// free-running schedulers.
pub trait CheckpointCoordinator: Send {
    /// Short stable identifier for reports and the CLI.
    fn name(&self) -> &'static str;

    /// `true` when the coordinator never intervenes (the
    /// application-driven protocol): workers skip per-message and
    /// per-checkpoint dispatch entirely.
    fn passive(&mut self) -> bool {
        false
    }

    /// `true` when [`timer_due`](CheckpointCoordinator::timer_due)
    /// must be polled at instruction boundaries.
    fn uses_timers(&mut self) -> bool {
        true
    }

    /// Metadata to piggyback on an application message.
    fn piggyback(&mut self, p: usize, to: usize, ckpt_seq: u64, now: SimTime) -> u64;

    /// Protocol decision on message receipt (deliver, or force a
    /// checkpoint first).
    fn on_recv(&mut self, p: usize, piggyback: u64, own_seq: u64, now: SimTime) -> RecvAction;

    /// Whether an application `checkpoint` statement actually takes a
    /// checkpoint under this protocol.
    fn take_app_checkpoint(&mut self, p: usize, now: SimTime) -> bool;

    /// Whether a protocol timer has expired for `p`.
    fn timer_due(&mut self, p: usize, now: SimTime) -> bool;

    /// The trigger recorded for timer checkpoints.
    fn timer_trigger(&mut self, p: usize) -> CkptTrigger;

    /// Stall and control traffic charged for a checkpoint.
    fn coordination_cost(&mut self, p: usize, now: SimTime) -> CoordinationCost;

    /// Notification that `p` committed a checkpoint.
    fn checkpoint_taken(&mut self, p: usize, trigger: CkptTrigger, now: SimTime);

    /// A fresh recovery-line picker consistent with this protocol's
    /// checkpoint placement guarantees.
    fn picker(&self) -> CutPicker;
}

/// Which picker a [`HookCoordinator`] hands to recovery.
enum PickerKind {
    AlignedSeq,
    MaxConsistent,
    Uncoordinated,
    Cic(acfc_protocols::CicVariant),
}

impl PickerKind {
    fn build(&self) -> CutPicker {
        match self {
            PickerKind::AlignedSeq => CutPicker::AlignedSeq,
            PickerKind::MaxConsistent => max_consistent_picker(),
            PickerKind::Uncoordinated => uncoordinated_picker(),
            PickerKind::Cic(v) => v.picker(),
        }
    }
}

/// Adapts any simulator [`Hooks`] implementation into a
/// [`CheckpointCoordinator`]: the protocol logic (SaS and C-L waves,
/// CIC index propagation, uncoordinated timers) is reused verbatim —
/// one implementation drives both the simulator and the live runtime.
pub struct HookCoordinator<H: Hooks + Send> {
    name: &'static str,
    hooks: H,
    picker: PickerKind,
}

impl<H: Hooks + Send> HookCoordinator<H> {
    fn new(name: &'static str, hooks: H, picker: PickerKind) -> HookCoordinator<H> {
        HookCoordinator {
            name,
            hooks,
            picker,
        }
    }
}

impl<H: Hooks + Send> CheckpointCoordinator for HookCoordinator<H> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn passive(&mut self) -> bool {
        self.hooks.passive()
    }

    fn uses_timers(&mut self) -> bool {
        self.hooks.uses_timers()
    }

    fn piggyback(&mut self, p: usize, to: usize, ckpt_seq: u64, now: SimTime) -> u64 {
        self.hooks.piggyback(p, to, ckpt_seq, now)
    }

    fn on_recv(&mut self, p: usize, piggyback: u64, own_seq: u64, now: SimTime) -> RecvAction {
        self.hooks.on_recv(p, piggyback, own_seq, now)
    }

    fn take_app_checkpoint(&mut self, p: usize, now: SimTime) -> bool {
        self.hooks.take_app_checkpoint(p, now)
    }

    fn timer_due(&mut self, p: usize, now: SimTime) -> bool {
        self.hooks.timer_checkpoint_due(p, now)
    }

    fn timer_trigger(&mut self, p: usize) -> CkptTrigger {
        self.hooks.timer_trigger(p)
    }

    fn coordination_cost(&mut self, p: usize, now: SimTime) -> CoordinationCost {
        self.hooks.coordination_cost(p, now)
    }

    fn checkpoint_taken(&mut self, p: usize, trigger: CkptTrigger, now: SimTime) {
        self.hooks.checkpoint_taken(p, trigger, now)
    }

    fn picker(&self) -> CutPicker {
        self.picker.build()
    }
}

/// The program and coordinator to actually run: the application-driven
/// protocol executes the analysis-transformed program, every other
/// protocol executes the source program as written.
pub struct PreparedRun {
    /// Compiled instruction stream for the workers.
    pub compiled: Compiled,
    /// The coordinator driving checkpoint decisions.
    pub coordinator: Box<dyn CheckpointCoordinator>,
}

/// Builds the coordinator (and the program it runs) for `kind`,
/// mirroring the simulator's protocol dispatch: the same constructor
/// arguments, the same pickers, the same transformed program for the
/// application-driven protocol.
///
/// # Errors
///
/// Returns the analysis error message when the application-driven
/// offline analysis rejects the program.
pub fn coordinator_for(
    kind: ProtocolKind,
    program: &Program,
    nprocs: usize,
    interval_us: u64,
    skew_us: u64,
    net: NetworkModel,
) -> Result<PreparedRun, String> {
    Ok(match kind {
        ProtocolKind::AppDriven => {
            let ad = AppDriven::prepare(program, nprocs).map_err(|e| e.to_string())?;
            PreparedRun {
                compiled: ad.compiled,
                coordinator: Box::new(HookCoordinator::new(
                    "appl-driven",
                    NoHooks,
                    PickerKind::AlignedSeq,
                )),
            }
        }
        ProtocolKind::Uncoordinated => PreparedRun {
            compiled: compile(program),
            coordinator: Box::new(HookCoordinator::new(
                "uncoordinated",
                uncoordinated_hooks(nprocs, interval_us, skew_us),
                PickerKind::Uncoordinated,
            )),
        },
        ProtocolKind::SyncAndStop => PreparedRun {
            compiled: compile(program),
            coordinator: Box::new(HookCoordinator::new(
                "SaS",
                SyncAndStop::new(nprocs, interval_us, net),
                PickerKind::MaxConsistent,
            )),
        },
        ProtocolKind::ChandyLamport => PreparedRun {
            compiled: compile(program),
            coordinator: Box::new(HookCoordinator::new(
                "C-L",
                ChandyLamport::new(nprocs, interval_us, net),
                PickerKind::MaxConsistent,
            )),
        },
        ProtocolKind::Cic(variant) => PreparedRun {
            compiled: compile(program),
            coordinator: Box::new(HookCoordinator::new(
                variant.name(),
                CicProtocol::new(variant, nprocs, interval_us, skew_us),
                PickerKind::Cic(variant),
            )),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use acfc_mpsl::programs;

    #[test]
    fn every_protocol_kind_builds_a_coordinator() {
        let program = programs::jacobi(3);
        for kind in ProtocolKind::all() {
            let prep = coordinator_for(kind, &program, 4, 60_000, 20_000, NetworkModel::default())
                .unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert_eq!(prep.coordinator.name(), kind.name());
            assert!(!prep.compiled.is_empty());
            // The picker builds without panicking.
            let _ = prep.coordinator.picker();
        }
    }

    #[test]
    fn app_driven_is_passive_and_runs_the_transformed_program() {
        let program = programs::jacobi_odd_even(4);
        let mut prep = coordinator_for(
            ProtocolKind::AppDriven,
            &program,
            4,
            60_000,
            20_000,
            NetworkModel::default(),
        )
        .unwrap();
        assert!(prep.coordinator.passive());
        // The analysis may move/insert checkpoints: the transformed
        // stream differs from the plain compile.
        let plain = compile(&program);
        assert_eq!(prep.compiled.name, plain.name);
    }

    #[test]
    fn analysis_failure_surfaces_as_error() {
        // A program the analysis rejects: unknown nprocs-dependent
        // structure is fine, but an empty program has no checkpoints to
        // align — prepare still succeeds there, so instead check a
        // plainly valid program does NOT error (guarding the plumbing).
        assert!(coordinator_for(
            ProtocolKind::AppDriven,
            &programs::jacobi(2),
            2,
            60_000,
            20_000,
            NetworkModel::default(),
        )
        .is_ok());
    }
}
