//! Deterministic scheduler: the runtime's replayable execution mode.
//!
//! Runs lowered workers under a virtual-time event scheduler that is a
//! *faithful structural mirror* of the simulator engine — the same
//! event queue discipline (time, then push order), the same run-ahead
//! fast path and inline budget, the same jitter RNG draw points — so
//! that, given the same program, configuration, coordinator, and kill
//! schedule, the recorded event order is bit-for-bit identical to the
//! simulator's golden traces. The differential tests pin exactly this.
//!
//! The mirror is deliberately *not* a re-export of the simulator: it
//! dispatches through the runtime's [`CheckpointCoordinator`] /
//! [`StateBackend`] trait pair (the simulator dispatches through
//! [`Hooks`](acfc_sim::Hooks)), commits every checkpoint to the
//! backend, restores kill victims from the backend-backed recovery
//! line, and emits the [`RunEvent`] log the CLI renders. Subtleties the
//! mirror must preserve (learned the hard way — see the differential
//! tests):
//!
//! - The inline budget accumulates across run-ahead continuations; a
//!   scheduler that yields after every time-advancing instruction
//!   resets it per resume, shifting yield points and hence the global
//!   interleaving and the jitter draw order.
//! - Ties in the event queue break by push order (`heap_seq`), so the
//!   *sequence of pushes* must match, not just the set of events.
//! - Dense vector clocks only: delta-clock transport is a simulator
//!   scale optimisation and out of scope here (workers are real OS
//!   threads in free mode; n stays small).

use crate::coordinator::CheckpointCoordinator;
use crate::report::{outcome_name, trigger_name, RunEvent, RunReport};
use acfc_mpsl::lowered::{eval_ops, Op, SlotEnv};
use acfc_mpsl::{EvalError, StmtId};
use acfc_obs::LocalHist;
use acfc_sim::backend::{var_store, StateBackend, StateSnapshot};
use acfc_sim::bytecode::{Compiled, ExprRef, LowInstr, LowSrc, NO_LABEL};
use acfc_sim::failure::RecoveryView;
use acfc_sim::trace::{
    CheckpointRecord, CkptTrigger, FailureRecord, MessageRecord, Metrics, MsgId, Outcome, Snapshot,
    Trace,
};
use acfc_sim::{backend, VectorClock};
use acfc_sim::{CalendarQueue, CoordinationCost, CutPicker, FailurePlan, SimConfig, SimTime};
use acfc_util::rng::Rng;
use std::sync::Arc;

/// Result of a deterministic run: the simulator-comparable trace plus
/// the runtime event log.
#[derive(Debug)]
pub struct DetRun {
    /// Full trace in the simulator's format — directly comparable
    /// (field by field) against `acfc_sim::run*` output.
    pub trace: Trace,
    /// Ordered runtime events (checkpoints, kills, recoveries, halts).
    pub events: Vec<RunEvent>,
    /// Final bound variables per worker, sorted by name.
    pub final_vars: Vec<Vec<(String, i64)>>,
}

impl DetRun {
    /// Wraps the run as a [`RunReport`] — `RunStart`/`RunEnd` framing
    /// around the event log plus end-of-run aggregates — so both
    /// schedulers emit the same JSONL transcript shape.
    pub fn into_report(self, coordinator: &str, backend: &str) -> RunReport {
        let vtime_us = self.trace.finished_at.as_micros();
        let checkpoints = self
            .events
            .iter()
            .filter(|e| matches!(e, RunEvent::Checkpoint { .. }))
            .count() as u64;
        let messages = self.trace.messages.len() as u64;
        let failures = self.trace.failures.len() as u64;
        let mut events = Vec::with_capacity(self.events.len() + 2);
        events.push(RunEvent::RunStart {
            program: self.trace.program.clone(),
            nprocs: self.trace.nprocs,
            coordinator: coordinator.to_string(),
            backend: backend.to_string(),
            mode: "det",
        });
        events.extend(self.events);
        events.push(RunEvent::RunEnd {
            outcome: outcome_name(&self.trace.outcome),
            vtime_us,
            checkpoints,
            messages,
            failures,
        });
        RunReport {
            program: self.trace.program.clone(),
            nprocs: self.trace.nprocs,
            coordinator: coordinator.to_string(),
            backend: backend.to_string(),
            mode: "det",
            outcome: self.trace.outcome.clone(),
            vtime_us,
            events,
            final_vars: self.final_vars,
        }
    }
}

/// Runs `compiled` deterministically: virtual time, seeded jitter, the
/// coordinator deciding checkpoint placement, every checkpoint
/// committed to `backend`, and kills from `plan` recovered via the
/// coordinator's cut picker over the backend's committed set.
///
/// # Panics
///
/// Panics when `config` selects delta-clock mode (`n` above
/// [`acfc_sim::DENSE_CLOCK_MAX`] under `ClockMode::Auto`): the
/// deterministic runtime supports dense clocks only.
pub fn run_det(
    compiled: &Compiled,
    config: &SimConfig,
    coordinator: &mut dyn CheckpointCoordinator,
    backend: &mut dyn StateBackend,
    plan: FailurePlan,
) -> DetRun {
    assert!(
        !config.clock_mode.is_delta(config.nprocs),
        "the deterministic runtime supports dense vector clocks only \
         (n <= DENSE_CLOCK_MAX or ClockMode::Dense)"
    );
    let picker = coordinator.picker();
    DetEngine::new(compiled, config, coordinator, backend, plan, picker).run()
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Ev {
    Ready { p: usize, epoch: u64 },
    Arrive { slot: u32, gen: u32 },
    Fail { p: usize },
}

#[derive(Debug, Clone, PartialEq)]
enum PState {
    Ready,
    Blocked {
        src: Option<usize>,
        stmt: StmtId,
        since: SimTime,
    },
    Halted,
}

/// Raw restore image kept alongside each checkpoint record: full
/// variable/bound rows and counters, copied back verbatim on rollback
/// (the trace-facing [`Snapshot`] stores bound pairs only).
struct RawSnap {
    pc: usize,
    values: Vec<i64>,
    bound: Vec<bool>,
    vc: VectorClock,
    ckpt_seq: u64,
    insts: Vec<u64>,
    step: u64,
}

const NIL: u32 = u32::MAX;

struct FlightSlot {
    msg: u32,
    gen: u32,
    next: u32,
}

struct MsgArena {
    slots: Vec<FlightSlot>,
    free: Vec<u32>,
}

impl MsgArena {
    fn new() -> MsgArena {
        MsgArena {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    fn alloc(&mut self, msg: usize) -> (u32, u32) {
        if let Some(s) = self.free.pop() {
            let slot = &mut self.slots[s as usize];
            slot.msg = msg as u32;
            slot.next = NIL;
            (s, slot.gen)
        } else {
            let s = self.slots.len() as u32;
            self.slots.push(FlightSlot {
                msg: msg as u32,
                gen: 0,
                next: NIL,
            });
            (s, 0)
        }
    }

    fn release(&mut self, s: u32) {
        let slot = &mut self.slots[s as usize];
        debug_assert!(slot.msg != NIL, "double free of flight slot");
        slot.msg = NIL;
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(s);
    }

    fn is_live(&self, s: u32, gen: u32) -> bool {
        let slot = &self.slots[s as usize];
        slot.gen == gen && slot.msg != NIL
    }
}

struct InChan {
    src: u32,
    head: u32,
    tail: u32,
}

struct OutChan {
    dest: u32,
    last: SimTime,
}

struct Procs {
    nslots: usize,
    stmt_limit: usize,
    vars: Vec<i64>,
    bound: Vec<bool>,
    pc: Vec<usize>,
    vc: Vec<VectorClock>,
    state: Vec<PState>,
    ckpt_seq: Vec<u64>,
    stmt_instances: Vec<u64>,
    step: Vec<u64>,
    executed: Vec<u64>,
    now: Vec<SimTime>,
}

impl Procs {
    fn vars_of(&self, p: usize) -> &[i64] {
        &self.vars[p * self.nslots..(p + 1) * self.nslots]
    }
    fn bound_of(&self, p: usize) -> &[bool] {
        &self.bound[p * self.nslots..(p + 1) * self.nslots]
    }
    fn insts_of(&self, p: usize) -> &[u64] {
        &self.stmt_instances[p * self.stmt_limit..(p + 1) * self.stmt_limit]
    }
    fn insts_of_mut(&mut self, p: usize) -> &mut [u64] {
        &mut self.stmt_instances[p * self.stmt_limit..(p + 1) * self.stmt_limit]
    }
}

struct DetEngine<'a> {
    compiled: &'a Compiled,
    config: &'a SimConfig,
    coord: &'a mut dyn CheckpointCoordinator,
    backend: &'a mut dyn StateBackend,
    picker: CutPicker,
    procs: Procs,
    epochs: Vec<u64>,
    queue: CalendarQueue<Ev>,
    heap_seq: u64,
    arena: MsgArena,
    inbox: Vec<Vec<InChan>>,
    out: Vec<Vec<OutChan>>,
    messages: Vec<MessageRecord>,
    checkpoints: Vec<CheckpointRecord>,
    /// Restore images, parallel to `checkpoints`.
    raw: Vec<RawSnap>,
    failures: Vec<FailureRecord>,
    metrics: Metrics,
    rng: Rng,
    outcome: Option<Outcome>,
    max_time: SimTime,
    inline_budget: u32,
    params: Vec<Option<i64>>,
    eval_stack: Vec<i64>,
    use_timer: bool,
    passive: bool,
    events_processed: u64,
    queue_depth: LocalHist,
    events: Vec<RunEvent>,
}

const INLINE_BUDGET: u32 = 256;

impl<'a> DetEngine<'a> {
    fn new(
        compiled: &'a Compiled,
        config: &'a SimConfig,
        coord: &'a mut dyn CheckpointCoordinator,
        backend: &'a mut dyn StateBackend,
        plan: FailurePlan,
        picker: CutPicker,
    ) -> DetEngine<'a> {
        let n = config.nprocs;
        assert!(n >= 1, "need at least one worker");
        let mut params: Vec<Option<i64>> = vec![None; compiled.param_names.len()];
        let slot_of = |name: &str| compiled.param_names.iter().position(|p| p == name);
        for (k, v) in &compiled.params {
            if let Some(s) = slot_of(k) {
                params[s] = Some(*v);
            }
        }
        for (k, v) in &config.param_overrides {
            if let Some(s) = slot_of(k) {
                params[s] = Some(*v);
            }
        }
        let nslots = compiled.var_names.len();
        let declared = compiled.vars.len();
        let stmt_limit = compiled.stmt_limit as usize;
        let mut bound = vec![false; n * nslots];
        for p in 0..n {
            bound[p * nslots..p * nslots + declared].fill(true);
        }
        let procs = Procs {
            nslots,
            stmt_limit,
            vars: vec![0; n * nslots],
            bound,
            pc: vec![0; n],
            vc: (0..n).map(|_| VectorClock::new(n)).collect(),
            state: vec![PState::Ready; n],
            ckpt_seq: vec![0; n],
            stmt_instances: vec![0; n * stmt_limit],
            step: vec![0; n],
            executed: vec![0; n],
            now: vec![SimTime::ZERO; n],
        };
        let use_timer = coord.uses_timers();
        let passive = coord.passive();
        let mut engine = DetEngine {
            compiled,
            config,
            coord,
            backend,
            picker,
            procs,
            epochs: vec![0; n],
            queue: CalendarQueue::new(),
            heap_seq: 0,
            arena: MsgArena::new(),
            inbox: (0..n).map(|_| Vec::new()).collect(),
            out: (0..n).map(|_| Vec::new()).collect(),
            messages: Vec::new(),
            checkpoints: Vec::new(),
            raw: Vec::new(),
            failures: Vec::new(),
            metrics: Metrics::default(),
            rng: Rng::seed_from_u64(config.seed),
            outcome: None,
            max_time: SimTime::ZERO,
            inline_budget: INLINE_BUDGET,
            params,
            eval_stack: Vec::new(),
            use_timer,
            passive,
            events_processed: 0,
            queue_depth: LocalHist::new(),
            events: Vec::new(),
        };
        for p in 0..n {
            engine.push(SimTime::ZERO, Ev::Ready { p, epoch: 0 });
        }
        for &(t, p) in plan.events() {
            engine.push(t, Ev::Fail { p });
        }
        engine
    }

    fn push(&mut self, t: SimTime, ev: Ev) {
        self.heap_seq += 1;
        self.queue.push(t.as_micros(), self.heap_seq, ev);
    }

    fn note_time(&mut self, t: SimTime) {
        if t > self.max_time {
            self.max_time = t;
        }
    }

    fn run(mut self) -> DetRun {
        let _span = acfc_obs::span("runtime/det_loop");
        while let Some((t_us, _, ev)) = self.queue.pop() {
            if self.outcome.is_some() {
                break;
            }
            let t = SimTime(t_us);
            self.note_time(t);
            self.events_processed += 1;
            if self.events_processed & 7 == 0 {
                self.queue_depth.record(self.queue.len() as u64);
            }
            match ev {
                Ev::Ready { p, epoch } => {
                    if epoch == self.epochs[p] && self.procs.state[p] == PState::Ready {
                        self.execute(p, t);
                    }
                }
                Ev::Arrive { slot, gen } => {
                    if self.arena.is_live(slot, gen) {
                        self.deliver(slot, t);
                    }
                }
                Ev::Fail { p } => self.handle_failure(p, t),
            }
        }
        let outcome = self.outcome.take().unwrap_or_else(|| {
            let blocked: Vec<usize> = self
                .procs
                .state
                .iter()
                .enumerate()
                .filter(|(_, q)| !matches!(q, PState::Halted))
                .map(|(i, _)| i)
                .collect();
            if blocked.is_empty() {
                Outcome::Completed
            } else {
                Outcome::Deadlock(blocked)
            }
        });
        self.metrics.instructions = self.procs.executed.iter().sum();
        let final_vars: Vec<Vec<(String, i64)>> = (0..self.config.nprocs)
            .map(|p| self.bound_pairs(p))
            .collect();
        let trace = Trace {
            nprocs: self.config.nprocs,
            program: self.compiled.name.clone(),
            messages: self.messages,
            checkpoints: self.checkpoints,
            failures: self.failures,
            proc_end: self.procs.now.clone(),
            finished_at: self.max_time,
            metrics: self.metrics,
            queue_depth: self.queue_depth.snap(),
            outcome,
        };
        DetRun {
            trace,
            events: self.events,
            final_vars,
        }
    }

    /// Bound `(name, value)` pairs of `p`, sorted by name.
    fn bound_pairs(&self, p: usize) -> Vec<(String, i64)> {
        let vars = self.procs.vars_of(p);
        let bound = self.procs.bound_of(p);
        let mut pairs: Vec<(String, i64)> = self
            .compiled
            .var_names
            .iter()
            .enumerate()
            .filter(|&(s, _)| bound[s])
            .map(|(s, name)| (name.clone(), vars[s]))
            .collect();
        pairs.sort();
        pairs
    }

    fn runtime_error(&mut self, p: usize, e: impl std::fmt::Display) {
        self.outcome = Some(Outcome::RuntimeError(p, e.to_string()));
    }

    fn eval_ref(&mut self, p: usize, r: ExprRef) -> Result<i64, EvalError> {
        let compiled = self.compiled;
        let vars = self.procs.vars_of(p);
        let bound = self.procs.bound_of(p);
        match r.ops(&compiled.ops) {
            [Op::Const(v)] => return Ok(*v),
            [Op::Load(s)] => {
                let s = *s as usize;
                return if bound[s] {
                    Ok(vars[s])
                } else {
                    Err(EvalError::UnboundVar(compiled.var_names[s].clone()))
                };
            }
            _ => {}
        }
        let env = SlotEnv {
            rank: p as i64,
            nprocs: self.config.nprocs as i64,
            vars,
            bound,
            var_names: &compiled.var_names,
            params: &self.params,
            param_names: &compiled.param_names,
            inputs: &self.config.inputs,
        };
        eval_ops(r.ops(&compiled.ops), &env, &mut self.eval_stack)
    }

    fn resolve_rank(&mut self, p: usize, expr: ExprRef) -> Option<usize> {
        match self.eval_ref(p, expr) {
            Ok(v) if v >= 0 && (v as usize) < self.config.nprocs => Some(v as usize),
            Ok(v) => {
                self.runtime_error(p, format!("rank expression evaluated to {v}, out of range"));
                None
            }
            Err(e) => {
                self.runtime_error(p, e);
                None
            }
        }
    }

    fn execute(&mut self, p: usize, t: SimTime) {
        let mut now = t;
        let mut inline = 0u32;
        let max_steps = self.config.max_steps_per_proc;
        let instr_us = self.config.cost.instr_overhead_us;
        loop {
            if self.outcome.is_some() {
                return;
            }
            if self.procs.executed[p] >= max_steps {
                self.outcome = Some(Outcome::StepLimit(p));
                return;
            }
            if self.use_timer && self.coord.timer_due(p, now) {
                self.procs.executed[p] += 1;
                let trigger = self.coord.timer_trigger(p);
                self.take_checkpoint(p, None, None, trigger, &mut now);
                if self.can_run_ahead(now) {
                    self.mark_progress(p, now);
                    continue;
                }
                self.yield_ready(p, now);
                return;
            }
            inline += 1;
            if inline > self.inline_budget {
                self.yield_ready(p, now);
                return;
            }
            let pc = self.procs.pc[p];
            let instr = self.compiled.lowered[pc];
            self.procs.executed[p] += 1;
            match instr {
                LowInstr::Compute { cost } => {
                    let c = match self.eval_ref(p, cost) {
                        Ok(v) if v >= 0 => v as u64,
                        Ok(v) => {
                            self.runtime_error(p, format!("negative compute cost {v}"));
                            return;
                        }
                        Err(e) => {
                            self.runtime_error(p, e);
                            return;
                        }
                    };
                    now +=
                        c * self.config.cost.compute_unit_us + self.config.cost.instr_overhead_us;
                    self.procs.pc[p] = pc + 1;
                    if self.can_run_ahead(now) {
                        self.mark_progress(p, now);
                        continue;
                    }
                    self.yield_ready(p, now);
                    return;
                }
                LowInstr::Assign { var, value } => {
                    match self.eval_ref(p, value) {
                        Ok(v) => {
                            let at = p * self.procs.nslots + var as usize;
                            self.procs.vars[at] = v;
                            self.procs.bound[at] = true;
                        }
                        Err(e) => {
                            self.runtime_error(p, e);
                            return;
                        }
                    }
                    now += instr_us;
                    self.procs.pc[p] = pc + 1;
                }
                LowInstr::Jump { target } => {
                    now += instr_us;
                    self.procs.pc[p] = target as usize;
                }
                LowInstr::JumpIfFalse { cond, target } => {
                    let v = match self.eval_ref(p, cond) {
                        Ok(v) => v,
                        Err(e) => {
                            self.runtime_error(p, e);
                            return;
                        }
                    };
                    now += instr_us;
                    self.procs.pc[p] = if v == 0 { target as usize } else { pc + 1 };
                }
                LowInstr::Send {
                    dest,
                    size_bits,
                    stmt,
                } => {
                    let Some(to) = self.resolve_rank(p, dest) else {
                        return;
                    };
                    let bits = match self.eval_ref(p, size_bits) {
                        Ok(v) if v >= 0 => v as u64,
                        Ok(v) => {
                            self.runtime_error(p, format!("negative message size {v}"));
                            return;
                        }
                        Err(e) => {
                            self.runtime_error(p, e);
                            return;
                        }
                    };
                    self.do_send(p, to, bits, stmt, now);
                    now += self.config.cost.send_overhead_us;
                    self.procs.pc[p] = pc + 1;
                }
                LowInstr::Recv { src, stmt } => {
                    let want: Option<usize> = match src {
                        LowSrc::Any => None,
                        LowSrc::Rank(e) => {
                            let Some(s) = self.resolve_rank(p, e) else {
                                return;
                            };
                            Some(s)
                        }
                    };
                    if let Some(m) = self.pick_inbox(p, want) {
                        now = self.consume_message(p, m, stmt, now);
                        self.procs.pc[p] = pc + 1;
                        if self.outcome.is_some() {
                            return;
                        }
                    } else {
                        self.procs.state[p] = PState::Blocked {
                            src: want,
                            stmt,
                            since: now,
                        };
                        self.procs.now[p] = now;
                        self.note_time(now);
                        return;
                    }
                }
                LowInstr::Checkpoint { stmt, label } => {
                    self.procs.pc[p] = pc + 1;
                    if self.passive || self.coord.take_app_checkpoint(p, now) {
                        let label = if label == NO_LABEL {
                            None
                        } else {
                            Some(self.compiled.labels[label as usize].clone())
                        };
                        self.take_checkpoint(
                            p,
                            Some(stmt),
                            label,
                            CkptTrigger::AppStatement,
                            &mut now,
                        );
                        if self.can_run_ahead(now) {
                            self.mark_progress(p, now);
                            continue;
                        }
                        self.yield_ready(p, now);
                        return;
                    } else {
                        now += instr_us;
                    }
                }
                LowInstr::Halt => {
                    self.procs.state[p] = PState::Halted;
                    self.procs.now[p] = now;
                    self.note_time(now);
                    self.events.push(RunEvent::Halt {
                        proc: p,
                        vtime_us: now.as_micros(),
                    });
                    return;
                }
            }
        }
    }

    fn can_run_ahead(&mut self, now: SimTime) -> bool {
        match self.queue.peek_key() {
            None => true,
            Some((t, _)) => t > now.as_micros(),
        }
    }

    fn mark_progress(&mut self, p: usize, now: SimTime) {
        self.procs.now[p] = now;
        self.note_time(now);
    }

    fn yield_ready(&mut self, p: usize, now: SimTime) {
        self.procs.now[p] = now;
        self.note_time(now);
        let epoch = self.epochs[p];
        self.push(now, Ev::Ready { p, epoch });
    }

    fn out_chan(&mut self, from: usize, to: usize) -> usize {
        let chans = &mut self.out[from];
        match chans.binary_search_by_key(&(to as u32), |c| c.dest) {
            Ok(i) => i,
            Err(i) => {
                chans.insert(
                    i,
                    OutChan {
                        dest: to as u32,
                        last: SimTime::ZERO,
                    },
                );
                i
            }
        }
    }

    fn do_send(&mut self, p: usize, to: usize, bits: u64, stmt: StmtId, now: SimTime) {
        self.procs.vc[p].tick(p);
        self.procs.step[p] += 1;
        let piggyback = if self.passive {
            self.procs.ckpt_seq[p]
        } else {
            self.coord.piggyback(p, to, self.procs.ckpt_seq[p], now)
        };
        let jitter = if self.config.net.jitter_us > 0 {
            self.rng.gen_u64_inclusive(self.config.net.jitter_us)
        } else {
            0
        };
        let delay = self.config.net.base_delay_us(bits) + jitter;
        let sent_at = now + self.config.cost.send_overhead_us;
        let ci = self.out_chan(p, to);
        let chan = &mut self.out[p][ci];
        let deliver_at = SimTime((sent_at.as_micros() + delay).max(chan.last.as_micros()));
        chan.last = deliver_at;
        let id = MsgId(self.messages.len() as u64);
        let idx = self.messages.len();
        self.messages.push(MessageRecord {
            id,
            from: p,
            to,
            size_bits: bits,
            send_stmt: stmt,
            sent_at,
            send_vc: self.procs.vc[p].clone(),
            send_step: self.procs.step[p],
            piggyback,
            delivered_at: None,
            recv_at: None,
            recv_vc: None,
            recv_step: None,
            recv_stmt: None,
            rolled_back: false,
        });
        self.metrics.app_messages += 1;
        self.metrics.app_bits += bits;
        let (slot, gen) = self.arena.alloc(idx);
        self.push(deliver_at, Ev::Arrive { slot, gen });
    }

    fn pick_inbox(&mut self, p: usize, want: Option<usize>) -> Option<usize> {
        match want {
            Some(src) => {
                let ci = self.inbox[p]
                    .binary_search_by_key(&(src as u32), |c| c.src)
                    .ok()?;
                self.pop_chan(p, ci)
            }
            None => {
                let mut best: Option<(SimTime, usize)> = None;
                for (ci, c) in self.inbox[p].iter().enumerate() {
                    if c.head != NIL {
                        let m = self.arena.slots[c.head as usize].msg as usize;
                        let at = self.messages[m].delivered_at.expect("inboxed => delivered");
                        if best.is_none_or(|(bt, _)| at < bt) {
                            best = Some((at, ci));
                        }
                    }
                }
                best.and_then(|(_, ci)| self.pop_chan(p, ci))
            }
        }
    }

    fn pop_chan(&mut self, p: usize, ci: usize) -> Option<usize> {
        let c = &mut self.inbox[p][ci];
        if c.head == NIL {
            return None;
        }
        let s = c.head;
        let slot = &self.arena.slots[s as usize];
        let m = slot.msg as usize;
        c.head = slot.next;
        if c.head == NIL {
            c.tail = NIL;
        }
        self.arena.release(s);
        Some(m)
    }

    fn consume_message(&mut self, p: usize, m: usize, stmt: StmtId, at: SimTime) -> SimTime {
        let mut now = at;
        let piggyback = self.messages[m].piggyback;
        let mut guard = 0u32;
        while !self.passive {
            let own_seq = self.procs.ckpt_seq[p];
            if self.coord.on_recv(p, piggyback, own_seq, now)
                != acfc_sim::RecvAction::ForceCheckpointFirst
            {
                break;
            }
            self.take_checkpoint(p, None, None, CkptTrigger::Forced, &mut now);
            guard += 1;
            assert!(
                guard < 100_000,
                "coordinator demanded forced checkpoints without converging"
            );
        }
        self.procs.vc[p].merge(&self.messages[m].send_vc);
        self.procs.vc[p].tick(p);
        self.procs.step[p] += 1;
        now += self.config.cost.instr_overhead_us;
        let rec = &mut self.messages[m];
        rec.recv_at = Some(now);
        rec.recv_vc = Some(self.procs.vc[p].clone());
        rec.recv_step = Some(self.procs.step[p]);
        rec.recv_stmt = Some(stmt);
        now
    }

    fn take_checkpoint(
        &mut self,
        p: usize,
        stmt: Option<StmtId>,
        label: Option<Arc<str>>,
        trigger: CkptTrigger,
        now: &mut SimTime,
    ) {
        let coord = if self.passive {
            CoordinationCost::default()
        } else {
            self.coord.coordination_cost(p, *now)
        };
        self.procs.vc[p].tick(p);
        self.procs.step[p] += 1;
        self.procs.ckpt_seq[p] += 1;
        let instance = match stmt {
            Some(sid) => {
                let e = &mut self.procs.insts_of_mut(p)[sid.0 as usize];
                *e += 1;
                *e
            }
            None => 0,
        };
        let start = *now;
        let stall = self.config.cost.ckpt_overhead_us + coord.stall_us;
        let vc_stamp = self.procs.vc[p].clone();
        let base = p * self.procs.nslots;
        let nslots = self.procs.nslots;
        self.raw.push(RawSnap {
            pc: self.procs.pc[p],
            values: self.procs.vars[base..base + nslots].to_vec(),
            bound: self.procs.bound[base..base + nslots].to_vec(),
            vc: vc_stamp.clone(),
            ckpt_seq: self.procs.ckpt_seq[p],
            insts: self.procs.insts_of(p).to_vec(),
            step: self.procs.step[p],
        });
        let snapshot = Snapshot {
            pc: self.procs.pc[p],
            vars: var_store(self.bound_pairs(p)),
            vc: vc_stamp.clone(),
            ckpt_seq: self.procs.ckpt_seq[p],
            stmt_instances: backend::stmt_instances(
                self.procs
                    .insts_of(p)
                    .iter()
                    .enumerate()
                    .filter(|&(_, &c)| c > 0)
                    .map(|(i, &c)| (i as u32, c)),
            ),
            step: self.procs.step[p],
        };
        self.checkpoints.push(CheckpointRecord {
            proc: p,
            seq: self.procs.ckpt_seq[p],
            stmt,
            instance,
            label,
            trigger,
            start,
            durable_at: start + self.config.cost.ckpt_latency_us + coord.stall_us,
            vc: vc_stamp,
            step: self.procs.step[p],
            snapshot,
            rolled_back: false,
        });
        let rec = self.checkpoints.last().expect("just pushed");
        if let Err(e) = self.backend.commit(&StateSnapshot::from_record(rec)) {
            self.outcome
                .get_or_insert(Outcome::RuntimeError(p, format!("backend commit: {e}")));
        }
        self.events.push(RunEvent::Checkpoint {
            proc: p,
            seq: self.procs.ckpt_seq[p],
            trigger: trigger_name(trigger),
            vtime_us: start.as_micros(),
        });
        *now = start + stall;
        self.metrics.ckpt_stall_us += stall;
        self.metrics.coord_stall_us += coord.stall_us;
        self.metrics.control_messages += coord.control_messages;
        self.metrics.control_bits += coord.control_bits;
        match trigger {
            CkptTrigger::AppStatement => self.metrics.app_checkpoints += 1,
            CkptTrigger::Timer => self.metrics.timer_checkpoints += 1,
            CkptTrigger::Forced => self.metrics.forced_checkpoints += 1,
            CkptTrigger::Coordinated => self.metrics.coordinated_checkpoints += 1,
        }
        if !self.passive {
            self.coord.checkpoint_taken(p, trigger, *now);
        }
    }

    fn in_chan(&mut self, to: usize, src: usize) -> usize {
        let chans = &mut self.inbox[to];
        match chans.binary_search_by_key(&(src as u32), |c| c.src) {
            Ok(i) => i,
            Err(i) => {
                chans.insert(
                    i,
                    InChan {
                        src: src as u32,
                        head: NIL,
                        tail: NIL,
                    },
                );
                i
            }
        }
    }

    fn deliver(&mut self, slot: u32, t: SimTime) {
        let m = self.arena.slots[slot as usize].msg as usize;
        self.messages[m].delivered_at = Some(t);
        let to = self.messages[m].to;
        let from = self.messages[m].from;
        let ci = self.in_chan(to, from);
        self.arena.slots[slot as usize].next = NIL;
        let c = &mut self.inbox[to][ci];
        if c.tail == NIL {
            c.head = slot;
            c.tail = slot;
        } else {
            let prev = c.tail;
            c.tail = slot;
            self.arena.slots[prev as usize].next = slot;
        }
        let (want, stmt, since) = match self.procs.state[to] {
            PState::Blocked { src, stmt, since } => (src, stmt, since),
            _ => return,
        };
        if want.is_some() && want != Some(from) {
            return;
        }
        let m2 = self
            .pick_inbox(to, want)
            .expect("arrival just enqueued a candidate");
        let at = SimTime(t.as_micros().max(since.as_micros()));
        self.metrics.recv_blocked_us += at - since;
        self.procs.state[to] = PState::Ready;
        let done = self.consume_message(to, m2, stmt, at);
        if self.outcome.is_some() {
            return;
        }
        self.procs.pc[to] += 1;
        if self.can_run_ahead(done) {
            self.mark_progress(to, done);
            self.execute(to, done);
        } else {
            self.yield_ready(to, done);
        }
    }

    fn handle_failure(&mut self, p: usize, t: SimTime) {
        let _span = acfc_obs::span("runtime/det_recovery");
        if matches!(self.procs.state[p], PState::Halted)
            && self.procs.state.iter().all(|q| matches!(q, PState::Halted))
        {
            return;
        }
        self.events.push(RunEvent::Kill {
            proc: p,
            vtime_us: t.as_micros(),
        });
        self.metrics.failures += 1;
        let nprocs = self.config.nprocs;
        let mut live: Vec<Vec<&CheckpointRecord>> = vec![Vec::new(); nprocs];
        for c in &self.checkpoints {
            if !c.rolled_back {
                live[c.proc].push(c);
            }
        }
        let view = RecoveryView {
            live: &live,
            messages: &self.messages,
        };
        let picked = self.picker.pick(&view);
        let latest_seq: Vec<u64> = live
            .iter()
            .map(|v| v.last().map(|c| c.seq).unwrap_or(0))
            .collect();
        drop(live);
        let mut cut_step = vec![0u64; nprocs];
        let mut restored: Vec<Option<usize>> = vec![None; nprocs];
        for (i, c) in self.checkpoints.iter().enumerate() {
            if !c.rolled_back && picked[c.proc] == Some(c.seq) {
                cut_step[c.proc] = c.snapshot.step;
                restored[c.proc] = Some(i);
            }
        }
        for q in 0..nprocs {
            assert!(
                picked[q].is_none() || restored[q].is_some(),
                "picker chose missing seq {:?} for proc {q}",
                picked[q]
            );
        }
        let mut lost_us = 0u64;
        #[allow(clippy::needless_range_loop)]
        for q in 0..nprocs {
            let back_to = restored[q]
                .map(|i| self.checkpoints[i].start)
                .unwrap_or(SimTime::ZERO);
            lost_us += self.procs.now[q].saturating_sub(back_to).as_micros();
        }
        for c in &mut self.checkpoints {
            if !c.rolled_back && c.step > cut_step[c.proc] {
                c.rolled_back = true;
            }
        }
        for (q, p) in picked.iter().enumerate() {
            if let Err(e) = self.backend.discard_after(q, p.unwrap_or(0)) {
                self.outcome
                    .get_or_insert(Outcome::RuntimeError(q, format!("backend discard: {e}")));
            }
        }
        let resume = t + self.config.cost.recovery_us;
        self.metrics.recovery_us += self.config.cost.recovery_us * nprocs as u64;
        let mut redeliveries: Vec<(usize, SimTime)> = Vec::new();
        for (i, m) in self.messages.iter_mut().enumerate() {
            if m.rolled_back {
                continue;
            }
            if m.send_step > cut_step[m.from] {
                m.rolled_back = true;
                continue;
            }
            let received_before_cut = m.recv_step.is_some_and(|rs| rs <= cut_step[m.to]);
            if !received_before_cut {
                m.delivered_at = None;
                m.recv_at = None;
                m.recv_vc = None;
                m.recv_step = None;
                m.recv_stmt = None;
                redeliveries.push((i, resume));
            }
        }
        for s in 0..self.arena.slots.len() {
            if self.arena.slots[s].msg != NIL {
                self.arena.release(s as u32);
            }
        }
        for chans in &mut self.inbox {
            for c in chans.iter_mut() {
                c.head = NIL;
                c.tail = NIL;
            }
        }
        for chans in &mut self.out {
            for c in chans.iter_mut() {
                c.last = SimTime::ZERO;
            }
        }
        redeliveries.sort_by_key(|&(i, _)| (self.messages[i].from, self.messages[i].send_step));
        let redelivered = redeliveries.len();
        for (i, at) in redeliveries {
            let m = &self.messages[i];
            let (from, to, bits) = (m.from, m.to, m.size_bits);
            let jitter = if self.config.net.jitter_us > 0 {
                self.rng.gen_u64_inclusive(self.config.net.jitter_us)
            } else {
                0
            };
            let ci = self.out_chan(from, to);
            let chan = &mut self.out[from][ci];
            let deliver_at = SimTime(
                (at.as_micros() + self.config.net.base_delay_us(bits) + jitter)
                    .max(chan.last.as_micros()),
            );
            chan.last = deliver_at;
            let (slot, gen) = self.arena.alloc(i);
            self.push(deliver_at, Ev::Arrive { slot, gen });
        }
        #[allow(clippy::needless_range_loop)]
        for q in 0..nprocs {
            self.epochs[q] += 1;
            let base = q * self.procs.nslots;
            let nslots = self.procs.nslots;
            match restored[q] {
                Some(i) => {
                    let snap = &self.raw[i];
                    self.procs.pc[q] = snap.pc;
                    self.procs.vars[base..base + nslots].copy_from_slice(&snap.values);
                    self.procs.bound[base..base + nslots].copy_from_slice(&snap.bound);
                    self.procs.vc[q].clone_from(&snap.vc);
                    self.procs.ckpt_seq[q] = snap.ckpt_seq;
                    self.procs.insts_of_mut(q).copy_from_slice(&snap.insts);
                    self.procs.step[q] = snap.step;
                }
                None => {
                    self.procs.pc[q] = 0;
                    // Values reset to 0; binding state is untouched
                    // (mirrors the simulator's restore-to-initial).
                    self.procs.vars[base..base + nslots].fill(0);
                    self.procs.vc[q] = VectorClock::new(nprocs);
                    self.procs.ckpt_seq[q] = 0;
                    self.procs.insts_of_mut(q).fill(0);
                    self.procs.step[q] = 0;
                }
            }
            self.procs.state[q] = PState::Ready;
            self.procs.now[q] = resume;
            let epoch = self.epochs[q];
            self.push(resume, Ev::Ready { p: q, epoch });
        }
        self.events.push(RunEvent::Recovery {
            killed: p,
            vtime_us: resume.as_micros(),
            restored: picked.clone(),
            redelivered,
            lost_us,
        });
        self.failures.push(FailureRecord {
            proc: p,
            at: t,
            restored_seq: picked,
            latest_seq,
            lost_us,
        });
        self.note_time(resume);
    }
}
