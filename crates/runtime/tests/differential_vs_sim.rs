//! Differential pin: the deterministic runtime scheduler reproduces
//! the simulator engine's traces exactly — same messages (times,
//! clocks, piggybacks), same checkpoints (snapshots included), same
//! failure/rollback records, same metrics — for every protocol, with
//! and without kills, on all stock programs.

use acfc_protocols::{
    max_consistent_picker, uncoordinated_hooks, uncoordinated_picker, AppDriven, ChandyLamport,
    CicProtocol, ProtocolKind, SyncAndStop,
};
use acfc_runtime::{coordinator_for, run_det, InMemoryBackend};
use acfc_sim::{
    compile, run_with_failures, CutPicker, FailurePlan, NetworkModel, NoHooks, SimConfig, SimTime,
    StateBackend, Trace,
};

const NPROCS: usize = 4;
const INTERVAL_US: u64 = 60_000;
const SKEW_US: u64 = INTERVAL_US / 3;

/// Simulator-side reference run, mirroring the protocol dispatch the
/// runtime's `coordinator_for` performs.
fn sim_reference(kind: ProtocolKind, program: &acfc_mpsl::Program, plan: FailurePlan) -> Trace {
    let cfg = SimConfig::new(NPROCS);
    let net = NetworkModel::default();
    match kind {
        ProtocolKind::AppDriven => {
            let ad = AppDriven::prepare(program, NPROCS).expect("analysis accepts stock programs");
            let mut hooks = NoHooks;
            run_with_failures(&ad.compiled, &cfg, &mut hooks, plan, CutPicker::AlignedSeq)
        }
        ProtocolKind::Uncoordinated => {
            let mut hooks = uncoordinated_hooks(NPROCS, INTERVAL_US, SKEW_US);
            run_with_failures(
                &compile(program),
                &cfg,
                &mut hooks,
                plan,
                uncoordinated_picker(),
            )
        }
        ProtocolKind::SyncAndStop => {
            let mut hooks = SyncAndStop::new(NPROCS, INTERVAL_US, net);
            run_with_failures(
                &compile(program),
                &cfg,
                &mut hooks,
                plan,
                max_consistent_picker(),
            )
        }
        ProtocolKind::ChandyLamport => {
            let mut hooks = ChandyLamport::new(NPROCS, INTERVAL_US, net);
            run_with_failures(
                &compile(program),
                &cfg,
                &mut hooks,
                plan,
                max_consistent_picker(),
            )
        }
        ProtocolKind::Cic(variant) => {
            let mut hooks = CicProtocol::new(variant, NPROCS, INTERVAL_US, SKEW_US);
            let picker = hooks.picker();
            run_with_failures(&compile(program), &cfg, &mut hooks, plan, picker)
        }
    }
}

/// Runtime-side run through the trait pair.
fn runtime_run(
    kind: ProtocolKind,
    program: &acfc_mpsl::Program,
    plan: FailurePlan,
) -> (Trace, InMemoryBackend) {
    let mut prep = coordinator_for(
        kind,
        program,
        NPROCS,
        INTERVAL_US,
        SKEW_US,
        NetworkModel::default(),
    )
    .expect("coordinator builds");
    let cfg = SimConfig::new(NPROCS);
    let mut backend = InMemoryBackend::new();
    let run = run_det(
        &prep.compiled,
        &cfg,
        prep.coordinator.as_mut(),
        &mut backend,
        plan,
    );
    (run.trace, backend)
}

fn assert_traces_equal(kind: ProtocolKind, program: &str, sim: &Trace, rt: &Trace) {
    let ctx = format!("{program} under {kind}");
    assert_eq!(sim.nprocs, rt.nprocs, "{ctx}: nprocs");
    assert_eq!(sim.program, rt.program, "{ctx}: program name");
    assert_eq!(sim.outcome, rt.outcome, "{ctx}: outcome");
    assert_eq!(sim.finished_at, rt.finished_at, "{ctx}: finished_at");
    assert_eq!(sim.proc_end, rt.proc_end, "{ctx}: proc_end");
    assert_eq!(
        format!("{:?}", sim.metrics),
        format!("{:?}", rt.metrics),
        "{ctx}: metrics"
    );
    assert_eq!(
        sim.messages.len(),
        rt.messages.len(),
        "{ctx}: message count"
    );
    for (a, b) in sim.messages.iter().zip(&rt.messages) {
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "{ctx}: message {:?}",
            a.id
        );
    }
    assert_eq!(
        sim.checkpoints.len(),
        rt.checkpoints.len(),
        "{ctx}: checkpoint count"
    );
    for (a, b) in sim.checkpoints.iter().zip(&rt.checkpoints) {
        let at = format!("{ctx}: checkpoint ({}, {})", a.proc, a.seq);
        assert_eq!(a.proc, b.proc, "{at}: proc");
        assert_eq!(a.seq, b.seq, "{at}: seq");
        assert_eq!(a.stmt, b.stmt, "{at}: stmt");
        assert_eq!(a.instance, b.instance, "{at}: instance");
        assert_eq!(a.label, b.label, "{at}: label");
        assert_eq!(a.trigger, b.trigger, "{at}: trigger");
        assert_eq!(a.start, b.start, "{at}: start");
        assert_eq!(a.durable_at, b.durable_at, "{at}: durable_at");
        assert_eq!(a.vc, b.vc, "{at}: vc");
        assert_eq!(a.step, b.step, "{at}: step");
        assert_eq!(a.rolled_back, b.rolled_back, "{at}: rolled_back");
        // Set-semantic snapshot equality (bound pairs, nonzero instance
        // counters, representation-independent clocks).
        assert_eq!(a.snapshot, b.snapshot, "{at}: snapshot");
    }
    assert_eq!(sim.failures.len(), rt.failures.len(), "{ctx}: failures");
    for (a, b) in sim.failures.iter().zip(&rt.failures) {
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "{ctx}: failure record");
    }
}

#[test]
fn det_runtime_matches_simulator_on_all_stock_programs() {
    for program in acfc_mpsl::programs::all_stock() {
        let name = program.name.clone();
        for kind in ProtocolKind::all() {
            let sim = sim_reference(kind, &program, FailurePlan::none());
            let (rt, _) = runtime_run(kind, &program, FailurePlan::none());
            assert_traces_equal(kind, &name, &sim, &rt);
        }
    }
}

#[test]
fn det_runtime_matches_simulator_under_kills() {
    let plan = || {
        FailurePlan::at(vec![
            (SimTime::from_micros(180_000), 1),
            (SimTime::from_micros(420_000), 2),
        ])
    };
    let program = acfc_mpsl::programs::jacobi(8);
    for kind in ProtocolKind::all() {
        let sim = sim_reference(kind, &program, plan());
        let (rt, _) = runtime_run(kind, &program, plan());
        assert!(
            !rt.failures.is_empty(),
            "{kind}: the kill schedule should actually fire"
        );
        assert_traces_equal(kind, "jacobi-kills", &sim, &rt);
    }
}

#[test]
fn backend_committed_set_tracks_live_checkpoints_through_rollback() {
    let plan = FailurePlan::at(vec![(SimTime::from_micros(200_000), 0)]);
    let program = acfc_mpsl::programs::jacobi(8);
    for kind in ProtocolKind::all() {
        let (trace, mut backend) = runtime_run(kind, &program, plan.clone());
        let mut live: Vec<(usize, u64)> = trace
            .checkpoints
            .iter()
            .filter(|c| !c.rolled_back)
            .map(|c| (c.proc, c.seq))
            .collect();
        live.sort_unstable();
        let committed = backend.committed().unwrap();
        assert_eq!(committed, live, "{kind}: backend vs live checkpoints");
    }
}
