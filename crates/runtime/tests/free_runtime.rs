//! Integration tests for the free-running scheduler: live OS threads
//! over real channels, protocol timers on virtual clocks, and
//! kill/recover driven entirely through the [`StateBackend`].
//!
//! Message payloads carry no data in MPSL (sends model size, receives
//! model synchronisation), so every program's final variable state is
//! deterministic regardless of thread interleaving — which makes the
//! free scheduler directly comparable against the deterministic one:
//! same final answer, always, including after crash recovery.

use acfc_protocols::ProtocolKind;
use acfc_runtime::{
    backend_for, coordinator_for, run_det, run_free, FailureInjector, FreeConfig, InMemoryBackend,
    RunEvent, RunReport,
};
use acfc_sim::backend::StateBackend;
use acfc_sim::{FailurePlan, NetworkModel, Outcome, SimConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

const NPROCS: usize = 4;
const INTERVAL_US: u64 = 60_000;
const SKEW_US: u64 = INTERVAL_US / 3;

fn tmpdir(tag: &str) -> PathBuf {
    static NEXT: AtomicU32 = AtomicU32::new(0);
    let d = std::env::temp_dir().join(format!(
        "acfc-free-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Reference final state from the deterministic scheduler (no kills).
fn det_final_vars(kind: ProtocolKind, program: &acfc_mpsl::Program) -> Vec<Vec<(String, i64)>> {
    let mut prep = coordinator_for(
        kind,
        program,
        NPROCS,
        INTERVAL_US,
        SKEW_US,
        NetworkModel::default(),
    )
    .expect("coordinator builds");
    let cfg = SimConfig::new(NPROCS);
    let mut backend = InMemoryBackend::new();
    let run = run_det(
        &prep.compiled,
        &cfg,
        prep.coordinator.as_mut(),
        &mut backend,
        FailurePlan::none(),
    );
    assert_eq!(
        run.trace.outcome,
        Outcome::Completed,
        "{kind}: det reference must complete"
    );
    run.final_vars
}

fn free_run(
    kind: ProtocolKind,
    program: &acfc_mpsl::Program,
    backend: &mut (dyn StateBackend + Send),
    injector: &FailureInjector,
) -> RunReport {
    let mut prep = coordinator_for(
        kind,
        program,
        NPROCS,
        INTERVAL_US,
        SKEW_US,
        NetworkModel::default(),
    )
    .expect("coordinator builds");
    let cfg = SimConfig::new(NPROCS);
    run_free(
        &prep.compiled,
        &cfg,
        prep.coordinator.as_mut(),
        backend,
        injector,
        &FreeConfig::default(),
    )
}

fn count_events(report: &RunReport) -> (usize, usize, u64) {
    let kills = report
        .events
        .iter()
        .filter(|e| matches!(e, RunEvent::Kill { .. }))
        .count();
    let recoveries = report
        .events
        .iter()
        .filter(|e| matches!(e, RunEvent::Recovery { .. }))
        .count();
    let reported_failures = report
        .events
        .iter()
        .find_map(|e| match e {
            RunEvent::RunEnd { failures, .. } => Some(*failures),
            _ => None,
        })
        .expect("run emits a RunEnd event");
    (kills, recoveries, reported_failures)
}

#[test]
fn free_mode_final_state_matches_det_mode() {
    let programs = [
        acfc_mpsl::programs::jacobi(6),
        acfc_mpsl::programs::jacobi_odd_even(5),
        acfc_mpsl::programs::ring(5, 4096),
        acfc_mpsl::programs::pingpong(6),
    ];
    for program in &programs {
        for kind in [ProtocolKind::AppDriven, ProtocolKind::Uncoordinated] {
            let expected = det_final_vars(kind, program);
            let mut backend = InMemoryBackend::new();
            let report = free_run(kind, program, &mut backend, &FailureInjector::none());
            let ctx = format!("{} under {kind}", program.name);
            assert_eq!(report.outcome, Outcome::Completed, "{ctx}: outcome");
            assert_eq!(report.final_vars, expected, "{ctx}: final state");
        }
    }
}

#[test]
fn free_mode_completes_under_every_protocol() {
    let program = acfc_mpsl::programs::jacobi(5);
    for kind in ProtocolKind::all() {
        let mut backend = InMemoryBackend::new();
        let report = free_run(kind, &program, &mut backend, &FailureInjector::none());
        assert_eq!(report.outcome, Outcome::Completed, "{kind}: outcome");
        let (_, _, failures) = count_events(&report);
        assert_eq!(failures, 0, "{kind}: no kills were scheduled");
        // Every protocol actually checkpoints on this program (app
        // statements for the passive coordinator, timers for the rest).
        assert!(
            report
                .events
                .iter()
                .any(|e| matches!(e, RunEvent::Checkpoint { .. })),
            "{kind}: no checkpoints taken"
        );
    }
}

#[test]
fn free_mode_kill_recovers_and_recomputes_the_same_answer() {
    let program = acfc_mpsl::programs::jacobi(8);
    for kind in [ProtocolKind::AppDriven, ProtocolKind::Uncoordinated] {
        let expected = det_final_vars(kind, &program);
        for backend_name in ["mem", "file", "log"] {
            let dir = tmpdir(&format!("kill-{backend_name}"));
            let mut backend = backend_for(backend_name, &dir).expect("backend opens");
            let injector = FailureInjector::at(vec![(150_000, 1)]);
            let report = free_run(kind, &program, backend.as_mut(), &injector);
            let ctx = format!("{kind} on {backend_name}");
            assert_eq!(report.outcome, Outcome::Completed, "{ctx}: outcome");
            let (kills, recoveries, failures) = count_events(&report);
            assert_eq!(kills, 1, "{ctx}: the scheduled kill fires exactly once");
            assert_eq!(recoveries, 1, "{ctx}: one recovery round");
            assert_eq!(failures, 1, "{ctx}: RunEnd counts the failure");
            // Recovery restored a consistent cut and re-ran: the final
            // answer is the same as a run that never crashed.
            assert_eq!(report.final_vars, expected, "{ctx}: final state");
            // Whatever survived in the backend still loads cleanly.
            let committed = backend.committed().expect("committed enumerates");
            for &(p, seq) in &committed {
                backend.load(p, seq).expect("committed snapshot loads");
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

#[test]
fn free_mode_durable_backend_survives_reopen_after_kill() {
    let program = acfc_mpsl::programs::jacobi(8);
    let dir = tmpdir("reopen");
    let injector = FailureInjector::at(vec![(120_000, 2)]);
    let committed = {
        let mut backend = backend_for("file", &dir).expect("backend opens");
        let report = free_run(
            ProtocolKind::Uncoordinated,
            &program,
            backend.as_mut(),
            &injector,
        );
        assert_eq!(report.outcome, Outcome::Completed);
        backend.committed().expect("committed enumerates")
    };
    assert!(
        !committed.is_empty(),
        "an uncoordinated run past one interval has committed checkpoints"
    );
    // A fresh process opening the same directory sees the same set.
    let mut reopened = backend_for("file", &dir).expect("backend reopens");
    assert_eq!(reopened.committed().expect("enumerates"), committed);
    for &(p, seq) in &committed {
        let snap = reopened.load(p, seq).expect("snapshot loads after reopen");
        assert_eq!((snap.proc, snap.seq), (p, seq));
    }
    let _ = std::fs::remove_dir_all(&dir);
}
