//! Property tests (kill/recover): randomized kill schedules × protocol
//! kinds × backends under the deterministic scheduler — every run still
//! completes, every restored recovery line is a consistent cut, and the
//! backend's committed set tracks the trace's live checkpoints. Plus
//! the durability property: an injected crash mid-commit never leaves a
//! torn snapshot visible in the committed set after reopen.

use acfc_protocols::ProtocolKind;
use acfc_runtime::{
    backend_for, coordinator_for, run_det, CrashPoint, FileBackend, LogStructuredBackend,
};
use acfc_sim::backend::{StateBackend, StateSnapshot};
use acfc_sim::{
    consistency, CkptTrigger, FailurePlan, NetworkModel, Outcome, SimConfig, SimTime, Trace,
};
use acfc_util::check::{forall, Gen};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

fn tmpdir(tag: &str) -> PathBuf {
    static NEXT: AtomicU32 = AtomicU32::new(0);
    let d = std::env::temp_dir().join(format!(
        "acfc-props-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// A random program cell: point-to-point and recv-any shapes, with a
/// process count the program tolerates.
fn random_cell(g: &mut Gen) -> (acfc_mpsl::Program, usize) {
    use acfc_mpsl::programs;
    match g.usize_in(0, 5) {
        0 => (programs::jacobi(g.i64_in(4, 10)), g.usize_in(2, 6)),
        1 => (programs::jacobi_odd_even(g.i64_in(4, 8)), g.usize_in(2, 6)),
        2 => (
            programs::ring(g.i64_in(4, 9), 1 << g.i64_in(6, 12)),
            g.usize_in(2, 6),
        ),
        3 => (programs::stencil_1d(g.i64_in(4, 9)), g.usize_in(2, 6)),
        _ => (programs::pingpong(g.i64_in(4, 10)), 2),
    }
}

/// Mirrors the cross-protocol invariant suite: the cut each failure
/// restored must pass both the clock checker and the orphan oracle.
fn assert_restored_cuts_consistent(trace: &Trace, ctx: &str) {
    for f in &trace.failures {
        let Some(cut): Option<Vec<u64>> = f.restored_seq.iter().copied().collect() else {
            continue; // a process restored to its initial state
        };
        let Some(records) = consistency::resolve_cut(trace, &cut) else {
            continue;
        };
        let violations = consistency::cut_violations(&records);
        assert!(
            violations.is_empty(),
            "{ctx}: restored line {cut:?} at {:?} has clock violations: {violations:?}",
            f.at
        );
        assert!(
            consistency::cut_consistency(trace, &cut),
            "{ctx}: restored line {cut:?} at {:?} fails the clock checker",
            f.at
        );
        assert!(
            consistency::cut_consistency_oracle(trace, &cut),
            "{ctx}: restored line {cut:?} at {:?} orphans a message",
            f.at
        );
    }
}

#[test]
fn randomized_kill_schedules_recover_to_consistent_cuts_on_every_backend() {
    let kinds = ProtocolKind::all();
    forall("kill_recover_consistency", 60, |g| {
        let (program, n) = random_cell(g);
        let kind = kinds[g.usize_in(0, kinds.len())];
        let backend_name = *g.pick(&["mem", "file", "log"]);
        let kills: Vec<(SimTime, usize)> = g.vec_of(1, 3, |g| {
            (
                SimTime::from_micros(g.u64_in(30_000, 600_000)),
                g.usize_in(0, n),
            )
        });
        let interval = g.u64_in(30_000, 120_000);
        let mut prep = coordinator_for(
            kind,
            &program,
            n,
            interval,
            interval / 3,
            NetworkModel::default(),
        )
        .expect("coordinator builds");
        let dir = tmpdir("cut");
        let mut backend = backend_for(backend_name, &dir).expect("backend opens");
        let cfg = SimConfig::new(n);
        let run = run_det(
            &prep.compiled,
            &cfg,
            prep.coordinator.as_mut(),
            backend.as_mut(),
            FailurePlan::at(kills),
        );
        let ctx = format!(
            "case {}: {} n={n} {kind} on {backend_name}",
            g.case, program.name
        );
        assert_eq!(
            run.trace.outcome,
            Outcome::Completed,
            "{ctx}: kills must not prevent completion"
        );
        assert_restored_cuts_consistent(&run.trace, &ctx);
        // The backend holds exactly the live (non-rolled-back)
        // checkpoints, on every backend kind.
        let mut live: Vec<(usize, u64)> = run
            .trace
            .checkpoints
            .iter()
            .filter(|c| !c.rolled_back)
            .map(|c| (c.proc, c.seq))
            .collect();
        live.sort_unstable();
        assert_eq!(
            backend.committed().expect("committed enumerates"),
            live,
            "{ctx}: backend vs live checkpoints"
        );
        let _ = std::fs::remove_dir_all(&dir);
    });
}

fn random_snapshot(g: &mut Gen, proc: usize, seq: u64, nprocs: usize) -> StateSnapshot {
    let mut vars: Vec<(String, i64)> =
        g.vec_of(0, 5, |g| (g.ident(1, 6), g.i64_in(-1_000_000, 1_000_000)));
    vars.sort();
    vars.dedup_by(|a, b| a.0 == b.0);
    StateSnapshot {
        proc,
        seq,
        trigger: *g.pick(&[
            CkptTrigger::AppStatement,
            CkptTrigger::Timer,
            CkptTrigger::Forced,
        ]),
        label: g.option(0.3, |g| g.ident(2, 8)),
        pc: g.usize_in(0, 500),
        step: seq * 10 + g.u64_in(0, 9),
        nprocs,
        vars,
        vc: (0..nprocs)
            .filter_map(|p| {
                let v = g.u64_in(0, 40);
                (v > 0).then_some((p as u32, v))
            })
            .collect(),
        stmt_instances: g.vec_of(0, 4, |g| (g.u64_in(0, 30) as u32, g.u64_in(1, 50))),
    }
}

/// The durability half of the kill/recover story: a crash injected into
/// a durable commit (torn write, or full write that never became
/// visible) must fail that commit loudly and leave the previously
/// committed set fully intact — every snapshot still present, still
/// CRC-clean, byte-for-byte what was stored — after reopening the store
/// the way a restarted process would.
#[test]
fn injected_commit_crashes_never_leave_torn_committed_snapshots() {
    forall("durable_commit_crash", 40, |g| {
        let nprocs = g.usize_in(1, 4);
        let mut snaps: Vec<StateSnapshot> = Vec::new();
        for p in 0..nprocs {
            let depth = g.u64_in(1, 5);
            for s in 1..=depth {
                snaps.push(random_snapshot(g, p, s, nprocs));
            }
        }
        let crash = *g.pick(&[CrashPoint::MidWrite, CrashPoint::BeforeCommit]);
        let victim_proc = g.usize_in(0, nprocs);
        let victim = random_snapshot(g, victim_proc, 100, nprocs);
        let ctx = format!("case {}: {nprocs} procs, {crash:?}", g.case);

        // One file per snapshot, atomic rename.
        let dir = tmpdir("file");
        {
            let mut b = FileBackend::open(&dir).expect("opens");
            for s in &snaps {
                b.commit(s).expect("pre-crash commit succeeds");
            }
            let before = b.committed().expect("enumerates");
            b.set_crash(crash);
            assert!(
                b.commit(&victim).is_err(),
                "{ctx}: file crash injection must fail the commit"
            );
            assert_eq!(b.committed().expect("enumerates"), before);
        }
        // FileBackend only publishes via rename, so a crashed commit is
        // never visible regardless of where it tripped.
        let mut b = FileBackend::open(&dir).expect("reopens");
        verify_intact(&mut b, &snaps, &victim, false, &format!("{ctx} (file)"));
        let _ = std::fs::remove_dir_all(&dir);

        // Single append-only log, CRC-framed, torn tail truncated.
        let dir = tmpdir("log");
        let path = dir.join("log.acfc");
        {
            let mut b = LogStructuredBackend::open(&path).expect("opens");
            for s in &snaps {
                b.commit(s).expect("pre-crash commit succeeds");
            }
            b.set_crash(crash);
            assert!(
                b.commit(&victim).is_err(),
                "{ctx}: log crash injection must fail the commit"
            );
        }
        // The log is a redo log: a MidWrite crash tears the tail frame
        // (truncated on replay, victim absent), but a BeforeCommit
        // crash leaves a complete, CRC-valid frame on disk — replay
        // legitimately surfaces it after restart. Either way the
        // guarantee is all-or-nothing, never a torn snapshot.
        let mut b = LogStructuredBackend::open(&path).expect("reopens");
        let victim_may_survive = crash == CrashPoint::BeforeCommit;
        verify_intact(
            &mut b,
            &snaps,
            &victim,
            victim_may_survive,
            &format!("{ctx} (log)"),
        );
        let _ = std::fs::remove_dir_all(&dir);
    });
}

fn verify_intact(
    b: &mut dyn StateBackend,
    snaps: &[StateSnapshot],
    victim: &StateSnapshot,
    victim_may_survive: bool,
    ctx: &str,
) {
    let mut expected: Vec<(usize, u64)> = snaps.iter().map(|s| (s.proc, s.seq)).collect();
    expected.sort_unstable();
    let committed = b.committed().expect("enumerates after reopen");
    let victim_present = committed.contains(&(victim.proc, victim.seq));
    let without_victim: Vec<(usize, u64)> = committed
        .iter()
        .copied()
        .filter(|&k| k != (victim.proc, victim.seq))
        .collect();
    assert_eq!(
        without_victim, expected,
        "{ctx}: pre-crash snapshots after reopen"
    );
    for s in snaps {
        let loaded = b.load(s.proc, s.seq).expect("committed snapshot loads");
        assert_eq!(
            &loaded, s,
            "{ctx}: snapshot ({}, {}) round-trips",
            s.proc, s.seq
        );
    }
    if victim_present {
        assert!(
            victim_may_survive,
            "{ctx}: the crashed commit must not be visible"
        );
        // All-or-nothing: if the crashed commit did become durable, it
        // is byte-for-byte what the caller handed in — never torn.
        let loaded = b
            .load(victim.proc, victim.seq)
            .expect("durable frame loads");
        assert_eq!(&loaded, victim, "{ctx}: surviving crashed commit is intact");
    } else {
        assert!(
            b.load(victim.proc, victim.seq).is_err(),
            "{ctx}: an invisible crashed commit must not load"
        );
    }
}
