//! Figure sweeps: the series behind Figures 8 and 9.
//!
//! Rows are independent, so both sweeps evaluate on
//! [`acfc_util::parallel::par_map`] worker threads (`ACFC_THREADS`
//! overrides); results come back in x-axis order regardless of thread
//! count, so regenerated figures are byte-identical.

use crate::protocols::{ModelParams, ModelProtocol};
use acfc_util::parallel::par_map_labeled;

/// One row of a figure: the x-value plus the overhead ratio of each
/// protocol (appl-driven, SaS, C-L).
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// The x-axis value (`n` for Figure 8, `w_m` seconds for Figure 9).
    pub x: f64,
    /// Overhead ratio of the application-driven protocol.
    pub app_driven: f64,
    /// Overhead ratio of SaS.
    pub sas: f64,
    /// Overhead ratio of C-L.
    pub chandy_lamport: f64,
}

/// Figure 8 — overhead ratio vs. number of processes.
pub fn figure8(params: &ModelParams, n_values: &[usize]) -> Vec<Row> {
    par_map_labeled(n_values, "fig8", |_, &n| Row {
        x: n as f64,
        app_driven: params.ratio(ModelProtocol::AppDriven, n),
        sas: params.ratio(ModelProtocol::SyncAndStop, n),
        chandy_lamport: params.ratio(ModelProtocol::ChandyLamport, n),
    })
}

/// The default Figure-8 x-axis: powers of two from 2 to 512.
pub fn figure8_default_ns() -> Vec<usize> {
    (1..=9).map(|k| 1usize << k).collect()
}

/// Figure 9 — overhead ratio vs. message setup time `w_m` (seconds) at
/// fixed `n`.
pub fn figure9(params: &ModelParams, n: usize, w_m_values: &[f64]) -> Vec<Row> {
    par_map_labeled(w_m_values, "fig9", |_, &wm| {
        let p = ModelParams { w_m: wm, ..*params };
        Row {
            x: wm,
            app_driven: p.ratio(ModelProtocol::AppDriven, n),
            sas: p.ratio(ModelProtocol::SyncAndStop, n),
            chandy_lamport: p.ratio(ModelProtocol::ChandyLamport, n),
        }
    })
}

/// The default Figure-9 x-axis: `w_m ∈ {0, 0.1, …, 1.0}` seconds.
pub fn figure9_default_wms() -> Vec<f64> {
    (0..=10).map(|k| k as f64 * 0.1).collect()
}

/// Renders rows as a TSV table with a header.
pub fn to_tsv(x_label: &str, rows: &[Row]) -> String {
    let mut out = format!("{x_label}\tappl-driven\tSaS\tC-L\n");
    for r in rows {
        let x = if r.x.fract() == 0.0 {
            format!("{}", r.x as i64)
        } else {
            format!("{:.3}", r.x)
        };
        out.push_str(&format!(
            "{x}\t{:.6e}\t{:.6e}\t{:.6e}\n",
            r.app_driven, r.sas, r.chandy_lamport
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure8_series_shapes() {
        let rows = figure8(&ModelParams::default(), &figure8_default_ns());
        assert_eq!(rows.len(), 9);
        // Monotone in n for every protocol; appl-driven lowest.
        for w in rows.windows(2) {
            assert!(w[1].app_driven > w[0].app_driven);
            assert!(w[1].sas > w[0].sas);
            assert!(w[1].chandy_lamport > w[0].chandy_lamport);
        }
        for r in &rows {
            assert!(
                r.app_driven < r.sas && r.app_driven < r.chandy_lamport,
                "{r:?}"
            );
            if r.x >= 4.0 {
                assert!(r.sas < r.chandy_lamport, "{r:?}");
            }
        }
    }

    #[test]
    fn figure9_series_shapes() {
        let rows = figure9(&ModelParams::default(), 64, &figure9_default_wms());
        assert_eq!(rows.len(), 11);
        let first = &rows[0];
        for r in &rows {
            // appl-driven flat.
            assert!((r.app_driven - first.app_driven).abs() < 1e-15);
        }
        for w in rows.windows(2) {
            assert!(w[1].sas > w[0].sas);
            assert!(w[1].chandy_lamport > w[0].chandy_lamport);
        }
    }

    #[test]
    fn tsv_renders_header_and_rows() {
        let rows = figure8(&ModelParams::default(), &[2, 4]);
        let tsv = to_tsv("n", &rows);
        let lines: Vec<&str> = tsv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("n\tappl-driven"));
        assert!(lines[1].starts_with("2\t"));
    }

    #[test]
    fn default_axes() {
        assert_eq!(
            figure8_default_ns(),
            vec![2, 4, 8, 16, 32, 64, 128, 256, 512]
        );
        let wms = figure9_default_wms();
        assert_eq!(wms.len(), 11);
        assert_eq!(wms[0], 0.0);
        assert!((wms[10] - 1.0).abs() < 1e-12);
    }
}
