//! A small absorbing-Markov-chain solver.
//!
//! The paper evaluates its protocol with the expected cost of reaching
//! the sink state of a 3-state Markov chain (Figure 7). This module
//! provides the general machinery: a chain with transition
//! probabilities and per-transition expected costs, and the expected
//! total cost to absorption solved by Gaussian elimination on
//! `(I − Q)·x = c` (where `Q` is the transient-to-transient transition
//! matrix and `c[s] = Σ_t P(s,t)·W(s,t)` the expected one-step cost).

/// A Markov chain with expected transition costs.
#[derive(Debug, Clone)]
pub struct MarkovChain {
    n: usize,
    // transitions[s] = (target, probability, expected cost)
    transitions: Vec<Vec<(usize, f64, f64)>>,
}

impl MarkovChain {
    /// A chain with `n` states and no transitions.
    pub fn new(n: usize) -> MarkovChain {
        MarkovChain {
            n,
            transitions: vec![Vec::new(); n],
        }
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if the chain has no states.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Adds a transition `from → to` with probability `p` and expected
    /// sojourn/transition cost `w`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range states, `p ∉ [0, 1]`, or non-finite `w`.
    pub fn transition(&mut self, from: usize, to: usize, p: f64, w: f64) {
        assert!(from < self.n && to < self.n, "state out of range");
        assert!((0.0..=1.0).contains(&p) && p.is_finite(), "bad probability");
        assert!(w.is_finite(), "bad cost");
        self.transitions[from].push((to, p, w));
    }

    /// Checks that every state's outgoing probabilities sum to 1
    /// (within `1e-9`), except states with no transitions (absorbing).
    pub fn validate(&self) -> Result<(), String> {
        for (s, ts) in self.transitions.iter().enumerate() {
            if ts.is_empty() {
                continue;
            }
            let total: f64 = ts.iter().map(|&(_, p, _)| p).sum();
            if (total - 1.0).abs() > 1e-9 {
                return Err(format!("state {s}: probabilities sum to {total}"));
            }
        }
        Ok(())
    }

    /// Expected total cost from `start` until reaching `sink`.
    ///
    /// Solves the linear system
    /// `x[s] = Σ_t P(s,t)·(W(s,t) + x[t])`, `x[sink] = 0`,
    /// by Gaussian elimination with partial pivoting.
    ///
    /// # Panics
    ///
    /// Panics if the chain fails [`MarkovChain::validate`], if `sink`
    /// is unreachable (singular system), or on out-of-range states.
    pub fn expected_cost(&self, start: usize, sink: usize) -> f64 {
        assert!(start < self.n && sink < self.n, "state out of range");
        self.validate().expect("invalid chain");
        let n = self.n;
        // Build (I - Q) x = c over all states, pinning x[sink] = 0.
        let mut a = vec![vec![0.0f64; n + 1]; n];
        #[allow(clippy::needless_range_loop)]
        for s in 0..n {
            if s == sink {
                a[s][s] = 1.0;
                a[s][n] = 0.0;
                continue;
            }
            a[s][s] = 1.0;
            let mut c = 0.0;
            for &(t, p, w) in &self.transitions[s] {
                a[s][t] -= p;
                c += p * w;
            }
            a[s][n] = c;
        }
        // Gaussian elimination with partial pivoting.
        for col in 0..n {
            let pivot = (col..n)
                .max_by(|&i, &j| a[i][col].abs().partial_cmp(&a[j][col].abs()).unwrap())
                .unwrap();
            // Success probabilities can be astronomically small (e.g.
            // e^{-λ(T+R+L)} at high failure rates), so accept any
            // nonzero pivot; only exact zero means the sink is
            // unreachable.
            assert!(
                a[pivot][col].abs() > 0.0,
                "singular system: sink unreachable from some state"
            );
            a.swap(col, pivot);
            for row in 0..n {
                if row != col {
                    let f = a[row][col] / a[col][col];
                    if f != 0.0 {
                        #[allow(clippy::needless_range_loop)]
                        for k in col..=n {
                            a[row][k] -= f * a[col][k];
                        }
                    }
                }
            }
        }
        a[start][n] / a[start][start]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_chain_sums_costs() {
        // 0 -> 1 -> 2, costs 3 and 4.
        let mut c = MarkovChain::new(3);
        c.transition(0, 1, 1.0, 3.0);
        c.transition(1, 2, 1.0, 4.0);
        assert!((c.expected_cost(0, 2) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_retry() {
        // 0 -> sink with prob q, retry (self loop) with prob 1-q, both
        // cost 1. Expected steps = 1/q.
        let q = 0.25;
        let mut c = MarkovChain::new(2);
        c.transition(0, 1, q, 1.0);
        c.transition(0, 0, 1.0 - q, 1.0);
        assert!((c.expected_cost(0, 1) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn branching_chain() {
        // 0 -> 1 (0.5, cost 2) -> 3; 0 -> 2 (0.5, cost 4) -> 3.
        let mut c = MarkovChain::new(4);
        c.transition(0, 1, 0.5, 2.0);
        c.transition(0, 2, 0.5, 4.0);
        c.transition(1, 3, 1.0, 1.0);
        c.transition(2, 3, 1.0, 1.0);
        assert!((c.expected_cost(0, 3) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn cost_from_sink_is_zero() {
        let mut c = MarkovChain::new(2);
        c.transition(0, 1, 1.0, 5.0);
        assert_eq!(c.expected_cost(1, 1), 0.0);
    }

    #[test]
    fn validate_rejects_bad_probabilities() {
        let mut c = MarkovChain::new(2);
        c.transition(0, 1, 0.5, 1.0);
        assert!(c.validate().is_err());
        c.transition(0, 0, 0.5, 1.0);
        assert!(c.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn unreachable_sink_panics() {
        let mut c = MarkovChain::new(3);
        c.transition(0, 0, 1.0, 1.0); // 0 never reaches 2
        c.transition(1, 2, 1.0, 1.0);
        let _ = c.expected_cost(0, 2);
    }

    #[test]
    #[should_panic(expected = "bad probability")]
    fn negative_probability_panics() {
        let mut c = MarkovChain::new(2);
        c.transition(0, 1, -0.1, 1.0);
    }
}
