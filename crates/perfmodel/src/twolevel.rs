//! Two-level failure recovery (the paper's refs [24, 25], Vaidya).
//!
//! The paper's model charges every checkpoint the full stable-storage
//! cost. Vaidya's two-level scheme — cited by the paper for its
//! checkpoint-latency treatment — uses **cheap level-1 checkpoints**
//! (e.g. local disk or a buddy process) that tolerate common
//! single-process failures, and **expensive level-2 checkpoints**
//! (stable storage) every `k` intervals that tolerate catastrophic
//! failures. This module reproduces that scheme as an extension:
//!
//! * a first-order analytic overhead ratio (valid for `λ·T ≪ 1`, the
//!   regime of the paper's constants),
//! * an exact Monte-Carlo simulation of the renewal process,
//! * a search for the optimal level-2 period `k*`.
//!
//! The application-driven placement composes naturally with the scheme:
//! level-1 checkpoints are the analysis-placed statements; every `k`-th
//! instance is flushed to stable storage. No coordination is added
//! either way.

use acfc_util::rng::Rng;

/// Parameters of the two-level scheme (seconds; rates per second).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoLevelParams {
    /// Rate of single-process (level-1-recoverable) failures.
    pub lambda_single: f64,
    /// Rate of catastrophic (level-2-recoverable) failures.
    pub lambda_cat: f64,
    /// Useful execution time per interval `T`.
    pub t: f64,
    /// Level-1 checkpoint overhead `o₁`.
    pub o1: f64,
    /// Level-2 checkpoint overhead `o₂ ≥ o₁`.
    pub o2: f64,
    /// Recovery overhead from a level-1 checkpoint.
    pub r1: f64,
    /// Recovery overhead from a level-2 checkpoint.
    pub r2: f64,
    /// Level-2 period: every `k`-th checkpoint is level-2.
    pub k: u32,
}

impl TwoLevelParams {
    /// Validates the parameters.
    ///
    /// # Panics
    ///
    /// Panics on non-finite, negative, or inconsistent values
    /// (`o2 < o1`, `k == 0`).
    pub fn check(&self) {
        assert!(self.lambda_single >= 0.0 && self.lambda_single.is_finite());
        assert!(self.lambda_cat >= 0.0 && self.lambda_cat.is_finite());
        assert!(
            self.lambda_single + self.lambda_cat > 0.0,
            "need some failures to model"
        );
        assert!(self.t > 0.0 && self.t.is_finite(), "T must be positive");
        assert!(self.o1 >= 0.0 && self.o2 >= self.o1, "need o2 >= o1 >= 0");
        assert!(self.r1 >= 0.0 && self.r2 >= 0.0);
        assert!(self.k >= 1, "k must be at least 1");
    }

    /// Mean checkpoint overhead per interval:
    /// `((k−1)·o₁ + o₂)/k`.
    pub fn mean_overhead(&self) -> f64 {
        ((self.k as f64 - 1.0) * self.o1 + self.o2) / self.k as f64
    }
}

/// First-order analytic overhead ratio of the two-level scheme.
///
/// For `λ(T+O) ≪ 1`:
///
/// * checkpointing cost per interval: `Ō = ((k−1)o₁ + o₂)/k`;
/// * a single-process failure loses on average half an interval and
///   pays `r₁`: expected `λ₁(T+Ō)·((T+Ō)/2 + r₁)` per interval;
/// * a catastrophic failure rolls back to the last level-2 checkpoint,
///   on average `(k−1)/2` whole intervals plus half the current one,
///   and pays `r₂`.
///
/// `r = Ō/T + λ₁(T+Ō)((T+Ō)/2 + r₁)/T + λ₂(T+Ō)((k·(T+Ō))/2 + r₂)/T`
/// (with the mean catastrophic rollback `((k−1) + 1)/2 = k/2`
/// intervals under a uniformly random position in the level-2 cycle).
pub fn overhead_ratio_analytic(p: &TwoLevelParams) -> f64 {
    p.check();
    let o = p.mean_overhead();
    let interval = p.t + o;
    let single = p.lambda_single * interval * (interval / 2.0 + p.r1);
    let cat = p.lambda_cat * interval * (p.k as f64 * interval / 2.0 + p.r2);
    (o + single + cat) / p.t
}

/// Monte-Carlo estimate of the overhead ratio: simulates `cycles`
/// level-2 cycles of the renewal process exactly (single failures roll
/// back to the latest checkpoint of either level; catastrophic failures
/// to the cycle start) and reports `elapsed/useful − 1`.
///
/// # Panics
///
/// Panics on invalid parameters or `cycles == 0`.
pub fn overhead_ratio_monte_carlo(p: &TwoLevelParams, cycles: usize, seed: u64) -> f64 {
    p.check();
    assert!(cycles > 0, "need at least one cycle");
    let mut rng = Rng::seed_from_u64(seed);
    let total_rate = p.lambda_single + p.lambda_cat;
    let draw_ttf = |rng: &mut Rng| -> (f64, bool) {
        let ttf = rng.exp(total_rate);
        let cat = rng.gen_bool(p.lambda_cat / total_rate);
        (ttf, cat)
    };
    let mut elapsed = 0.0f64;
    let mut useful = 0.0f64;
    for _ in 0..cycles {
        // One cycle: k intervals; the k-th checkpoint is level-2.
        let mut interval_idx = 0u32;
        // Work completed within the current cycle (protected by level-1
        // checkpoints only).
        while interval_idx < p.k {
            let o = if interval_idx + 1 == p.k { p.o2 } else { p.o1 };
            let exposure = p.t + o;
            let (ttf, cat) = draw_ttf(&mut rng);
            if ttf >= exposure {
                elapsed += exposure;
                useful += p.t;
                interval_idx += 1;
            } else if !cat {
                // Single failure: lose the partial interval, pay r1,
                // retry the same interval.
                elapsed += ttf + p.r1;
            } else {
                // Catastrophic: back to the cycle's start (the last
                // level-2 checkpoint); all the cycle's useful work so
                // far must be redone.
                elapsed += ttf + p.r2;
                useful -= interval_idx as f64 * p.t;
                interval_idx = 0;
            }
        }
    }
    elapsed / useful - 1.0
}

/// Searches `k ∈ [1, k_max]` for the period minimising the analytic
/// ratio.
pub fn optimal_k(p: &TwoLevelParams, k_max: u32) -> (u32, f64) {
    assert!(k_max >= 1);
    (1..=k_max)
        .map(|k| {
            let ratio = overhead_ratio_analytic(&TwoLevelParams { k, ..*p });
            (k, ratio)
        })
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite ratios"))
        .expect("nonempty range")
}

/// The single-level baseline with the same constants: every checkpoint
/// is level-2 (`k = 1`).
pub fn single_level_ratio(p: &TwoLevelParams) -> f64 {
    overhead_ratio_analytic(&TwoLevelParams { k: 1, ..*p })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper-flavoured constants: cheap local checkpoints, expensive
    /// stable-storage ones, single failures 50× more common than
    /// catastrophic ones.
    fn base() -> TwoLevelParams {
        TwoLevelParams {
            lambda_single: 5e-5,
            lambda_cat: 1e-6,
            t: 300.0,
            o1: 0.2,
            o2: 1.78,
            r1: 0.5,
            r2: 3.32,
            k: 8,
        }
    }

    #[test]
    fn analytic_matches_monte_carlo() {
        let p = base();
        let analytic = overhead_ratio_analytic(&p);
        let mc = overhead_ratio_monte_carlo(&p, 60_000, 42);
        assert!(
            (analytic - mc).abs() / analytic < 0.08,
            "analytic {analytic} vs MC {mc}"
        );
    }

    #[test]
    fn two_level_beats_single_level_when_cat_failures_are_rare() {
        let p = base();
        let two = overhead_ratio_analytic(&p);
        let one = single_level_ratio(&p);
        assert!(
            two < one,
            "two-level {two} should beat single-level {one} (o2 ≫ o1, λ_cat ≪ λ_single)"
        );
        // And the Monte Carlo agrees on the direction.
        let two_mc = overhead_ratio_monte_carlo(&p, 40_000, 7);
        let one_mc = overhead_ratio_monte_carlo(&TwoLevelParams { k: 1, ..p }, 40_000, 7);
        assert!(two_mc < one_mc);
    }

    #[test]
    fn optimal_k_is_interior_and_beats_the_edges() {
        let p = base();
        let (k_star, best) = optimal_k(&p, 200);
        assert!(k_star > 1, "expensive o2 should push k* above 1");
        assert!(k_star < 200, "catastrophic rollback should bound k*");
        assert!(best <= single_level_ratio(&p));
        assert!(best <= overhead_ratio_analytic(&TwoLevelParams { k: 200, ..p }));
    }

    #[test]
    fn more_catastrophic_failures_shrink_k_star() {
        let p = base();
        let (k_rare, _) = optimal_k(&p, 500);
        let (k_common, _) = optimal_k(
            &TwoLevelParams {
                lambda_cat: 1e-4,
                ..p
            },
            500,
        );
        assert!(
            k_common < k_rare,
            "λ_cat ↑ should shorten the level-2 period ({k_common} vs {k_rare})"
        );
    }

    #[test]
    fn k_equal_one_degenerates_to_all_level_two() {
        let p = TwoLevelParams { k: 1, ..base() };
        assert!((p.mean_overhead() - p.o2).abs() < 1e-12);
    }

    #[test]
    fn mean_overhead_interpolates() {
        let p = base();
        let m = p.mean_overhead();
        assert!(m > p.o1 && m < p.o2);
        let almost_all_cheap = TwoLevelParams { k: 1000, ..p };
        assert!((almost_all_cheap.mean_overhead() - p.o1).abs() < 0.01);
    }

    #[test]
    fn monte_carlo_deterministic_per_seed() {
        let p = base();
        let a = overhead_ratio_monte_carlo(&p, 5_000, 3);
        let b = overhead_ratio_monte_carlo(&p, 5_000, 3);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_rejected() {
        let _ = overhead_ratio_analytic(&TwoLevelParams { k: 0, ..base() });
    }

    #[test]
    #[should_panic(expected = "need o2 >= o1")]
    fn inverted_overheads_rejected() {
        let _ = overhead_ratio_analytic(&TwoLevelParams {
            o1: 2.0,
            o2: 1.0,
            ..base()
        });
    }
}
