//! Monte-Carlo cross-validation of the interval model.
//!
//! Simulates the renewal process behind Figure 7 directly — draw
//! exponential failure times, re-run intervals after failures with the
//! `T+R+L` exposure — and compares the sample mean of the interval
//! completion time against the analytic `Γ`. This is the E3 experiment
//! of `EXPERIMENTS.md`: the model and an independent stochastic
//! simulation agree to within Monte-Carlo error.
//!
//! ## Determinism under parallelism
//!
//! Trials are partitioned into fixed-size **chunks**; chunk `c` always
//! consumes RNG stream `c` of the seed ([`acfc_util::rng::Rng::stream`])
//! and chunk partial sums are merged in chunk order. The estimate is
//! therefore **bit-identical** for a fixed `(trials, seed)` pair at any
//! thread count — the parallel sweep and the sequential oracle agree
//! exactly, which the determinism tests pin.

use crate::interval::IntervalParams;
use acfc_util::parallel::{configured_threads, par_map_threads_labeled};
use acfc_util::rng::Rng;

/// Result of a Monte-Carlo estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McEstimate {
    /// Sample mean of the interval completion time.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Standard error of the mean.
    pub std_err: f64,
    /// Number of trials.
    pub trials: usize,
}

/// Trials per RNG stream. Fixed (not derived from the thread count) so
/// the chunk decomposition — and hence the result — is machine-independent.
const CHUNK: usize = 4096;

/// One simulated interval completion time.
fn one_trial(p: &IntervalParams, rng: &mut Rng, exposure1: f64, exposure2: f64) -> f64 {
    let mut elapsed = 0.0f64;
    // First attempt: exposure T+O.
    let mut ttf = rng.exp(p.lambda);
    if ttf >= exposure1 {
        elapsed += exposure1;
    } else {
        elapsed += ttf;
        // Retry loop from the recovery state with exposure T+R+L.
        loop {
            ttf = rng.exp(p.lambda);
            if ttf >= exposure2 {
                elapsed += exposure2;
                break;
            }
            elapsed += ttf;
        }
    }
    elapsed
}

/// Simulates `trials` checkpoint intervals and returns the sample
/// statistics of their completion time, fanning the trial chunks out
/// over the configured thread count (see the module docs; the result
/// does not depend on the thread count).
///
/// # Panics
///
/// Panics on invalid parameters or `trials == 0`.
pub fn simulate_interval(p: &IntervalParams, trials: usize, seed: u64) -> McEstimate {
    simulate_interval_threads(p, trials, seed, configured_threads())
}

/// [`simulate_interval`] with an explicit thread count (1 = fully
/// sequential; used by the determinism tests and the bench harness).
///
/// # Panics
///
/// Panics on invalid parameters or `trials == 0`.
pub fn simulate_interval_threads(
    p: &IntervalParams,
    trials: usize,
    seed: u64,
    threads: usize,
) -> McEstimate {
    p.check();
    assert!(trials > 0, "need at least one trial");
    let exposure1 = p.t + p.o_total;
    let exposure2 = p.t + p.r_recovery + p.l_total;
    let chunks: Vec<(usize, usize)> = (0..trials.div_ceil(CHUNK))
        .map(|c| (c, (trials - c * CHUNK).min(CHUNK)))
        .collect();
    let partials = par_map_threads_labeled(&chunks, threads, Some("mc"), |_, &(chunk, len)| {
        let mut rng = Rng::stream(seed, chunk as u64);
        let mut sum = 0.0f64;
        let mut sum_sq = 0.0f64;
        for _ in 0..len {
            let elapsed = one_trial(p, &mut rng, exposure1, exposure2);
            sum += elapsed;
            sum_sq += elapsed * elapsed;
        }
        (sum, sum_sq)
    });
    // Ordered merge: chunk order, independent of which thread ran what.
    let (sum, sum_sq) = partials
        .into_iter()
        .fold((0.0f64, 0.0f64), |(a, b), (s, q)| (a + s, b + q));
    let n = trials as f64;
    let mean = sum / n;
    let var = (sum_sq / n - mean * mean).max(0.0) * n / (n - 1.0).max(1.0);
    let std_dev = var.sqrt();
    McEstimate {
        mean,
        std_dev,
        std_err: std_dev / n.sqrt(),
        trials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::gamma_markov;

    fn params(lambda: f64) -> IntervalParams {
        IntervalParams {
            lambda,
            t: 300.0,
            o_total: 1.78,
            l_total: 4.292,
            r_recovery: 3.32,
        }
    }

    #[test]
    fn monte_carlo_matches_the_chain_at_moderate_rate() {
        // λ(T+O) ≈ 0.3: failures are common enough to exercise the
        // retry path.
        let p = params(1e-3);
        let est = simulate_interval(&p, 200_000, 42);
        let exact = gamma_markov(&p);
        let err = (est.mean - exact).abs();
        assert!(
            err < 4.0 * est.std_err + 1e-9,
            "MC {} vs exact {} (stderr {})",
            est.mean,
            exact,
            est.std_err
        );
        // Agreement within 1%.
        assert!(err / exact < 0.01);
    }

    #[test]
    fn monte_carlo_matches_at_low_rate() {
        let p = params(1e-5);
        let est = simulate_interval(&p, 100_000, 7);
        let exact = gamma_markov(&p);
        assert!((est.mean - exact).abs() / exact < 0.01);
    }

    #[test]
    fn failure_free_limit_is_t_plus_o() {
        // λ so small that failures essentially never happen.
        let p = params(1e-12);
        let est = simulate_interval(&p, 1_000, 3);
        assert!((est.mean - (p.t + p.o_total)).abs() < 1e-6);
        assert!(est.std_dev < 1e-6);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let p = params(1e-3);
        let a = simulate_interval(&p, 10_000, 9);
        let b = simulate_interval(&p, 10_000, 9);
        assert_eq!(a, b);
        let c = simulate_interval(&p, 10_000, 10);
        assert_ne!(a.mean, c.mean);
    }

    #[test]
    fn parallel_is_bit_identical_to_sequential() {
        let p = params(1e-3);
        // 5 full chunks + a ragged tail.
        let trials = 5 * 4096 + 123;
        let seq = simulate_interval_threads(&p, trials, 42, 1);
        for threads in [2, 4, 8] {
            let par = simulate_interval_threads(&p, trials, 42, threads);
            assert_eq!(seq, par, "threads={threads}");
            assert_eq!(seq.mean.to_bits(), par.mean.to_bits());
            assert_eq!(seq.std_dev.to_bits(), par.std_dev.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_rejected() {
        let _ = simulate_interval(&params(1e-3), 0, 1);
    }
}
