//! Protocol overhead models (§4 / §4.1).
//!
//! The paper evaluates three protocols through the interval model by
//! giving each its total overheads `O = o + M + C` and `L = l + M + C`:
//!
//! * **appl-driven** — `M = C = 0`: the whole point of the paper;
//! * **SaS** — `M(SaS) = 5(n−1)(w_m + 8·w_b)` (three coordinator
//!   broadcasts + two replies per participant, 8-bit messages), plus a
//!   stop-the-world synchronisation `C`;
//! * **C-L** — `M(C-L) = 2n(n−1)(w_m + 8·w_b)` markers, no global stop
//!   (`C = 0`).
//!
//! The system failure rate grows with `n`: with per-process failure
//! probability `p` per second, the probability some process fails is
//! `1 − (1−p)ⁿ` per second, i.e. a rate `λ(n) = −n·ln(1−p)` (≈ `n·p`
//! for small `p`, which is the proportional growth the paper notes).

use crate::interval::{overhead_ratio, IntervalParams};

/// The protocols of Figure 8/9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelProtocol {
    /// The paper's coordination-free protocol ("appl-driven").
    AppDriven,
    /// Synchronise-and-stop.
    SyncAndStop,
    /// Chandy–Lamport.
    ChandyLamport,
}

impl ModelProtocol {
    /// All protocols in figure order.
    pub fn all() -> [ModelProtocol; 3] {
        [
            ModelProtocol::AppDriven,
            ModelProtocol::SyncAndStop,
            ModelProtocol::ChandyLamport,
        ]
    }

    /// Figure label.
    pub fn name(self) -> &'static str {
        match self {
            ModelProtocol::AppDriven => "appl-driven",
            ModelProtocol::SyncAndStop => "SaS",
            ModelProtocol::ChandyLamport => "C-L",
        }
    }
}

/// The evaluation parameters (§4's measured constants as defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelParams {
    /// Checkpoint overhead `o`, seconds (Starfish: 1.78).
    pub o: f64,
    /// Checkpoint latency `l`, seconds (Starfish: 4.292).
    pub l: f64,
    /// Recovery overhead `R`, seconds (Starfish: 3.32).
    pub r_recovery: f64,
    /// Per-process failure probability per second (1.23·10⁻⁶).
    pub p_single: f64,
    /// Checkpoint interval `T`, seconds (300).
    pub t: f64,
    /// Message setup time `w_m`, seconds.
    pub w_m: f64,
    /// Per-bit delay `w_b`, seconds per bit.
    pub w_b: f64,
    /// Control message size, bits (the paper's 8-bit messages).
    pub msg_bits: f64,
}

impl Default for ModelParams {
    /// The paper's §4 constants; `w_m`/`w_b` are not printed in the
    /// paper, so we document our choices in `DESIGN.md` (`w_m = 0.1 s`
    /// — Figure 9 sweeps it — and `w_b = 10⁻⁶ s/bit`).
    fn default() -> ModelParams {
        ModelParams {
            o: 1.78,
            l: 4.292,
            r_recovery: 3.32,
            p_single: 1.23e-6,
            t: 300.0,
            w_m: 0.1,
            w_b: 1e-6,
            msg_bits: 8.0,
        }
    }
}

impl ModelParams {
    /// System failure rate for `n` processes:
    /// `λ(n) = −n·ln(1 − p_single)` per second.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or the per-process probability is not in
    /// `(0, 1)`.
    pub fn lambda(&self, n: usize) -> f64 {
        assert!(n >= 1, "need at least one process");
        assert!(
            self.p_single > 0.0 && self.p_single < 1.0,
            "p_single must be in (0,1)"
        );
        -(n as f64) * (1.0 - self.p_single).ln()
    }

    /// One control-message cost `w_m + msg_bits·w_b`, seconds.
    pub fn control_msg_cost(&self) -> f64 {
        self.w_m + self.msg_bits * self.w_b
    }

    /// Message overhead `M` of a protocol at `n` processes, seconds.
    pub fn message_overhead(&self, protocol: ModelProtocol, n: usize) -> f64 {
        let nf = n as f64;
        match protocol {
            ModelProtocol::AppDriven => 0.0,
            ModelProtocol::SyncAndStop => 5.0 * (nf - 1.0) * self.control_msg_cost(),
            ModelProtocol::ChandyLamport => 2.0 * nf * (nf - 1.0) * self.control_msg_cost(),
        }
    }

    /// Coordination overhead `C` of a protocol at `n` processes,
    /// seconds: SaS stops the world for two control round-trips; C-L
    /// and the application-driven protocol do not block.
    pub fn coordination_overhead(&self, protocol: ModelProtocol, _n: usize) -> f64 {
        match protocol {
            ModelProtocol::AppDriven | ModelProtocol::ChandyLamport => 0.0,
            ModelProtocol::SyncAndStop => 4.0 * self.control_msg_cost(),
        }
    }

    /// The interval parameters (`λ(n)`, `O`, `L`, `R`, `T`) for a
    /// protocol at `n` processes.
    pub fn interval_params(&self, protocol: ModelProtocol, n: usize) -> IntervalParams {
        let m = self.message_overhead(protocol, n);
        let c = self.coordination_overhead(protocol, n);
        IntervalParams {
            lambda: self.lambda(n),
            t: self.t,
            o_total: self.o + m + c,
            l_total: self.l + m + c,
            r_recovery: self.r_recovery,
        }
    }

    /// The overhead ratio `r` of a protocol at `n` processes.
    pub fn ratio(&self, protocol: ModelProtocol, n: usize) -> f64 {
        overhead_ratio(&self.interval_params(protocol, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lambda_grows_proportionally_with_n() {
        let m = ModelParams::default();
        let l1 = m.lambda(1);
        let l64 = m.lambda(64);
        assert!((l64 / l1 - 64.0).abs() < 1e-9);
        // ≈ n·p for small p.
        assert!((l1 - m.p_single).abs() / m.p_single < 1e-5);
    }

    #[test]
    fn message_overheads_match_the_formulas() {
        let m = ModelParams::default();
        let unit = m.control_msg_cost();
        assert_eq!(m.message_overhead(ModelProtocol::AppDriven, 64), 0.0);
        assert!(
            (m.message_overhead(ModelProtocol::SyncAndStop, 64) - 5.0 * 63.0 * unit).abs() < 1e-12
        );
        assert!(
            (m.message_overhead(ModelProtocol::ChandyLamport, 64) - 2.0 * 64.0 * 63.0 * unit).abs()
                < 1e-12
        );
    }

    #[test]
    fn figure8_ordering_app_driven_wins() {
        // The headline of Figure 8: appl-driven has the smallest
        // overhead ratio at every n; C-L's quadratic marker traffic
        // overtakes SaS's linear control traffic once
        // 2n(n−1) > 5(n−1)+4 control units, i.e. from n = 4 on.
        let m = ModelParams::default();
        for n in [2usize, 8, 32, 128, 512] {
            let app = m.ratio(ModelProtocol::AppDriven, n);
            let sas = m.ratio(ModelProtocol::SyncAndStop, n);
            let cl = m.ratio(ModelProtocol::ChandyLamport, n);
            assert!(app < sas, "n={n}: app {app} !< sas {sas}");
            assert!(app < cl, "n={n}: app {app} !< cl {cl}");
            if n >= 4 {
                assert!(sas < cl, "n={n}: sas {sas} !< cl {cl}");
            }
        }
        // The crossover itself is part of the model's shape.
        assert!(m.ratio(ModelProtocol::ChandyLamport, 2) < m.ratio(ModelProtocol::SyncAndStop, 2));
    }

    #[test]
    fn ratios_grow_with_n() {
        let m = ModelParams::default();
        for proto in ModelProtocol::all() {
            let mut last = -1.0;
            for n in [2usize, 4, 16, 64, 256] {
                let r = m.ratio(proto, n);
                assert!(r > last, "{}: not increasing at n={n}", proto.name());
                last = r;
            }
        }
    }

    #[test]
    fn figure9_app_driven_flat_in_wm() {
        // Figure 9: appl-driven does not depend on w_m; SaS and C-L do.
        let mut m = ModelParams::default();
        let mut app = Vec::new();
        let mut sas = Vec::new();
        let mut cl = Vec::new();
        for wm in [0.0, 0.2, 0.5, 1.0] {
            m.w_m = wm;
            app.push(m.ratio(ModelProtocol::AppDriven, 64));
            sas.push(m.ratio(ModelProtocol::SyncAndStop, 64));
            cl.push(m.ratio(ModelProtocol::ChandyLamport, 64));
        }
        assert!(app.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-15));
        assert!(sas.windows(2).all(|w| w[0] < w[1]));
        assert!(cl.windows(2).all(|w| w[0] < w[1]));
        // C-L grows faster than SaS in w_m (quadratic vs linear message
        // count).
        assert!(cl[3] - cl[0] > sas[3] - sas[0]);
    }

    #[test]
    fn protocol_names_match_figures() {
        assert_eq!(ModelProtocol::AppDriven.name(), "appl-driven");
        assert_eq!(ModelProtocol::SyncAndStop.name(), "SaS");
        assert_eq!(ModelProtocol::ChandyLamport.name(), "C-L");
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn zero_procs_rejected() {
        let _ = ModelParams::default().lambda(0);
    }
}
