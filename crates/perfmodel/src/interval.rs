//! The paper's checkpoint-interval model (§4, Figure 7).
//!
//! A checkpoint interval `I_{p,i+1}` is modelled by a 3-state Markov
//! chain: start state `i`, recovery state `R_i`, sink `i+1`, with
//!
//! * `P(i → i+1) = e^{−λ(T+O)}`, cost `T+O` (no failure),
//! * `P(i → R_i) = 1 − e^{−λ(T+O)}`, cost = conditional mean TTF on
//!   `[0, T+O)`,
//! * `P(R_i → i+1) = e^{−λ(T+R+L)}`, cost `T+R+L`,
//! * `P(R_i → R_i) = 1 − e^{−λ(T+R+L)}`, cost = conditional mean TTF on
//!   `[0, T+R+L)`.
//!
//! The expected interval time `Γ` has the closed form the paper derives,
//! `Γ = λ⁻¹ (1 − e^{−λ(T+O)}) e^{λ(T+R+L)}`,
//! and the *overhead ratio* is `r = Γ/T − 1`. This module provides the
//! closed form, the explicit chain (solved numerically, used as a
//! cross-check), and the conditional-TTF pieces.

use crate::markov::MarkovChain;

/// Parameters of one checkpoint interval, all in seconds except the
/// failure rate `λ` (per second).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntervalParams {
    /// Failure rate `λ` of the (whole) computation, per second.
    pub lambda: f64,
    /// Failure-free useful execution time `T` of the interval.
    pub t: f64,
    /// Total checkpoint overhead `O` (includes coordination, §4).
    pub o_total: f64,
    /// Total latency overhead `L`.
    pub l_total: f64,
    /// Recovery overhead `R`.
    pub r_recovery: f64,
}

impl IntervalParams {
    /// Validates the parameters (finite, `λ > 0`, `T > 0`, others ≥ 0).
    ///
    /// # Panics
    ///
    /// Panics on invalid values.
    pub fn check(&self) {
        assert!(
            self.lambda.is_finite() && self.lambda > 0.0,
            "lambda must be positive"
        );
        assert!(self.t.is_finite() && self.t > 0.0, "T must be positive");
        for (name, v) in [
            ("O", self.o_total),
            ("L", self.l_total),
            ("R", self.r_recovery),
        ] {
            assert!(v.is_finite() && v >= 0.0, "{name} must be non-negative");
        }
    }
}

/// Conditional mean time-to-failure on `[0, horizon)` for an
/// exponential with rate `lambda`, given that a failure occurs in the
/// window: `1/λ − horizon·e^{−λ·horizon}/(1 − e^{−λ·horizon})`.
pub fn conditional_mean_ttf(lambda: f64, horizon: f64) -> f64 {
    assert!(lambda > 0.0 && horizon > 0.0);
    let x = lambda * horizon;
    // 1 - e^{-x} computed stably.
    let p_fail = -(-x).exp_m1();
    1.0 / lambda - horizon * (-x).exp() / p_fail
}

/// The closed-form expected interval completion time
/// `Γ = λ⁻¹ (1 − e^{−λ(T+O)}) e^{λ(T+R+L)}` (§4).
pub fn gamma_closed_form(p: &IntervalParams) -> f64 {
    p.check();
    let fail_term = -(-p.lambda * (p.t + p.o_total)).exp_m1();
    fail_term / p.lambda * (p.lambda * (p.t + p.r_recovery + p.l_total)).exp()
}

/// `Γ` evaluated by solving the explicit Figure-7 Markov chain. Used as
/// a cross-check on the closed form (they agree to floating-point
/// accuracy; see tests).
pub fn gamma_markov(p: &IntervalParams) -> f64 {
    p.check();
    let exposure1 = p.t + p.o_total;
    let exposure2 = p.t + p.r_recovery + p.l_total;
    let p_ok1 = (-p.lambda * exposure1).exp();
    let p_ok2 = (-p.lambda * exposure2).exp();
    // States: 0 = i, 1 = R_i, 2 = i+1 (sink).
    let mut chain = MarkovChain::new(3);
    chain.transition(0, 2, p_ok1, exposure1);
    chain.transition(0, 1, 1.0 - p_ok1, conditional_mean_ttf(p.lambda, exposure1));
    chain.transition(1, 2, p_ok2, exposure2);
    chain.transition(1, 1, 1.0 - p_ok2, conditional_mean_ttf(p.lambda, exposure2));
    chain.expected_cost(0, 2)
}

/// The overhead ratio `r = Γ/T − 1` (closed form).
pub fn overhead_ratio(p: &IntervalParams) -> f64 {
    gamma_closed_form(p) / p.t - 1.0
}

/// The paper's alternative expression for the ratio,
/// `r = λ⁻¹ e^{λ(R+L−O)} (e^{λ(T+O)} − 1) / T − 1`; algebraically
/// identical to [`overhead_ratio`], kept for fidelity and tested
/// against it.
pub fn overhead_ratio_paper_form(p: &IntervalParams) -> f64 {
    p.check();
    let num = ((p.lambda * (p.t + p.o_total)).exp_m1())
        * (p.lambda * (p.r_recovery + p.l_total - p.o_total)).exp()
        / p.lambda;
    num / p.t - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> IntervalParams {
        IntervalParams {
            lambda: 1e-4,
            t: 300.0,
            o_total: 1.78,
            l_total: 4.292,
            r_recovery: 3.32,
        }
    }

    #[test]
    fn closed_form_matches_markov_chain() {
        // The paper's closed form is *exact* for the Figure-7 chain
        // (the conditional-TTF terms cancel algebraically), so in the
        // paper's plotted regime the two agree to numerical accuracy.
        for lambda in [1e-7, 1e-5, 1e-3] {
            let p = IntervalParams { lambda, ..params() };
            let cf = gamma_closed_form(&p);
            let mk = gamma_markov(&p);
            assert!(
                (cf - mk).abs() / mk < 1e-9,
                "λ={lambda}: closed {cf} vs chain {mk}"
            );
        }
        // At extreme rates (λ(T+R+L) ≈ 31) the chain's success
        // probability e^{-31} suffers 1−(1−p) double rounding against
        // f64 eps at 1.0, so the numeric solve carries a ~1e-3 relative
        // error; the closed form (via exp_m1) does not.
        let p = IntervalParams {
            lambda: 1e-1,
            ..params()
        };
        let cf = gamma_closed_form(&p);
        let mk = gamma_markov(&p);
        assert!((cf - mk).abs() / mk < 1e-2, "closed {cf} vs chain {mk}");
    }

    #[test]
    fn paper_ratio_form_is_identical() {
        for lambda in [1e-8, 1e-6, 1e-4, 1e-2] {
            let p = IntervalParams { lambda, ..params() };
            let a = overhead_ratio(&p);
            let b = overhead_ratio_paper_form(&p);
            assert!((a - b).abs() <= 1e-12 * (1.0 + a.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn tiny_lambda_limit_is_o_over_t() {
        // As λ → 0, Γ → T + O, so r → O/T.
        let p = IntervalParams {
            lambda: 1e-12,
            ..params()
        };
        let r = overhead_ratio(&p);
        let expected = p.o_total / p.t;
        assert!(
            (r - expected).abs() < 1e-6,
            "r = {r}, expected ≈ {expected}"
        );
    }

    #[test]
    fn ratio_monotone_in_lambda() {
        let mut last = -1.0;
        for lambda in [1e-7, 1e-6, 1e-5, 1e-4, 1e-3] {
            let r = overhead_ratio(&IntervalParams { lambda, ..params() });
            assert!(r > last, "not monotone at λ={lambda}");
            last = r;
        }
    }

    #[test]
    fn ratio_monotone_in_overheads() {
        let base = overhead_ratio(&params());
        let more_o = overhead_ratio(&IntervalParams {
            o_total: 5.0,
            ..params()
        });
        let more_l = overhead_ratio(&IntervalParams {
            l_total: 10.0,
            ..params()
        });
        let more_r = overhead_ratio(&IntervalParams {
            r_recovery: 10.0,
            ..params()
        });
        assert!(more_o > base);
        assert!(more_l > base);
        assert!(more_r > base);
    }

    #[test]
    fn conditional_ttf_below_horizon_and_mean() {
        let lambda = 1e-3;
        let horizon = 100.0;
        let m = conditional_mean_ttf(lambda, horizon);
        assert!(m > 0.0);
        assert!(m < horizon);
        assert!(m < 1.0 / lambda);
        // For tiny windows the conditional mean tends to horizon/2.
        let m_small = conditional_mean_ttf(1e-6, 10.0);
        assert!((m_small - 5.0).abs() < 0.01, "{m_small}");
    }

    #[test]
    #[should_panic(expected = "lambda must be positive")]
    fn zero_lambda_rejected() {
        let _ = gamma_closed_form(&IntervalParams {
            lambda: 0.0,
            ..params()
        });
    }

    #[test]
    #[should_panic(expected = "T must be positive")]
    fn zero_t_rejected() {
        let _ = gamma_closed_form(&IntervalParams { t: 0.0, ..params() });
    }
}
