//! Tuning the user-programmable parameters.
//!
//! §4: *"With any checkpointing and recovery mechanisms, `T` and `n`
//! are the only parameters that a user can program."* This module finds
//! the overhead-minimising checkpoint interval `T*` for a protocol at a
//! given scale (by golden-section search on the exact ratio, with
//! Young's `√(2·O/λ)` as the classical first-order comparison point)
//! and quantifies the model's sensitivity to each parameter.

use crate::interval::{overhead_ratio, IntervalParams};
use crate::protocols::{ModelParams, ModelProtocol};

/// The result of an interval optimisation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimalInterval {
    /// The minimising interval `T*`, seconds.
    pub t_star: f64,
    /// The overhead ratio at `T*`.
    pub ratio: f64,
    /// Young's first-order approximation `√(2·O/λ)`, for comparison.
    pub young: f64,
}

/// Minimises `r(T)` over `T ∈ [lo, hi]` by golden-section search.
///
/// The ratio is strictly unimodal in `T` (checkpointing too often pays
/// overhead, too rarely pays failure re-execution), so the search
/// converges to the global minimum.
///
/// # Panics
///
/// Panics if the bracket is invalid or parameters are out of range.
pub fn optimal_interval_search(
    lambda: f64,
    o_total: f64,
    l_total: f64,
    r_recovery: f64,
    lo: f64,
    hi: f64,
) -> OptimalInterval {
    assert!(lo > 0.0 && hi > lo, "invalid bracket");
    // Keep the bracket inside f64's exponential range: e^{λ(T+O)}
    // overflows past λT ≈ 709, and an infinite plateau defeats the
    // golden-section comparisons.
    let hi = hi.min(600.0 / lambda);
    assert!(hi > lo, "bracket collapsed by the overflow guard");
    let ratio_at = |t: f64| {
        overhead_ratio(&IntervalParams {
            lambda,
            t,
            o_total,
            l_total,
            r_recovery,
        })
    };
    let phi = (5f64.sqrt() - 1.0) / 2.0;
    let (mut a, mut b) = (lo, hi);
    let mut c = b - phi * (b - a);
    let mut d = a + phi * (b - a);
    let (mut fc, mut fd) = (ratio_at(c), ratio_at(d));
    for _ in 0..200 {
        if (b - a) < 1e-9 * (1.0 + a.abs()) {
            break;
        }
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - phi * (b - a);
            fc = ratio_at(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + phi * (b - a);
            fd = ratio_at(d);
        }
    }
    let t_star = (a + b) / 2.0;
    OptimalInterval {
        t_star,
        ratio: ratio_at(t_star),
        young: (2.0 * o_total / lambda).sqrt(),
    }
}

/// Optimal interval for a protocol at `n` processes under `params`.
pub fn optimal_interval_for(
    params: &ModelParams,
    protocol: ModelProtocol,
    n: usize,
) -> OptimalInterval {
    let ip = params.interval_params(protocol, n);
    optimal_interval_search(ip.lambda, ip.o_total, ip.l_total, ip.r_recovery, 1.0, 1.0e7)
}

/// Relative sensitivity `(∂r/∂x)·(x/r)` of the overhead ratio to each
/// parameter, by central differences — which knob matters most at the
/// operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sensitivity {
    /// To the failure rate `λ`.
    pub lambda: f64,
    /// To the interval `T`.
    pub t: f64,
    /// To the total checkpoint overhead `O`.
    pub o_total: f64,
    /// To the total latency `L`.
    pub l_total: f64,
    /// To the recovery overhead `R`.
    pub r_recovery: f64,
}

/// Computes the elasticities of `r` at `p`.
pub fn sensitivity(p: &IntervalParams) -> Sensitivity {
    let base = overhead_ratio(p);
    let rel = 1e-5;
    let elast = |bump: &dyn Fn(f64) -> IntervalParams, x: f64| {
        let h = x * rel;
        let up = overhead_ratio(&bump(x + h));
        let down = overhead_ratio(&bump(x - h));
        (up - down) / (2.0 * h) * (x / base)
    };
    Sensitivity {
        lambda: elast(&|v| IntervalParams { lambda: v, ..*p }, p.lambda),
        t: elast(&|v| IntervalParams { t: v, ..*p }, p.t),
        o_total: elast(&|v| IntervalParams { o_total: v, ..*p }, p.o_total),
        l_total: elast(&|v| IntervalParams { l_total: v, ..*p }, p.l_total),
        r_recovery: elast(
            &|v| IntervalParams {
                r_recovery: v,
                ..*p
            },
            p.r_recovery,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> IntervalParams {
        IntervalParams {
            lambda: 1e-4,
            t: 300.0,
            o_total: 1.78,
            l_total: 4.292,
            r_recovery: 3.32,
        }
    }

    #[test]
    fn search_beats_or_ties_youngs_formula() {
        let p = base();
        let opt = optimal_interval_search(p.lambda, p.o_total, p.l_total, p.r_recovery, 1.0, 1e6);
        let young_ratio = overhead_ratio(&IntervalParams { t: opt.young, ..p });
        assert!(opt.ratio <= young_ratio + 1e-12);
        // In this regime Young's approximation is close to optimal.
        assert!(
            (opt.t_star - opt.young).abs() / opt.young < 0.2,
            "t*={}, young={}",
            opt.t_star,
            opt.young
        );
    }

    #[test]
    fn optimum_is_interior_and_stationary() {
        let p = base();
        let opt = optimal_interval_search(p.lambda, p.o_total, p.l_total, p.r_recovery, 1.0, 1e6);
        let at = |t: f64| overhead_ratio(&IntervalParams { t, ..p });
        assert!(at(opt.t_star * 0.5) > opt.ratio);
        assert!(at(opt.t_star * 2.0) > opt.ratio);
    }

    #[test]
    fn higher_failure_rate_shortens_the_optimal_interval() {
        let p = base();
        let a = optimal_interval_search(1e-5, p.o_total, p.l_total, p.r_recovery, 1.0, 1e7);
        let b = optimal_interval_search(1e-3, p.o_total, p.l_total, p.r_recovery, 1.0, 1e7);
        assert!(b.t_star < a.t_star);
    }

    #[test]
    fn coordinated_protocols_have_longer_optimal_intervals() {
        // Higher per-checkpoint overhead pushes the optimal interval up.
        let params = ModelParams::default();
        let app = optimal_interval_for(&params, ModelProtocol::AppDriven, 64);
        let cl = optimal_interval_for(&params, ModelProtocol::ChandyLamport, 64);
        assert!(cl.t_star > app.t_star);
        assert!(cl.ratio > app.ratio);
    }

    #[test]
    fn sensitivities_have_the_expected_signs() {
        let s = sensitivity(&base());
        assert!(s.lambda > 0.0, "more failures, more overhead");
        assert!(s.o_total > 0.0);
        assert!(s.l_total > 0.0);
        assert!(s.r_recovery > 0.0);
        // At λ = 10⁻⁴ the optimal interval is T* ≈ √(2O/λ) ≈ 189 s,
        // so the paper's T = 300 s sits *above* the optimum and
        // lengthening it increases the ratio.
        assert!(s.t > 0.0, "T above optimum: ∂r/∂T > 0 ({})", s.t);
    }

    #[test]
    fn sensitivity_is_zero_in_t_at_the_optimum() {
        let p = base();
        let opt = optimal_interval_search(p.lambda, p.o_total, p.l_total, p.r_recovery, 1.0, 1e6);
        let s = sensitivity(&IntervalParams { t: opt.t_star, ..p });
        assert!(s.t.abs() < 1e-3, "stationary at the optimum: {}", s.t);
    }

    #[test]
    #[should_panic(expected = "invalid bracket")]
    fn bad_bracket_rejected() {
        let _ = optimal_interval_search(1e-4, 1.0, 1.0, 1.0, 10.0, 5.0);
    }
}
