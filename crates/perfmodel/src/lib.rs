//! # The paper's stochastic performance model (§4)
//!
//! Everything needed to regenerate the evaluation of *Agbaria & Sanders
//! (ICDCS 2005)*:
//!
//! * [`markov`] — a general absorbing-Markov-chain expected-cost solver;
//! * [`interval`] — the Figure-7 interval model: closed-form `Γ`,
//!   the explicit chain as a cross-check, and the overhead ratio
//!   `r = Γ/T − 1` in both of the paper's algebraic forms;
//! * [`protocols`] — per-protocol total overheads
//!   (`M(SaS) = 5(n−1)(w_m+8w_b)`, `M(C-L) = 2n(n−1)(w_m+8w_b)`,
//!   appl-driven `M = C = 0`) and the `λ(n)` scaling;
//! * [`sweep`] — the Figure 8 and Figure 9 series;
//! * [`montecarlo`] — an independent stochastic simulation of the
//!   renewal process, validating the analytic model;
//! * [`tuning`] — the overhead-minimising checkpoint interval `T*` and
//!   parameter sensitivities (§4: `T` and `n` are the user-programmable
//!   knobs);
//! * [`twolevel`] — the two-level recovery scheme of the paper's
//!   refs [24, 25] (cheap local checkpoints + periodic stable-storage
//!   ones), as an extension experiment.
//!
//! ```
//! use acfc_perfmodel::{figure8, figure8_default_ns, ModelParams};
//!
//! let rows = figure8(&ModelParams::default(), &figure8_default_ns());
//! // Figure 8's qualitative content: the application-driven protocol
//! // has the lowest overhead ratio at every process count.
//! assert!(rows.iter().all(|r| r.app_driven < r.sas && r.app_driven < r.chandy_lamport));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod interval;
pub mod markov;
pub mod montecarlo;
pub mod protocols;
pub mod sweep;
pub mod tuning;
pub mod twolevel;

pub use interval::{
    conditional_mean_ttf, gamma_closed_form, gamma_markov, overhead_ratio,
    overhead_ratio_paper_form, IntervalParams,
};
pub use markov::MarkovChain;
pub use montecarlo::{simulate_interval, simulate_interval_threads, McEstimate};
pub use protocols::{ModelParams, ModelProtocol};
pub use sweep::{figure8, figure8_default_ns, figure9, figure9_default_wms, to_tsv, Row};
pub use tuning::{
    optimal_interval_for, optimal_interval_search, sensitivity, OptimalInterval, Sensitivity,
};
pub use twolevel::{
    optimal_k, overhead_ratio_analytic as twolevel_ratio_analytic,
    overhead_ratio_monte_carlo as twolevel_ratio_monte_carlo, single_level_ratio, TwoLevelParams,
};
