//! Property tests over the performance model: the paper's two algebraic
//! forms of the overhead ratio agree for arbitrary parameters, the
//! closed form equals the chain, the ratio respects its monotonicities,
//! and the Monte-Carlo estimator converges.

use acfc_perfmodel::{
    gamma_closed_form, gamma_markov, overhead_ratio, overhead_ratio_paper_form,
    simulate_interval, IntervalParams, ModelParams, ModelProtocol,
};
use proptest::prelude::*;

fn arb_params() -> impl Strategy<Value = IntervalParams> {
    (
        1e-7f64..1e-3,
        10.0f64..2000.0,
        0.0f64..20.0,
        0.0f64..20.0,
        0.0f64..20.0,
    )
        .prop_map(|(lambda, t, o, l_extra, r)| IntervalParams {
            lambda,
            t,
            o_total: o,
            // Keep L ≥ O (latency includes the overhead in practice).
            l_total: o + l_extra,
            r_recovery: r,
        })
}

proptest! {
    #[test]
    fn paper_forms_agree_everywhere(p in arb_params()) {
        let a = overhead_ratio(&p);
        let b = overhead_ratio_paper_form(&p);
        prop_assert!((a - b).abs() <= 1e-9 * (1.0 + a.abs()), "{a} vs {b}");
    }

    #[test]
    fn closed_form_equals_chain_in_plotted_regime(p in arb_params()) {
        // Restrict to the regime where 1-(1-p) double rounding is
        // negligible (λ·exposure < 5).
        prop_assume!(p.lambda * (p.t + p.r_recovery + p.l_total) < 5.0);
        let cf = gamma_closed_form(&p);
        let mk = gamma_markov(&p);
        prop_assert!((cf - mk).abs() / mk < 1e-6, "{cf} vs {mk}");
    }

    #[test]
    fn ratio_exceeds_the_failure_free_floor(p in arb_params()) {
        // r ≥ O/T with equality only as λ→0.
        let r = overhead_ratio(&p);
        prop_assert!(r >= p.o_total / p.t - 1e-12);
    }

    #[test]
    fn ratio_monotone_in_each_overhead(p in arb_params()) {
        let base = overhead_ratio(&p);
        let more_o = overhead_ratio(&IntervalParams {
            o_total: p.o_total + 1.0,
            l_total: p.l_total + 1.0, // keep L ≥ O
            ..p
        });
        let more_r = overhead_ratio(&IntervalParams {
            r_recovery: p.r_recovery + 1.0,
            ..p
        });
        let more_lambda = overhead_ratio(&IntervalParams {
            lambda: p.lambda * 1.5,
            ..p
        });
        prop_assert!(more_o > base);
        prop_assert!(more_r > base);
        prop_assert!(more_lambda > base);
    }

    #[test]
    fn gamma_is_finite_and_above_t(p in arb_params()) {
        prop_assume!(p.lambda * (p.t + p.r_recovery + p.l_total) < 600.0);
        let g = gamma_closed_form(&p);
        prop_assert!(g.is_finite());
        prop_assert!(g > p.t);
    }

    #[test]
    fn monte_carlo_tracks_the_closed_form(
        lambda_exp in -6.0f64..-3.0,
        seed in 0u64..100,
    ) {
        let p = IntervalParams {
            lambda: 10f64.powf(lambda_exp),
            t: 300.0,
            o_total: 1.78,
            l_total: 4.292,
            r_recovery: 3.32,
        };
        let est = simulate_interval(&p, 20_000, seed);
        let exact = gamma_closed_form(&p);
        // 6 standard errors + a small absolute slack.
        prop_assert!(
            (est.mean - exact).abs() < 6.0 * est.std_err + 1e-6 * exact,
            "MC {} vs exact {} (stderr {})",
            est.mean, exact, est.std_err
        );
    }
}

#[test]
fn protocol_ordering_is_stable_across_the_whole_figure8_range() {
    let m = ModelParams::default();
    for n in 2..=512usize {
        let app = m.ratio(ModelProtocol::AppDriven, n);
        let sas = m.ratio(ModelProtocol::SyncAndStop, n);
        let cl = m.ratio(ModelProtocol::ChandyLamport, n);
        assert!(app < sas && app < cl, "n={n}");
        if n >= 4 {
            assert!(sas < cl, "n={n}");
        }
    }
}
