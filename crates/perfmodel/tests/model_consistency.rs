//! Property tests over the performance model: the paper's two algebraic
//! forms of the overhead ratio agree for arbitrary parameters, the
//! closed form equals the chain, the ratio respects its monotonicities,
//! and the Monte-Carlo estimator converges.

use acfc_perfmodel::{
    gamma_closed_form, gamma_markov, overhead_ratio, overhead_ratio_paper_form, simulate_interval,
    IntervalParams, ModelParams, ModelProtocol,
};
use acfc_util::check::{forall, Gen};

fn arb_params(g: &mut Gen) -> IntervalParams {
    let lambda = g.f64_in(1e-7, 1e-3);
    let t = g.f64_in(10.0, 2000.0);
    let o = g.f64_in(0.0, 20.0);
    let l_extra = g.f64_in(0.0, 20.0);
    let r = g.f64_in(0.0, 20.0);
    IntervalParams {
        lambda,
        t,
        o_total: o,
        // Keep L ≥ O (latency includes the overhead in practice).
        l_total: o + l_extra,
        r_recovery: r,
    }
}

#[test]
fn paper_forms_agree_everywhere() {
    forall("paper_forms_agree_everywhere", 256, |g| {
        let p = arb_params(g);
        let a = overhead_ratio(&p);
        let b = overhead_ratio_paper_form(&p);
        assert!((a - b).abs() <= 1e-9 * (1.0 + a.abs()), "{a} vs {b}");
    });
}

#[test]
fn closed_form_equals_chain_in_plotted_regime() {
    forall("closed_form_equals_chain_in_plotted_regime", 256, |g| {
        let p = arb_params(g);
        // Restrict to the regime where 1-(1-p) double rounding is
        // negligible (λ·exposure < 5).
        if p.lambda * (p.t + p.r_recovery + p.l_total) >= 5.0 {
            return;
        }
        let cf = gamma_closed_form(&p);
        let mk = gamma_markov(&p);
        assert!((cf - mk).abs() / mk < 1e-6, "{cf} vs {mk}");
    });
}

#[test]
fn ratio_exceeds_the_failure_free_floor() {
    forall("ratio_exceeds_the_failure_free_floor", 256, |g| {
        let p = arb_params(g);
        // r ≥ O/T with equality only as λ→0.
        let r = overhead_ratio(&p);
        assert!(r >= p.o_total / p.t - 1e-12);
    });
}

#[test]
fn ratio_monotone_in_each_overhead() {
    forall("ratio_monotone_in_each_overhead", 256, |g| {
        let p = arb_params(g);
        let base = overhead_ratio(&p);
        let more_o = overhead_ratio(&IntervalParams {
            o_total: p.o_total + 1.0,
            l_total: p.l_total + 1.0, // keep L ≥ O
            ..p
        });
        let more_r = overhead_ratio(&IntervalParams {
            r_recovery: p.r_recovery + 1.0,
            ..p
        });
        let more_lambda = overhead_ratio(&IntervalParams {
            lambda: p.lambda * 1.5,
            ..p
        });
        assert!(more_o > base);
        assert!(more_r > base);
        assert!(more_lambda > base);
    });
}

#[test]
fn gamma_is_finite_and_above_t() {
    forall("gamma_is_finite_and_above_t", 256, |g| {
        let p = arb_params(g);
        if p.lambda * (p.t + p.r_recovery + p.l_total) >= 600.0 {
            return;
        }
        let gamma = gamma_closed_form(&p);
        assert!(gamma.is_finite());
        assert!(gamma > p.t);
    });
}

#[test]
fn monte_carlo_tracks_the_closed_form() {
    forall("monte_carlo_tracks_the_closed_form", 32, |g| {
        let lambda_exp = g.f64_in(-6.0, -3.0);
        let seed = g.u64_in(0, 100);
        let p = IntervalParams {
            lambda: 10f64.powf(lambda_exp),
            t: 300.0,
            o_total: 1.78,
            l_total: 4.292,
            r_recovery: 3.32,
        };
        let est = simulate_interval(&p, 20_000, seed);
        let exact = gamma_closed_form(&p);
        // 6 standard errors + a small absolute slack.
        assert!(
            (est.mean - exact).abs() < 6.0 * est.std_err + 1e-6 * exact,
            "MC {} vs exact {} (stderr {})",
            est.mean,
            exact,
            est.std_err
        );
    });
}

#[test]
fn protocol_ordering_is_stable_across_the_whole_figure8_range() {
    let m = ModelParams::default();
    for n in 2..=512usize {
        let app = m.ratio(ModelProtocol::AppDriven, n);
        let sas = m.ratio(ModelProtocol::SyncAndStop, n);
        let cl = m.ratio(ModelProtocol::ChandyLamport, n);
        assert!(app < sas && app < cl, "n={n}");
        if n >= 4 {
            assert!(sas < cl, "n={n}");
        }
    }
}
