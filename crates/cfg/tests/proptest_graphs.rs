//! Property tests for the CFG machinery on randomly generated
//! structured programs: the CHK dominator algorithm against the naive
//! fixpoint, loop/back-edge invariants, reachability against path
//! finding, and structural invariants of construction.

use acfc_cfg::{
    build_cfg, dominators, dominators_naive, find_path, loop_info, Cfg, NodeId, Reach,
};
use acfc_mpsl::{Expr, Program, Stmt, StmtKind};
use proptest::prelude::*;

/// Random structured statement trees (control flow only; the leaf
/// statements don't matter for graph algorithms).
fn arb_stmt() -> impl Strategy<Value = Stmt> {
    let leaf = prop_oneof![
        Just(Stmt::new(StmtKind::Compute { cost: Expr::Int(1) })),
        Just(Stmt::new(StmtKind::Checkpoint { label: None })),
        Just(Stmt::new(StmtKind::Send {
            dest: Expr::Int(0),
            size_bits: Expr::Int(8)
        })),
        Just(Stmt::new(StmtKind::Recv {
            src: acfc_mpsl::RecvSrc::Any
        })),
    ];
    leaf.prop_recursive(4, 40, 4, |inner| {
        prop_oneof![
            (
                prop::collection::vec(inner.clone(), 0..4),
                prop::collection::vec(inner.clone(), 0..4)
            )
                .prop_map(|(t, e)| Stmt::new(StmtKind::If {
                    cond: Expr::Rank,
                    then_branch: t,
                    else_branch: e
                })),
            prop::collection::vec(inner.clone(), 0..4).prop_map(|body| Stmt::new(
                StmtKind::While {
                    cond: Expr::Var("i".into()),
                    body
                }
            )),
            (prop::collection::vec(inner, 1..4)).prop_map(|body| Stmt::new(StmtKind::For {
                var: "i".into(),
                from: Expr::Int(0),
                to: Expr::Int(3),
                body
            })),
        ]
    })
}

fn arb_cfg() -> impl Strategy<Value = Cfg> {
    prop::collection::vec(arb_stmt(), 0..8).prop_map(|body| {
        let p = Program::new("g", vec![], vec!["i".into()], body);
        build_cfg(&p).0
    })
}

fn adjacency(cfg: &Cfg) -> Vec<Vec<usize>> {
    let mut adj = vec![Vec::new(); cfg.len()];
    for (a, b, _) in cfg.edges() {
        adj[a.index()].push(b.index());
    }
    adj
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        .. ProptestConfig::default()
    })]

    #[test]
    fn construction_invariants_hold(cfg in arb_cfg()) {
        prop_assert_eq!(cfg.check_invariants(), Ok(()));
        // Exit reachable from entry.
        let adj = adjacency(&cfg);
        let r = Reach::compute(&adj);
        prop_assert!(r.reachable_or_eq(cfg.entry().index(), cfg.exit().index()));
    }

    #[test]
    fn fast_dominators_match_naive(cfg in arb_cfg()) {
        let fast = dominators(&cfg);
        let slow = dominators_naive(&cfg);
        for a in cfg.node_ids() {
            for b in cfg.node_ids() {
                prop_assert_eq!(
                    fast.dominates(a, b),
                    slow[b.index()][a.index()],
                    "dominates({},{})", a, b
                );
            }
        }
    }

    #[test]
    fn back_edge_targets_are_loop_headers_dominating_their_latch(cfg in arb_cfg()) {
        let dom = dominators(&cfg);
        let li = loop_info(&cfg);
        for &(latch, header, _) in &li.back_edges {
            prop_assert!(dom.dominates(header, latch));
        }
        for l in &li.loops {
            prop_assert!(l.contains(l.header));
            prop_assert!(l.contains(l.back_edge.0));
            // Every member is dominated by the header.
            for m in cfg.node_ids().filter(|&m| l.contains(m)) {
                prop_assert!(dom.dominates(l.header, m));
            }
        }
    }

    #[test]
    fn reach_agrees_with_path_finding(cfg in arb_cfg()) {
        let adj = adjacency(&cfg);
        let r = Reach::compute(&adj);
        for a in cfg.node_ids() {
            for b in cfg.node_ids() {
                let has_path = find_path(&adj, a.index(), b.index(), &|_, _| true).is_some();
                prop_assert_eq!(r.reachable(a.index(), b.index()), has_path,
                    "reach vs path at ({},{})", a, b);
            }
        }
    }

    #[test]
    fn dominator_chains_are_consistent(cfg in arb_cfg()) {
        let dom = dominators(&cfg);
        for n in cfg.node_ids() {
            let chain = dom.chain(n);
            if chain.is_empty() {
                continue;
            }
            prop_assert_eq!(chain[0], cfg.entry());
            prop_assert_eq!(*chain.last().unwrap(), n);
            for w in chain.windows(2) {
                prop_assert_eq!(dom.idom(w[1]), Some(w[0]));
                prop_assert!(dom.dominates(w[0], w[1]));
            }
        }
    }

    #[test]
    fn checkpoint_nodes_match_statement_count(stmts in prop::collection::vec(arb_stmt(), 0..8)) {
        let p = Program::new("g", vec![], vec!["i".into()], stmts);
        let (cfg, lowered) = build_cfg(&p);
        prop_assert_eq!(cfg.checkpoint_nodes().len(), lowered.checkpoint_ids().len());
        prop_assert_eq!(cfg.send_nodes().len(), lowered.send_ids().len());
        prop_assert_eq!(cfg.recv_nodes().len(), lowered.recv_ids().len());
    }
}

/// The helper `NodeId` ordering is stable under arena growth.
#[test]
fn node_ids_are_ordered_by_insertion() {
    let p = Program::new(
        "g",
        vec![],
        vec![],
        vec![
            Stmt::new(StmtKind::Compute { cost: Expr::Int(1) }),
            Stmt::new(StmtKind::Checkpoint { label: None }),
        ],
    );
    let (cfg, _) = build_cfg(&p);
    let ids: Vec<NodeId> = cfg.node_ids().collect();
    let mut sorted = ids.clone();
    sorted.sort();
    assert_eq!(ids, sorted);
}
