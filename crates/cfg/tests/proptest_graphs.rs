//! Property tests for the CFG machinery on randomly generated
//! structured programs: the CHK dominator algorithm against the naive
//! fixpoint, loop/back-edge invariants, reachability against path
//! finding, SCC-condensed closure against the per-node BFS oracle, and
//! structural invariants of construction.

use acfc_cfg::{build_cfg, dominators, dominators_naive, find_path, loop_info, Cfg, NodeId, Reach};
use acfc_mpsl::{Expr, Program, Stmt, StmtKind};
use acfc_util::check::{forall, Gen};

/// Random structured statement trees (control flow only; the leaf
/// statements don't matter for graph algorithms).
fn arb_stmt(g: &mut Gen, depth: u32) -> Stmt {
    let leaf = |g: &mut Gen| match g.usize_in(0, 4) {
        0 => Stmt::new(StmtKind::Compute { cost: Expr::Int(1) }),
        1 => Stmt::new(StmtKind::Checkpoint { label: None }),
        2 => Stmt::new(StmtKind::Send {
            dest: Expr::Int(0),
            size_bits: Expr::Int(8),
        }),
        _ => Stmt::new(StmtKind::Recv {
            src: acfc_mpsl::RecvSrc::Any,
        }),
    };
    if depth == 0 || g.prob(0.4) {
        return leaf(g);
    }
    match g.usize_in(0, 3) {
        0 => Stmt::new(StmtKind::If {
            cond: Expr::Rank,
            then_branch: g.vec_of(0, 4, |g| arb_stmt(g, depth - 1)),
            else_branch: g.vec_of(0, 4, |g| arb_stmt(g, depth - 1)),
        }),
        1 => Stmt::new(StmtKind::While {
            cond: Expr::Var("i".into()),
            body: g.vec_of(0, 4, |g| arb_stmt(g, depth - 1)),
        }),
        _ => Stmt::new(StmtKind::For {
            var: "i".into(),
            from: Expr::Int(0),
            to: Expr::Int(3),
            body: g.vec_of(1, 4, |g| arb_stmt(g, depth - 1)),
        }),
    }
}

fn arb_body(g: &mut Gen) -> Vec<Stmt> {
    g.vec_of(0, 8, |g| arb_stmt(g, 4))
}

fn arb_cfg(g: &mut Gen) -> Cfg {
    let p = Program::new("g", vec![], vec!["i".into()], arb_body(g));
    build_cfg(&p).0
}

fn adjacency(cfg: &Cfg) -> Vec<Vec<usize>> {
    let mut adj = vec![Vec::new(); cfg.len()];
    for (a, b, _) in cfg.edges() {
        adj[a.index()].push(b.index());
    }
    adj
}

#[test]
fn construction_invariants_hold() {
    forall("construction_invariants_hold", 64, |g| {
        let cfg = arb_cfg(g);
        assert_eq!(cfg.check_invariants(), Ok(()));
        // Exit reachable from entry.
        let adj = adjacency(&cfg);
        let r = Reach::compute(&adj);
        assert!(r.reachable_or_eq(cfg.entry().index(), cfg.exit().index()));
    });
}

#[test]
fn fast_dominators_match_naive() {
    forall("fast_dominators_match_naive", 64, |g| {
        let cfg = arb_cfg(g);
        let fast = dominators(&cfg);
        let slow = dominators_naive(&cfg);
        for a in cfg.node_ids() {
            for b in cfg.node_ids() {
                assert_eq!(
                    fast.dominates(a, b),
                    slow[b.index()][a.index()],
                    "dominates({a},{b})"
                );
            }
        }
    });
}

#[test]
fn back_edge_targets_are_loop_headers_dominating_their_latch() {
    forall(
        "back_edge_targets_are_loop_headers_dominating_their_latch",
        64,
        |g| {
            let cfg = arb_cfg(g);
            let dom = dominators(&cfg);
            let li = loop_info(&cfg);
            for &(latch, header, _) in &li.back_edges {
                assert!(dom.dominates(header, latch));
            }
            for l in &li.loops {
                assert!(l.contains(l.header));
                assert!(l.contains(l.back_edge.0));
                // Every member is dominated by the header.
                for m in cfg.node_ids().filter(|&m| l.contains(m)) {
                    assert!(dom.dominates(l.header, m));
                }
            }
        },
    );
}

#[test]
fn reach_agrees_with_path_finding() {
    forall("reach_agrees_with_path_finding", 64, |g| {
        let cfg = arb_cfg(g);
        let adj = adjacency(&cfg);
        let r = Reach::compute(&adj);
        for a in cfg.node_ids() {
            for b in cfg.node_ids() {
                let has_path = find_path(&adj, a.index(), b.index(), &|_, _| true).is_some();
                assert_eq!(
                    r.reachable(a.index(), b.index()),
                    has_path,
                    "reach vs path at ({a},{b})"
                );
            }
        }
    });
}

/// The SCC-condensed closure equals the per-node BFS oracle, on raw
/// random digraphs (not just CFG-shaped ones): arbitrary density, self
/// loops, unreachable parts, multi-edges.
#[test]
fn condensed_closure_matches_naive_bfs_on_random_digraphs() {
    forall("condensed_closure_matches_naive_bfs", 128, |g| {
        let n = g.usize_in(1, 40);
        let mut succs = vec![Vec::new(); n];
        let density = g.f64_in(0.02, 0.35);
        for row in &mut succs {
            for b in 0..n {
                if g.prob(density) {
                    row.push(b);
                }
            }
            // Occasional duplicate edge to exercise multi-edge handling.
            if g.prob(0.1) && !row.is_empty() {
                let dup = row[0];
                row.push(dup);
            }
        }
        let condensed = Reach::compute(&succs);
        let naive = Reach::compute_naive(&succs);
        assert_eq!(condensed.len(), naive.len());
        for i in 0..n {
            assert_eq!(condensed.row(i), naive.row(i), "row {i} differs (n={n})");
        }
    });
}

#[test]
fn dominator_chains_are_consistent() {
    forall("dominator_chains_are_consistent", 64, |g| {
        let cfg = arb_cfg(g);
        let dom = dominators(&cfg);
        for n in cfg.node_ids() {
            let chain = dom.chain(n);
            if chain.is_empty() {
                continue;
            }
            assert_eq!(chain[0], cfg.entry());
            assert_eq!(*chain.last().unwrap(), n);
            for w in chain.windows(2) {
                assert_eq!(dom.idom(w[1]), Some(w[0]));
                assert!(dom.dominates(w[0], w[1]));
            }
        }
    });
}

#[test]
fn checkpoint_nodes_match_statement_count() {
    forall("checkpoint_nodes_match_statement_count", 64, |g| {
        let p = Program::new("g", vec![], vec!["i".into()], arb_body(g));
        let (cfg, lowered) = build_cfg(&p);
        assert_eq!(cfg.checkpoint_nodes().len(), lowered.checkpoint_ids().len());
        assert_eq!(cfg.send_nodes().len(), lowered.send_ids().len());
        assert_eq!(cfg.recv_nodes().len(), lowered.recv_ids().len());
    });
}

/// The helper `NodeId` ordering is stable under arena growth.
#[test]
fn node_ids_are_ordered_by_insertion() {
    let p = Program::new(
        "g",
        vec![],
        vec![],
        vec![
            Stmt::new(StmtKind::Compute { cost: Expr::Int(1) }),
            Stmt::new(StmtKind::Checkpoint { label: None }),
        ],
    );
    let (cfg, _) = build_cfg(&p);
    let ids: Vec<NodeId> = cfg.node_ids().collect();
    let mut sorted = ids.clone();
    sorted.sort();
    assert_eq!(ids, sorted);
}
