//! Graphviz (DOT) export of CFGs.
//!
//! The rendering mirrors the paper's figures: rectangles for statements,
//! diamonds for branch nodes, double circles for checkpoints, and dashed
//! arrows for message edges (when the caller supplies them — the
//! extended-CFG exporter in `acfc-core` does).

use crate::graph::{Cfg, EdgeLabel, NodeId, NodeKind};
use acfc_mpsl::{expr_to_string, RecvSrc};
use std::fmt::Write;

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Human-readable label for a node.
pub fn node_label(cfg: &Cfg, id: NodeId) -> String {
    match &cfg.node(id).kind {
        NodeKind::Entry => "ENTRY".to_string(),
        NodeKind::Exit => "EXIT".to_string(),
        NodeKind::Branch { cond } => format!("if {}", expr_to_string(cond)),
        NodeKind::Join => "join".to_string(),
        NodeKind::Send { dest, .. } => format!("send to {}", expr_to_string(dest)),
        NodeKind::Recv { src } => match src {
            RecvSrc::Any => "recv from any".to_string(),
            RecvSrc::Rank(e) => format!("recv from {}", expr_to_string(e)),
        },
        NodeKind::Checkpoint { label } => match label {
            Some(l) => format!("chkpt \"{l}\""),
            None => "chkpt".to_string(),
        },
        NodeKind::Compute { cost } => format!("compute {}", expr_to_string(cost)),
        NodeKind::Assign { var, value } => format!("{var} := {}", expr_to_string(value)),
    }
}

/// Renders `cfg` as DOT, with optional extra (message) edges drawn
/// dashed. `extra_edges` pairs are `(send_node, recv_node)`.
pub fn to_dot(cfg: &Cfg, extra_edges: &[(NodeId, NodeId)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(cfg.name()));
    let _ = writeln!(out, "  node [fontname=\"Helvetica\"];");
    for id in cfg.node_ids() {
        // Skip fully disconnected nodes (e.g. checkpoints that Phase III
        // moved away) except entry/exit.
        let kind = &cfg.node(id).kind;
        let connected = !cfg.succs(id).is_empty()
            || !cfg.preds(id).is_empty()
            || matches!(kind, NodeKind::Entry | NodeKind::Exit);
        if !connected {
            continue;
        }
        let shape = match kind {
            NodeKind::Entry | NodeKind::Exit => "oval",
            NodeKind::Branch { .. } => "diamond",
            NodeKind::Checkpoint { .. } => "doublecircle",
            NodeKind::Join => "point",
            _ => "box",
        };
        let _ = writeln!(
            out,
            "  {id} [label=\"{}\", shape={shape}];",
            escape(&node_label(cfg, id))
        );
    }
    for (from, to, label) in cfg.edges() {
        let attr = match label {
            EdgeLabel::Seq => String::new(),
            EdgeLabel::True => " [label=\"T\"]".to_string(),
            EdgeLabel::False => " [label=\"F\"]".to_string(),
        };
        let _ = writeln!(out, "  {from} -> {to}{attr};");
    }
    for &(s, r) in extra_edges {
        let _ = writeln!(out, "  {s} -> {r} [style=dashed, color=gray40];");
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_cfg;
    use acfc_mpsl::parse;

    #[test]
    fn dot_contains_all_connected_nodes_and_edges() {
        let (cfg, _) = build_cfg(
            &parse("program t; if rank == 0 { checkpoint; } else { compute 1; }").unwrap(),
        );
        let dot = to_dot(&cfg, &[]);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("ENTRY"));
        assert!(dot.contains("EXIT"));
        assert!(dot.contains("chkpt"));
        assert!(dot.contains("diamond"));
        assert!(dot.contains("label=\"T\""));
        assert!(dot.contains("label=\"F\""));
        // One line per edge.
        let arrow_lines = dot.lines().filter(|l| l.contains("->")).count();
        assert_eq!(arrow_lines, cfg.edge_count());
    }

    #[test]
    fn message_edges_render_dashed() {
        let (cfg, _) = build_cfg(&parse("program t; send to 1; recv from 0;").unwrap());
        let s = cfg.send_nodes()[0];
        let r = cfg.recv_nodes()[0];
        let dot = to_dot(&cfg, &[(s, r)]);
        assert!(dot.contains("style=dashed"));
    }

    #[test]
    fn labels_are_escaped() {
        let (cfg, _) = build_cfg(&parse("program t; checkpoint \"a label\";").unwrap());
        let dot = to_dot(&cfg, &[]);
        assert!(dot.contains("chkpt \\\"a label\\\""));
    }
}
