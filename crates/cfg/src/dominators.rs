//! Dominator computation.
//!
//! §2 of the paper: *a node `a` dominates `b` if every path from the entry
//! node to `b` includes `a`*; backward edges and loops are defined through
//! dominance. We implement the Cooper–Harvey–Kennedy iterative algorithm
//! over reverse postorder, plus a naive dataflow fixpoint used as a test
//! oracle.

use crate::dfs::{dfs, DfsOrders};
use crate::graph::{Cfg, NodeId};

/// The dominator tree of a [`Cfg`] (rooted at entry).
#[derive(Debug, Clone)]
pub struct Dominators {
    /// `idom[n]` is the immediate dominator of node `n`; entry maps to
    /// itself; unreachable nodes map to `None`.
    idom: Vec<Option<NodeId>>,
    entry: NodeId,
}

impl Dominators {
    /// Immediate dominator of `n` (`None` for unreachable nodes; the
    /// entry node is its own immediate dominator).
    pub fn idom(&self, n: NodeId) -> Option<NodeId> {
        self.idom[n.index()]
    }

    /// `true` iff `a` dominates `b` (every node dominates itself).
    pub fn dominates(&self, a: NodeId, b: NodeId) -> bool {
        if self.idom[b.index()].is_none() {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if cur == self.entry {
                return false;
            }
            match self.idom[cur.index()] {
                Some(next) => cur = next,
                None => return false,
            }
        }
    }

    /// The dominator chain of `n` from entry down to `n` itself
    /// (inclusive); empty for unreachable nodes.
    ///
    /// Algorithm 3.2 walks this chain when looking for the edge
    /// `⟨a, b⟩` to move a checkpoint onto.
    pub fn chain(&self, n: NodeId) -> Vec<NodeId> {
        if self.idom[n.index()].is_none() {
            return Vec::new();
        }
        let mut chain = vec![n];
        let mut cur = n;
        while cur != self.entry {
            cur = self.idom[cur.index()].expect("reachable node chain");
            chain.push(cur);
        }
        chain.reverse();
        chain
    }
}

/// Computes the dominator tree with the Cooper–Harvey–Kennedy algorithm.
pub fn dominators(cfg: &Cfg) -> Dominators {
    let orders = dfs(cfg);
    dominators_with(cfg, &orders)
}

/// Same as [`dominators`], reusing precomputed DFS orders.
pub fn dominators_with(cfg: &Cfg, orders: &DfsOrders) -> Dominators {
    let n = cfg.len();
    let rpo = orders.reverse_postorder();
    let entry = cfg.entry();
    let mut idom: Vec<Option<NodeId>> = vec![None; n];
    idom[entry.index()] = Some(entry);

    let intersect = |idom: &[Option<NodeId>], orders: &DfsOrders, mut a: NodeId, mut b: NodeId| {
        let num = |x: NodeId| orders.rpo_index[x.index()].expect("reachable");
        while a != b {
            while num(a) > num(b) {
                a = idom[a.index()].expect("processed");
            }
            while num(b) > num(a) {
                b = idom[b.index()].expect("processed");
            }
        }
        a
    };

    let mut changed = true;
    while changed {
        changed = false;
        for &node in rpo.iter().skip(1) {
            // First processed predecessor.
            let mut new_idom: Option<NodeId> = None;
            for &(p, _) in cfg.preds(node) {
                if !orders.is_reachable(p) {
                    continue;
                }
                if idom[p.index()].is_some() {
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, orders, p, cur),
                    });
                }
            }
            if let Some(ni) = new_idom {
                if idom[node.index()] != Some(ni) {
                    idom[node.index()] = Some(ni);
                    changed = true;
                }
            }
        }
    }
    Dominators { idom, entry }
}

/// Naive O(V·E·V) dominator computation by dataflow fixpoint:
/// `dom(n) = {n} ∪ ⋂_{p∈preds(n)} dom(p)`. Exposed for use as a test
/// oracle against [`dominators`].
pub fn dominators_naive(cfg: &Cfg) -> Vec<Vec<bool>> {
    let n = cfg.len();
    let orders = dfs(cfg);
    let mut dom = vec![vec![true; n]; n];
    for (i, row) in dom.iter_mut().enumerate() {
        if !orders.is_reachable(NodeId(i as u32)) {
            row.iter_mut().for_each(|b| *b = false);
        }
    }
    let e = cfg.entry().index();
    dom[e] = vec![false; n];
    dom[e][e] = true;
    let mut changed = true;
    while changed {
        changed = false;
        for id in cfg.node_ids() {
            let i = id.index();
            if i == e || !orders.is_reachable(id) {
                continue;
            }
            let mut new_row = vec![true; n];
            let mut any_pred = false;
            for &(p, _) in cfg.preds(id) {
                if !orders.is_reachable(p) {
                    continue;
                }
                any_pred = true;
                for (k, slot) in new_row.iter_mut().enumerate() {
                    *slot = *slot && dom[p.index()][k];
                }
            }
            if !any_pred {
                new_row = vec![false; n];
            }
            new_row[i] = true;
            if new_row != dom[i] {
                dom[i] = new_row;
                changed = true;
            }
        }
    }
    dom
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_cfg;
    use acfc_mpsl::parse;

    fn agree(src: &str) {
        let (cfg, _) = build_cfg(&parse(src).unwrap());
        let fast = dominators(&cfg);
        let slow = dominators_naive(&cfg);
        for a in cfg.node_ids() {
            for b in cfg.node_ids() {
                assert_eq!(
                    fast.dominates(a, b),
                    slow[b.index()][a.index()],
                    "dominates({a},{b}) disagrees in {src}"
                );
            }
        }
    }

    #[test]
    fn fast_matches_naive_on_straight_line() {
        agree("program t; compute 1; checkpoint; compute 2;");
    }

    #[test]
    fn fast_matches_naive_on_branching() {
        agree("program t; if rank == 0 { compute 1; } else { checkpoint; compute 2; }");
    }

    #[test]
    fn fast_matches_naive_on_loops() {
        agree(
            "program t; var i, j;
             while i < 3 {
               if rank % 2 == 0 { send to rank + 1; } else { recv from rank - 1; }
               while j < 2 { j := j + 1; }
               i := i + 1;
             }",
        );
    }

    #[test]
    fn entry_dominates_everything() {
        let (cfg, _) = build_cfg(&acfc_mpsl::programs::jacobi_odd_even(3));
        let dom = dominators(&cfg);
        for id in cfg.node_ids() {
            assert!(dom.dominates(cfg.entry(), id));
        }
    }

    #[test]
    fn loop_header_dominates_body() {
        let (cfg, _) =
            build_cfg(&parse("program t; var i; while i < 3 { checkpoint; i := i + 1; }").unwrap());
        let dom = dominators(&cfg);
        let header = cfg.branch_nodes()[0];
        let chk = cfg.checkpoint_nodes()[0];
        assert!(dom.dominates(header, chk));
        assert!(!dom.dominates(chk, header));
    }

    #[test]
    fn branch_arms_do_not_dominate_join() {
        let (cfg, _) = build_cfg(
            &parse("program t; if rank == 0 { compute 1; } else { compute 2; } checkpoint;")
                .unwrap(),
        );
        let dom = dominators(&cfg);
        let chk = cfg.checkpoint_nodes()[0];
        let b = cfg.branch_nodes()[0];
        assert!(dom.dominates(b, chk));
        for c in cfg.nodes_where(|k| matches!(k, crate::graph::NodeKind::Compute { .. })) {
            assert!(!dom.dominates(c, chk));
        }
    }

    #[test]
    fn chain_runs_entry_to_node() {
        let (cfg, _) = build_cfg(&parse("program t; compute 1; checkpoint;").unwrap());
        let dom = dominators(&cfg);
        let chk = cfg.checkpoint_nodes()[0];
        let chain = dom.chain(chk);
        assert_eq!(chain.first(), Some(&cfg.entry()));
        assert_eq!(chain.last(), Some(&chk));
        // Every adjacent pair in the chain is (idom, node).
        for w in chain.windows(2) {
            assert_eq!(dom.idom(w[1]), Some(w[0]));
        }
    }
}
