//! Depth-first traversal orders over a [`Cfg`].

use crate::graph::{Cfg, NodeId};

/// The classic DFS orders, computed from the entry node.
#[derive(Debug, Clone)]
pub struct DfsOrders {
    /// Nodes in first-visit (pre-) order.
    pub preorder: Vec<NodeId>,
    /// Nodes in finish (post-) order.
    pub postorder: Vec<NodeId>,
    /// `rpo_index[n] = Some(i)` iff node `n` is the `i`-th node of the
    /// reverse postorder; `None` for nodes unreachable from entry.
    pub rpo_index: Vec<Option<u32>>,
}

impl DfsOrders {
    /// Reverse postorder (the order dominator computation iterates in).
    pub fn reverse_postorder(&self) -> Vec<NodeId> {
        self.postorder.iter().rev().copied().collect()
    }

    /// `true` if `n` is reachable from entry.
    pub fn is_reachable(&self, n: NodeId) -> bool {
        self.rpo_index[n.index()].is_some()
    }
}

/// Runs an iterative DFS from the entry node, following successor edges
/// in insertion order.
pub fn dfs(cfg: &Cfg) -> DfsOrders {
    let n = cfg.len();
    let mut preorder = Vec::with_capacity(n);
    let mut postorder = Vec::with_capacity(n);
    let mut state = vec![0u8; n]; // 0 = unvisited, 1 = on stack, 2 = done
                                  // Each stack frame: (node, next successor index to try).
    let mut stack: Vec<(NodeId, usize)> = vec![(cfg.entry(), 0)];
    state[cfg.entry().index()] = 1;
    preorder.push(cfg.entry());
    while let Some(&mut (node, ref mut next)) = stack.last_mut() {
        let succs = cfg.succs(node);
        if *next < succs.len() {
            let (to, _) = succs[*next];
            *next += 1;
            if state[to.index()] == 0 {
                state[to.index()] = 1;
                preorder.push(to);
                stack.push((to, 0));
            }
        } else {
            state[node.index()] = 2;
            postorder.push(node);
            stack.pop();
        }
    }
    let mut rpo_index = vec![None; n];
    for (i, node) in postorder.iter().rev().enumerate() {
        rpo_index[node.index()] = Some(i as u32);
    }
    DfsOrders {
        preorder,
        postorder,
        rpo_index,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_cfg;
    use acfc_mpsl::parse;

    #[test]
    fn visits_all_reachable_nodes() {
        let (cfg, _) = build_cfg(
            &parse("program t; var i; while i < 3 { if rank == 0 { compute 1; } i := i + 1; }")
                .unwrap(),
        );
        let orders = dfs(&cfg);
        assert_eq!(orders.preorder.len(), cfg.len());
        assert_eq!(orders.postorder.len(), cfg.len());
        for id in cfg.node_ids() {
            assert!(orders.is_reachable(id), "{id} unreachable");
        }
    }

    #[test]
    fn entry_first_in_preorder_and_rpo() {
        let (cfg, _) = build_cfg(&parse("program t; compute 1;").unwrap());
        let orders = dfs(&cfg);
        assert_eq!(orders.preorder[0], cfg.entry());
        assert_eq!(orders.reverse_postorder()[0], cfg.entry());
        assert_eq!(orders.rpo_index[cfg.entry().index()], Some(0));
    }

    #[test]
    fn postorder_finishes_exit_before_entry() {
        let (cfg, _) = build_cfg(&parse("program t; compute 1;").unwrap());
        let orders = dfs(&cfg);
        let pos = |n: NodeId| orders.postorder.iter().position(|&x| x == n).unwrap();
        assert!(pos(cfg.exit()) < pos(cfg.entry()));
    }

    #[test]
    fn disconnected_nodes_are_unreachable() {
        let mut cfg = crate::graph::Cfg::new("t");
        cfg.add_edge(cfg.entry(), cfg.exit(), crate::graph::EdgeLabel::Seq);
        let island = cfg.add_node(crate::graph::NodeKind::Join, None);
        let orders = dfs(&cfg);
        assert!(!orders.is_reachable(island));
        assert_eq!(orders.preorder.len(), 2);
    }
}
