//! # Control-flow-graph machinery for ACFC
//!
//! §2 of *Agbaria & Sanders (ICDCS 2005)* defines the program
//! representation the offline analysis operates on: a control flow graph
//! with `entry`/`exit` nodes, branch and join nodes, and explicit nodes
//! for `send`, `receive`, and `checkpoint` statements; loops are
//! identified through dominators and backward edges. This crate provides
//! exactly that machinery:
//!
//! * [`Cfg`] — the graph arena ([`build_cfg`] constructs it from an MPSL
//!   program, lowering collectives first),
//! * [`dfs()`] / [`dominators()`] / [`loop_info`] — traversal orders, the
//!   dominator tree, backward edges, and natural loops,
//! * [`Reach`] / [`find_path`] — reachability closure and path finding
//!   over arbitrary adjacency lists (reused by the extended CFG in
//!   `acfc-core`),
//! * [`to_dot`] — Graphviz export in the style of the paper's figures.
//!
//! ```
//! use acfc_cfg::{build_cfg, dominators, loop_info};
//!
//! let program = acfc_mpsl::programs::jacobi(10);
//! let (cfg, _lowered) = build_cfg(&program);
//! let dom = dominators(&cfg);
//! let loops = loop_info(&cfg);
//! // The Jacobi checkpoint lives inside the sweep loop, whose header
//! // dominates it.
//! let chk = cfg.checkpoint_nodes()[0];
//! assert!(loops.in_loop(chk));
//! assert!(dom.dominates(loops.loops[0].header, chk));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod build;
pub mod dfs;
pub mod dominators;
pub mod dot;
pub mod graph;
pub mod loops;
pub mod paths;
pub mod reach;

pub use build::{build_cfg, build_cfg_prelowered};
pub use dfs::{dfs, DfsOrders};
pub use dominators::{dominators, dominators_naive, dominators_with, Dominators};
pub use dot::{node_label, to_dot};
pub use graph::{Cfg, EdgeLabel, Node, NodeId, NodeKind};
pub use loops::{loop_info, loop_info_with, LoopInfo, NaturalLoop};
pub use paths::{enumerate_simple_paths, find_path};
pub use reach::Reach;
