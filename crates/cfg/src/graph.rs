//! The control-flow-graph data structure.
//!
//! §2 of the paper: the CFG of a message-passing program is a directed
//! graph with nodes for loops and conditions **plus** nodes for the
//! `send`, `receive`, and `checkpoint` statements, and two distinguished
//! `entry` and `exit` nodes. This module stores exactly that, as an
//! index-based arena (stable [`NodeId`]s survive edits, which Phase III
//! relies on when it moves checkpoint nodes).

use acfc_mpsl::{Expr, RecvSrc, StmtId};
use std::fmt;

/// Index of a node in a [`Cfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node's index as a `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// What a CFG node represents.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeKind {
    /// The unique start node.
    Entry,
    /// The unique termination node.
    Exit,
    /// A condition expression (from `if`, `while`, or a desugared `for`).
    /// Out-edges are labelled [`EdgeLabel::True`] / [`EdgeLabel::False`].
    Branch {
        /// The condition; nonzero means the `True` edge is taken.
        cond: Expr,
    },
    /// A merge point after an `if`.
    Join,
    /// A `send` statement.
    Send {
        /// Destination rank expression.
        dest: Expr,
        /// Message size in bits.
        size_bits: Expr,
    },
    /// A `recv` statement.
    Recv {
        /// Source specification.
        src: RecvSrc,
    },
    /// A `checkpoint` statement.
    Checkpoint {
        /// Optional label from the source.
        label: Option<String>,
    },
    /// A `compute` statement.
    Compute {
        /// Cost expression (simulated milliseconds).
        cost: Expr,
    },
    /// An assignment (including the init/increment of desugared `for`s).
    Assign {
        /// Target variable.
        var: String,
        /// Right-hand side.
        value: Expr,
    },
}

impl NodeKind {
    /// Short tag used by `Debug`/DOT output.
    pub fn tag(&self) -> &'static str {
        match self {
            NodeKind::Entry => "entry",
            NodeKind::Exit => "exit",
            NodeKind::Branch { .. } => "branch",
            NodeKind::Join => "join",
            NodeKind::Send { .. } => "send",
            NodeKind::Recv { .. } => "recv",
            NodeKind::Checkpoint { .. } => "chkpt",
            NodeKind::Compute { .. } => "compute",
            NodeKind::Assign { .. } => "assign",
        }
    }
}

/// A CFG node: its kind plus the statement it came from (if any).
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// What the node represents.
    pub kind: NodeKind,
    /// The originating statement, when the node maps 1:1 to source.
    /// Synthetic nodes (entry/exit/join, `for` init/increment) have `None`.
    pub stmt: Option<StmtId>,
}

/// Label on a CFG edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeLabel {
    /// Ordinary fallthrough.
    Seq,
    /// Branch taken.
    True,
    /// Branch not taken.
    False,
}

/// A control-flow graph.
///
/// Nodes are stored in an arena; edges as forward and reverse adjacency
/// lists kept in sync by [`Cfg::add_edge`] / [`Cfg::remove_edge`].
#[derive(Debug, Clone)]
pub struct Cfg {
    name: String,
    nodes: Vec<Node>,
    succs: Vec<Vec<(NodeId, EdgeLabel)>>,
    preds: Vec<Vec<(NodeId, EdgeLabel)>>,
    entry: NodeId,
    exit: NodeId,
}

impl Cfg {
    /// Creates an empty CFG containing only `entry` and `exit` nodes.
    pub fn new(name: impl Into<String>) -> Cfg {
        let mut cfg = Cfg {
            name: name.into(),
            nodes: Vec::new(),
            succs: Vec::new(),
            preds: Vec::new(),
            entry: NodeId(0),
            exit: NodeId(0),
        };
        cfg.entry = cfg.add_node(NodeKind::Entry, None);
        cfg.exit = cfg.add_node(NodeKind::Exit, None);
        cfg
    }

    /// The program name this CFG was built from.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The entry node.
    pub fn entry(&self) -> NodeId {
        self.entry
    }

    /// The exit node.
    pub fn exit(&self) -> NodeId {
        self.exit
    }

    /// Number of nodes (including entry/exit).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the graph has only entry and exit.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 2
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, kind: NodeKind, stmt: Option<StmtId>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node { kind, stmt });
        self.succs.push(Vec::new());
        self.preds.push(Vec::new());
        id
    }

    /// Adds a labelled edge.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range or the identical labelled
    /// edge already exists (CFGs have no parallel identical edges).
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, label: EdgeLabel) {
        assert!(from.index() < self.nodes.len(), "bad edge source");
        assert!(to.index() < self.nodes.len(), "bad edge target");
        assert!(
            !self.succs[from.index()].contains(&(to, label)),
            "duplicate edge {from} -> {to}"
        );
        self.succs[from.index()].push((to, label));
        self.preds[to.index()].push((from, label));
    }

    /// Removes the edge `from → to` with the given label (if present);
    /// returns whether an edge was removed.
    pub fn remove_edge(&mut self, from: NodeId, to: NodeId, label: EdgeLabel) -> bool {
        let s = &mut self.succs[from.index()];
        let before = s.len();
        s.retain(|&(t, l)| !(t == to && l == label));
        let removed = s.len() != before;
        if removed {
            self.preds[to.index()].retain(|&(f, l)| !(f == from && l == label));
        }
        removed
    }

    /// The node data for `id`.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Mutable node data for `id`.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.index()]
    }

    /// Successor edges of `id`.
    pub fn succs(&self, id: NodeId) -> &[(NodeId, EdgeLabel)] {
        &self.succs[id.index()]
    }

    /// Predecessor edges of `id`.
    pub fn preds(&self, id: NodeId) -> &[(NodeId, EdgeLabel)] {
        &self.preds[id.index()]
    }

    /// Iterates over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// All nodes of a given tag, in id order.
    pub fn nodes_where(&self, pred: impl Fn(&NodeKind) -> bool) -> Vec<NodeId> {
        self.node_ids()
            .filter(|id| pred(&self.node(*id).kind))
            .collect()
    }

    /// All checkpoint nodes, in id order.
    pub fn checkpoint_nodes(&self) -> Vec<NodeId> {
        self.nodes_where(|k| matches!(k, NodeKind::Checkpoint { .. }))
    }

    /// All send nodes, in id order.
    pub fn send_nodes(&self) -> Vec<NodeId> {
        self.nodes_where(|k| matches!(k, NodeKind::Send { .. }))
    }

    /// All recv nodes, in id order.
    pub fn recv_nodes(&self) -> Vec<NodeId> {
        self.nodes_where(|k| matches!(k, NodeKind::Recv { .. }))
    }

    /// All branch nodes, in id order.
    pub fn branch_nodes(&self) -> Vec<NodeId> {
        self.nodes_where(|k| matches!(k, NodeKind::Branch { .. }))
    }

    /// A node is a *branch node* if it has more than one successor (§2).
    pub fn is_branch(&self, id: NodeId) -> bool {
        self.succs(id).len() > 1
    }

    /// A node is a *join node* if it has more than one predecessor (§2).
    pub fn is_join(&self, id: NodeId) -> bool {
        self.preds(id).len() > 1
    }

    /// Splices a new node onto the edge `from → to` (with label `label`),
    /// so that `from → new → to`; the incoming label is preserved and the
    /// outgoing edge is [`EdgeLabel::Seq`].
    ///
    /// This is the primitive Phase III uses to *move a checkpoint node*
    /// onto a dominating edge (Algorithm 3.2, Step 2).
    ///
    /// # Panics
    ///
    /// Panics if the edge does not exist.
    pub fn split_edge(
        &mut self,
        from: NodeId,
        to: NodeId,
        label: EdgeLabel,
        kind: NodeKind,
        stmt: Option<StmtId>,
    ) -> NodeId {
        assert!(
            self.succs(from).contains(&(to, label)),
            "split_edge: edge {from} -> {to} not present"
        );
        let mid = self.add_node(kind, stmt);
        self.remove_edge(from, to, label);
        self.add_edge(from, mid, label);
        self.add_edge(mid, to, EdgeLabel::Seq);
        mid
    }

    /// Removes a node that has exactly one predecessor and one successor
    /// by splicing its neighbours together (used when Phase III lifts a
    /// checkpoint node out of its old position).
    ///
    /// # Panics
    ///
    /// Panics if the node has other than exactly one in- and one out-edge,
    /// or is entry/exit.
    pub fn unlink_passthrough(&mut self, id: NodeId) {
        assert!(
            !matches!(self.node(id).kind, NodeKind::Entry | NodeKind::Exit),
            "cannot unlink entry/exit"
        );
        assert_eq!(self.preds(id).len(), 1, "unlink: node must have 1 pred");
        assert_eq!(self.succs(id).len(), 1, "unlink: node must have 1 succ");
        let (p, plabel) = self.preds(id)[0];
        let (s, _) = self.succs(id)[0];
        self.remove_edge(p, id, plabel);
        let (_, slabel) = self.succs(id)[0];
        self.remove_edge(id, s, slabel);
        // The node stays in the arena (ids are stable) but is now
        // disconnected; re-wire around it. A parallel edge may already
        // exist (e.g. empty if-branches), in which case we leave it be.
        if !self.succs(p).contains(&(s, plabel)) {
            self.add_edge(p, s, plabel);
        }
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.succs.iter().map(|v| v.len()).sum()
    }

    /// All edges as `(from, to, label)` triples.
    pub fn edges(&self) -> Vec<(NodeId, NodeId, EdgeLabel)> {
        let mut out = Vec::with_capacity(self.edge_count());
        for id in self.node_ids() {
            for &(to, label) in self.succs(id) {
                out.push((id, to, label));
            }
        }
        out
    }

    /// Checks structural invariants; returns a description of the first
    /// violation found, if any. Used by tests and debug assertions.
    pub fn check_invariants(&self) -> Result<(), String> {
        for id in self.node_ids() {
            for &(to, label) in self.succs(id) {
                if !self.preds(to).contains(&(id, label)) {
                    return Err(format!("succ edge {id}->{to} missing from preds"));
                }
            }
            for &(from, label) in self.preds(id) {
                if !self.succs(from).contains(&(id, label)) {
                    return Err(format!("pred edge {from}->{id} missing from succs"));
                }
            }
        }
        if !self.succs(self.exit).is_empty() {
            return Err("exit has successors".into());
        }
        if !self.preds(self.entry).is_empty() {
            return Err("entry has predecessors".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_has_entry_and_exit() {
        let cfg = Cfg::new("t");
        assert_eq!(cfg.len(), 2);
        assert!(cfg.is_empty());
        assert!(matches!(cfg.node(cfg.entry()).kind, NodeKind::Entry));
        assert!(matches!(cfg.node(cfg.exit()).kind, NodeKind::Exit));
    }

    #[test]
    fn add_and_remove_edges() {
        let mut cfg = Cfg::new("t");
        let a = cfg.add_node(NodeKind::Join, None);
        cfg.add_edge(cfg.entry(), a, EdgeLabel::Seq);
        cfg.add_edge(a, cfg.exit(), EdgeLabel::Seq);
        assert_eq!(cfg.edge_count(), 2);
        assert!(cfg.remove_edge(cfg.entry(), a, EdgeLabel::Seq));
        assert!(!cfg.remove_edge(cfg.entry(), a, EdgeLabel::Seq));
        assert_eq!(cfg.edge_count(), 1);
        cfg.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn duplicate_edge_panics() {
        let mut cfg = Cfg::new("t");
        let a = cfg.add_node(NodeKind::Join, None);
        cfg.add_edge(cfg.entry(), a, EdgeLabel::Seq);
        cfg.add_edge(cfg.entry(), a, EdgeLabel::Seq);
    }

    #[test]
    fn split_edge_inserts_between() {
        let mut cfg = Cfg::new("t");
        cfg.add_edge(cfg.entry(), cfg.exit(), EdgeLabel::Seq);
        let mid = cfg.split_edge(
            cfg.entry(),
            cfg.exit(),
            EdgeLabel::Seq,
            NodeKind::Checkpoint { label: None },
            None,
        );
        assert_eq!(cfg.succs(cfg.entry()), &[(mid, EdgeLabel::Seq)]);
        assert_eq!(cfg.succs(mid), &[(cfg.exit(), EdgeLabel::Seq)]);
        cfg.check_invariants().unwrap();
    }

    #[test]
    fn unlink_passthrough_splices() {
        let mut cfg = Cfg::new("t");
        let a = cfg.add_node(NodeKind::Compute { cost: Expr::Int(1) }, None);
        cfg.add_edge(cfg.entry(), a, EdgeLabel::Seq);
        cfg.add_edge(a, cfg.exit(), EdgeLabel::Seq);
        cfg.unlink_passthrough(a);
        assert!(cfg.succs(a).is_empty());
        assert!(cfg.preds(a).is_empty());
        assert_eq!(cfg.succs(cfg.entry()), &[(cfg.exit(), EdgeLabel::Seq)]);
        cfg.check_invariants().unwrap();
    }

    #[test]
    fn branch_and_join_classification() {
        let mut cfg = Cfg::new("t");
        let b = cfg.add_node(NodeKind::Branch { cond: Expr::Int(1) }, None);
        let j = cfg.add_node(NodeKind::Join, None);
        cfg.add_edge(cfg.entry(), b, EdgeLabel::Seq);
        cfg.add_edge(b, j, EdgeLabel::True);
        cfg.add_edge(b, j, EdgeLabel::False);
        cfg.add_edge(j, cfg.exit(), EdgeLabel::Seq);
        assert!(cfg.is_branch(b));
        assert!(cfg.is_join(j));
        assert!(!cfg.is_branch(j));
    }
}
