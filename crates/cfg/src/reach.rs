//! Reachability closure over arbitrary adjacency lists.
//!
//! Both Condition 1 (paths in the extended CFG `Ĝ`) and Algorithm 3.2
//! (`"no path from C_i^A to a"`) are reachability questions over graphs
//! that are *not* plain CFGs (they include message edges, or exclude
//! backward edges). This module therefore works on raw adjacency lists —
//! [`crate::graph::Cfg`] and the extended CFG both lower to that — with a
//! bitset transitive closure.

/// A dense reachability matrix: `reachable(a, b)` means there is a path
/// of length ≥ 1 from `a` to `b`.
#[derive(Debug, Clone)]
pub struct Reach {
    n: usize,
    words: usize,
    rows: Vec<u64>,
}

impl Reach {
    /// Computes the closure of the graph given as adjacency lists
    /// (`succs[i]` = successors of node `i`). Runs one BFS per node over
    /// bitset rows; O(V·(V+E)) worst case, fast in practice for the
    /// CFG sizes the analysis sees.
    pub fn compute(succs: &[Vec<usize>]) -> Reach {
        let n = succs.len();
        let words = n.div_ceil(64);
        let mut rows = vec![0u64; n * words];
        let mut stack = Vec::new();
        let mut seen = vec![false; n];
        for start in 0..n {
            seen.iter_mut().for_each(|b| *b = false);
            stack.clear();
            for &s in &succs[start] {
                if !seen[s] {
                    seen[s] = true;
                    stack.push(s);
                }
            }
            while let Some(x) = stack.pop() {
                rows[start * words + x / 64] |= 1u64 << (x % 64);
                for &s in &succs[x] {
                    if !seen[s] {
                        seen[s] = true;
                        stack.push(s);
                    }
                }
            }
        }
        Reach { n, words, rows }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// `true` iff a path of length ≥ 1 exists from `a` to `b`.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    pub fn reachable(&self, a: usize, b: usize) -> bool {
        assert!(a < self.n && b < self.n, "node out of range");
        self.rows[a * self.words + b / 64] & (1u64 << (b % 64)) != 0
    }

    /// `true` iff `a == b` or `a` reaches `b`.
    pub fn reachable_or_eq(&self, a: usize, b: usize) -> bool {
        a == b || self.reachable(a, b)
    }

    /// All nodes reachable from `a` (ascending).
    pub fn reachable_set(&self, a: usize) -> Vec<usize> {
        (0..self.n).filter(|&b| self.reachable(a, b)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_reachability() {
        let succs = vec![vec![1], vec![2], vec![]];
        let r = Reach::compute(&succs);
        assert!(r.reachable(0, 1));
        assert!(r.reachable(0, 2));
        assert!(r.reachable(1, 2));
        assert!(!r.reachable(2, 0));
        assert!(!r.reachable(0, 0));
        assert!(r.reachable_or_eq(0, 0));
    }

    #[test]
    fn cycle_reaches_itself() {
        let succs = vec![vec![1], vec![0]];
        let r = Reach::compute(&succs);
        assert!(r.reachable(0, 0));
        assert!(r.reachable(1, 1));
    }

    #[test]
    fn self_loop() {
        let succs = vec![vec![0]];
        let r = Reach::compute(&succs);
        assert!(r.reachable(0, 0));
    }

    #[test]
    fn disconnected_components() {
        let succs = vec![vec![1], vec![], vec![3], vec![]];
        let r = Reach::compute(&succs);
        assert!(r.reachable(0, 1));
        assert!(r.reachable(2, 3));
        assert!(!r.reachable(0, 3));
        assert!(!r.reachable(2, 1));
        assert_eq!(r.reachable_set(0), vec![1]);
    }

    #[test]
    fn empty_graph() {
        let r = Reach::compute(&[]);
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
    }

    #[test]
    fn large_graph_crosses_word_boundary() {
        // 130 nodes in a chain crosses two u64 words.
        let n = 130;
        let succs: Vec<Vec<usize>> = (0..n)
            .map(|i| if i + 1 < n { vec![i + 1] } else { vec![] })
            .collect();
        let r = Reach::compute(&succs);
        assert!(r.reachable(0, 129));
        assert!(r.reachable(64, 65));
        assert!(!r.reachable(129, 0));
    }

    #[test]
    fn matches_floyd_warshall_on_random_graphs() {
        // Deterministic pseudo-random graphs via a simple LCG.
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        for _ in 0..20 {
            let n = 3 + (next() % 12) as usize;
            let mut succs = vec![Vec::new(); n];
            #[allow(clippy::needless_range_loop)]
            for a in 0..n {
                for b in 0..n {
                    if next() % 4 == 0 {
                        succs[a].push(b);
                    }
                }
            }
            let r = Reach::compute(&succs);
            // Floyd–Warshall oracle.
            let mut m = vec![vec![false; n]; n];
            for (a, row) in succs.iter().enumerate() {
                for &b in row {
                    m[a][b] = true;
                }
            }
            for k in 0..n {
                for i in 0..n {
                    for j in 0..n {
                        m[i][j] = m[i][j] || (m[i][k] && m[k][j]);
                    }
                }
            }
            #[allow(clippy::needless_range_loop)]
            for i in 0..n {
                for j in 0..n {
                    assert_eq!(r.reachable(i, j), m[i][j], "({i},{j}) n={n}");
                }
            }
        }
    }
}
