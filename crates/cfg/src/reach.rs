//! Reachability closure over arbitrary adjacency lists.
//!
//! Both Condition 1 (paths in the extended CFG `Ĝ`) and Algorithm 3.2
//! (`"no path from C_i^A to a"`) are reachability questions over graphs
//! that are *not* plain CFGs (they include message edges, or exclude
//! backward edges). This module therefore works on raw adjacency lists —
//! [`crate::graph::Cfg`] and the extended CFG both lower to that — with a
//! bitset transitive closure.
//!
//! [`Reach::compute`] condenses the graph into strongly connected
//! components (Tarjan, iterative) and fills one bitset row **per SCC**
//! in a single reverse-topological pass: each SCC row is the OR of its
//! successor SCCs' rows plus the successors' members. Nodes of the same
//! SCC share a row, so the work drops from one BFS per node
//! (`O(V·(V+E))`) to `O(V + E + S²·V/64)` word operations for `S` SCCs —
//! on loop-heavy CFGs, where many nodes collapse into few SCCs, this is
//! the difference that makes closure (re)computation disappear from the
//! Phase-III profile. The old per-node BFS survives as
//! [`Reach::compute_naive`], the oracle for the equivalence property
//! test.

/// A dense reachability matrix: `reachable(a, b)` means there is a path
/// of length ≥ 1 from `a` to `b`.
#[derive(Debug, Clone)]
pub struct Reach {
    n: usize,
    words: usize,
    rows: Vec<u64>,
}

/// Tarjan's SCC algorithm, iterative (explicit DFS frames so deep CFGs
/// cannot overflow the call stack). Returns `(comp, comps)` where
/// `comp[v]` is the component id of node `v` and `comps` lists each
/// component's members in **emission order**: a component is emitted
/// only after every component reachable from it, i.e. the list is a
/// reverse topological order of the condensation.
fn tarjan_scc(succs: &[Vec<usize>]) -> (Vec<usize>, Vec<Vec<usize>>) {
    const UNVISITED: usize = usize::MAX;
    let n = succs.len();
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut comp = vec![UNVISITED; n];
    let mut comps: Vec<Vec<usize>> = Vec::new();
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    // DFS frames: (node, next child position in succs[node]).
    let mut frames: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        frames.push((root, 0));
        index[root] = next_index;
        lowlink[root] = next_index;
        next_index += 1;
        on_stack[root] = true;
        stack.push(root);
        while let Some(&mut (v, ref mut child)) = frames.last_mut() {
            if let Some(&w) = succs[v].get(*child) {
                *child += 1;
                if index[w] == UNVISITED {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    on_stack[w] = true;
                    stack.push(w);
                    frames.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    // v is the root of an SCC: pop it off the Tarjan stack.
                    let id = comps.len();
                    let mut members = Vec::new();
                    loop {
                        let w = stack.pop().expect("SCC stack underflow");
                        on_stack[w] = false;
                        comp[w] = id;
                        members.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comps.push(members);
                }
            }
        }
    }
    (comp, comps)
}

impl Reach {
    /// Computes the closure of the graph given as adjacency lists
    /// (`succs[i]` = successors of node `i`) via SCC condensation: one
    /// bitset row per component, filled in reverse topological order by
    /// OR-ing successor-component rows.
    pub fn compute(succs: &[Vec<usize>]) -> Reach {
        acfc_obs::count("cfg/reach/computes", 1);
        let n = succs.len();
        let words = n.div_ceil(64);
        acfc_obs::count("cfg/reach/nodes", n as u64);
        if n == 0 {
            return Reach {
                n,
                words,
                rows: Vec::new(),
            };
        }
        let (comp, comps) = tarjan_scc(succs);
        let s = comps.len();
        let mut scc_rows = vec![0u64; s * words];
        // Tarjan emission order is reverse-topological: by the time
        // component `c` is processed, every component it can reach
        // already has its final row.
        for (c, members) in comps.iter().enumerate() {
            // A node reaches itself iff it lies on a cycle: the SCC is
            // non-trivial, or it has a self-loop.
            let cyclic = members.len() > 1 || succs[members[0]].iter().any(|&t| t == members[0]);
            if cyclic {
                for &m in members {
                    scc_rows[c * words + m / 64] |= 1u64 << (m % 64);
                }
            }
            for &v in members {
                for &w in &succs[v] {
                    let d = comp[w];
                    if d == c {
                        continue;
                    }
                    debug_assert!(d < c, "successor SCC emitted after its predecessor");
                    scc_rows[c * words + w / 64] |= 1u64 << (w % 64);
                    let (head, tail) = scc_rows.split_at_mut(c * words);
                    let dst = &mut tail[..words];
                    let src = &head[d * words..d * words + words];
                    for k in 0..words {
                        dst[k] |= src[k];
                    }
                }
            }
        }
        // Every node shares its component's row.
        let mut rows = vec![0u64; n * words];
        for (v, row) in rows.chunks_exact_mut(words).enumerate() {
            row.copy_from_slice(&scc_rows[comp[v] * words..comp[v] * words + words]);
        }
        Reach { n, words, rows }
    }

    /// The original per-node BFS closure; `O(V·(V+E))`. Kept as the
    /// oracle the SCC-condensed [`Reach::compute`] is property-tested
    /// against.
    pub fn compute_naive(succs: &[Vec<usize>]) -> Reach {
        let n = succs.len();
        let words = n.div_ceil(64);
        let mut rows = vec![0u64; n * words];
        let mut stack = Vec::new();
        let mut seen = vec![false; n];
        for start in 0..n {
            seen.iter_mut().for_each(|b| *b = false);
            stack.clear();
            for &s in &succs[start] {
                if !seen[s] {
                    seen[s] = true;
                    stack.push(s);
                }
            }
            while let Some(x) = stack.pop() {
                rows[start * words + x / 64] |= 1u64 << (x % 64);
                for &s in &succs[x] {
                    if !seen[s] {
                        seen[s] = true;
                        stack.push(s);
                    }
                }
            }
        }
        Reach { n, words, rows }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of `u64` words per row (for sizing scratch buffers that
    /// OR rows together).
    pub fn row_words(&self) -> usize {
        self.words
    }

    /// `true` iff a path of length ≥ 1 exists from `a` to `b`.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    pub fn reachable(&self, a: usize, b: usize) -> bool {
        assert!(a < self.n && b < self.n, "node out of range");
        self.rows[a * self.words + b / 64] & (1u64 << (b % 64)) != 0
    }

    /// `true` iff `a == b` or `a` reaches `b`.
    pub fn reachable_or_eq(&self, a: usize, b: usize) -> bool {
        a == b || self.reachable(a, b)
    }

    /// The bitset row of everything reachable from `a` (bit `b` of word
    /// `b / 64`). Lets callers OR whole rows — e.g. the Condition-1
    /// message-reach precomputation — instead of probing per bit.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    pub fn row(&self, a: usize) -> &[u64] {
        assert!(a < self.n, "node out of range");
        &self.rows[a * self.words..(a + 1) * self.words]
    }

    /// All nodes reachable from `a` (ascending).
    pub fn reachable_set(&self, a: usize) -> Vec<usize> {
        (0..self.n).filter(|&b| self.reachable(a, b)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_reachability() {
        let succs = vec![vec![1], vec![2], vec![]];
        let r = Reach::compute(&succs);
        assert!(r.reachable(0, 1));
        assert!(r.reachable(0, 2));
        assert!(r.reachable(1, 2));
        assert!(!r.reachable(2, 0));
        assert!(!r.reachable(0, 0));
        assert!(r.reachable_or_eq(0, 0));
    }

    #[test]
    fn cycle_reaches_itself() {
        let succs = vec![vec![1], vec![0]];
        let r = Reach::compute(&succs);
        assert!(r.reachable(0, 0));
        assert!(r.reachable(1, 1));
    }

    #[test]
    fn self_loop() {
        let succs = vec![vec![0]];
        let r = Reach::compute(&succs);
        assert!(r.reachable(0, 0));
    }

    #[test]
    fn node_without_self_loop_does_not_reach_itself() {
        // 0 → 1 ⇄ 2: node 0 is acyclic even though it reaches a cycle.
        let succs = vec![vec![1], vec![2], vec![1]];
        let r = Reach::compute(&succs);
        assert!(!r.reachable(0, 0));
        assert!(r.reachable(1, 1));
        assert!(r.reachable(2, 2));
        assert_eq!(r.reachable_set(0), vec![1, 2]);
    }

    #[test]
    fn disconnected_components() {
        let succs = vec![vec![1], vec![], vec![3], vec![]];
        let r = Reach::compute(&succs);
        assert!(r.reachable(0, 1));
        assert!(r.reachable(2, 3));
        assert!(!r.reachable(0, 3));
        assert!(!r.reachable(2, 1));
        assert_eq!(r.reachable_set(0), vec![1]);
    }

    #[test]
    fn empty_graph() {
        let r = Reach::compute(&[]);
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
    }

    #[test]
    fn row_matches_reachable_set() {
        let succs = vec![vec![1, 2], vec![2], vec![0], vec![]];
        let r = Reach::compute(&succs);
        for a in 0..4 {
            let row = r.row(a);
            assert_eq!(row.len(), r.row_words());
            let from_row: Vec<usize> = (0..4)
                .filter(|&b| row[b / 64] & (1u64 << (b % 64)) != 0)
                .collect();
            assert_eq!(from_row, r.reachable_set(a));
        }
    }

    #[test]
    fn large_graph_crosses_word_boundary() {
        // 130 nodes in a chain crosses two u64 words.
        let n = 130;
        let succs: Vec<Vec<usize>> = (0..n)
            .map(|i| if i + 1 < n { vec![i + 1] } else { vec![] })
            .collect();
        let r = Reach::compute(&succs);
        assert!(r.reachable(0, 129));
        assert!(r.reachable(64, 65));
        assert!(!r.reachable(129, 0));
    }

    #[test]
    fn deep_graph_does_not_overflow_the_stack() {
        // A 20k-node cycle: recursion-based Tarjan would blow the
        // (default 8 MiB) call stack here; the iterative one must not.
        let n = 20_000;
        let succs: Vec<Vec<usize>> = (0..n).map(|i| vec![(i + 1) % n]).collect();
        let r = Reach::compute(&succs);
        assert!(r.reachable(0, 0));
        assert!(r.reachable(n - 1, 12345));
    }

    #[test]
    fn matches_floyd_warshall_on_random_graphs() {
        // Deterministic pseudo-random graphs via a simple LCG.
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for _ in 0..20 {
            let n = 3 + (next() % 12) as usize;
            let mut succs = vec![Vec::new(); n];
            #[allow(clippy::needless_range_loop)]
            for a in 0..n {
                for b in 0..n {
                    if next() % 4 == 0 {
                        succs[a].push(b);
                    }
                }
            }
            let r = Reach::compute(&succs);
            // Floyd–Warshall oracle.
            let mut m = vec![vec![false; n]; n];
            for (a, row) in succs.iter().enumerate() {
                for &b in row {
                    m[a][b] = true;
                }
            }
            for k in 0..n {
                for i in 0..n {
                    for j in 0..n {
                        m[i][j] = m[i][j] || (m[i][k] && m[k][j]);
                    }
                }
            }
            #[allow(clippy::needless_range_loop)]
            for i in 0..n {
                for j in 0..n {
                    assert_eq!(r.reachable(i, j), m[i][j], "({i},{j}) n={n}");
                }
            }
        }
    }
}
