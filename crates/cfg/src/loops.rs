//! Backward edges and natural loops.
//!
//! §2: *an edge `⟨a, b⟩` is a backward edge if `b` dominates `a`; the
//! loop of a backward edge consists of all nodes on paths from `b` to
//! `a`, including both*. The Phase III loop optimization needs to know
//! which checkpoint nodes live inside loops and which Ĝ-paths cross
//! backward edges.

use crate::dfs::dfs;
use crate::dominators::{dominators_with, Dominators};
use crate::graph::{Cfg, EdgeLabel, NodeId};

/// A natural loop: its header and member set.
#[derive(Debug, Clone)]
pub struct NaturalLoop {
    /// The loop header (target of the backward edge; dominates all
    /// members).
    pub header: NodeId,
    /// The backward edge that defines the loop (`latch → header`).
    pub back_edge: (NodeId, NodeId),
    /// Membership bitmap over node indices.
    pub members: Vec<bool>,
}

impl NaturalLoop {
    /// `true` iff `n` belongs to the loop.
    pub fn contains(&self, n: NodeId) -> bool {
        self.members[n.index()]
    }

    /// Number of member nodes.
    pub fn len(&self) -> usize {
        self.members.iter().filter(|&&b| b).count()
    }

    /// `true` if the loop has no members (cannot happen for well-formed
    /// loops; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Loop structure of a CFG: backward edges, natural loops, and per-node
/// loop depth.
#[derive(Debug, Clone)]
pub struct LoopInfo {
    /// All backward edges `(a, b)` (i.e. `b` dominates `a`).
    pub back_edges: Vec<(NodeId, NodeId, EdgeLabel)>,
    /// Natural loops, one per backward edge (loops sharing a header are
    /// kept separate, as in the paper's definition).
    pub loops: Vec<NaturalLoop>,
    /// `depth[n]` = number of natural loops containing `n`.
    pub depth: Vec<u32>,
}

impl LoopInfo {
    /// `true` iff `n` is inside at least one loop.
    pub fn in_loop(&self, n: NodeId) -> bool {
        self.depth[n.index()] > 0
    }

    /// Loop nesting depth of `n`.
    pub fn loop_depth(&self, n: NodeId) -> u32 {
        self.depth[n.index()]
    }

    /// `true` iff the edge `(a, b)` is one of the backward edges.
    pub fn is_back_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.back_edges.iter().any(|&(x, y, _)| x == a && y == b)
    }

    /// The innermost loops containing `n` (smallest member count first).
    pub fn loops_containing(&self, n: NodeId) -> Vec<&NaturalLoop> {
        let mut ls: Vec<&NaturalLoop> = self.loops.iter().filter(|l| l.contains(n)).collect();
        ls.sort_by_key(|l| l.len());
        ls
    }
}

/// Computes backward edges and natural loops.
pub fn loop_info(cfg: &Cfg) -> LoopInfo {
    let orders = dfs(cfg);
    let dom = dominators_with(cfg, &orders);
    loop_info_with(cfg, &dom)
}

/// Same as [`loop_info`], reusing a dominator tree.
pub fn loop_info_with(cfg: &Cfg, dom: &Dominators) -> LoopInfo {
    let n = cfg.len();
    let mut back_edges = Vec::new();
    for a in cfg.node_ids() {
        for &(b, label) in cfg.succs(a) {
            if dom.dominates(b, a) {
                back_edges.push((a, b, label));
            }
        }
    }
    let mut loops = Vec::new();
    let mut depth = vec![0u32; n];
    for &(latch, header, _) in &back_edges {
        // Natural loop: header + all nodes that reach latch without
        // passing through header (reverse flood fill from latch).
        let mut members = vec![false; n];
        members[header.index()] = true;
        let mut stack = Vec::new();
        if !members[latch.index()] {
            members[latch.index()] = true;
            stack.push(latch);
        }
        while let Some(x) = stack.pop() {
            for &(p, _) in cfg.preds(x) {
                if !members[p.index()] {
                    members[p.index()] = true;
                    stack.push(p);
                }
            }
        }
        for (i, &m) in members.iter().enumerate() {
            if m {
                depth[i] += 1;
            }
        }
        loops.push(NaturalLoop {
            header,
            back_edge: (latch, header),
            members,
        });
    }
    LoopInfo {
        back_edges,
        loops,
        depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_cfg;
    use acfc_mpsl::parse;

    #[test]
    fn straight_line_has_no_loops() {
        let (cfg, _) = build_cfg(&parse("program t; compute 1; checkpoint;").unwrap());
        let li = loop_info(&cfg);
        assert!(li.back_edges.is_empty());
        assert!(li.loops.is_empty());
        for id in cfg.node_ids() {
            assert!(!li.in_loop(id));
        }
    }

    #[test]
    fn while_loop_detected() {
        let (cfg, _) =
            build_cfg(&parse("program t; var i; while i < 3 { checkpoint; i := i + 1; }").unwrap());
        let li = loop_info(&cfg);
        assert_eq!(li.back_edges.len(), 1);
        assert_eq!(li.loops.len(), 1);
        let header = cfg.branch_nodes()[0];
        assert_eq!(li.loops[0].header, header);
        let chk = cfg.checkpoint_nodes()[0];
        assert!(li.in_loop(chk));
        assert!(li.in_loop(header));
        assert!(!li.in_loop(cfg.entry()));
        assert!(!li.in_loop(cfg.exit()));
    }

    #[test]
    fn nested_loops_have_depth_two() {
        let (cfg, _) = build_cfg(
            &parse(
                "program t; var i, j;
                 while i < 3 {
                   j := 0;
                   while j < 2 { checkpoint; j := j + 1; }
                   i := i + 1;
                 }",
            )
            .unwrap(),
        );
        let li = loop_info(&cfg);
        assert_eq!(li.loops.len(), 2);
        let chk = cfg.checkpoint_nodes()[0];
        assert_eq!(li.loop_depth(chk), 2);
        let inner = li.loops_containing(chk);
        assert_eq!(inner.len(), 2);
        assert!(inner[0].len() < inner[1].len());
    }

    #[test]
    fn for_loop_counts_as_loop() {
        let (cfg, _) =
            build_cfg(&parse("program t; var i; for i in 0..3 { checkpoint; }").unwrap());
        let li = loop_info(&cfg);
        assert_eq!(li.loops.len(), 1);
        assert!(li.in_loop(cfg.checkpoint_nodes()[0]));
    }

    #[test]
    fn back_edge_membership_query() {
        let (cfg, _) = build_cfg(&parse("program t; var i; while i < 3 { i := i + 1; }").unwrap());
        let li = loop_info(&cfg);
        let (a, b, _) = li.back_edges[0];
        assert!(li.is_back_edge(a, b));
        assert!(!li.is_back_edge(b, a));
    }

    #[test]
    fn checkpoint_outside_loop_not_in_loop() {
        let (cfg, _) = build_cfg(&acfc_mpsl::programs::fig6(3));
        let li = loop_info(&cfg);
        let chks = cfg.checkpoint_nodes();
        assert_eq!(chks.len(), 2);
        // Fig. 6: checkpoint A is inside the loop, checkpoint B outside.
        let in_loop: Vec<bool> = chks.iter().map(|&c| li.in_loop(c)).collect();
        assert_eq!(in_loop.iter().filter(|&&b| b).count(), 1);
    }
}
