//! Construction of a [`Cfg`] from an MPSL [`Program`].
//!
//! Shapes produced:
//!
//! * `if c { T } else { E }` — a [`NodeKind::Branch`] with a `True` edge
//!   into `T`, a `False` edge into `E`, both converging on a
//!   [`NodeKind::Join`].
//! * `while c { B }` — a `Branch` whose `True` edge enters `B`, whose
//!   `False` edge leaves the loop; the end of `B` has a *backward edge*
//!   to the `Branch` (in the paper's terms: the branch node dominates the
//!   body, so the closing edge is a backward edge, identifying the loop).
//! * `for v in a..b { B }` — desugared to
//!   `v := a; while v < b { B; v := v + 1; }`.
//! * Collectives (`bcast`, `exchange`) are lowered to point-to-point
//!   send/recv first (§3.2's reduction), via
//!   [`Program::lower_collectives`].

use crate::graph::{Cfg, EdgeLabel, NodeId, NodeKind};
use acfc_mpsl::{BinOp, Block, Expr, Program, StmtKind};

/// Builds the control-flow graph of `program`.
///
/// The program is cloned and collectives are lowered before translation,
/// so the caller's program is untouched. Statement ids recorded on the
/// nodes refer to the *lowered* program, which is returned alongside the
/// graph.
///
/// # Examples
///
/// ```
/// use acfc_cfg::build_cfg;
/// let p = acfc_mpsl::parse("program t; var i; for i in 0..3 { checkpoint; }").unwrap();
/// let (cfg, lowered) = build_cfg(&p);
/// assert_eq!(cfg.checkpoint_nodes().len(), 1);
/// assert_eq!(lowered.name, "t");
/// ```
pub fn build_cfg(program: &Program) -> (Cfg, Program) {
    let mut lowered = program.clone();
    if lowered.has_collectives() {
        lowered.lower_collectives();
    }
    let cfg = build_cfg_prelowered(&lowered);
    (cfg, lowered)
}

/// Builds the CFG of a program that has **already** had its collectives
/// lowered, without cloning it. Statement ids on the nodes refer to
/// `program` itself. This is the hot-loop entry point for Phase III,
/// which lowers once and then rebuilds the CFG after every checkpoint
/// relocation.
///
/// # Panics
///
/// Panics if the program still contains collectives.
pub fn build_cfg_prelowered(program: &Program) -> Cfg {
    assert!(
        !program.has_collectives(),
        "build_cfg_prelowered requires a collective-free program"
    );
    let mut cfg = Cfg::new(program.name.clone());
    let entry = cfg.entry();
    let last = build_block(&mut cfg, &program.body, entry, EdgeLabel::Seq);
    cfg.add_edge(last.0, cfg.exit(), last.1);
    debug_assert_eq!(cfg.check_invariants(), Ok(()));
    cfg
}

/// Translates `block`, chaining from `(pred, label)`; returns the dangling
/// tail `(node, label)` that the caller must connect onward.
fn build_block(
    cfg: &mut Cfg,
    block: &Block,
    pred: NodeId,
    label: EdgeLabel,
) -> (NodeId, EdgeLabel) {
    let mut cursor = (pred, label);
    for stmt in block {
        let sid = Some(stmt.id);
        cursor = match &stmt.kind {
            StmtKind::Compute { cost } => {
                let n = cfg.add_node(NodeKind::Compute { cost: cost.clone() }, sid);
                cfg.add_edge(cursor.0, n, cursor.1);
                (n, EdgeLabel::Seq)
            }
            StmtKind::Assign { var, value } => {
                let n = cfg.add_node(
                    NodeKind::Assign {
                        var: var.clone(),
                        value: value.clone(),
                    },
                    sid,
                );
                cfg.add_edge(cursor.0, n, cursor.1);
                (n, EdgeLabel::Seq)
            }
            StmtKind::Send { dest, size_bits } => {
                let n = cfg.add_node(
                    NodeKind::Send {
                        dest: dest.clone(),
                        size_bits: size_bits.clone(),
                    },
                    sid,
                );
                cfg.add_edge(cursor.0, n, cursor.1);
                (n, EdgeLabel::Seq)
            }
            StmtKind::Recv { src } => {
                let n = cfg.add_node(NodeKind::Recv { src: src.clone() }, sid);
                cfg.add_edge(cursor.0, n, cursor.1);
                (n, EdgeLabel::Seq)
            }
            StmtKind::Checkpoint { label: l } => {
                let n = cfg.add_node(NodeKind::Checkpoint { label: l.clone() }, sid);
                cfg.add_edge(cursor.0, n, cursor.1);
                (n, EdgeLabel::Seq)
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let b = cfg.add_node(NodeKind::Branch { cond: cond.clone() }, sid);
                cfg.add_edge(cursor.0, b, cursor.1);
                // The join carries the `if`'s statement id so that
                // analyses can map it back to "right after this
                // statement" in the AST (Phase III moves checkpoints to
                // such positions).
                let join = cfg.add_node(NodeKind::Join, sid);
                let t_end = build_block(cfg, then_branch, b, EdgeLabel::True);
                cfg.add_edge(t_end.0, join, t_end.1);
                let e_end = build_block(cfg, else_branch, b, EdgeLabel::False);
                cfg.add_edge(e_end.0, join, e_end.1);
                (join, EdgeLabel::Seq)
            }
            StmtKind::While { cond, body } => {
                let b = cfg.add_node(NodeKind::Branch { cond: cond.clone() }, sid);
                cfg.add_edge(cursor.0, b, cursor.1);
                let body_end = build_block(cfg, body, b, EdgeLabel::True);
                // The closing edge of the loop: a backward edge, because
                // the branch node dominates everything in the body.
                cfg.add_edge(body_end.0, b, body_end.1);
                (b, EdgeLabel::False)
            }
            StmtKind::For {
                var,
                from,
                to,
                body,
            } => {
                // v := from
                let init = cfg.add_node(
                    NodeKind::Assign {
                        var: var.clone(),
                        value: from.clone(),
                    },
                    sid,
                );
                cfg.add_edge(cursor.0, init, cursor.1);
                // while v < to
                let cond = Expr::bin(BinOp::Lt, Expr::Var(var.clone()), to.clone());
                let b = cfg.add_node(NodeKind::Branch { cond }, sid);
                cfg.add_edge(init, b, EdgeLabel::Seq);
                let body_end = build_block(cfg, body, b, EdgeLabel::True);
                // v := v + 1
                let incr = cfg.add_node(
                    NodeKind::Assign {
                        var: var.clone(),
                        value: Expr::bin(BinOp::Add, Expr::Var(var.clone()), Expr::Int(1)),
                    },
                    sid,
                );
                cfg.add_edge(body_end.0, incr, body_end.1);
                cfg.add_edge(incr, b, EdgeLabel::Seq);
                (b, EdgeLabel::False)
            }
            StmtKind::Bcast { .. } | StmtKind::Exchange { .. } => {
                unreachable!("collectives are lowered before CFG construction")
            }
        };
    }
    cursor
}

#[cfg(test)]
mod tests {
    use super::*;
    use acfc_mpsl::parse;

    fn cfg_of(src: &str) -> Cfg {
        build_cfg(&parse(src).unwrap()).0
    }

    #[test]
    fn straight_line_chains() {
        let cfg = cfg_of("program t; compute 1; checkpoint; compute 2;");
        // entry -> compute -> chkpt -> compute -> exit
        assert_eq!(cfg.len(), 5);
        assert_eq!(cfg.edge_count(), 4);
        let mut cur = cfg.entry();
        let order = ["compute", "chkpt", "compute", "exit"];
        for tag in order {
            let (next, _) = cfg.succs(cur)[0];
            assert_eq!(cfg.node(next).kind.tag(), tag);
            cur = next;
        }
    }

    #[test]
    fn if_produces_branch_and_join() {
        let cfg = cfg_of("program t; if rank == 0 { compute 1; } else { compute 2; }");
        let branches = cfg.branch_nodes();
        assert_eq!(branches.len(), 1);
        let b = branches[0];
        assert_eq!(cfg.succs(b).len(), 2);
        let labels: Vec<EdgeLabel> = cfg.succs(b).iter().map(|&(_, l)| l).collect();
        assert!(labels.contains(&EdgeLabel::True));
        assert!(labels.contains(&EdgeLabel::False));
        let joins = cfg.nodes_where(|k| matches!(k, NodeKind::Join));
        assert_eq!(joins.len(), 1);
        assert!(cfg.is_join(joins[0]));
    }

    #[test]
    fn empty_else_goes_straight_to_join() {
        let cfg = cfg_of("program t; if rank == 0 { compute 1; }");
        let b = cfg.branch_nodes()[0];
        let join = cfg.nodes_where(|k| matches!(k, NodeKind::Join))[0];
        assert!(cfg
            .succs(b)
            .iter()
            .any(|&(to, l)| to == join && l == EdgeLabel::False));
    }

    #[test]
    fn while_creates_back_edge_to_branch() {
        let cfg = cfg_of("program t; var i; while i < 3 { i := i + 1; }");
        let b = cfg.branch_nodes()[0];
        // The increment node loops back to the branch.
        let back_preds: Vec<_> = cfg
            .preds(b)
            .iter()
            .filter(|&&(from, _)| matches!(cfg.node(from).kind, NodeKind::Assign { .. }))
            .collect();
        assert_eq!(back_preds.len(), 1);
        // False edge exits toward exit.
        assert!(cfg
            .succs(b)
            .iter()
            .any(|&(to, l)| l == EdgeLabel::False && to == cfg.exit()));
    }

    #[test]
    fn for_desugars_to_init_branch_incr() {
        let cfg = cfg_of("program t; var i; for i in 0..3 { compute 1; }");
        // entry -> assign(init) -> branch -> [true] compute -> assign(incr) -> branch
        //                                   [false] -> exit
        let assigns = cfg.nodes_where(|k| matches!(k, NodeKind::Assign { .. }));
        assert_eq!(assigns.len(), 2);
        let b = cfg.branch_nodes()[0];
        assert_eq!(cfg.preds(b).len(), 2); // init + incr
    }

    #[test]
    fn empty_while_body_self_loops() {
        let p = parse("program t; while 0 { }").unwrap();
        let (cfg, _) = build_cfg(&p);
        let b = cfg.branch_nodes()[0];
        assert!(
            cfg.succs(b).iter().any(|&(to, _)| to == b),
            "self back edge"
        );
    }

    #[test]
    fn collectives_are_lowered() {
        let (cfg, lowered) = build_cfg(&parse("program t; exchange with rank + 1;").unwrap());
        assert_eq!(cfg.send_nodes().len(), 1);
        assert_eq!(cfg.recv_nodes().len(), 1);
        assert!(!lowered.has_collectives());
    }

    #[test]
    fn jacobi_fig1_shape() {
        let (cfg, _) = build_cfg(&acfc_mpsl::programs::jacobi(5));
        assert_eq!(cfg.checkpoint_nodes().len(), 1);
        assert_eq!(cfg.send_nodes().len(), 2);
        assert_eq!(cfg.recv_nodes().len(), 2);
        assert_eq!(cfg.branch_nodes().len(), 1); // the for loop
    }

    #[test]
    fn jacobi_odd_even_fig2_shape() {
        let (cfg, _) = build_cfg(&acfc_mpsl::programs::jacobi_odd_even(5));
        assert_eq!(cfg.checkpoint_nodes().len(), 2);
        assert_eq!(cfg.send_nodes().len(), 4);
        assert_eq!(cfg.recv_nodes().len(), 4);
        assert_eq!(cfg.branch_nodes().len(), 2); // loop + odd/even if
    }

    #[test]
    fn node_stmt_backrefs_resolve() {
        let p = parse("program t; checkpoint \"x\";").unwrap();
        let (cfg, lowered) = build_cfg(&p);
        let c = cfg.checkpoint_nodes()[0];
        let sid = cfg.node(c).stmt.expect("checkpoint has stmt id");
        let stmt = lowered.stmt(sid).expect("stmt resolves");
        assert!(matches!(
            &stmt.kind,
            StmtKind::Checkpoint { label: Some(l) } if l == "x"
        ));
    }
}
