//! Path finding over adjacency lists.
//!
//! Used for diagnostics (showing *which* path violates Condition 1) and
//! by Algorithm 3.2 (checking path existence under edge filters, e.g.
//! "ignoring backward edges").

use std::collections::VecDeque;

/// Finds a shortest path of length ≥ 1 from `from` to `to` in the graph
/// given by `succs`, visiting only edges for which `edge_ok(a, b)` holds.
/// Returns the node sequence `[from, …, to]`, or `None`.
///
/// `from == to` asks for a non-trivial cycle through `from`.
pub fn find_path(
    succs: &[Vec<usize>],
    from: usize,
    to: usize,
    edge_ok: &dyn Fn(usize, usize) -> bool,
) -> Option<Vec<usize>> {
    let n = succs.len();
    assert!(from < n && to < n, "node out of range");
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut seen = vec![false; n];
    let mut queue = VecDeque::new();
    // Seed with from's successors so that a path has length ≥ 1 and
    // from == to finds real cycles.
    for &s in &succs[from] {
        if edge_ok(from, s) && !seen[s] {
            seen[s] = true;
            parent[s] = Some(from);
            queue.push_back(s);
        }
    }
    if !seen[to] || to != from {
        while let Some(x) = queue.pop_front() {
            if x == to {
                break;
            }
            for &s in &succs[x] {
                if edge_ok(x, s) && !seen[s] {
                    seen[s] = true;
                    parent[s] = Some(x);
                    queue.push_back(s);
                }
            }
        }
    }
    if !seen[to] {
        return None;
    }
    // Reconstruct.
    let mut path = vec![to];
    let mut cur = to;
    loop {
        let p = parent[cur].expect("seen node has parent");
        path.push(p);
        if p == from && path.len() >= 2 {
            break;
        }
        cur = p;
    }
    path.reverse();
    Some(path)
}

/// Enumerates up to `limit` *simple* paths (no repeated intermediate
/// node) from `from` to `to`. Endpoints may coincide (cycles). Intended
/// for diagnostics on small graphs; the search is depth-first with a
/// hard cap.
pub fn enumerate_simple_paths(
    succs: &[Vec<usize>],
    from: usize,
    to: usize,
    limit: usize,
) -> Vec<Vec<usize>> {
    let n = succs.len();
    assert!(from < n && to < n, "node out of range");
    let mut out = Vec::new();
    let mut on_path = vec![false; n];
    let mut path = vec![from];
    fn go(
        succs: &[Vec<usize>],
        to: usize,
        limit: usize,
        on_path: &mut Vec<bool>,
        path: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if out.len() >= limit {
            return;
        }
        let cur = *path.last().expect("nonempty");
        for &s in &succs[cur] {
            if out.len() >= limit {
                return;
            }
            if s == to && !path.is_empty() {
                let mut p = path.clone();
                p.push(s);
                out.push(p);
                continue;
            }
            if !on_path[s] && s != path[0] {
                on_path[s] = true;
                path.push(s);
                go(succs, to, limit, on_path, path, out);
                path.pop();
                on_path[s] = false;
            }
        }
    }
    on_path[from] = true;
    go(succs, to, limit, &mut on_path, &mut path, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn any(_: usize, _: usize) -> bool {
        true
    }

    #[test]
    fn finds_shortest_path() {
        // 0 -> 1 -> 3, 0 -> 2 -> 3 -> 4
        let succs = vec![vec![1, 2], vec![3], vec![3], vec![4], vec![]];
        let p = find_path(&succs, 0, 4, &any).unwrap();
        assert_eq!(p.first(), Some(&0));
        assert_eq!(p.last(), Some(&4));
        assert_eq!(p.len(), 4); // shortest: 0-1-3-4 or 0-2-3-4
    }

    #[test]
    fn no_path_returns_none() {
        let succs = vec![vec![], vec![0]];
        assert!(find_path(&succs, 0, 1, &any).is_none());
    }

    #[test]
    fn cycle_through_self() {
        let succs = vec![vec![1], vec![0]];
        let p = find_path(&succs, 0, 0, &any).unwrap();
        assert_eq!(p, vec![0, 1, 0]);
    }

    #[test]
    fn self_loop_found() {
        let succs = vec![vec![0]];
        assert_eq!(find_path(&succs, 0, 0, &any).unwrap(), vec![0, 0]);
    }

    #[test]
    fn edge_filter_blocks_paths() {
        let succs = vec![vec![1], vec![2], vec![]];
        // Block the 1 -> 2 edge.
        let p = find_path(&succs, 0, 2, &|a, b| !(a == 1 && b == 2));
        assert!(p.is_none());
        assert!(find_path(&succs, 0, 1, &|a, b| !(a == 1 && b == 2)).is_some());
    }

    #[test]
    fn enumerate_finds_both_branches() {
        let succs = vec![vec![1, 2], vec![3], vec![3], vec![]];
        let paths = enumerate_simple_paths(&succs, 0, 3, 10);
        assert_eq!(paths.len(), 2);
        assert!(paths.contains(&vec![0, 1, 3]));
        assert!(paths.contains(&vec![0, 2, 3]));
    }

    #[test]
    fn enumerate_respects_limit() {
        // Diamond chain with 2^4 paths.
        let mut succs: Vec<Vec<usize>> = Vec::new();
        // nodes: 0, then pairs (1,2),(3,4),(5,6),(7,8), sink 9
        succs.push(vec![1, 2]);
        for i in 0..4 {
            let a = 1 + 2 * i;
            let b = 2 + 2 * i;
            let next: Vec<usize> = if i == 3 { vec![9] } else { vec![a + 2, b + 2] };
            succs.push(next.clone()); // a
            succs.push(next); // b
        }
        succs.push(vec![]); // 9
        let paths = enumerate_simple_paths(&succs, 0, 9, 3);
        assert_eq!(paths.len(), 3);
    }

    #[test]
    fn zero_length_is_never_a_path() {
        let succs = vec![vec![1], vec![]];
        // from == to with no cycle: none.
        assert!(find_path(&succs, 1, 1, &any).is_none());
        assert!(enumerate_simple_paths(&succs, 1, 1, 10).is_empty());
    }
}
