//! Exhaustive parser/lexer error-path coverage: every production's
//! failure mode reports a position and a useful message.

use acfc_mpsl::parse;

fn err(src: &str) -> (String, u32, u32) {
    let e = parse(src).expect_err(&format!("expected error for: {src}"));
    (e.message, e.line, e.col)
}

#[test]
fn missing_program_header() {
    let (m, ..) = err("compute 1;");
    assert!(m.contains("program"), "{m}");
}

#[test]
fn missing_program_name() {
    let (m, ..) = err("program ;");
    assert!(m.contains("identifier"), "{m}");
}

#[test]
fn missing_semicolon_after_header() {
    let (m, ..) = err("program t compute 1;");
    assert!(m.contains("`;`"), "{m}");
}

#[test]
fn send_requires_to() {
    let (m, ..) = err("program t; send 0;");
    assert!(m.contains("`to`"), "{m}");
}

#[test]
fn recv_requires_from() {
    let (m, ..) = err("program t; recv 0;");
    assert!(m.contains("`from`"), "{m}");
}

#[test]
fn exchange_requires_with() {
    let (m, ..) = err("program t; exchange 1;");
    assert!(m.contains("`with`"), "{m}");
}

#[test]
fn for_requires_in_and_range() {
    let (m, ..) = err("program t; var i; for i 0..3 { }");
    assert!(m.contains("`in`"), "{m}");
    let (m, ..) = err("program t; var i; for i in 0 3 { }");
    assert!(m.contains("`..`"), "{m}");
}

#[test]
fn assignment_requires_walrus() {
    let (m, ..) = err("program t; var x; x = 3;");
    assert!(m.contains("`:=`"), "{m}");
}

#[test]
fn dangling_expression_operand() {
    let (m, line, _) = err("program t;\ncompute 1 +;");
    assert!(m.contains("expression"), "{m}");
    assert_eq!(line, 2);
}

#[test]
fn unbalanced_parens() {
    let (m, ..) = err("program t; compute (1 + 2;");
    assert!(m.contains("`)`"), "{m}");
}

#[test]
fn input_requires_integer_index() {
    let (m, ..) = err("program t; compute input(x);");
    assert!(m.contains("integer"), "{m}");
}

#[test]
fn keyword_in_expression_position() {
    let (m, ..) = err("program t; compute while;");
    assert!(m.contains("cannot appear in an expression"), "{m}");
}

#[test]
fn param_requires_literal_value() {
    let (m, ..) = err("program t; param k = rank;");
    assert!(m.contains("integer"), "{m}");
}

#[test]
fn column_positions_are_accurate() {
    let (_, line, col) = err("program t; compute @;");
    assert_eq!(line, 1);
    assert_eq!(col, 20);
}

#[test]
fn error_display_includes_position() {
    let e = parse("program t;\n  compute ;").unwrap_err();
    let shown = e.to_string();
    assert!(shown.starts_with("2:"), "{shown}");
}
