//! Property tests for the MPSL front end: the pretty-printer
//! round-trips through the parser for arbitrary generated programs, and
//! the evaluator never panics on arbitrary expressions.

use acfc_mpsl::{eval, expr_to_string, parse, to_source, BinOp, Env, Expr, Program, RecvSrc,
    Stmt, StmtKind, UnOp};
use proptest::prelude::*;

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-100i64..100).prop_map(Expr::Int),
        Just(Expr::Rank),
        Just(Expr::NProcs),
        Just(Expr::Var("x".into())),
        Just(Expr::Var("loop_v".into())),
        Just(Expr::Param("p".into())),
        (0u32..3).prop_map(Expr::Input),
    ];
    leaf.prop_recursive(4, 32, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), arb_binop())
                .prop_map(|(a, b, op)| Expr::bin(op, a, b)),
            // Canonical negation, mirroring the parser: a negated
            // literal is a literal.
            inner.clone().prop_map(|e| match e {
                Expr::Int(v) => Expr::Int(-v),
                other => Expr::Unary(UnOp::Neg, Box::new(other)),
            }),
            inner.prop_map(|e| Expr::Unary(UnOp::Not, Box::new(e))),
        ]
    })
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Mod),
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Gt),
        Just(BinOp::Ge),
        Just(BinOp::And),
        Just(BinOp::Or),
    ]
}

fn arb_stmt() -> impl Strategy<Value = Stmt> {
    let leaf = prop_oneof![
        arb_expr().prop_map(|cost| Stmt::new(StmtKind::Compute { cost })),
        arb_expr().prop_map(|value| Stmt::new(StmtKind::Assign {
            var: "x".into(),
            value
        })),
        (arb_expr(), arb_expr()).prop_map(|(dest, size_bits)| Stmt::new(StmtKind::Send {
            dest,
            size_bits
        })),
        arb_expr().prop_map(|e| Stmt::new(StmtKind::Recv {
            src: RecvSrc::Rank(e)
        })),
        Just(Stmt::new(StmtKind::Recv { src: RecvSrc::Any })),
        proptest::option::of("[a-z]{1,8}( [a-z]{1,8}){0,2}")
            .prop_map(|label| Stmt::new(StmtKind::Checkpoint { label })),
        (arb_expr(), arb_expr()).prop_map(|(root, size_bits)| {
            // bcast roots must be rank-independent; force a literal.
            let _ = root;
            Stmt::new(StmtKind::Bcast {
                root: Expr::Int(0),
                size_bits,
            })
        }),
        arb_expr().prop_map(|peer| Stmt::new(StmtKind::Exchange {
            peer,
            size_bits: Expr::Int(8)
        })),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (
                arb_expr(),
                prop::collection::vec(inner.clone(), 0..3),
                prop::collection::vec(inner.clone(), 0..3)
            )
                .prop_map(|(cond, then_branch, else_branch)| Stmt::new(StmtKind::If {
                    cond,
                    then_branch,
                    else_branch
                })),
            (arb_expr(), prop::collection::vec(inner.clone(), 1..3)).prop_map(
                |(cond, body)| Stmt::new(StmtKind::While { cond, body })
            ),
            (arb_expr(), arb_expr(), prop::collection::vec(inner, 1..3)).prop_map(
                |(from, to, body)| Stmt::new(StmtKind::For {
                    var: "loop_v".into(),
                    from,
                    to,
                    body
                })
            ),
        ]
    })
}

fn arb_program() -> impl Strategy<Value = Program> {
    prop::collection::vec(arb_stmt(), 0..6).prop_map(|body| {
        Program::new(
            "prop",
            vec![("p".into(), 7)],
            vec!["x".into(), "loop_v".into()],
            body,
        )
    })
}

proptest! {
    #[test]
    fn pretty_print_round_trips(p in arb_program()) {
        let printed = to_source(&p);
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        prop_assert_eq!(&reparsed, &p, "\n--- printed ---\n{}", printed);
        // And printing is a fixpoint.
        prop_assert_eq!(to_source(&reparsed), printed);
    }

    #[test]
    fn expr_rendering_round_trips(e in arb_expr()) {
        let text = format!("program t; param p = 7; compute {};", expr_to_string(&e));
        let p = parse(&text).unwrap_or_else(|err| panic!("{err}\n{text}"));
        let StmtKind::Compute { cost } = &p.body[0].kind else { panic!() };
        prop_assert_eq!(cost, &e, "\n{}", text);
    }

    #[test]
    fn eval_never_panics(e in arb_expr(), rank in 0i64..16, n in 1i64..16) {
        let mut env = Env::new(rank, n);
        env.params.insert("p".into(), 7);
        env.vars.insert("x".into(), 3);
        env.vars.insert("loop_v".into(), 1);
        env.inputs = vec![1, 2, 3];
        // Any Result is fine; panics are not.
        let _ = eval(&e, &env);
    }

    #[test]
    fn renumber_is_stable_and_dense(p in arb_program()) {
        let mut ids = Vec::new();
        p.visit(&mut |s| ids.push(s.id.0));
        // Pre-order dense numbering from zero.
        let expected: Vec<u32> = (0..ids.len() as u32).collect();
        prop_assert_eq!(ids, expected);
    }
}
