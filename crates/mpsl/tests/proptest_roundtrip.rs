//! Property tests for the MPSL front end: the pretty-printer
//! round-trips through the parser for arbitrary generated programs, and
//! the evaluator never panics on arbitrary expressions.

use acfc_mpsl::{
    eval, expr_to_string, parse, to_source, BinOp, Env, Expr, Program, RecvSrc, Stmt, StmtKind,
    UnOp,
};
use acfc_util::check::{forall, Gen};

fn arb_expr(g: &mut Gen, depth: u32) -> Expr {
    let leaf = |g: &mut Gen| match g.usize_in(0, 7) {
        0 => Expr::Int(g.i64_in(-100, 100)),
        1 => Expr::Rank,
        2 => Expr::NProcs,
        3 => Expr::Var("x".into()),
        4 => Expr::Var("loop_v".into()),
        5 => Expr::Param("p".into()),
        _ => Expr::Input(g.u64_in(0, 3) as u32),
    };
    if depth == 0 || g.prob(0.4) {
        return leaf(g);
    }
    match g.usize_in(0, 3) {
        0 => {
            let a = arb_expr(g, depth - 1);
            let b = arb_expr(g, depth - 1);
            Expr::bin(arb_binop(g), a, b)
        }
        1 => {
            // Canonical negation, mirroring the parser: a negated
            // literal is a literal.
            match arb_expr(g, depth - 1) {
                Expr::Int(v) => Expr::Int(-v),
                other => Expr::Unary(UnOp::Neg, Box::new(other)),
            }
        }
        _ => Expr::Unary(UnOp::Not, Box::new(arb_expr(g, depth - 1))),
    }
}

fn arb_binop(g: &mut Gen) -> BinOp {
    *g.pick(&[
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Mod,
        BinOp::Eq,
        BinOp::Ne,
        BinOp::Lt,
        BinOp::Le,
        BinOp::Gt,
        BinOp::Ge,
        BinOp::And,
        BinOp::Or,
    ])
}

fn arb_label(g: &mut Gen) -> String {
    let words = g.usize_in(1, 4);
    (0..words)
        .map(|_| g.ident(1, 9))
        .collect::<Vec<_>>()
        .join(" ")
}

fn arb_stmt(g: &mut Gen, depth: u32) -> Stmt {
    let leaf = |g: &mut Gen| match g.usize_in(0, 8) {
        0 => Stmt::new(StmtKind::Compute {
            cost: arb_expr(g, 3),
        }),
        1 => Stmt::new(StmtKind::Assign {
            var: "x".into(),
            value: arb_expr(g, 3),
        }),
        2 => Stmt::new(StmtKind::Send {
            dest: arb_expr(g, 3),
            size_bits: arb_expr(g, 3),
        }),
        3 => Stmt::new(StmtKind::Recv {
            src: RecvSrc::Rank(arb_expr(g, 3)),
        }),
        4 => Stmt::new(StmtKind::Recv { src: RecvSrc::Any }),
        5 => Stmt::new(StmtKind::Checkpoint {
            label: g.option(0.5, arb_label),
        }),
        6 => Stmt::new(StmtKind::Bcast {
            // bcast roots must be rank-independent; force a literal.
            root: Expr::Int(0),
            size_bits: arb_expr(g, 3),
        }),
        _ => Stmt::new(StmtKind::Exchange {
            peer: arb_expr(g, 3),
            size_bits: Expr::Int(8),
        }),
    };
    if depth == 0 || g.prob(0.4) {
        return leaf(g);
    }
    match g.usize_in(0, 3) {
        0 => Stmt::new(StmtKind::If {
            cond: arb_expr(g, 3),
            then_branch: g.vec_of(0, 3, |g| arb_stmt(g, depth - 1)),
            else_branch: g.vec_of(0, 3, |g| arb_stmt(g, depth - 1)),
        }),
        1 => Stmt::new(StmtKind::While {
            cond: arb_expr(g, 3),
            body: g.vec_of(1, 3, |g| arb_stmt(g, depth - 1)),
        }),
        _ => Stmt::new(StmtKind::For {
            var: "loop_v".into(),
            from: arb_expr(g, 3),
            to: arb_expr(g, 3),
            body: g.vec_of(1, 3, |g| arb_stmt(g, depth - 1)),
        }),
    }
}

fn arb_program(g: &mut Gen) -> Program {
    Program::new(
        "prop",
        vec![("p".into(), 7)],
        vec!["x".into(), "loop_v".into()],
        g.vec_of(0, 6, |g| arb_stmt(g, 3)),
    )
}

#[test]
fn pretty_print_round_trips() {
    forall("pretty_print_round_trips", 256, |g| {
        let p = arb_program(g);
        let printed = to_source(&p);
        let reparsed = parse(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        assert_eq!(&reparsed, &p, "\n--- printed ---\n{printed}");
        // And printing is a fixpoint.
        assert_eq!(to_source(&reparsed), printed);
    });
}

#[test]
fn expr_rendering_round_trips() {
    forall("expr_rendering_round_trips", 256, |g| {
        let e = arb_expr(g, 4);
        let text = format!("program t; param p = 7; compute {};", expr_to_string(&e));
        let p = parse(&text).unwrap_or_else(|err| panic!("{err}\n{text}"));
        let StmtKind::Compute { cost } = &p.body[0].kind else {
            panic!()
        };
        assert_eq!(cost, &e, "\n{text}");
    });
}

#[test]
fn eval_never_panics() {
    forall("eval_never_panics", 256, |g| {
        let e = arb_expr(g, 4);
        let rank = g.i64_in(0, 16);
        let n = g.i64_in(1, 16);
        let mut env = Env::new(rank, n);
        env.params.insert("p".into(), 7);
        env.vars.insert("x".into(), 3);
        env.vars.insert("loop_v".into(), 1);
        env.inputs = vec![1, 2, 3];
        // Any Result is fine; panics are not.
        let _ = eval(&e, &env);
    });
}

#[test]
fn renumber_is_stable_and_dense() {
    forall("renumber_is_stable_and_dense", 256, |g| {
        let p = arb_program(g);
        let mut ids = Vec::new();
        p.visit(&mut |s| ids.push(s.id.0));
        // Pre-order dense numbering from zero.
        let expected: Vec<u32> = (0..ids.len() as u32).collect();
        assert_eq!(ids, expected);
    });
}
