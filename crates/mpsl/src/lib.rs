//! # MPSL — a message-passing source language
//!
//! MPSL is the SPMD substrate for the ACFC reproduction of *Agbaria &
//! Sanders, "Application-Driven Coordination-Free Distributed
//! Checkpointing" (ICDCS 2005)*. The paper's offline analysis consumes
//! message-passing **programs**; MPSL provides exactly the program forms
//! the paper's system model needs — computation, point-to-point and
//! collective communication, checkpoints, loops, and (possibly
//! ID-dependent) conditionals — with nothing extraneous.
//!
//! The crate offers four ways in:
//!
//! * [`parse`] — the textual surface syntax,
//! * [`builder::ProgramBuilder`] — programmatic construction,
//! * [`programs`] — the paper's running examples (Jacobi, Figures 2/5/6)
//!   and other stock SPMD patterns,
//! * [`mpmd`] — combining multiple per-role programs into one SPMD
//!   dispatch (the paper's §3 MPMD remark),
//! * [`to_source`] — pretty-printing back to parseable text.
//!
//! ```
//! use acfc_mpsl::{parse, to_source, validate};
//!
//! let program = parse(
//!     "program jacobi;
//!      param iters = 10;
//!      var i;
//!      for i in 0..iters {
//!        compute 50;
//!        send to (rank + 1) % nprocs size 4096;
//!        recv from (rank - 1) % nprocs;
//!        checkpoint;
//!      }",
//! )?;
//! assert!(validate(&program).is_empty());
//! let _printed = to_source(&program);
//! # Ok::<(), acfc_mpsl::ParseError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod builder;
pub mod expr;
pub mod lexer;
pub mod lowered;
pub mod mpmd;
pub mod parser;
pub mod pretty;
pub mod programs;
pub mod validate;

pub use ast::{BinOp, Block, Expr, Program, RecvSrc, Stmt, StmtId, StmtKind, UnOp};
pub use expr::{eval, rank_eval, Env, EvalError, RankEnv, RankVal};
pub use lexer::{lex, LexError};
pub use lowered::{eval_ops, lower_expr, Op, SlotEnv, SlotResolver};
pub use parser::{parse, ParseError};
pub use pretty::{expr_to_string, to_source};
pub use validate::{validate, ValidateError};
