//! Static validation of MPSL programs.
//!
//! Catches the mistakes that would otherwise surface as confusing run-time
//! errors in the simulator or as vacuous analyses: undeclared variables,
//! use of a variable before any possible assignment, assignment to loop
//! variables inside their own loop, and empty loop bodies.

use crate::ast::{Block, Expr, Program, RecvSrc, StmtKind};
use std::collections::HashSet;
use std::fmt;

/// A single validation diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateError {
    /// What is wrong.
    pub message: String,
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ValidateError {}

fn check_expr(
    e: &Expr,
    declared: &HashSet<&str>,
    params: &HashSet<&str>,
    errors: &mut Vec<ValidateError>,
) {
    match e {
        Expr::Var(v) if !declared.contains(v.as_str()) => {
            errors.push(ValidateError {
                message: format!("use of undeclared variable `{v}`"),
            });
        }
        Expr::Param(p) if !params.contains(p.as_str()) => {
            errors.push(ValidateError {
                message: format!("use of undeclared parameter `{p}`"),
            });
        }
        Expr::Unary(_, inner) => check_expr(inner, declared, params, errors),
        Expr::Binary(_, a, b) => {
            check_expr(a, declared, params, errors);
            check_expr(b, declared, params, errors);
        }
        _ => {}
    }
}

fn check_block(
    block: &Block,
    declared: &HashSet<&str>,
    params: &HashSet<&str>,
    loop_vars: &mut Vec<String>,
    errors: &mut Vec<ValidateError>,
) {
    for stmt in block {
        match &stmt.kind {
            StmtKind::Compute { cost } => check_expr(cost, declared, params, errors),
            StmtKind::Assign { var, value } => {
                if !declared.contains(var.as_str()) {
                    errors.push(ValidateError {
                        message: format!("assignment to undeclared variable `{var}`"),
                    });
                }
                if loop_vars.contains(var) {
                    errors.push(ValidateError {
                        message: format!(
                            "assignment to `{var}` inside its own `for` loop would break \
                             the loop's bounds"
                        ),
                    });
                }
                check_expr(value, declared, params, errors);
            }
            StmtKind::Send { dest, size_bits } => {
                check_expr(dest, declared, params, errors);
                check_expr(size_bits, declared, params, errors);
            }
            StmtKind::Recv { src } => {
                if let RecvSrc::Rank(e) = src {
                    check_expr(e, declared, params, errors);
                }
            }
            StmtKind::Checkpoint { .. } => {}
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                check_expr(cond, declared, params, errors);
                check_block(then_branch, declared, params, loop_vars, errors);
                check_block(else_branch, declared, params, loop_vars, errors);
            }
            StmtKind::While { cond, body } => {
                check_expr(cond, declared, params, errors);
                if body.is_empty() {
                    errors.push(ValidateError {
                        message: "`while` loop with empty body can never terminate".into(),
                    });
                }
                check_block(body, declared, params, loop_vars, errors);
            }
            StmtKind::For {
                var,
                from,
                to,
                body,
            } => {
                if !declared.contains(var.as_str()) {
                    errors.push(ValidateError {
                        message: format!("`for` loop variable `{var}` is not declared"),
                    });
                }
                check_expr(from, declared, params, errors);
                check_expr(to, declared, params, errors);
                loop_vars.push(var.clone());
                check_block(body, declared, params, loop_vars, errors);
                loop_vars.pop();
            }
            StmtKind::Bcast { root, size_bits } => {
                check_expr(root, declared, params, errors);
                check_expr(size_bits, declared, params, errors);
                if root.mentions_rank() || root.mentions_var() {
                    errors.push(ValidateError {
                        message: "`bcast` root must be rank-independent (same value in every \
                                  process)"
                            .into(),
                    });
                }
            }
            StmtKind::Exchange { peer, size_bits } => {
                check_expr(peer, declared, params, errors);
                check_expr(size_bits, declared, params, errors);
            }
        }
    }
}

/// Validates a program, returning all diagnostics found.
///
/// An empty result means the program is well-formed.
///
/// # Examples
///
/// ```
/// let p = acfc_mpsl::parse("program t; x := 1;").unwrap();
/// let errors = acfc_mpsl::validate(&p);
/// assert_eq!(errors.len(), 1);
/// assert!(errors[0].message.contains("undeclared"));
/// ```
pub fn validate(p: &Program) -> Vec<ValidateError> {
    let declared: HashSet<&str> = p.vars.iter().map(|s| s.as_str()).collect();
    let params: HashSet<&str> = p.params.iter().map(|(n, _)| n.as_str()).collect();
    let mut errors = Vec::new();
    let mut loop_vars = Vec::new();
    check_block(&p.body, &declared, &params, &mut loop_vars, &mut errors);
    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::programs::all_stock;

    #[test]
    fn stock_programs_validate_cleanly() {
        for p in all_stock() {
            let errs = validate(&p);
            assert!(errs.is_empty(), "{}: {:?}", p.name, errs);
        }
    }

    #[test]
    fn undeclared_var_reported() {
        let p = parse("program t; compute x;").unwrap();
        assert_eq!(validate(&p).len(), 1);
    }

    #[test]
    fn undeclared_assignment_reported() {
        let p = parse("program t; y := 3;").unwrap();
        assert!(validate(&p)[0].message.contains("undeclared"));
    }

    #[test]
    fn loop_var_mutation_reported() {
        let p = parse("program t; var i; for i in 0..3 { i := 0; }").unwrap();
        assert!(validate(&p)
            .iter()
            .any(|e| e.message.contains("own `for` loop")));
    }

    #[test]
    fn empty_while_reported() {
        let p = parse("program t; while 1 { }").unwrap();
        assert!(validate(&p).iter().any(|e| e.message.contains("empty")));
    }

    #[test]
    fn rank_dependent_bcast_root_reported() {
        let p = parse("program t; bcast from rank;").unwrap();
        assert!(validate(&p)
            .iter()
            .any(|e| e.message.contains("rank-independent")));
    }

    #[test]
    fn undeclared_for_var_reported() {
        let p = parse("program t; for i in 0..3 { compute 1; }").unwrap();
        assert!(validate(&p)
            .iter()
            .any(|e| e.message.contains("not declared")));
    }
}
