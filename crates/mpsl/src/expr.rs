//! Expression evaluation: concrete (for the simulator) and rank-abstract
//! (for the offline analysis).
//!
//! The concrete evaluator needs a full environment — rank, `nprocs`,
//! parameter values, variable bindings, input data. The *rank-abstract*
//! evaluator is what Phase II of the paper relies on: it evaluates an
//! expression knowing only `rank` and `nprocs`, reporting
//! [`RankVal::Irregular`] where input data is consulted and
//! [`RankVal::Unknown`] where an unresolved variable appears.

use crate::ast::{BinOp, Expr, UnOp};
use std::collections::HashMap;
use std::fmt;

/// An error raised while evaluating an expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// Division or remainder by zero.
    DivideByZero,
    /// An undeclared or unbound variable was referenced.
    UnboundVar(String),
    /// An undeclared parameter was referenced.
    UnboundParam(String),
    /// `input(k)` referenced beyond the supplied input vector.
    MissingInput(u32),
    /// Arithmetic overflow.
    Overflow,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::DivideByZero => write!(f, "division by zero"),
            EvalError::UnboundVar(v) => write!(f, "unbound variable `{v}`"),
            EvalError::UnboundParam(p) => write!(f, "unbound parameter `{p}`"),
            EvalError::MissingInput(k) => write!(f, "missing input value #{k}"),
            EvalError::Overflow => write!(f, "arithmetic overflow"),
        }
    }
}

impl std::error::Error for EvalError {}

/// A concrete evaluation environment.
#[derive(Debug, Clone)]
pub struct Env {
    /// Rank of the evaluating process.
    pub rank: i64,
    /// Total number of processes.
    pub nprocs: i64,
    /// Parameter bindings.
    pub params: HashMap<String, i64>,
    /// Variable bindings.
    pub vars: HashMap<String, i64>,
    /// Program input data (`input(k)` reads `inputs[k]`).
    pub inputs: Vec<i64>,
}

impl Env {
    /// Creates an environment with no variables, params, or inputs.
    pub fn new(rank: i64, nprocs: i64) -> Env {
        Env {
            rank,
            nprocs,
            params: HashMap::new(),
            vars: HashMap::new(),
            inputs: Vec::new(),
        }
    }
}

#[inline]
pub(crate) fn apply_bin(op: BinOp, a: i64, b: i64) -> Result<i64, EvalError> {
    let bool_to_i = |b: bool| i64::from(b);
    Ok(match op {
        BinOp::Add => a.checked_add(b).ok_or(EvalError::Overflow)?,
        BinOp::Sub => a.checked_sub(b).ok_or(EvalError::Overflow)?,
        BinOp::Mul => a.checked_mul(b).ok_or(EvalError::Overflow)?,
        BinOp::Div => {
            if b == 0 {
                return Err(EvalError::DivideByZero);
            }
            a.checked_div(b).ok_or(EvalError::Overflow)?
        }
        BinOp::Mod => {
            if b == 0 {
                return Err(EvalError::DivideByZero);
            }
            // Euclidean remainder so that `(rank - 1) % nprocs` is a valid
            // rank even for rank 0 — matching what SPMD programs intend.
            a.rem_euclid(b)
        }
        BinOp::Eq => bool_to_i(a == b),
        BinOp::Ne => bool_to_i(a != b),
        BinOp::Lt => bool_to_i(a < b),
        BinOp::Le => bool_to_i(a <= b),
        BinOp::Gt => bool_to_i(a > b),
        BinOp::Ge => bool_to_i(a >= b),
        BinOp::And => bool_to_i(a != 0 && b != 0),
        BinOp::Or => bool_to_i(a != 0 || b != 0),
    })
}

/// Evaluates `expr` in the concrete environment `env`.
///
/// # Errors
///
/// Returns an [`EvalError`] on division by zero, unbound names, missing
/// input values, or arithmetic overflow.
///
/// # Examples
///
/// ```
/// use acfc_mpsl::{eval, Env, Expr, BinOp};
/// let env = Env::new(3, 8);
/// let left = Expr::bin(BinOp::Mod, Expr::bin(BinOp::Sub, Expr::Rank, Expr::Int(1)), Expr::NProcs);
/// assert_eq!(eval(&left, &env).unwrap(), 2);
/// ```
pub fn eval(expr: &Expr, env: &Env) -> Result<i64, EvalError> {
    match expr {
        Expr::Int(v) => Ok(*v),
        Expr::Rank => Ok(env.rank),
        Expr::NProcs => Ok(env.nprocs),
        Expr::Param(p) => env
            .params
            .get(p)
            .copied()
            .ok_or_else(|| EvalError::UnboundParam(p.clone())),
        Expr::Var(v) => env
            .vars
            .get(v)
            .copied()
            .ok_or_else(|| EvalError::UnboundVar(v.clone())),
        Expr::Input(k) => env
            .inputs
            .get(*k as usize)
            .copied()
            .ok_or(EvalError::MissingInput(*k)),
        Expr::Unary(op, e) => {
            let v = eval(e, env)?;
            Ok(match op {
                UnOp::Neg => v.checked_neg().ok_or(EvalError::Overflow)?,
                UnOp::Not => i64::from(v == 0),
            })
        }
        Expr::Binary(op, a, b) => apply_bin(*op, eval(a, env)?, eval(b, env)?),
    }
}

/// The result of rank-abstract evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankVal {
    /// The expression has this value for the given rank.
    Known(i64),
    /// The value depends on input data (*irregular pattern*, §3.2).
    Irregular,
    /// The value depends on run-time state the analysis does not track
    /// (e.g. an unresolved mutable variable).
    Unknown,
}

impl RankVal {
    /// `true` for [`RankVal::Known`].
    pub fn is_known(self) -> bool {
        matches!(self, RankVal::Known(_))
    }

    fn join_op(op: BinOp, a: RankVal, b: RankVal) -> RankVal {
        match (a, b) {
            (RankVal::Known(x), RankVal::Known(y)) => match apply_bin(op, x, y) {
                Ok(v) => RankVal::Known(v),
                Err(_) => RankVal::Unknown,
            },
            // Irregular taints harder than Unknown: the paper's matching
            // rules explicitly special-case irregular patterns.
            (RankVal::Irregular, _) | (_, RankVal::Irregular) => RankVal::Irregular,
            _ => RankVal::Unknown,
        }
    }
}

/// A rank-abstract environment: the analysis knows `rank`, `nprocs`, and
/// the program parameters; selected variables may be bound to *rank
/// expressions* (from the ID-dependence constant propagation).
#[derive(Debug, Clone)]
pub struct RankEnv<'a> {
    /// Rank being queried.
    pub rank: i64,
    /// Total number of processes.
    pub nprocs: i64,
    /// Parameter bindings.
    pub params: &'a HashMap<String, i64>,
    /// Variables resolved to expressions over `rank`/`nprocs`/params.
    pub var_exprs: &'a HashMap<String, Expr>,
}

/// Evaluates `expr` knowing only the rank, `nprocs`, parameters, and any
/// variables the dataflow analysis resolved to rank expressions.
///
/// Never fails: anything unresolvable degrades to [`RankVal::Unknown`]
/// and anything touching input data to [`RankVal::Irregular`].
pub fn rank_eval(expr: &Expr, env: &RankEnv<'_>) -> RankVal {
    rank_eval_depth(expr, env, 0)
}

const MAX_SUBST_DEPTH: u32 = 64;

fn rank_eval_depth(expr: &Expr, env: &RankEnv<'_>, depth: u32) -> RankVal {
    if depth > MAX_SUBST_DEPTH {
        return RankVal::Unknown;
    }
    match expr {
        Expr::Int(v) => RankVal::Known(*v),
        Expr::Rank => RankVal::Known(env.rank),
        Expr::NProcs => RankVal::Known(env.nprocs),
        Expr::Param(p) => match env.params.get(p) {
            Some(v) => RankVal::Known(*v),
            None => RankVal::Unknown,
        },
        Expr::Var(v) => match env.var_exprs.get(v) {
            Some(e) => rank_eval_depth(e, env, depth + 1),
            None => RankVal::Unknown,
        },
        Expr::Input(_) => RankVal::Irregular,
        Expr::Unary(op, e) => match rank_eval_depth(e, env, depth + 1) {
            RankVal::Known(v) => match op {
                UnOp::Neg => v
                    .checked_neg()
                    .map(RankVal::Known)
                    .unwrap_or(RankVal::Unknown),
                UnOp::Not => RankVal::Known(i64::from(v == 0)),
            },
            other => other,
        },
        Expr::Binary(op, a, b) => RankVal::join_op(
            *op,
            rank_eval_depth(a, env, depth + 1),
            rank_eval_depth(b, env, depth + 1),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Expr as E;

    #[test]
    fn euclidean_mod_wraps_negative() {
        let env = Env::new(0, 4);
        let e = E::bin(
            BinOp::Mod,
            E::bin(BinOp::Sub, E::Rank, E::Int(1)),
            E::NProcs,
        );
        assert_eq!(eval(&e, &env).unwrap(), 3);
    }

    #[test]
    fn division_by_zero_is_error() {
        let env = Env::new(0, 4);
        let e = E::bin(BinOp::Div, E::Int(1), E::Int(0));
        assert_eq!(eval(&e, &env), Err(EvalError::DivideByZero));
        let e = E::bin(BinOp::Mod, E::Int(1), E::Int(0));
        assert_eq!(eval(&e, &env), Err(EvalError::DivideByZero));
    }

    #[test]
    fn unbound_names_are_errors() {
        let env = Env::new(0, 4);
        assert_eq!(
            eval(&E::Var("x".into()), &env),
            Err(EvalError::UnboundVar("x".into()))
        );
        assert_eq!(
            eval(&E::Param("p".into()), &env),
            Err(EvalError::UnboundParam("p".into()))
        );
        assert_eq!(eval(&E::Input(2), &env), Err(EvalError::MissingInput(2)));
    }

    #[test]
    fn inputs_resolve() {
        let mut env = Env::new(0, 4);
        env.inputs = vec![10, 20];
        assert_eq!(eval(&E::Input(1), &env).unwrap(), 20);
    }

    #[test]
    fn comparison_and_logic() {
        let env = Env::new(2, 4);
        let even = E::bin(BinOp::Eq, E::bin(BinOp::Mod, E::Rank, E::Int(2)), E::Int(0));
        assert_eq!(eval(&even, &env).unwrap(), 1);
        let not = E::Unary(UnOp::Not, Box::new(even));
        assert_eq!(eval(&not, &env).unwrap(), 0);
        let and = E::bin(BinOp::And, E::Int(3), E::Int(0));
        assert_eq!(eval(&and, &env).unwrap(), 0);
        let or = E::bin(BinOp::Or, E::Int(0), E::Int(7));
        assert_eq!(eval(&or, &env).unwrap(), 1);
    }

    #[test]
    fn overflow_reported() {
        let env = Env::new(0, 4);
        let e = E::bin(BinOp::Add, E::Int(i64::MAX), E::Int(1));
        assert_eq!(eval(&e, &env), Err(EvalError::Overflow));
    }

    #[test]
    fn rank_eval_known_and_unknown() {
        let params = HashMap::new();
        let vars = HashMap::new();
        let env = RankEnv {
            rank: 3,
            nprocs: 8,
            params: &params,
            var_exprs: &vars,
        };
        let e = E::bin(
            BinOp::Mod,
            E::bin(BinOp::Add, E::Rank, E::Int(1)),
            E::NProcs,
        );
        assert_eq!(rank_eval(&e, &env), RankVal::Known(4));
        assert_eq!(rank_eval(&E::Var("x".into()), &env), RankVal::Unknown);
        assert_eq!(rank_eval(&E::Input(0), &env), RankVal::Irregular);
    }

    #[test]
    fn rank_eval_resolves_var_exprs() {
        let params = HashMap::new();
        let mut vars = HashMap::new();
        vars.insert("left".to_string(), E::bin(BinOp::Sub, E::Rank, E::Int(1)));
        let env = RankEnv {
            rank: 5,
            nprocs: 8,
            params: &params,
            var_exprs: &vars,
        };
        assert_eq!(rank_eval(&E::Var("left".into()), &env), RankVal::Known(4));
    }

    #[test]
    fn irregular_dominates_unknown() {
        let params = HashMap::new();
        let vars = HashMap::new();
        let env = RankEnv {
            rank: 0,
            nprocs: 2,
            params: &params,
            var_exprs: &vars,
        };
        let e = E::bin(BinOp::Add, E::Var("x".into()), E::Input(0));
        assert_eq!(rank_eval(&e, &env), RankVal::Irregular);
    }

    #[test]
    fn rank_eval_cycle_terminates() {
        let params = HashMap::new();
        let mut vars = HashMap::new();
        vars.insert("a".to_string(), E::Var("b".into()));
        vars.insert("b".to_string(), E::Var("a".into()));
        let env = RankEnv {
            rank: 0,
            nprocs: 2,
            params: &params,
            var_exprs: &vars,
        };
        assert_eq!(rank_eval(&E::Var("a".into()), &env), RankVal::Unknown);
    }
}
