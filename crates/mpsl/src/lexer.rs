//! Lexer for the MPSL surface syntax.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// String literal (checkpoint labels).
    Str(String),
    /// `:=`
    Assign,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `..`
    DotDot,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `!`
    Bang,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `=`
    Eq,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(v) => write!(f, "`{v}`"),
            Tok::Str(s) => write!(f, "\"{s}\""),
            Tok::Assign => write!(f, "`:=`"),
            Tok::EqEq => write!(f, "`==`"),
            Tok::Ne => write!(f, "`!=`"),
            Tok::Le => write!(f, "`<=`"),
            Tok::Ge => write!(f, "`>=`"),
            Tok::Lt => write!(f, "`<`"),
            Tok::Gt => write!(f, "`>`"),
            Tok::AndAnd => write!(f, "`&&`"),
            Tok::OrOr => write!(f, "`||`"),
            Tok::DotDot => write!(f, "`..`"),
            Tok::Plus => write!(f, "`+`"),
            Tok::Minus => write!(f, "`-`"),
            Tok::Star => write!(f, "`*`"),
            Tok::Slash => write!(f, "`/`"),
            Tok::Percent => write!(f, "`%`"),
            Tok::Bang => write!(f, "`!`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::Semi => write!(f, "`;`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Eq => write!(f, "`=`"),
        }
    }
}

/// A token together with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// A lexical error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable description.
    pub message: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes MPSL source text.
///
/// Comments run from `#` or `//` to end of line.
///
/// # Errors
///
/// Returns a [`LexError`] on unterminated strings, malformed numbers, or
/// unexpected characters.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let mut out = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;
    let n = bytes.len();

    macro_rules! push {
        ($tok:expr, $l:expr, $c:expr) => {
            out.push(Spanned {
                tok: $tok,
                line: $l,
                col: $c,
            })
        };
    }

    while i < n {
        let c = bytes[i];
        let (tl, tc) = (line, col);
        let advance = |i: &mut usize, col: &mut u32| {
            *i += 1;
            *col += 1;
        };
        match c {
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            c if c.is_whitespace() => advance(&mut i, &mut col),
            '#' => {
                while i < n && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < n && bytes[i + 1] == '/' => {
                while i < n && bytes[i] != '\n' {
                    i += 1;
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < n && bytes[i].is_ascii_digit() {
                    advance(&mut i, &mut col);
                }
                let text: String = bytes[start..i].iter().collect();
                let v = text.parse::<i64>().map_err(|_| LexError {
                    message: format!("integer literal `{text}` out of range"),
                    line: tl,
                    col: tc,
                })?;
                push!(Tok::Int(v), tl, tc);
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < n && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                    advance(&mut i, &mut col);
                }
                let text: String = bytes[start..i].iter().collect();
                push!(Tok::Ident(text), tl, tc);
            }
            '"' => {
                advance(&mut i, &mut col);
                let start = i;
                while i < n && bytes[i] != '"' && bytes[i] != '\n' {
                    advance(&mut i, &mut col);
                }
                if i >= n || bytes[i] != '"' {
                    return Err(LexError {
                        message: "unterminated string literal".into(),
                        line: tl,
                        col: tc,
                    });
                }
                let text: String = bytes[start..i].iter().collect();
                advance(&mut i, &mut col);
                push!(Tok::Str(text), tl, tc);
            }
            ':' if i + 1 < n && bytes[i + 1] == '=' => {
                i += 2;
                col += 2;
                push!(Tok::Assign, tl, tc);
            }
            '=' if i + 1 < n && bytes[i + 1] == '=' => {
                i += 2;
                col += 2;
                push!(Tok::EqEq, tl, tc);
            }
            '=' => {
                advance(&mut i, &mut col);
                push!(Tok::Eq, tl, tc);
            }
            '!' if i + 1 < n && bytes[i + 1] == '=' => {
                i += 2;
                col += 2;
                push!(Tok::Ne, tl, tc);
            }
            '!' => {
                advance(&mut i, &mut col);
                push!(Tok::Bang, tl, tc);
            }
            '<' if i + 1 < n && bytes[i + 1] == '=' => {
                i += 2;
                col += 2;
                push!(Tok::Le, tl, tc);
            }
            '<' => {
                advance(&mut i, &mut col);
                push!(Tok::Lt, tl, tc);
            }
            '>' if i + 1 < n && bytes[i + 1] == '=' => {
                i += 2;
                col += 2;
                push!(Tok::Ge, tl, tc);
            }
            '>' => {
                advance(&mut i, &mut col);
                push!(Tok::Gt, tl, tc);
            }
            '&' if i + 1 < n && bytes[i + 1] == '&' => {
                i += 2;
                col += 2;
                push!(Tok::AndAnd, tl, tc);
            }
            '|' if i + 1 < n && bytes[i + 1] == '|' => {
                i += 2;
                col += 2;
                push!(Tok::OrOr, tl, tc);
            }
            '.' if i + 1 < n && bytes[i + 1] == '.' => {
                i += 2;
                col += 2;
                push!(Tok::DotDot, tl, tc);
            }
            '+' => {
                advance(&mut i, &mut col);
                push!(Tok::Plus, tl, tc);
            }
            '-' => {
                advance(&mut i, &mut col);
                push!(Tok::Minus, tl, tc);
            }
            '*' => {
                advance(&mut i, &mut col);
                push!(Tok::Star, tl, tc);
            }
            '/' => {
                advance(&mut i, &mut col);
                push!(Tok::Slash, tl, tc);
            }
            '%' => {
                advance(&mut i, &mut col);
                push!(Tok::Percent, tl, tc);
            }
            '(' => {
                advance(&mut i, &mut col);
                push!(Tok::LParen, tl, tc);
            }
            ')' => {
                advance(&mut i, &mut col);
                push!(Tok::RParen, tl, tc);
            }
            '{' => {
                advance(&mut i, &mut col);
                push!(Tok::LBrace, tl, tc);
            }
            '}' => {
                advance(&mut i, &mut col);
                push!(Tok::RBrace, tl, tc);
            }
            ';' => {
                advance(&mut i, &mut col);
                push!(Tok::Semi, tl, tc);
            }
            ',' => {
                advance(&mut i, &mut col);
                push!(Tok::Comma, tl, tc);
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character `{other}`"),
                    line: tl,
                    col: tc,
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_symbols_and_idents() {
        let toks = lex("x := (rank + 1) % nprocs;").unwrap();
        let kinds: Vec<Tok> = toks.into_iter().map(|s| s.tok).collect();
        assert_eq!(
            kinds,
            vec![
                Tok::Ident("x".into()),
                Tok::Assign,
                Tok::LParen,
                Tok::Ident("rank".into()),
                Tok::Plus,
                Tok::Int(1),
                Tok::RParen,
                Tok::Percent,
                Tok::Ident("nprocs".into()),
                Tok::Semi,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let toks = lex("# a comment\nx // trailing\n;").unwrap();
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].line, 2);
    }

    #[test]
    fn positions_track_lines() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn string_literals() {
        let toks = lex("checkpoint \"phase one\";").unwrap();
        assert_eq!(toks[1].tok, Tok::Str("phase one".into()));
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(lex("\"oops").is_err());
        assert!(lex("\"oops\nmore\"").is_err());
    }

    #[test]
    fn unexpected_char_is_error() {
        let err = lex("a @ b").unwrap_err();
        assert!(err.message.contains('@'));
        assert_eq!(err.col, 3);
    }

    #[test]
    fn two_char_operators() {
        let toks = lex("== != <= >= && || .. :=").unwrap();
        let kinds: Vec<Tok> = toks.into_iter().map(|s| s.tok).collect();
        assert_eq!(
            kinds,
            vec![
                Tok::EqEq,
                Tok::Ne,
                Tok::Le,
                Tok::Ge,
                Tok::AndAnd,
                Tok::OrOr,
                Tok::DotDot,
                Tok::Assign
            ]
        );
    }

    #[test]
    fn huge_integer_is_error() {
        assert!(lex("99999999999999999999999").is_err());
    }
}
