//! Programmatic construction of MPSL programs.
//!
//! The [`ProgramBuilder`] plus the expression helpers in [`e`] let tests
//! and generators build programs without going through the parser:
//!
//! ```
//! use acfc_mpsl::builder::{e, ProgramBuilder};
//!
//! let p = ProgramBuilder::new("ring")
//!     .var("i")
//!     .body(|b| {
//!         b.for_("i", e::int(0), e::int(4), |b| {
//!             b.send(e::modulo(e::add(e::rank(), e::int(1)), e::nprocs()), e::int(256));
//!             b.recv(e::modulo(e::sub(e::rank(), e::int(1)), e::nprocs()));
//!             b.checkpoint();
//!         });
//!     })
//!     .build();
//! assert_eq!(p.checkpoint_ids().len(), 1);
//! ```

use crate::ast::{Block, Expr, Program, RecvSrc, Stmt, StmtKind};

/// Expression constructor helpers.
pub mod e {
    use crate::ast::{BinOp, Expr, UnOp};

    /// Integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::Int(v)
    }
    /// The executing process's rank.
    pub fn rank() -> Expr {
        Expr::Rank
    }
    /// The number of processes.
    pub fn nprocs() -> Expr {
        Expr::NProcs
    }
    /// A named variable.
    pub fn var(name: &str) -> Expr {
        Expr::Var(name.to_string())
    }
    /// A named parameter.
    pub fn param(name: &str) -> Expr {
        Expr::Param(name.to_string())
    }
    /// The `k`-th input value (irregular).
    pub fn input(k: u32) -> Expr {
        Expr::Input(k)
    }
    /// `a + b`
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Add, a, b)
    }
    /// `a - b`
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Sub, a, b)
    }
    /// `a * b`
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Mul, a, b)
    }
    /// `a / b`
    pub fn div(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Div, a, b)
    }
    /// `a % b` (Euclidean)
    pub fn modulo(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Mod, a, b)
    }
    /// `a == b`
    pub fn eq(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Eq, a, b)
    }
    /// `a != b`
    pub fn ne(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Ne, a, b)
    }
    /// `a < b`
    pub fn lt(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Lt, a, b)
    }
    /// `a <= b`
    pub fn le(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Le, a, b)
    }
    /// `a > b`
    pub fn gt(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Gt, a, b)
    }
    /// `a >= b`
    pub fn ge(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Ge, a, b)
    }
    /// `a && b`
    pub fn and(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::And, a, b)
    }
    /// `a || b`
    pub fn or(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Or, a, b)
    }
    /// `!a`
    pub fn not(a: Expr) -> Expr {
        Expr::Unary(UnOp::Not, Box::new(a))
    }
    /// `-a`
    pub fn neg(a: Expr) -> Expr {
        Expr::Unary(UnOp::Neg, Box::new(a))
    }
    /// `rank % 2 == 0`: the paper's canonical ID-dependent condition.
    pub fn rank_is_even() -> Expr {
        eq(modulo(rank(), int(2)), int(0))
    }
    /// `(rank + 1) % nprocs`: right neighbour on a ring.
    pub fn right_neighbor() -> Expr {
        modulo(add(rank(), int(1)), nprocs())
    }
    /// `(rank - 1) % nprocs`: left neighbour on a ring.
    pub fn left_neighbor() -> Expr {
        modulo(sub(rank(), int(1)), nprocs())
    }
}

/// Builds a [`Block`] through imperative-looking method calls.
#[derive(Debug, Default)]
pub struct BlockBuilder {
    stmts: Block,
}

impl BlockBuilder {
    /// Appends a raw statement.
    pub fn push(&mut self, kind: StmtKind) -> &mut Self {
        self.stmts.push(Stmt::new(kind));
        self
    }

    /// `compute cost;`
    pub fn compute(&mut self, cost: Expr) -> &mut Self {
        self.push(StmtKind::Compute { cost })
    }

    /// `var := value;`
    pub fn assign(&mut self, var: &str, value: Expr) -> &mut Self {
        self.push(StmtKind::Assign {
            var: var.to_string(),
            value,
        })
    }

    /// `send to dest size size_bits;`
    pub fn send(&mut self, dest: Expr, size_bits: Expr) -> &mut Self {
        self.push(StmtKind::Send { dest, size_bits })
    }

    /// `recv from src;`
    pub fn recv(&mut self, src: Expr) -> &mut Self {
        self.push(StmtKind::Recv {
            src: RecvSrc::Rank(src),
        })
    }

    /// `recv from any;`
    pub fn recv_any(&mut self) -> &mut Self {
        self.push(StmtKind::Recv { src: RecvSrc::Any })
    }

    /// `checkpoint;`
    pub fn checkpoint(&mut self) -> &mut Self {
        self.push(StmtKind::Checkpoint { label: None })
    }

    /// `checkpoint "label";`
    pub fn checkpoint_labeled(&mut self, label: &str) -> &mut Self {
        self.push(StmtKind::Checkpoint {
            label: Some(label.to_string()),
        })
    }

    /// `if cond { then } else { els }`
    pub fn if_else(
        &mut self,
        cond: Expr,
        then: impl FnOnce(&mut BlockBuilder),
        els: impl FnOnce(&mut BlockBuilder),
    ) -> &mut Self {
        let mut tb = BlockBuilder::default();
        then(&mut tb);
        let mut eb = BlockBuilder::default();
        els(&mut eb);
        self.push(StmtKind::If {
            cond,
            then_branch: tb.stmts,
            else_branch: eb.stmts,
        })
    }

    /// `if cond { then }`
    pub fn if_(&mut self, cond: Expr, then: impl FnOnce(&mut BlockBuilder)) -> &mut Self {
        self.if_else(cond, then, |_| {})
    }

    /// `while cond { body }`
    pub fn while_(&mut self, cond: Expr, body: impl FnOnce(&mut BlockBuilder)) -> &mut Self {
        let mut bb = BlockBuilder::default();
        body(&mut bb);
        self.push(StmtKind::While {
            cond,
            body: bb.stmts,
        })
    }

    /// `for var in from..to { body }`
    pub fn for_(
        &mut self,
        var: &str,
        from: Expr,
        to: Expr,
        body: impl FnOnce(&mut BlockBuilder),
    ) -> &mut Self {
        let mut bb = BlockBuilder::default();
        body(&mut bb);
        self.push(StmtKind::For {
            var: var.to_string(),
            from,
            to,
            body: bb.stmts,
        })
    }

    /// `bcast from root size size_bits;`
    pub fn bcast(&mut self, root: Expr, size_bits: Expr) -> &mut Self {
        self.push(StmtKind::Bcast { root, size_bits })
    }

    /// `exchange with peer size size_bits;`
    pub fn exchange(&mut self, peer: Expr, size_bits: Expr) -> &mut Self {
        self.push(StmtKind::Exchange { peer, size_bits })
    }
}

/// Builder for whole programs; see the [module docs](self) for an example.
#[derive(Debug)]
pub struct ProgramBuilder {
    name: String,
    params: Vec<(String, i64)>,
    vars: Vec<String>,
    body: Block,
}

impl ProgramBuilder {
    /// Starts a program named `name`.
    pub fn new(name: &str) -> ProgramBuilder {
        ProgramBuilder {
            name: name.to_string(),
            params: Vec::new(),
            vars: Vec::new(),
            body: Vec::new(),
        }
    }

    /// Declares a parameter with its default value.
    pub fn param(mut self, name: &str, value: i64) -> Self {
        self.params.push((name.to_string(), value));
        self
    }

    /// Declares a variable.
    pub fn var(mut self, name: &str) -> Self {
        self.vars.push(name.to_string());
        self
    }

    /// Populates the top-level body.
    pub fn body(mut self, f: impl FnOnce(&mut BlockBuilder)) -> Self {
        let mut bb = BlockBuilder::default();
        f(&mut bb);
        self.body = bb.stmts;
        self
    }

    /// Finishes the program (assigning statement ids).
    pub fn build(self) -> Program {
        Program::new(self.name, self.params, self.vars, self.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::pretty::to_source;

    #[test]
    fn builder_matches_parser() {
        let built = ProgramBuilder::new("demo")
            .param("iters", 3)
            .var("i")
            .body(|b| {
                b.for_("i", e::int(0), e::param("iters"), |b| {
                    b.compute(e::int(5));
                    b.if_else(
                        e::rank_is_even(),
                        |b| {
                            b.checkpoint();
                            b.send(e::right_neighbor(), e::int(1024));
                            b.recv(e::left_neighbor());
                        },
                        |b| {
                            b.send(e::right_neighbor(), e::int(1024));
                            b.recv(e::left_neighbor());
                            b.checkpoint();
                        },
                    );
                });
            })
            .build();
        let parsed = parse(
            "program demo;
             param iters = 3;
             var i;
             for i in 0..iters {
               compute 5;
               if rank % 2 == 0 {
                 checkpoint;
                 send to (rank + 1) % nprocs size 1024;
                 recv from (rank - 1) % nprocs;
               } else {
                 send to (rank + 1) % nprocs size 1024;
                 recv from (rank - 1) % nprocs;
                 checkpoint;
               }
             }",
        )
        .unwrap();
        assert_eq!(built, parsed, "\n{}", to_source(&built));
    }

    #[test]
    fn empty_else_collapses() {
        let p = ProgramBuilder::new("t")
            .body(|b| {
                b.if_(e::eq(e::rank(), e::int(0)), |b| {
                    b.compute(e::int(1));
                });
            })
            .build();
        let StmtKind::If { else_branch, .. } = &p.body[0].kind else {
            panic!()
        };
        assert!(else_branch.is_empty());
    }
}
