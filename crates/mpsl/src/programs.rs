//! Stock MPSL programs.
//!
//! Includes the paper's running examples (Figures 1, 2, 5 and 6) plus a
//! set of realistic SPMD communication patterns used by the examples,
//! tests, and benchmarks. Every program here is executable on the
//! simulator for any `nprocs ≥ 2` unless noted otherwise.

use crate::ast::Program;
use crate::parser::parse;

fn must(src: &str) -> Program {
    parse(src).unwrap_or_else(|e| panic!("stock program failed to parse: {e}\n{src}"))
}

/// Figure 1 — the Jacobi iteration with a *uniform* checkpoint placement:
/// every process checkpoints at the same point of the loop body, so every
/// straight cut of checkpoints is a recovery line.
pub fn jacobi(iters: i64) -> Program {
    must(&format!(
        "program jacobi;
         param iters = {iters};
         var i;
         for i in 0..iters {{
           compute 50;
           send to (rank + 1) % nprocs size 4096;
           send to (rank - 1) % nprocs size 4096;
           recv from (rank - 1) % nprocs;
           recv from (rank + 1) % nprocs;
           checkpoint \"jacobi-sweep\";
         }}"
    ))
}

/// Figure 2 — the *odd/even* Jacobi variant: processes with even rank
/// checkpoint **before** the boundary exchange, processes with odd rank
/// **after** it. The paper shows (Figure 3) that a straight cut of these
/// checkpoints need not be a recovery line.
pub fn jacobi_odd_even(iters: i64) -> Program {
    must(&format!(
        "program jacobi_odd_even;
         param iters = {iters};
         var i;
         for i in 0..iters {{
           compute 50;
           if rank % 2 == 0 {{
             checkpoint \"even\";
             send to (rank + 1) % nprocs size 4096;
             send to (rank - 1) % nprocs size 4096;
             recv from (rank - 1) % nprocs;
             recv from (rank + 1) % nprocs;
           }} else {{
             send to (rank + 1) % nprocs size 4096;
             send to (rank - 1) % nprocs size 4096;
             recv from (rank - 1) % nprocs;
             recv from (rank + 1) % nprocs;
             checkpoint \"odd\";
           }}
         }}"
    ))
}

/// Figure 5 — a straight-line program where path A checkpoints and then
/// sends, while path B receives and then checkpoints: the message edge
/// creates a path `C₁ᴬ → send → recv → C₁ᴮ` in the extended CFG, so the
/// straight cut `S₁` is not a recovery line.
pub fn fig5() -> Program {
    must(
        "program fig5;
         compute 10;
         if rank % 2 == 0 {
           checkpoint \"A\";
           send to rank + 1 size 512;
         } else {
           recv from rank - 1;
           checkpoint \"B\";
         }
         compute 10;",
    )
}

/// Figure 6 — the back-edge variant: path B checkpoints once and then
/// streams messages; path A checkpoints at the top of each loop
/// iteration and receives at the bottom. The path
/// `C₁ᴮ → send → recv → (back edge) → while → C₁ᴬ` makes `R₁`
/// inconsistent if B fails right after a send (paper, §3.3).
///
/// Requires an even `nprocs`: even ranks run path A, odd ranks path B and
/// stream to `rank - 1`.
pub fn fig6(iters: i64) -> Program {
    must(&format!(
        "program fig6;
         param iters = {iters};
         var i;
         if rank % 2 == 0 {{
           for i in 0..iters {{
             checkpoint \"A\";
             compute 20;
             recv from rank + 1;
           }}
         }} else {{
           checkpoint \"B\";
           for i in 0..iters {{
             compute 20;
             send to rank - 1 size 512;
           }}
         }}"
    ))
}

/// A ring pipeline with uniform checkpoint placement: everyone forwards to
/// the right neighbour and checkpoints once per round.
pub fn ring(iters: i64, size_bits: i64) -> Program {
    must(&format!(
        "program ring;
         param iters = {iters};
         var i;
         for i in 0..iters {{
           compute 25;
           send to (rank + 1) % nprocs size {size_bits};
           recv from (rank - 1) % nprocs;
           checkpoint;
         }}"
    ))
}

/// A one-directional chain pipeline (`0 → 1 → … → n−1`) with uniform
/// placement (checkpoint after the send): safe.
pub fn pipeline(iters: i64) -> Program {
    must(&format!(
        "program pipeline;
         param iters = {iters};
         var i;
         for i in 0..iters {{
           if rank > 0 {{
             recv from rank - 1;
           }}
           compute 40;
           if rank < nprocs - 1 {{
             send to rank + 1 size 2048;
           }}
           checkpoint;
         }}"
    ))
}

/// A *skewed* chain pipeline: rank 0 checkpoints before it sends, the
/// others checkpoint only after their receive. Every message therefore
/// crosses from the sender's next interval into the receiver's current
/// one — straight cuts are inconsistent, and Phase III must move the
/// downstream checkpoints back before the receive.
pub fn pipeline_skewed(iters: i64) -> Program {
    must(&format!(
        "program pipeline_skewed;
         param iters = {iters};
         var i;
         for i in 0..iters {{
           if rank == 0 {{
             checkpoint \"head\";
             compute 40;
             send to rank + 1 size 2048;
           }} else {{
             recv from rank - 1;
             compute 40;
             if rank < nprocs - 1 {{
               send to rank + 1 size 2048;
             }}
             checkpoint \"tail\";
           }}
         }}"
    ))
}

/// Master/worker with an irregular pattern: workers push results to the
/// master, which receives from **any** source (`MPI_ANY_SOURCE`), so the
/// receive cannot be matched to a unique sender statically.
pub fn master_worker(rounds: i64) -> Program {
    must(&format!(
        "program master_worker;
         param rounds = {rounds};
         var r, j;
         for r in 0..rounds {{
           if rank == 0 {{
             for j in 0..nprocs - 1 {{
               recv from any;
             }}
           }} else {{
             compute 60;
             send to 0 size 1024;
           }}
           checkpoint;
         }}"
    ))
}

/// A data-dependent rotation: every process sends to
/// `(rank + 1 + input(0) % (nprocs − 1)) % nprocs` — a permutation whose
/// offset is known only at run time — and receives from any. Both the
/// send destination and the receive source are *irregular*.
pub fn rotation_shuffle(rounds: i64) -> Program {
    must(&format!(
        "program rotation_shuffle;
         param rounds = {rounds};
         var r;
         for r in 0..rounds {{
           compute 30;
           send to (rank + 1 + input(0) % (nprocs - 1)) % nprocs size 512;
           recv from any;
           checkpoint;
         }}"
    ))
}

/// A 1-D stencil on an open chain: interior processes exchange with both
/// neighbours, boundary processes with one. Uniform checkpoint placement.
pub fn stencil_1d(iters: i64) -> Program {
    must(&format!(
        "program stencil_1d;
         param iters = {iters};
         var i;
         for i in 0..iters {{
           compute 80;
           if rank > 0 {{
             send to rank - 1 size 4096;
           }}
           if rank < nprocs - 1 {{
             send to rank + 1 size 4096;
           }}
           if rank > 0 {{
             recv from rank - 1;
           }}
           if rank < nprocs - 1 {{
             recv from rank + 1;
           }}
           checkpoint;
         }}"
    ))
}

/// Broadcast-then-reduce rounds: rank 0 broadcasts work, workers reply,
/// everyone checkpoints. Exercises collective lowering (§3.2).
pub fn bcast_reduce(rounds: i64) -> Program {
    must(&format!(
        "program bcast_reduce;
         param rounds = {rounds};
         var r, j;
         for r in 0..rounds {{
           bcast from 0 size 256;
           if rank != 0 {{
             compute 50;
             send to 0 size 128;
           }} else {{
             for j in 0..nprocs - 1 {{
               recv from any;
             }}
           }}
           checkpoint;
         }}"
    ))
}

/// Two-process ping-pong (ranks ≥ 2 just compute and checkpoint).
pub fn pingpong(iters: i64) -> Program {
    must(&format!(
        "program pingpong;
         param iters = {iters};
         var i;
         for i in 0..iters {{
           if rank == 0 {{
             send to 1 size 64;
             recv from 1;
           }} else {{
             if rank == 1 {{
               recv from 0;
               send to 0 size 64;
             }} else {{
               compute 10;
             }}
           }}
           checkpoint;
         }}"
    ))
}

/// A ping-pong with *skewed* checkpoint placement (rank 0 checkpoints
/// between its send and its receive): creates the Figure-3 style orphan
/// message and is the smallest program on which Phase III has work to do.
pub fn pingpong_skewed(iters: i64) -> Program {
    must(&format!(
        "program pingpong_skewed;
         param iters = {iters};
         var i;
         for i in 0..iters {{
           if rank == 0 {{
             checkpoint \"before-serve\";
             send to 1 size 64;
             recv from 1;
           }} else {{
             if rank == 1 {{
               recv from 0;
               send to 0 size 64;
               checkpoint \"after-return\";
             }} else {{
               compute 10;
               checkpoint;
             }}
           }}
         }}"
    ))
}

/// Token ring: in round `r`, process `r mod n` passes the token on.
/// The source/destination expressions depend on the loop variable, which
/// the rank-abstract analysis cannot resolve — exercising the
/// conservative (non-contradiction) matching path.
pub fn token_ring(rounds: i64) -> Program {
    must(&format!(
        "program token_ring;
         param rounds = {rounds};
         var r;
         for r in 0..rounds {{
           if rank == r % nprocs {{
             send to (rank + 1) % nprocs size 32;
           }}
           if rank == (r + 1) % nprocs {{
             recv from (rank - 1) % nprocs;
           }}
           checkpoint;
         }}"
    ))
}

/// A 2-D halo exchange on a `rows × (nprocs/rows)` process grid
/// (requires `nprocs` divisible by `rows`): each process exchanges with
/// its east/west neighbours on the ring within its row, then with its
/// north/south neighbours across rows, then checkpoints — the classic
/// structured-grid communication pattern.
pub fn halo2d(iters: i64, rows: i64) -> Program {
    must(&format!(
        "program halo2d;
         param iters = {iters};
         param rows = {rows};
         var i, cols, row, col, east, west, north, south;
         cols := nprocs / rows;
         row := rank / cols;
         col := rank % cols;
         east := row * cols + (col + 1) % cols;
         west := row * cols + (col - 1) % cols;
         north := ((row - 1) % rows) * cols + col;
         south := ((row + 1) % rows) * cols + col;
         for i in 0..iters {{
           compute 60;
           send to east size 2048;
           send to west size 2048;
           recv from west;
           recv from east;
           send to north size 2048;
           send to south size 2048;
           recv from south;
           recv from north;
           checkpoint \"sweep\";
         }}"
    ))
}

/// A tree reduction to rank 0 followed by a broadcast back — the shape
/// of `MPI_Allreduce` over a binomial-ish tree expressed with stride
/// arithmetic. Works for any `nprocs ≥ 2` (strides that fall outside
/// the rank range are guarded).
pub fn reduce_bcast_tree(rounds: i64) -> Program {
    must(&format!(
        "program reduce_bcast_tree;
         param rounds = {rounds};
         var r, stride;
         for r in 0..rounds {{
           compute 30;
           stride := 1;
           while stride < nprocs {{
             if rank % (2 * stride) == 0 {{
               if rank + stride < nprocs {{
                 recv from rank + stride;
               }}
             }} else {{
               if rank % (2 * stride) == stride {{
                 send to rank - stride size 512;
               }}
             }}
             stride := stride * 2;
           }}
           bcast from 0 size 512;
           checkpoint;
         }}"
    ))
}

/// A wavefront sweep over the process chain: each process receives the
/// frontier from its predecessor, advances it, and forwards — twice per
/// iteration (down then up), checkpointing between sweeps.
pub fn wavefront(iters: i64) -> Program {
    must(&format!(
        "program wavefront;
         param iters = {iters};
         var i;
         for i in 0..iters {{
           if rank > 0 {{
             recv from rank - 1;
           }}
           compute 25;
           if rank < nprocs - 1 {{
             send to rank + 1 size 1024;
           }}
           checkpoint \"down\";
           if rank < nprocs - 1 {{
             recv from rank + 1;
           }}
           compute 25;
           if rank > 0 {{
             send to rank - 1 size 1024;
           }}
           checkpoint \"up\";
         }}"
    ))
}

/// Instruction-dense Jacobi: the boundary exchange of [`jacobi`], but
/// the per-sweep local work is an explicit `cells`-iteration relaxation
/// loop instead of one opaque `compute` statement. Each sweep executes
/// ~4·`cells` cheap instructions on the engine's inline fast path, so
/// this is the workload that measures raw instruction throughput at
/// large `n` (the `jacobi_cells_n1024` bench) rather than event-queue
/// turnaround. Deliberately **not** in [`all_stock`]: its instruction
/// count would dominate the analysis-pipeline benches, which measure
/// per-workload offline cost, not simulator throughput.
pub fn jacobi_cells(iters: i64, cells: i64) -> Program {
    must(&format!(
        "program jacobi_cells;
         param iters = {iters};
         param cells = {cells};
         var i; var j; var acc;
         acc := 0;
         for i in 0..iters {{
           for j in 0..cells {{
             acc := acc + j;
           }}
           send to (rank + 1) % nprocs size 4096;
           send to (rank - 1) % nprocs size 4096;
           recv from (rank - 1) % nprocs;
           recv from (rank + 1) % nprocs;
           checkpoint \"sweep\";
         }}"
    ))
}

/// All stock programs with small default sizes, for exhaustive tests.
pub fn all_stock() -> Vec<Program> {
    vec![
        jacobi(3),
        jacobi_odd_even(3),
        fig5(),
        fig6(3),
        ring(3, 512),
        pipeline(3),
        pipeline_skewed(3),
        master_worker(2),
        rotation_shuffle(2),
        stencil_1d(3),
        bcast_reduce(2),
        pingpong(3),
        pingpong_skewed(3),
        token_ring(4),
        reduce_bcast_tree(2),
        wavefront(3),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pretty::to_source;

    #[test]
    fn all_stock_programs_parse_and_roundtrip() {
        for p in all_stock() {
            let src = to_source(&p);
            let q = parse(&src).unwrap_or_else(|e| panic!("{}: {e}\n{src}", p.name));
            assert_eq!(p, q, "round-trip mismatch for {}", p.name);
        }
    }

    #[test]
    fn jacobi_has_one_checkpoint_node() {
        assert_eq!(jacobi(5).checkpoint_ids().len(), 1);
    }

    #[test]
    fn jacobi_cells_matches_jacobi_communication_shape() {
        let p = jacobi_cells(5, 16);
        // Same uniform exchange + checkpoint structure as `jacobi`, so
        // the same recovery-line properties hold; only the local work
        // is spelled out as instructions.
        assert_eq!(p.checkpoint_ids().len(), 1);
        assert_eq!(p.send_ids().len(), 2);
        assert_eq!(p.recv_ids().len(), 2);
        assert_eq!(p.param("cells"), Some(16));
        let src = to_source(&p);
        assert_eq!(parse(&src).unwrap(), p, "round-trip mismatch\n{src}");
    }

    #[test]
    fn jacobi_odd_even_has_two_checkpoint_nodes() {
        assert_eq!(jacobi_odd_even(5).checkpoint_ids().len(), 2);
    }

    #[test]
    fn params_are_overridable() {
        let mut p = ring(3, 512);
        assert_eq!(p.param("iters"), Some(3));
        assert!(p.set_param("iters", 10));
        assert_eq!(p.param("iters"), Some(10));
    }

    #[test]
    fn irregular_programs_are_flagged() {
        let p = rotation_shuffle(1);
        let mut has_irregular_send = false;
        p.visit(&mut |s| {
            if let crate::ast::StmtKind::Send { dest, .. } = &s.kind {
                has_irregular_send |= dest.mentions_input();
            }
        });
        assert!(has_irregular_send);
    }

    #[test]
    fn halo2d_runs_shape() {
        // 2x2 grid: everyone's neighbours exist.
        let p = halo2d(2, 2);
        assert_eq!(p.checkpoint_ids().len(), 1);
        assert_eq!(p.send_ids().len(), 4);
        assert_eq!(p.recv_ids().len(), 4);
    }

    #[test]
    fn tree_reduce_has_log_structure() {
        let p = reduce_bcast_tree(1);
        // The while-over-stride loop plus the bcast.
        assert!(p.has_collectives());
        assert!(!p.checkpoint_ids().is_empty());
    }

    #[test]
    fn wavefront_has_two_checkpoints_per_iteration() {
        assert_eq!(wavefront(4).checkpoint_ids().len(), 2);
    }

    #[test]
    fn bcast_reduce_contains_collective() {
        assert!(bcast_reduce(1).has_collectives());
        let mut p = bcast_reduce(1);
        p.lower_collectives();
        assert!(!p.has_collectives());
    }
}
