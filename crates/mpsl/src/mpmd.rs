//! MPMD (Multiple Program Multiple Data) support.
//!
//! §3 of the paper: *"if all the files of the source code of a
//! message-passing program are presented for offline analysis, our
//! approach works for MPMD as well."* This module implements that
//! reduction: a set of per-role programs, each bound to a contiguous
//! rank range, is combined into one SPMD program whose top level
//! dispatches on `rank` — an ID-dependent branch cascade the analysis
//! already understands. Every role's checkpoints then participate in
//! the same straight-cut indexing, and Phase I equalisation balances
//! roles that checkpoint different numbers of times.

use crate::ast::{BinOp, Expr, Program, Stmt, StmtKind};
use std::collections::HashSet;
use std::fmt;

/// One MPMD role: a program and the ranks that run it.
#[derive(Debug, Clone)]
pub struct Role {
    /// The role's program (its own params/vars are merged).
    pub program: Program,
    /// First rank of the role (inclusive).
    pub first_rank: i64,
    /// Last rank of the role (inclusive), or `None` for "all remaining
    /// ranks" (only valid on the final role).
    pub last_rank: Option<i64>,
}

impl Role {
    /// A role covering ranks `first..=last`.
    pub fn new(program: Program, first_rank: i64, last_rank: i64) -> Role {
        Role {
            program,
            first_rank,
            last_rank: Some(last_rank),
        }
    }

    /// A role covering every rank from `first_rank` upward.
    pub fn rest(program: Program, first_rank: i64) -> Role {
        Role {
            program,
            first_rank,
            last_rank: None,
        }
    }
}

/// Errors from MPMD combination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpmdError {
    /// No roles were given.
    Empty,
    /// Roles must cover contiguous, ascending, non-overlapping ranges
    /// starting at rank 0.
    BadCoverage(String),
    /// Two roles declare the same parameter with different defaults.
    ParamConflict(String),
}

impl fmt::Display for MpmdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpmdError::Empty => write!(f, "no roles given"),
            MpmdError::BadCoverage(m) => write!(f, "bad rank coverage: {m}"),
            MpmdError::ParamConflict(p) => {
                write!(f, "parameter `{p}` declared with conflicting defaults")
            }
        }
    }
}

impl std::error::Error for MpmdError {}

/// Prefixes a role's variable names so roles cannot collide.
fn rename_vars(program: &mut Program, prefix: &str) {
    let renames: Vec<(String, String)> = program
        .vars
        .iter()
        .map(|v| (v.clone(), format!("{prefix}_{v}")))
        .collect();
    let lookup: std::collections::HashMap<&str, &str> = renames
        .iter()
        .map(|(a, b)| (a.as_str(), b.as_str()))
        .collect();
    program.vars = renames.iter().map(|(_, b)| b.clone()).collect();
    let subst =
        |e: &Expr| e.substitute(&|name| lookup.get(name).map(|n| Expr::Var((*n).to_string())));
    program.visit_mut(&mut |s| match &mut s.kind {
        StmtKind::Compute { cost } => *cost = subst(cost),
        StmtKind::Assign { var, value } => {
            if let Some(n) = lookup.get(var.as_str()) {
                *var = (*n).to_string();
            }
            *value = subst(value);
        }
        StmtKind::Send { dest, size_bits } => {
            *dest = subst(dest);
            *size_bits = subst(size_bits);
        }
        StmtKind::Recv { src } => {
            if let crate::ast::RecvSrc::Rank(e) = src {
                *e = subst(e);
            }
        }
        StmtKind::If { cond, .. } => *cond = subst(cond),
        StmtKind::While { cond, .. } => *cond = subst(cond),
        StmtKind::For { var, from, to, .. } => {
            if let Some(n) = lookup.get(var.as_str()) {
                *var = (*n).to_string();
            }
            *from = subst(from);
            *to = subst(to);
        }
        StmtKind::Bcast { root, size_bits } => {
            *root = subst(root);
            *size_bits = subst(size_bits);
        }
        StmtKind::Exchange { peer, size_bits } => {
            *peer = subst(peer);
            *size_bits = subst(size_bits);
        }
        StmtKind::Checkpoint { .. } => {}
    });
}

/// Combines MPMD roles into a single SPMD program dispatching on rank.
///
/// Coverage rules: roles must start at rank 0, be contiguous and
/// ascending; the final role may be open-ended ([`Role::rest`]).
/// Parameters with the same name must agree on their default; variables
/// are prefixed per role (`r0_`, `r1_`, …) to avoid collisions.
///
/// # Errors
///
/// See [`MpmdError`].
///
/// # Examples
///
/// ```
/// use acfc_mpsl::mpmd::{combine, Role};
/// use acfc_mpsl::parse;
///
/// let master = parse("program master; var j; for j in 0..nprocs - 1 { recv from any; }").unwrap();
/// let worker = parse("program worker; compute 10; send to 0 size 64;").unwrap();
/// let combined = combine("gather", vec![
///     Role::new(master, 0, 0),
///     Role::rest(worker, 1),
/// ]).unwrap();
/// assert_eq!(combined.name, "gather");
/// assert!(acfc_mpsl::validate(&combined).is_empty());
/// ```
pub fn combine(name: &str, roles: Vec<Role>) -> Result<Program, MpmdError> {
    if roles.is_empty() {
        return Err(MpmdError::Empty);
    }
    // Validate coverage.
    let mut expected_next = 0i64;
    for (i, role) in roles.iter().enumerate() {
        if role.first_rank != expected_next {
            return Err(MpmdError::BadCoverage(format!(
                "role {i} starts at rank {} but rank {expected_next} is next",
                role.first_rank
            )));
        }
        match role.last_rank {
            Some(last) => {
                if last < role.first_rank {
                    return Err(MpmdError::BadCoverage(format!(
                        "role {i} has empty range {}..={last}",
                        role.first_rank
                    )));
                }
                expected_next = last + 1;
            }
            None => {
                if i + 1 != roles.len() {
                    return Err(MpmdError::BadCoverage(
                        "only the final role may be open-ended".into(),
                    ));
                }
                expected_next = i64::MAX;
            }
        }
    }
    // Merge params; rename vars per role.
    let mut params: Vec<(String, i64)> = Vec::new();
    let mut seen: HashSet<String> = HashSet::new();
    let mut vars: Vec<String> = Vec::new();
    let mut prepared: Vec<(Program, i64, Option<i64>)> = Vec::new();
    for (i, role) in roles.into_iter().enumerate() {
        let mut p = role.program;
        for (n, v) in &p.params {
            match params.iter().find(|(en, _)| en == n) {
                Some((_, ev)) if ev != v => return Err(MpmdError::ParamConflict(n.clone())),
                Some(_) => {}
                None => {
                    params.push((n.clone(), *v));
                }
            }
            seen.insert(n.clone());
        }
        rename_vars(&mut p, &format!("r{i}"));
        vars.extend(p.vars.iter().cloned());
        prepared.push((p, role.first_rank, role.last_rank));
    }
    // Build the dispatch cascade, last role innermost.
    let mut body: Vec<Stmt> = Vec::new();
    let mut cascade: Option<Vec<Stmt>> = None;
    for (p, first, last) in prepared.into_iter().rev() {
        let role_body = p.body;
        cascade = Some(match cascade {
            None => role_body,
            Some(else_branch) => {
                let cond = match last {
                    Some(last) if last == first => {
                        Expr::bin(BinOp::Eq, Expr::Rank, Expr::Int(first))
                    }
                    Some(last) => Expr::bin(
                        BinOp::And,
                        Expr::bin(BinOp::Ge, Expr::Rank, Expr::Int(first)),
                        Expr::bin(BinOp::Le, Expr::Rank, Expr::Int(last)),
                    ),
                    None => Expr::bin(BinOp::Ge, Expr::Rank, Expr::Int(first)),
                };
                vec![Stmt::new(StmtKind::If {
                    cond,
                    then_branch: role_body,
                    else_branch,
                })]
            }
        });
    }
    body.extend(cascade.expect("nonempty roles"));
    Ok(Program::new(name, params, vars, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn master() -> Program {
        parse(
            "program master; var j;
             for j in 0..nprocs - 1 { recv from any; }
             checkpoint \"master\";",
        )
        .unwrap()
    }

    fn worker() -> Program {
        parse(
            "program worker; var j;
             j := rank * 2;
             compute j;
             send to 0 size 64;
             checkpoint \"worker\";",
        )
        .unwrap()
    }

    #[test]
    fn combine_produces_valid_spmd() {
        let combined = combine(
            "mw",
            vec![Role::new(master(), 0, 0), Role::rest(worker(), 1)],
        )
        .unwrap();
        assert!(crate::validate(&combined).is_empty());
        // Top level is a single rank dispatch.
        assert_eq!(combined.body.len(), 1);
        let StmtKind::If { cond, .. } = &combined.body[0].kind else {
            panic!()
        };
        assert_eq!(*cond, Expr::bin(BinOp::Eq, Expr::Rank, Expr::Int(0)));
        // Variables are role-prefixed, so the two `j`s don't collide.
        assert!(combined.vars.contains(&"r0_j".to_string()));
        assert!(combined.vars.contains(&"r1_j".to_string()));
    }

    #[test]
    fn three_role_cascade() {
        let a = parse("program a; compute 1; checkpoint;").unwrap();
        let b = parse("program b; compute 2; checkpoint;").unwrap();
        let c = parse("program c; compute 3; checkpoint;").unwrap();
        let combined = combine(
            "abc",
            vec![Role::new(a, 0, 0), Role::new(b, 1, 2), Role::rest(c, 3)],
        )
        .unwrap();
        // if rank == 0 {a} else { if rank >= 1 && rank <= 2 {b} else {c} }
        let StmtKind::If { else_branch, .. } = &combined.body[0].kind else {
            panic!()
        };
        assert!(matches!(else_branch[0].kind, StmtKind::If { .. }));
    }

    #[test]
    fn coverage_gaps_rejected() {
        let err = combine(
            "bad",
            vec![Role::new(master(), 0, 0), Role::rest(worker(), 2)],
        )
        .unwrap_err();
        assert!(matches!(err, MpmdError::BadCoverage(_)));
    }

    #[test]
    fn non_final_open_role_rejected() {
        let err = combine(
            "bad",
            vec![Role::rest(master(), 0), Role::rest(worker(), 1)],
        )
        .unwrap_err();
        assert!(matches!(err, MpmdError::BadCoverage(_)));
        assert_eq!(combine("e", vec![]).unwrap_err(), MpmdError::Empty);
    }

    #[test]
    fn param_conflicts_rejected() {
        let a = parse("program a; param k = 1; compute k;").unwrap();
        let b = parse("program b; param k = 2; compute k;").unwrap();
        let err = combine("bad", vec![Role::new(a, 0, 0), Role::rest(b, 1)]).unwrap_err();
        assert_eq!(err, MpmdError::ParamConflict("k".into()));
    }

    #[test]
    fn shared_params_merge() {
        let a = parse("program a; param k = 5; compute k; checkpoint;").unwrap();
        let b = parse("program b; param k = 5; compute k + 1; checkpoint;").unwrap();
        let combined = combine("ok", vec![Role::new(a, 0, 0), Role::rest(b, 1)]).unwrap();
        assert_eq!(combined.params, vec![("k".into(), 5)]);
    }

    #[test]
    fn loop_variables_are_renamed_in_for_headers() {
        let combined = combine(
            "mw",
            vec![Role::new(master(), 0, 0), Role::rest(worker(), 1)],
        )
        .unwrap();
        let mut for_vars = Vec::new();
        combined.visit(&mut |s| {
            if let StmtKind::For { var, .. } = &s.kind {
                for_vars.push(var.clone());
            }
        });
        assert_eq!(for_vars, vec!["r0_j".to_string()]);
    }
}
