//! Expression lowering: flat, constant-folded postfix op arrays over
//! slot-interned names.
//!
//! The tree-walking evaluator in [`crate::expr`] resolves every variable
//! and parameter through a `HashMap<String, i64>` and recurses through
//! `Box`ed subtrees — fine for the offline analysis, far too slow for a
//! simulator stepping hundreds of millions of instructions. This module
//! lowers an [`Expr`] into a flat [`Op`] array in postfix order:
//!
//! * names become dense **slot indices** (the caller supplies a
//!   [`SlotResolver`] that interns them),
//! * constant subtrees are folded at lowering time (only when folding
//!   cannot change error behaviour: division by zero, overflow, and
//!   unbound names still surface at evaluation time, in the same
//!   left-to-right order as the recursive evaluator),
//! * evaluation ([`eval_ops`]) is a non-recursive stack machine over a
//!   caller-provided scratch buffer — no hashing, no allocation on the
//!   hot path, and a fast path for the ubiquitous single-op expression.
//!
//! Error semantics are bit-compatible with [`crate::eval`]: the same
//! [`EvalError`] values in the same order for the same inputs.

use crate::ast::{BinOp, Expr, UnOp};
use crate::expr::{apply_bin, EvalError};

/// One postfix operation of a lowered expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Push a constant.
    Const(i64),
    /// Push the evaluating process's rank.
    Rank,
    /// Push the number of processes.
    NProcs,
    /// Push variable slot `0` of the per-process state; errors with
    /// [`EvalError::UnboundVar`] while the slot is unbound.
    Load(u32),
    /// Push parameter slot `0` of the shared parameter table; errors
    /// with [`EvalError::UnboundParam`] if the slot has no binding.
    Param(u32),
    /// Push `inputs[k]`, erroring with [`EvalError::MissingInput`].
    Input(u32),
    /// Negate the top of stack (checked).
    Neg,
    /// Logical not of the top of stack.
    Not,
    /// Apply a binary operator to the top two stack values.
    Bin(BinOp),
}

/// Interns variable and parameter names into dense slot indices during
/// lowering. Implementations decide the slot layout (e.g. declared
/// variables first); lowering only requires that equal names map to
/// equal slots.
pub trait SlotResolver {
    /// Slot for variable `name` (interning it if new).
    fn var_slot(&mut self, name: &str) -> u32;
    /// Slot for parameter `name` (interning it if new).
    fn param_slot(&mut self, name: &str) -> u32;
}

/// Lowers `expr` to postfix ops appended to `out`, interning names via
/// `resolver` and folding constant subtrees whose evaluation cannot
/// fail.
pub fn lower_expr(expr: &Expr, resolver: &mut dyn SlotResolver, out: &mut Vec<Op>) {
    match expr {
        Expr::Int(v) => out.push(Op::Const(*v)),
        Expr::Rank => out.push(Op::Rank),
        Expr::NProcs => out.push(Op::NProcs),
        Expr::Var(v) => out.push(Op::Load(resolver.var_slot(v))),
        Expr::Param(p) => out.push(Op::Param(resolver.param_slot(p))),
        Expr::Input(k) => out.push(Op::Input(*k)),
        Expr::Unary(op, a) => {
            let start = out.len();
            lower_expr(a, resolver, out);
            if let Some(v) = single_const(out, start) {
                let folded = match op {
                    UnOp::Neg => v.checked_neg(),
                    UnOp::Not => Some(i64::from(v == 0)),
                };
                if let Some(f) = folded {
                    out[start] = Op::Const(f);
                    return;
                }
            }
            out.push(match op {
                UnOp::Neg => Op::Neg,
                UnOp::Not => Op::Not,
            });
        }
        Expr::Binary(op, a, b) => {
            let a_start = out.len();
            lower_expr(a, resolver, out);
            let a_const = single_const(out, a_start);
            let b_start = out.len();
            lower_expr(b, resolver, out);
            let b_const = single_const(out, b_start);
            if let (Some(x), Some(y)) = (a_const, b_const) {
                if let Ok(v) = apply_bin(*op, x, y) {
                    out.truncate(a_start);
                    out.push(Op::Const(v));
                    return;
                }
            }
            out.push(Op::Bin(*op));
        }
    }
}

/// The value of the subexpression starting at `start`, if it lowered to
/// exactly one `Const` op.
fn single_const(out: &[Op], start: usize) -> Option<i64> {
    match out[start..] {
        [Op::Const(v)] => Some(v),
        _ => None,
    }
}

/// Everything a lowered expression needs at evaluation time. Variable
/// state is a flat slice (plus a per-slot bound flag reproducing the
/// "read before any assignment" error of the map-based evaluator);
/// parameters are a shared `Option` table; name tables are only
/// consulted to construct error values.
#[derive(Debug)]
pub struct SlotEnv<'a> {
    /// Rank of the evaluating process.
    pub rank: i64,
    /// Total number of processes.
    pub nprocs: i64,
    /// Per-process variable values, indexed by [`Op::Load`] slot.
    pub vars: &'a [i64],
    /// Whether each variable slot is bound (declared, or assigned at
    /// least once).
    pub bound: &'a [bool],
    /// Variable slot names (for [`EvalError::UnboundVar`]).
    pub var_names: &'a [String],
    /// Parameter values, indexed by [`Op::Param`] slot; `None` = unbound.
    pub params: &'a [Option<i64>],
    /// Parameter slot names (for [`EvalError::UnboundParam`]).
    pub param_names: &'a [String],
    /// Program input data.
    pub inputs: &'a [i64],
}

/// Evaluates a lowered postfix op array against `env`, using `stack` as
/// scratch (cleared on entry; reuse one buffer across calls to avoid
/// allocation).
///
/// # Errors
///
/// Exactly the errors of [`crate::eval`] on the equivalent tree, in the
/// same order.
#[inline]
pub fn eval_ops(ops: &[Op], env: &SlotEnv<'_>, stack: &mut Vec<i64>) -> Result<i64, EvalError> {
    // Fast path: the overwhelmingly common single-op expression
    // (a literal, a loop variable, a parameter).
    if let [op] = ops {
        return leaf(*op, env);
    }
    // Fast path: `leaf ⊕ leaf` (`i < n`, `i + 1`, `rank - 1`, …). A
    // trailing `Bin` in a three-op array forces both operands to be
    // leaves, and left-before-right matches the tree evaluator's error
    // order.
    if let [a, b, Op::Bin(bin)] = ops {
        return apply_bin(*bin, leaf(*a, env)?, leaf(*b, env)?);
    }
    stack.clear();
    for &op in ops {
        let v = match op {
            Op::Neg => {
                let a = stack.pop().expect("lowered ops are well-formed");
                a.checked_neg().ok_or(EvalError::Overflow)?
            }
            Op::Not => {
                let a = stack.pop().expect("lowered ops are well-formed");
                i64::from(a == 0)
            }
            Op::Bin(bin) => {
                let b = stack.pop().expect("lowered ops are well-formed");
                let a = stack.pop().expect("lowered ops are well-formed");
                apply_bin(bin, a, b)?
            }
            leaf_op => leaf(leaf_op, env)?,
        };
        stack.push(v);
    }
    Ok(stack.pop().expect("lowered ops produce one value"))
}

#[inline(always)]
fn leaf(op: Op, env: &SlotEnv<'_>) -> Result<i64, EvalError> {
    Ok(match op {
        Op::Const(v) => v,
        Op::Rank => env.rank,
        Op::NProcs => env.nprocs,
        Op::Load(s) => {
            let s = s as usize;
            if !env.bound[s] {
                return Err(EvalError::UnboundVar(env.var_names[s].clone()));
            }
            env.vars[s]
        }
        Op::Param(s) => {
            let s = s as usize;
            env.params[s].ok_or_else(|| EvalError::UnboundParam(env.param_names[s].clone()))?
        }
        Op::Input(k) => env
            .inputs
            .get(k as usize)
            .copied()
            .ok_or(EvalError::MissingInput(k))?,
        Op::Neg | Op::Not | Op::Bin(_) => unreachable!("leaf() called on a non-leaf op"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Expr as E;
    use crate::expr::{eval, Env};
    use std::collections::HashMap;

    /// A resolver over fixed tables, for tests.
    struct Tables {
        vars: Vec<String>,
        params: Vec<String>,
    }

    impl SlotResolver for Tables {
        fn var_slot(&mut self, name: &str) -> u32 {
            match self.vars.iter().position(|v| v == name) {
                Some(i) => i as u32,
                None => {
                    self.vars.push(name.to_string());
                    (self.vars.len() - 1) as u32
                }
            }
        }
        fn param_slot(&mut self, name: &str) -> u32 {
            match self.params.iter().position(|v| v == name) {
                Some(i) => i as u32,
                None => {
                    self.params.push(name.to_string());
                    (self.params.len() - 1) as u32
                }
            }
        }
    }

    fn lower(e: &E) -> (Vec<Op>, Tables) {
        let mut t = Tables {
            vars: Vec::new(),
            params: Vec::new(),
        };
        let mut ops = Vec::new();
        lower_expr(e, &mut t, &mut ops);
        (ops, t)
    }

    /// Evaluates both ways against equivalent environments and asserts
    /// the results (value or error) are identical.
    fn agree(e: &E, env: &Env) {
        let (ops, t) = lower(e);
        let vars: Vec<i64> = t
            .vars
            .iter()
            .map(|v| env.vars.get(v).copied().unwrap_or(0))
            .collect();
        let bound: Vec<bool> = t.vars.iter().map(|v| env.vars.contains_key(v)).collect();
        let params: Vec<Option<i64>> = t
            .params
            .iter()
            .map(|p| env.params.get(p).copied())
            .collect();
        let slot_env = SlotEnv {
            rank: env.rank,
            nprocs: env.nprocs,
            vars: &vars,
            bound: &bound,
            var_names: &t.vars,
            params: &params,
            param_names: &t.params,
            inputs: &env.inputs,
        };
        let mut stack = Vec::new();
        assert_eq!(eval(e, env), eval_ops(&ops, &slot_env, &mut stack), "{e:?}");
    }

    #[test]
    fn constant_subtrees_fold() {
        let e = E::bin(
            BinOp::Add,
            E::bin(BinOp::Mul, E::Int(2), E::Int(3)),
            E::Int(1),
        );
        let (ops, _) = lower(&e);
        assert_eq!(ops, vec![Op::Const(7)]);
    }

    #[test]
    fn failing_folds_are_left_for_runtime() {
        // 1/0 must stay a runtime error, not fold or vanish.
        let e = E::bin(BinOp::Div, E::Int(1), E::Int(0));
        let (ops, _) = lower(&e);
        assert_eq!(ops.len(), 3);
        let env = Env::new(0, 4);
        agree(&e, &env);
        // Overflow likewise.
        let e = E::bin(BinOp::Add, E::Int(i64::MAX), E::Int(1));
        let (ops, _) = lower(&e);
        assert_eq!(ops.len(), 3);
        agree(&e, &env);
    }

    #[test]
    fn rank_expressions_match_tree_eval() {
        let env = Env::new(3, 8);
        let e = E::bin(
            BinOp::Mod,
            E::bin(BinOp::Sub, E::Rank, E::Int(1)),
            E::NProcs,
        );
        agree(&e, &env);
        let e = E::bin(BinOp::Eq, E::bin(BinOp::Mod, E::Rank, E::Int(2)), E::Int(0));
        agree(&e, &env);
    }

    #[test]
    fn vars_params_inputs_match_tree_eval() {
        let mut env = Env::new(1, 4);
        env.vars.insert("i".into(), 5);
        env.params.insert("iters".into(), 10);
        env.inputs = vec![42];
        for e in [
            E::bin(BinOp::Lt, E::Var("i".into()), E::Param("iters".into())),
            E::bin(BinOp::Add, E::Input(0), E::Var("i".into())),
            E::Var("missing".into()),
            E::Param("missing".into()),
            E::Input(3),
        ] {
            agree(&e, &env);
        }
    }

    #[test]
    fn unary_ops_match_tree_eval() {
        let mut env = Env::new(2, 4);
        env.vars.insert("x".into(), -7);
        for e in [
            E::Unary(UnOp::Neg, Box::new(E::Var("x".into()))),
            E::Unary(UnOp::Not, Box::new(E::Var("x".into()))),
            E::Unary(UnOp::Not, Box::new(E::Int(0))),
            E::Unary(UnOp::Neg, Box::new(E::Int(i64::MIN))),
        ] {
            agree(&e, &env);
        }
    }

    #[test]
    fn error_order_is_left_to_right() {
        // (1/0) + unbound: the division error wins, as in tree eval.
        let env = Env::new(0, 4);
        let e = E::bin(
            BinOp::Add,
            E::bin(BinOp::Div, E::Int(1), E::Int(0)),
            E::Var("nope".into()),
        );
        agree(&e, &env);
        assert_eq!(eval(&e, &env), Err(EvalError::DivideByZero));
    }

    #[test]
    fn folding_ignores_error_masking_operators() {
        // 0 * (1/0): no algebraic folding — the runtime error survives.
        let env = Env::new(0, 4);
        let e = E::bin(
            BinOp::Mul,
            E::Int(0),
            E::bin(BinOp::Div, E::Int(1), E::Int(0)),
        );
        agree(&e, &env);
        assert_eq!(eval(&e, &env), Err(EvalError::DivideByZero));
    }

    #[test]
    fn deep_mixed_expression_agrees() {
        let mut env = Env::new(5, 8);
        env.vars.insert("i".into(), 3);
        env.params.insert("n".into(), 100);
        let mut maps = HashMap::new();
        maps.insert("i", 3i64);
        // ((rank + i) % nprocs) * (n - 2) + (4 / 2)
        let e = E::bin(
            BinOp::Add,
            E::bin(
                BinOp::Mul,
                E::bin(
                    BinOp::Mod,
                    E::bin(BinOp::Add, E::Rank, E::Var("i".into())),
                    E::NProcs,
                ),
                E::bin(BinOp::Sub, E::Param("n".into()), E::Int(2)),
            ),
            E::bin(BinOp::Div, E::Int(4), E::Int(2)),
        );
        agree(&e, &env);
        // The 4/2 folded away.
        let (ops, _) = lower(&e);
        assert!(ops.contains(&Op::Const(2)));
    }
}
