//! Pretty-printer for MPSL programs.
//!
//! The output re-parses to a structurally identical program (modulo
//! statement ids, which are position-derived and therefore also equal) —
//! this round-trip property is enforced by tests and by a property test in
//! the crate's test suite.

use crate::ast::{Block, Expr, Program, RecvSrc, StmtKind, UnOp};
use std::fmt::Write;

/// Renders an expression with minimal parentheses.
pub fn expr_to_string(e: &Expr) -> String {
    let mut s = String::new();
    write_expr(&mut s, e, 0);
    s
}

fn write_expr(out: &mut String, e: &Expr, parent_prec: u8) {
    match e {
        Expr::Int(v) => {
            let _ = write!(out, "{v}");
        }
        Expr::Rank => out.push_str("rank"),
        Expr::NProcs => out.push_str("nprocs"),
        Expr::Param(p) => out.push_str(p),
        Expr::Var(v) => out.push_str(v),
        Expr::Input(k) => {
            let _ = write!(out, "input({k})");
        }
        Expr::Unary(op, inner) => {
            out.push(match op {
                UnOp::Neg => '-',
                UnOp::Not => '!',
            });
            // Unary binds tighter than any binary operator; nested
            // unaries and negative literals need parentheses so that
            // e.g. `-(-1)` does not print as `--1` (which would re-lex
            // as two minus tokens).
            let needs_parens = matches!(inner.as_ref(), Expr::Binary(..) | Expr::Unary(..))
                || matches!(inner.as_ref(), Expr::Int(v) if *v < 0);
            if needs_parens {
                out.push('(');
                write_expr(out, inner, 0);
                out.push(')');
            } else {
                write_expr(out, inner, u8::MAX);
            }
        }
        Expr::Binary(op, a, b) => {
            let prec = op.precedence();
            let need_parens = prec < parent_prec;
            if need_parens {
                out.push('(');
            }
            write_expr(out, a, prec);
            let _ = write!(out, " {} ", op.symbol());
            // Right operand gets prec+1: all our binary operators are
            // left-associative.
            write_expr(out, b, prec + 1);
            if need_parens {
                out.push(')');
            }
        }
    }
}

fn is_default_size(e: &Expr) -> bool {
    matches!(e, Expr::Int(8))
}

fn write_block(out: &mut String, block: &Block, indent: usize) {
    for stmt in block {
        write_stmt(out, &stmt.kind, indent);
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_stmt(out: &mut String, kind: &StmtKind, indent: usize) {
    pad(out, indent);
    match kind {
        StmtKind::Compute { cost } => {
            let _ = writeln!(out, "compute {};", expr_to_string(cost));
        }
        StmtKind::Assign { var, value } => {
            let _ = writeln!(out, "{var} := {};", expr_to_string(value));
        }
        StmtKind::Send { dest, size_bits } => {
            if is_default_size(size_bits) {
                let _ = writeln!(out, "send to {};", expr_to_string(dest));
            } else {
                let _ = writeln!(
                    out,
                    "send to {} size {};",
                    expr_to_string(dest),
                    expr_to_string(size_bits)
                );
            }
        }
        StmtKind::Recv { src } => match src {
            RecvSrc::Any => {
                let _ = writeln!(out, "recv from any;");
            }
            RecvSrc::Rank(e) => {
                let _ = writeln!(out, "recv from {};", expr_to_string(e));
            }
        },
        StmtKind::Checkpoint { label } => match label {
            Some(l) => {
                let _ = writeln!(out, "checkpoint \"{l}\";");
            }
            None => {
                let _ = writeln!(out, "checkpoint;");
            }
        },
        StmtKind::If {
            cond,
            then_branch,
            else_branch,
        } => {
            let _ = writeln!(out, "if {} {{", expr_to_string(cond));
            write_block(out, then_branch, indent + 1);
            pad(out, indent);
            if else_branch.is_empty() {
                out.push_str("}\n");
            } else {
                out.push_str("} else {\n");
                write_block(out, else_branch, indent + 1);
                pad(out, indent);
                out.push_str("}\n");
            }
        }
        StmtKind::While { cond, body } => {
            let _ = writeln!(out, "while {} {{", expr_to_string(cond));
            write_block(out, body, indent + 1);
            pad(out, indent);
            out.push_str("}\n");
        }
        StmtKind::For {
            var,
            from,
            to,
            body,
        } => {
            let _ = writeln!(
                out,
                "for {var} in {}..{} {{",
                expr_to_string(from),
                expr_to_string(to)
            );
            write_block(out, body, indent + 1);
            pad(out, indent);
            out.push_str("}\n");
        }
        StmtKind::Bcast { root, size_bits } => {
            if is_default_size(size_bits) {
                let _ = writeln!(out, "bcast from {};", expr_to_string(root));
            } else {
                let _ = writeln!(
                    out,
                    "bcast from {} size {};",
                    expr_to_string(root),
                    expr_to_string(size_bits)
                );
            }
        }
        StmtKind::Exchange { peer, size_bits } => {
            if is_default_size(size_bits) {
                let _ = writeln!(out, "exchange with {};", expr_to_string(peer));
            } else {
                let _ = writeln!(
                    out,
                    "exchange with {} size {};",
                    expr_to_string(peer),
                    expr_to_string(size_bits)
                );
            }
        }
    }
}

/// Renders a whole program as parseable MPSL source.
///
/// # Examples
///
/// ```
/// let p = acfc_mpsl::parse("program t; compute 1 + 2 * 3;")?;
/// let text = acfc_mpsl::to_source(&p);
/// let q = acfc_mpsl::parse(&text)?;
/// assert_eq!(p, q);
/// # Ok::<(), acfc_mpsl::ParseError>(())
/// ```
pub fn to_source(p: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "program {};", p.name);
    for (name, value) in &p.params {
        let _ = writeln!(out, "param {name} = {value};");
    }
    if !p.vars.is_empty() {
        let _ = writeln!(out, "var {};", p.vars.join(", "));
    }
    write_block(&mut out, &p.body, 0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn roundtrip(src: &str) {
        let p = parse(src).unwrap();
        let printed = to_source(&p);
        let q = parse(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        assert_eq!(p, q, "round-trip mismatch for:\n{printed}");
    }

    #[test]
    fn roundtrip_simple() {
        roundtrip("program t; param k = 3; var i, j; compute 1 + 2 * 3; i := (1 + 2) * 3;");
    }

    #[test]
    fn roundtrip_control_flow() {
        roundtrip(
            "program t; var i;
             if rank % 2 == 0 { send to rank + 1 size 128; } else { recv from rank - 1; }
             while i < 4 { checkpoint \"loop\"; i := i + 1; }
             for i in 0..nprocs { compute i; }",
        );
    }

    #[test]
    fn roundtrip_collectives_and_inputs() {
        roundtrip("program t; bcast from 0 size 32; exchange with input(1); recv from any;");
    }

    #[test]
    fn roundtrip_unary_and_nested_parens() {
        roundtrip("program t; compute -(1 + 2) * !rank; compute 10 - (3 - 2);");
    }

    #[test]
    fn default_size_omitted() {
        let p = parse("program t; send to 0;").unwrap();
        let s = to_source(&p);
        assert!(!s.contains("size"), "{s}");
        roundtrip("program t; send to 0;");
    }

    #[test]
    fn right_associative_parens_preserved() {
        // 10 - (3 - 2) must NOT print as 10 - 3 - 2.
        let p = parse("program t; compute 10 - (3 - 2);").unwrap();
        let s = to_source(&p);
        assert!(s.contains("10 - (3 - 2)"), "{s}");
    }
}
