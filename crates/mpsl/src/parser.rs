//! Recursive-descent parser for MPSL.
//!
//! Grammar (EBNF):
//!
//! ```text
//! program   := "program" IDENT ";" decl* stmt*
//! decl      := "param" IDENT "=" ["-"] INT ";"
//!            | "var" IDENT { "," IDENT } ";"
//! stmt      := "compute" expr ";"
//!            | IDENT ":=" expr ";"
//!            | "send" "to" expr [ "size" expr ] ";"
//!            | "recv" "from" ( "any" | expr ) ";"
//!            | "checkpoint" [ STRING ] ";"
//!            | "if" expr block [ "else" block ]
//!            | "while" expr block
//!            | "for" IDENT "in" expr ".." expr block
//!            | "bcast" "from" expr [ "size" expr ] ";"
//!            | "exchange" "with" expr [ "size" expr ] ";"
//! block     := "{" stmt* "}"
//! expr      := precedence-climbing over || && (==|!=) (<|<=|>|>=) (+|-) (*|/|%)
//! primary   := INT | "rank" | "nprocs" | "input" "(" INT ")" | IDENT
//!            | "(" expr ")" | "-" primary | "!" primary
//! ```
//!
//! `rank`, `nprocs`, `input`, `any`, and all statement keywords are
//! reserved. An identifier in expression position resolves to
//! [`Expr::Param`] if declared with `param`, otherwise to [`Expr::Var`].

use crate::ast::{BinOp, Block, Expr, Program, RecvSrc, Stmt, StmtKind, UnOp};
use crate::lexer::{lex, LexError, Spanned, Tok};
use std::collections::HashSet;
use std::fmt;

/// A parse error with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// 1-based line (0 if end of input).
    pub line: u32,
    /// 1-based column (0 if end of input).
    pub col: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> ParseError {
        ParseError {
            message: e.message,
            line: e.line,
            col: e.col,
        }
    }
}

const RESERVED: &[&str] = &[
    "program",
    "param",
    "var",
    "compute",
    "send",
    "recv",
    "checkpoint",
    "if",
    "else",
    "while",
    "for",
    "in",
    "to",
    "from",
    "with",
    "size",
    "any",
    "rank",
    "nprocs",
    "input",
    "bcast",
    "exchange",
];

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
    params: HashSet<String>,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn here(&self) -> (u32, u32) {
        self.toks
            .get(self.pos)
            .map(|s| (s.line, s.col))
            .unwrap_or((0, 0))
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        let (line, col) = self.here();
        ParseError {
            message: message.into(),
            line,
            col,
        }
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|s| s.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Tok) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == want => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => Err(self.err(format!("expected {want}, found {t}"))),
            None => Err(self.err(format!("expected {want}, found end of input"))),
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(Tok::Ident(s)) if s == kw => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => Err(self.err(format!("expected keyword `{kw}`, found {t}"))),
            None => Err(self.err(format!("expected keyword `{kw}`, found end of input"))),
        }
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s == kw)
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(Tok::Ident(s)) if !RESERVED.contains(&s.as_str()) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            Some(Tok::Ident(s)) => Err(self.err(format!("`{s}` is a reserved word"))),
            Some(t) => Err(self.err(format!("expected identifier, found {t}"))),
            None => Err(self.err("expected identifier, found end of input")),
        }
    }

    fn expect_int(&mut self) -> Result<i64, ParseError> {
        match self.peek() {
            Some(Tok::Int(v)) => {
                let v = *v;
                self.pos += 1;
                Ok(v)
            }
            Some(t) => Err(self.err(format!("expected integer, found {t}"))),
            None => Err(self.err("expected integer, found end of input")),
        }
    }

    fn parse_program(&mut self) -> Result<Program, ParseError> {
        self.expect_kw("program")?;
        let name = self.expect_ident()?;
        self.expect(&Tok::Semi)?;
        let mut params = Vec::new();
        let mut vars = Vec::new();
        loop {
            if self.at_kw("param") {
                self.pos += 1;
                let name = self.expect_ident()?;
                self.expect(&Tok::Eq)?;
                let neg = if self.peek() == Some(&Tok::Minus) {
                    self.pos += 1;
                    true
                } else {
                    false
                };
                let v = self.expect_int()?;
                self.expect(&Tok::Semi)?;
                if params.iter().any(|(n, _): &(String, i64)| *n == name) {
                    return Err(self.err(format!("duplicate param `{name}`")));
                }
                self.params.insert(name.clone());
                params.push((name, if neg { -v } else { v }));
            } else if self.at_kw("var") {
                self.pos += 1;
                loop {
                    let name = self.expect_ident()?;
                    if vars.contains(&name) {
                        return Err(self.err(format!("duplicate var `{name}`")));
                    }
                    if self.params.contains(&name) {
                        return Err(self.err(format!("`{name}` already declared as param")));
                    }
                    vars.push(name);
                    if self.peek() == Some(&Tok::Comma) {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                self.expect(&Tok::Semi)?;
            } else {
                break;
            }
        }
        let mut body = Vec::new();
        while self.peek().is_some() {
            body.push(self.parse_stmt()?);
        }
        Ok(Program::new(name, params, vars, body))
    }

    fn parse_block(&mut self) -> Result<Block, ParseError> {
        self.expect(&Tok::LBrace)?;
        let mut out = Vec::new();
        while self.peek() != Some(&Tok::RBrace) {
            if self.peek().is_none() {
                return Err(self.err("unclosed block: expected `}`"));
            }
            out.push(self.parse_stmt()?);
        }
        self.expect(&Tok::RBrace)?;
        Ok(out)
    }

    fn parse_size(&mut self) -> Result<Expr, ParseError> {
        if self.at_kw("size") {
            self.pos += 1;
            self.parse_expr()
        } else {
            // Default control-message size used throughout the paper's
            // analysis: 8 bits.
            Ok(Expr::Int(8))
        }
    }

    fn parse_stmt(&mut self) -> Result<Stmt, ParseError> {
        let kind = match self.peek() {
            Some(Tok::Ident(kw)) => match kw.as_str() {
                "compute" => {
                    self.pos += 1;
                    let cost = self.parse_expr()?;
                    self.expect(&Tok::Semi)?;
                    StmtKind::Compute { cost }
                }
                "send" => {
                    self.pos += 1;
                    self.expect_kw("to")?;
                    let dest = self.parse_expr()?;
                    let size_bits = self.parse_size()?;
                    self.expect(&Tok::Semi)?;
                    StmtKind::Send { dest, size_bits }
                }
                "recv" => {
                    self.pos += 1;
                    self.expect_kw("from")?;
                    let src = if self.at_kw("any") {
                        self.pos += 1;
                        RecvSrc::Any
                    } else {
                        RecvSrc::Rank(self.parse_expr()?)
                    };
                    self.expect(&Tok::Semi)?;
                    StmtKind::Recv { src }
                }
                "checkpoint" => {
                    self.pos += 1;
                    let label = if let Some(Tok::Str(s)) = self.peek() {
                        let s = s.clone();
                        self.pos += 1;
                        Some(s)
                    } else {
                        None
                    };
                    self.expect(&Tok::Semi)?;
                    StmtKind::Checkpoint { label }
                }
                "if" => {
                    self.pos += 1;
                    let cond = self.parse_expr()?;
                    let then_branch = self.parse_block()?;
                    let else_branch = if self.at_kw("else") {
                        self.pos += 1;
                        self.parse_block()?
                    } else {
                        Vec::new()
                    };
                    StmtKind::If {
                        cond,
                        then_branch,
                        else_branch,
                    }
                }
                "while" => {
                    self.pos += 1;
                    let cond = self.parse_expr()?;
                    let body = self.parse_block()?;
                    StmtKind::While { cond, body }
                }
                "for" => {
                    self.pos += 1;
                    let var = self.expect_ident()?;
                    self.expect_kw("in")?;
                    let from = self.parse_expr()?;
                    self.expect(&Tok::DotDot)?;
                    let to = self.parse_expr()?;
                    let body = self.parse_block()?;
                    StmtKind::For {
                        var,
                        from,
                        to,
                        body,
                    }
                }
                "bcast" => {
                    self.pos += 1;
                    self.expect_kw("from")?;
                    let root = self.parse_expr()?;
                    let size_bits = self.parse_size()?;
                    self.expect(&Tok::Semi)?;
                    StmtKind::Bcast { root, size_bits }
                }
                "exchange" => {
                    self.pos += 1;
                    self.expect_kw("with")?;
                    let peer = self.parse_expr()?;
                    let size_bits = self.parse_size()?;
                    self.expect(&Tok::Semi)?;
                    StmtKind::Exchange { peer, size_bits }
                }
                _ => {
                    // Assignment: IDENT := expr ;
                    let var = self.expect_ident()?;
                    self.expect(&Tok::Assign)?;
                    let value = self.parse_expr()?;
                    self.expect(&Tok::Semi)?;
                    StmtKind::Assign { var, value }
                }
            },
            Some(t) => return Err(self.err(format!("expected statement, found {t}"))),
            None => return Err(self.err("expected statement, found end of input")),
        };
        Ok(Stmt::new(kind))
    }

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_bin(0)
    }

    fn peek_binop(&self) -> Option<BinOp> {
        Some(match self.peek()? {
            Tok::OrOr => BinOp::Or,
            Tok::AndAnd => BinOp::And,
            Tok::EqEq => BinOp::Eq,
            Tok::Ne => BinOp::Ne,
            Tok::Lt => BinOp::Lt,
            Tok::Le => BinOp::Le,
            Tok::Gt => BinOp::Gt,
            Tok::Ge => BinOp::Ge,
            Tok::Plus => BinOp::Add,
            Tok::Minus => BinOp::Sub,
            Tok::Star => BinOp::Mul,
            Tok::Slash => BinOp::Div,
            Tok::Percent => BinOp::Mod,
            _ => return None,
        })
    }

    fn parse_bin(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_primary()?;
        while let Some(op) = self.peek_binop() {
            let prec = op.precedence();
            if prec < min_prec {
                break;
            }
            self.pos += 1;
            let rhs = self.parse_bin(prec + 1)?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        match self.bump() {
            Some(Tok::Int(v)) => Ok(Expr::Int(v)),
            Some(Tok::Minus) => {
                let inner = self.parse_primary()?;
                // Canonical form: a negated literal *is* a literal, so
                // `-1` parses to `Int(-1)` and printing round-trips.
                Ok(match inner {
                    Expr::Int(v) => Expr::Int(-v),
                    other => Expr::Unary(UnOp::Neg, Box::new(other)),
                })
            }
            Some(Tok::Bang) => Ok(Expr::Unary(UnOp::Not, Box::new(self.parse_primary()?))),
            Some(Tok::LParen) => {
                let e = self.parse_expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Some(Tok::Ident(s)) => match s.as_str() {
                "rank" => Ok(Expr::Rank),
                "nprocs" => Ok(Expr::NProcs),
                "input" => {
                    self.expect(&Tok::LParen)?;
                    let k = self.expect_int()?;
                    self.expect(&Tok::RParen)?;
                    if k < 0 || k > u32::MAX as i64 {
                        self.pos -= 1;
                        return Err(self.err("input index out of range"));
                    }
                    Ok(Expr::Input(k as u32))
                }
                other if RESERVED.contains(&other) => {
                    self.pos -= 1;
                    Err(self.err(format!("`{other}` cannot appear in an expression")))
                }
                other => {
                    if self.params.contains(other) {
                        Ok(Expr::Param(other.to_string()))
                    } else {
                        Ok(Expr::Var(other.to_string()))
                    }
                }
            },
            Some(t) => {
                self.pos -= 1;
                Err(self.err(format!("expected expression, found {t}")))
            }
            None => Err(self.err("expected expression, found end of input")),
        }
    }
}

/// Parses MPSL source text into a [`Program`].
///
/// # Errors
///
/// Returns a [`ParseError`] (with line/column) on lexical or syntactic
/// errors, duplicate declarations, or use of reserved words as names.
///
/// # Examples
///
/// ```
/// let p = acfc_mpsl::parse(
///     "program ring; var i;
///      for i in 0..4 {
///        send to (rank + 1) % nprocs size 256;
///        recv from (rank - 1) % nprocs;
///        checkpoint;
///      }",
/// )?;
/// assert_eq!(p.name, "ring");
/// # Ok::<(), acfc_mpsl::ParseError>(())
/// ```
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        params: HashSet::new(),
    };
    p.parse_program()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_program() {
        let p = parse("program t; compute 1;").unwrap();
        assert_eq!(p.name, "t");
        assert_eq!(p.body.len(), 1);
    }

    #[test]
    fn parses_decls() {
        let p = parse("program t; param n = 5; param m = -2; var a, b; compute n;").unwrap();
        assert_eq!(p.params, vec![("n".into(), 5), ("m".into(), -2)]);
        assert_eq!(p.vars, vec!["a".to_string(), "b".to_string()]);
        // `n` resolves to Param, not Var.
        assert!(matches!(
            &p.body[0].kind,
            StmtKind::Compute { cost: Expr::Param(n) } if n == "n"
        ));
    }

    #[test]
    fn precedence_is_conventional() {
        let p = parse("program t; compute 1 + 2 * 3;").unwrap();
        let StmtKind::Compute { cost } = &p.body[0].kind else {
            panic!()
        };
        assert_eq!(
            *cost,
            Expr::bin(
                BinOp::Add,
                Expr::Int(1),
                Expr::bin(BinOp::Mul, Expr::Int(2), Expr::Int(3))
            )
        );
    }

    #[test]
    fn left_associativity() {
        let p = parse("program t; compute 10 - 3 - 2;").unwrap();
        let StmtKind::Compute { cost } = &p.body[0].kind else {
            panic!()
        };
        assert_eq!(
            *cost,
            Expr::bin(
                BinOp::Sub,
                Expr::bin(BinOp::Sub, Expr::Int(10), Expr::Int(3)),
                Expr::Int(2)
            )
        );
    }

    #[test]
    fn parses_send_recv_checkpoint() {
        let p = parse(
            "program t;
             send to (rank + 1) % nprocs size 1024;
             recv from any;
             recv from rank - 1;
             checkpoint \"after exchange\";",
        )
        .unwrap();
        assert!(matches!(p.body[0].kind, StmtKind::Send { .. }));
        assert!(matches!(
            p.body[1].kind,
            StmtKind::Recv { src: RecvSrc::Any }
        ));
        assert!(matches!(
            p.body[3].kind,
            StmtKind::Checkpoint { label: Some(_) }
        ));
    }

    #[test]
    fn default_size_is_eight_bits() {
        let p = parse("program t; send to 0;").unwrap();
        let StmtKind::Send { size_bits, .. } = &p.body[0].kind else {
            panic!()
        };
        assert_eq!(*size_bits, Expr::Int(8));
    }

    #[test]
    fn parses_control_flow() {
        let p = parse(
            "program t; var i;
             if rank % 2 == 0 { compute 1; } else { compute 2; }
             while i < 3 { i := i + 1; }
             for i in 0..5 { checkpoint; }",
        )
        .unwrap();
        assert!(matches!(p.body[0].kind, StmtKind::If { .. }));
        assert!(matches!(p.body[1].kind, StmtKind::While { .. }));
        assert!(matches!(p.body[2].kind, StmtKind::For { .. }));
    }

    #[test]
    fn parses_collectives() {
        let p = parse("program t; bcast from 0 size 64; exchange with rank + 1;").unwrap();
        assert!(matches!(p.body[0].kind, StmtKind::Bcast { .. }));
        assert!(matches!(p.body[1].kind, StmtKind::Exchange { .. }));
    }

    #[test]
    fn parses_input_expr() {
        let p = parse("program t; send to input(0) size 8;").unwrap();
        let StmtKind::Send { dest, .. } = &p.body[0].kind else {
            panic!()
        };
        assert_eq!(*dest, Expr::Input(0));
    }

    #[test]
    fn reserved_words_rejected_as_names() {
        assert!(parse("program while;").is_err());
        assert!(parse("program t; var send;").is_err());
        assert!(parse("program t; compute size;").is_err());
    }

    #[test]
    fn duplicate_declarations_rejected() {
        assert!(parse("program t; var a, a;").is_err());
        assert!(parse("program t; param a = 1; param a = 2;").is_err());
        assert!(parse("program t; param a = 1; var a;").is_err());
    }

    #[test]
    fn error_positions_reported() {
        let err = parse("program t;\n  compute ;").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("expression"));
    }

    #[test]
    fn unclosed_block_is_error() {
        let err = parse("program t; while 1 { compute 1;").unwrap_err();
        assert!(err.message.contains("unclosed") || err.message.contains('}'));
    }

    #[test]
    fn unary_operators() {
        let p = parse("program t; compute -rank + !0;").unwrap();
        let StmtKind::Compute { cost } = &p.body[0].kind else {
            panic!()
        };
        assert_eq!(
            *cost,
            Expr::bin(
                BinOp::Add,
                Expr::Unary(UnOp::Neg, Box::new(Expr::Rank)),
                Expr::Unary(UnOp::Not, Box::new(Expr::Int(0)))
            )
        );
    }
}
