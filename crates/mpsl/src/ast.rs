//! Abstract syntax for MPSL, the message-passing source language.
//!
//! MPSL is a small SPMD language: every process runs the same program with a
//! distinct *rank* in `0..nprocs`. The statement forms mirror exactly the
//! events of the paper's system model (§2): **computation**, **send**,
//! **receive**, and **checkpoint**, plus the control structure (loops and
//! conditions) that the control-flow graph of §2 represents.

use std::fmt;

/// A stable identifier for a statement in a [`Program`].
///
/// Identifiers are assigned by [`Program::renumber`] in a deterministic
/// pre-order walk, so the same program text always yields the same ids.
/// CFG nodes, checkpoint records, and simulator traces all refer back to
/// statements through this id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StmtId(pub u32);

impl fmt::Display for StmtId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Binary operators. Comparison and logical operators evaluate to `0`/`1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (truncating; division by zero is an evaluation error)
    Div,
    /// `%` (Euclidean remainder, always non-negative for positive modulus)
    Mod,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (non-short-circuit on purpose: expressions are effect-free)
    And,
    /// `||`
    Or,
}

impl BinOp {
    /// The surface-syntax token for this operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }

    /// Parser precedence (higher binds tighter).
    pub fn precedence(self) -> u8 {
        match self {
            BinOp::Or => 1,
            BinOp::And => 2,
            BinOp::Eq | BinOp::Ne => 3,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 4,
            BinOp::Add | BinOp::Sub => 5,
            BinOp::Mul | BinOp::Div | BinOp::Mod => 6,
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (`!`): zero becomes `1`, nonzero becomes `0`.
    Not,
}

/// Integer expressions.
///
/// Expressions are effect-free. The distinguished leaves are:
///
/// * [`Expr::Rank`] — the executing process's id (the paper's `myRank`),
/// * [`Expr::NProcs`] — the number of processes `n`,
/// * [`Expr::Param`] — a compile-time program parameter (e.g. iteration
///   counts), fixed per run,
/// * [`Expr::Input`] — an *input-dependent* value. The paper calls
///   communication patterns that depend on such values **irregular**
///   (§3.2); the offline analysis must treat them conservatively.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// The executing process's rank (`myRank` in the paper's examples).
    Rank,
    /// The number of processes `n`.
    NProcs,
    /// A named program parameter (resolved from [`Program::params`]).
    Param(String),
    /// A mutable local variable.
    Var(String),
    /// The `k`-th input value: data-dependent, hence *irregular* statically.
    Input(u32),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Convenience constructor for a binary node.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary(op, Box::new(lhs), Box::new(rhs))
    }

    /// `true` if the expression mentions [`Expr::Input`] anywhere, i.e. it
    /// is an *irregular* computation pattern in the paper's sense.
    pub fn mentions_input(&self) -> bool {
        match self {
            Expr::Input(_) => true,
            Expr::Unary(_, e) => e.mentions_input(),
            Expr::Binary(_, a, b) => a.mentions_input() || b.mentions_input(),
            _ => false,
        }
    }

    /// `true` if the expression mentions [`Expr::Rank`] anywhere.
    pub fn mentions_rank(&self) -> bool {
        match self {
            Expr::Rank => true,
            Expr::Unary(_, e) => e.mentions_rank(),
            Expr::Binary(_, a, b) => a.mentions_rank() || b.mentions_rank(),
            _ => false,
        }
    }

    /// `true` if the expression mentions any [`Expr::Var`].
    pub fn mentions_var(&self) -> bool {
        match self {
            Expr::Var(_) => true,
            Expr::Unary(_, e) => e.mentions_var(),
            Expr::Binary(_, a, b) => a.mentions_var() || b.mentions_var(),
            _ => false,
        }
    }

    /// Collects the names of all variables mentioned, in first-occurrence order.
    pub fn vars(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Var(v) if !out.contains(&v.as_str()) => {
                out.push(v);
            }
            Expr::Unary(_, e) => e.collect_vars(out),
            Expr::Binary(_, a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            _ => {}
        }
    }

    /// Substitutes every `Var(name)` with `replacement(name)` when the
    /// closure returns `Some`; other variables are left in place.
    pub fn substitute(&self, replacement: &dyn Fn(&str) -> Option<Expr>) -> Expr {
        match self {
            Expr::Var(v) => replacement(v).unwrap_or_else(|| self.clone()),
            Expr::Unary(op, e) => Expr::Unary(*op, Box::new(e.substitute(replacement))),
            Expr::Binary(op, a, b) => Expr::Binary(
                *op,
                Box::new(a.substitute(replacement)),
                Box::new(b.substitute(replacement)),
            ),
            other => other.clone(),
        }
    }
}

/// The source specification of a `recv` statement.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RecvSrc {
    /// Receive from the specific rank this expression evaluates to.
    Rank(Expr),
    /// Receive from any sender (the analogue of `MPI_ANY_SOURCE`); an
    /// irregular pattern for the offline analysis.
    Any,
}

impl RecvSrc {
    /// `true` when the source cannot be resolved statically — either
    /// [`RecvSrc::Any`] or an expression mentioning input data.
    pub fn is_irregular(&self) -> bool {
        match self {
            RecvSrc::Any => true,
            RecvSrc::Rank(e) => e.mentions_input(),
        }
    }
}

/// A sequence of statements.
pub type Block = Vec<Stmt>;

/// One statement: an id plus the statement form.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// Stable id; assigned by [`Program::renumber`].
    pub id: StmtId,
    /// The statement form.
    pub kind: StmtKind,
}

impl Stmt {
    /// Creates a statement with a placeholder id (`u32::MAX`); ids are
    /// assigned when the statement is installed into a [`Program`].
    pub fn new(kind: StmtKind) -> Stmt {
        Stmt {
            id: StmtId(u32::MAX),
            kind,
        }
    }
}

/// Statement forms.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// Local computation consuming `cost` simulated milliseconds.
    Compute {
        /// Cost expression, evaluated at run time (≥ 0).
        cost: Expr,
    },
    /// Assignment to a local variable.
    Assign {
        /// Variable name (must be declared).
        var: String,
        /// Right-hand side.
        value: Expr,
    },
    /// Point-to-point send of a `size_bits`-bit message to rank `dest`.
    Send {
        /// Destination rank expression.
        dest: Expr,
        /// Message size in bits (for the network delay model).
        size_bits: Expr,
    },
    /// Blocking point-to-point receive.
    Recv {
        /// Source specification.
        src: RecvSrc,
    },
    /// Take a local checkpoint (the paper's `chkpt` statement).
    Checkpoint {
        /// Optional user label, shown in diagnostics.
        label: Option<String>,
    },
    /// Conditional.
    If {
        /// Condition; nonzero means true.
        cond: Expr,
        /// Then branch.
        then_branch: Block,
        /// Else branch (possibly empty).
        else_branch: Block,
    },
    /// While loop.
    While {
        /// Loop condition; nonzero means true.
        cond: Expr,
        /// Loop body.
        body: Block,
    },
    /// Counted loop: `for var in from..to { body }`. Desugars to a `While`
    /// in the CFG and the interpreter, but is kept structured in the AST so
    /// the pretty-printer can round-trip it.
    For {
        /// Induction variable (must be declared).
        var: String,
        /// Inclusive lower bound.
        from: Expr,
        /// Exclusive upper bound.
        to: Expr,
        /// Loop body.
        body: Block,
    },
    /// Collective broadcast from rank `root` to all other ranks.
    ///
    /// §3.2: collective communication appears in the code of *every*
    /// process and reduces to send/receive statements; see
    /// [`Program::lower_collectives`].
    Bcast {
        /// Root rank expression (must be rank-independent).
        root: Expr,
        /// Message size in bits.
        size_bits: Expr,
    },
    /// Symmetric pairwise exchange with rank `peer`: send then receive.
    ///
    /// This is the idiom of the paper's Jacobi example (Figure 1): each
    /// process exchanges boundary data with a neighbour. It reduces to a
    /// send followed by a receive from the same peer.
    Exchange {
        /// Peer rank expression.
        peer: Expr,
        /// Message size in bits.
        size_bits: Expr,
    },
}

/// A complete MPSL program.
///
/// # Examples
///
/// ```
/// use acfc_mpsl::{parse, Program};
/// let p: Program = parse(
///     "program demo; var i; for i in 0..3 { compute 5; checkpoint; }",
/// ).unwrap();
/// assert_eq!(p.name, "demo");
/// assert_eq!(p.checkpoint_ids().len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Program name (from the `program <name>;` header).
    pub name: String,
    /// Named compile-time parameters with their default values.
    pub params: Vec<(String, i64)>,
    /// Declared variable names.
    pub vars: Vec<String>,
    /// Top-level statements.
    pub body: Block,
}

impl Program {
    /// Creates a program and assigns statement ids.
    pub fn new(
        name: impl Into<String>,
        params: Vec<(String, i64)>,
        vars: Vec<String>,
        body: Block,
    ) -> Program {
        let mut p = Program {
            name: name.into(),
            params,
            vars,
            body,
        };
        p.renumber();
        p
    }

    /// Reassigns all statement ids in deterministic pre-order.
    ///
    /// Call after structurally editing [`Program::body`]; all previously
    /// held [`StmtId`]s are invalidated.
    pub fn renumber(&mut self) {
        let mut next = 0u32;
        fn walk(block: &mut Block, next: &mut u32) {
            for stmt in block {
                stmt.id = StmtId(*next);
                *next += 1;
                match &mut stmt.kind {
                    StmtKind::If {
                        then_branch,
                        else_branch,
                        ..
                    } => {
                        walk(then_branch, next);
                        walk(else_branch, next);
                    }
                    StmtKind::While { body, .. } | StmtKind::For { body, .. } => walk(body, next),
                    _ => {}
                }
            }
        }
        walk(&mut self.body, &mut next);
    }

    /// Total number of statements (all nesting levels).
    pub fn stmt_count(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }

    /// Visits every statement in pre-order.
    pub fn visit(&self, f: &mut dyn FnMut(&Stmt)) {
        fn walk(block: &Block, f: &mut dyn FnMut(&Stmt)) {
            for stmt in block {
                f(stmt);
                match &stmt.kind {
                    StmtKind::If {
                        then_branch,
                        else_branch,
                        ..
                    } => {
                        walk(then_branch, f);
                        walk(else_branch, f);
                    }
                    StmtKind::While { body, .. } | StmtKind::For { body, .. } => walk(body, f),
                    _ => {}
                }
            }
        }
        walk(&self.body, f);
    }

    /// Visits every statement mutably in pre-order.
    pub fn visit_mut(&mut self, f: &mut dyn FnMut(&mut Stmt)) {
        fn walk(block: &mut Block, f: &mut dyn FnMut(&mut Stmt)) {
            for stmt in block {
                f(stmt);
                match &mut stmt.kind {
                    StmtKind::If {
                        then_branch,
                        else_branch,
                        ..
                    } => {
                        walk(then_branch, f);
                        walk(else_branch, f);
                    }
                    StmtKind::While { body, .. } | StmtKind::For { body, .. } => walk(body, f),
                    _ => {}
                }
            }
        }
        walk(&mut self.body, f);
    }

    /// Ids of all `checkpoint` statements, in pre-order.
    pub fn checkpoint_ids(&self) -> Vec<StmtId> {
        let mut out = Vec::new();
        self.visit(&mut |s| {
            if matches!(s.kind, StmtKind::Checkpoint { .. }) {
                out.push(s.id);
            }
        });
        out
    }

    /// Ids of all `send`/`bcast`/`exchange` statements, in pre-order.
    pub fn send_ids(&self) -> Vec<StmtId> {
        let mut out = Vec::new();
        self.visit(&mut |s| {
            if matches!(
                s.kind,
                StmtKind::Send { .. } | StmtKind::Bcast { .. } | StmtKind::Exchange { .. }
            ) {
                out.push(s.id);
            }
        });
        out
    }

    /// Ids of all `recv` statements, in pre-order.
    pub fn recv_ids(&self) -> Vec<StmtId> {
        let mut out = Vec::new();
        self.visit(&mut |s| {
            if matches!(s.kind, StmtKind::Recv { .. }) {
                out.push(s.id);
            }
        });
        out
    }

    /// Looks up a statement by id.
    pub fn stmt(&self, id: StmtId) -> Option<&Stmt> {
        fn find(block: &Block, id: StmtId) -> Option<&Stmt> {
            for stmt in block {
                if stmt.id == id {
                    return Some(stmt);
                }
                let inner = match &stmt.kind {
                    StmtKind::If {
                        then_branch,
                        else_branch,
                        ..
                    } => find(then_branch, id).or_else(|| find(else_branch, id)),
                    StmtKind::While { body, .. } | StmtKind::For { body, .. } => find(body, id),
                    _ => None,
                };
                if inner.is_some() {
                    return inner;
                }
            }
            None
        }
        find(&self.body, id)
    }

    /// The default value of parameter `name`, if declared.
    pub fn param(&self, name: &str) -> Option<i64> {
        self.params.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Replaces the default value of parameter `name`, returning `false`
    /// if the parameter is not declared.
    pub fn set_param(&mut self, name: &str, value: i64) -> bool {
        for (n, v) in &mut self.params {
            if n == name {
                *v = value;
                return true;
            }
        }
        false
    }

    /// Rewrites every collective statement (`bcast`, `exchange`) into its
    /// point-to-point reduction, as §3.2 prescribes, and renumbers.
    ///
    /// * `bcast root` becomes
    ///   `if rank == root { send to 0; ...; send to n-1 (skipping root) } else { recv from root }`
    ///   expressed as a rank-indexed loop so the program stays independent
    ///   of the concrete `nprocs`.
    /// * `exchange peer` becomes `send to peer; recv from peer;`.
    pub fn lower_collectives(&mut self) {
        fn lower_block(block: &mut Block, fresh: &mut u32) {
            let mut i = 0;
            while i < block.len() {
                let replace = match &block[i].kind {
                    StmtKind::Bcast { root, size_bits } => {
                        let root = root.clone();
                        let size_bits = size_bits.clone();
                        let loopvar = format!("__bc{fresh}");
                        *fresh += 1;
                        // if rank == root { for v in 0..nprocs { if v != rank { send to v } } }
                        // else { recv from root }
                        let send_all = Stmt::new(StmtKind::For {
                            var: loopvar.clone(),
                            from: Expr::Int(0),
                            to: Expr::NProcs,
                            body: vec![Stmt::new(StmtKind::If {
                                cond: Expr::bin(BinOp::Ne, Expr::Var(loopvar.clone()), Expr::Rank),
                                then_branch: vec![Stmt::new(StmtKind::Send {
                                    dest: Expr::Var(loopvar.clone()),
                                    size_bits: size_bits.clone(),
                                })],
                                else_branch: vec![],
                            })],
                        });
                        Some(vec![Stmt::new(StmtKind::If {
                            cond: Expr::bin(BinOp::Eq, Expr::Rank, root.clone()),
                            then_branch: vec![send_all],
                            else_branch: vec![Stmt::new(StmtKind::Recv {
                                src: RecvSrc::Rank(root),
                            })],
                        })])
                    }
                    StmtKind::Exchange { peer, size_bits } => Some(vec![
                        Stmt::new(StmtKind::Send {
                            dest: peer.clone(),
                            size_bits: size_bits.clone(),
                        }),
                        Stmt::new(StmtKind::Recv {
                            src: RecvSrc::Rank(peer.clone()),
                        }),
                    ]),
                    _ => None,
                };
                if let Some(repl) = replace {
                    let n = repl.len();
                    block.splice(i..=i, repl);
                    i += n;
                    continue;
                }
                match &mut block[i].kind {
                    StmtKind::If {
                        then_branch,
                        else_branch,
                        ..
                    } => {
                        lower_block(then_branch, fresh);
                        lower_block(else_branch, fresh);
                    }
                    StmtKind::While { body, .. } | StmtKind::For { body, .. } => {
                        lower_block(body, fresh)
                    }
                    _ => {}
                }
                i += 1;
            }
        }
        let mut fresh = 0;
        lower_block(&mut self.body, &mut fresh);
        // Loop variables introduced by bcast lowering need declarations.
        let mut needed: Vec<String> = Vec::new();
        self.visit(&mut |s| {
            if let StmtKind::For { var, .. } = &s.kind {
                if var.starts_with("__bc") && !needed.contains(var) {
                    needed.push(var.clone());
                }
            }
        });
        for v in needed {
            if !self.vars.contains(&v) {
                self.vars.push(v);
            }
        }
        self.renumber();
    }

    /// `true` if the program contains any collective statement.
    pub fn has_collectives(&self) -> bool {
        let mut yes = false;
        self.visit(&mut |s| {
            if matches!(s.kind, StmtKind::Bcast { .. } | StmtKind::Exchange { .. }) {
                yes = true;
            }
        });
        yes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Program {
        Program::new(
            "t",
            vec![("iters".into(), 4)],
            vec!["i".into()],
            vec![
                Stmt::new(StmtKind::Assign {
                    var: "i".into(),
                    value: Expr::Int(0),
                }),
                Stmt::new(StmtKind::While {
                    cond: Expr::bin(
                        BinOp::Lt,
                        Expr::Var("i".into()),
                        Expr::Param("iters".into()),
                    ),
                    body: vec![
                        Stmt::new(StmtKind::Compute { cost: Expr::Int(1) }),
                        Stmt::new(StmtKind::Checkpoint { label: None }),
                        Stmt::new(StmtKind::Assign {
                            var: "i".into(),
                            value: Expr::bin(BinOp::Add, Expr::Var("i".into()), Expr::Int(1)),
                        }),
                    ],
                }),
            ],
        )
    }

    #[test]
    fn renumber_assigns_preorder_ids() {
        let p = sample();
        let mut ids = Vec::new();
        p.visit(&mut |s| ids.push(s.id.0));
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn stmt_count_counts_nested() {
        assert_eq!(sample().stmt_count(), 5);
    }

    #[test]
    fn checkpoint_ids_found() {
        let p = sample();
        assert_eq!(p.checkpoint_ids(), vec![StmtId(3)]);
    }

    #[test]
    fn param_roundtrip() {
        let mut p = sample();
        assert_eq!(p.param("iters"), Some(4));
        assert!(p.set_param("iters", 9));
        assert_eq!(p.param("iters"), Some(9));
        assert!(!p.set_param("missing", 1));
    }

    #[test]
    fn exchange_lowering_produces_send_then_recv() {
        let mut p = Program::new(
            "x",
            vec![],
            vec![],
            vec![Stmt::new(StmtKind::Exchange {
                peer: Expr::bin(BinOp::Add, Expr::Rank, Expr::Int(1)),
                size_bits: Expr::Int(64),
            })],
        );
        p.lower_collectives();
        assert_eq!(p.body.len(), 2);
        assert!(matches!(p.body[0].kind, StmtKind::Send { .. }));
        assert!(matches!(p.body[1].kind, StmtKind::Recv { .. }));
    }

    #[test]
    fn bcast_lowering_splits_on_rank() {
        let mut p = Program::new(
            "b",
            vec![],
            vec![],
            vec![Stmt::new(StmtKind::Bcast {
                root: Expr::Int(0),
                size_bits: Expr::Int(8),
            })],
        );
        p.lower_collectives();
        assert_eq!(p.body.len(), 1);
        let StmtKind::If {
            then_branch,
            else_branch,
            ..
        } = &p.body[0].kind
        else {
            panic!("expected if");
        };
        assert!(matches!(then_branch[0].kind, StmtKind::For { .. }));
        assert!(matches!(else_branch[0].kind, StmtKind::Recv { .. }));
        assert!(!p.has_collectives());
        // The synthetic loop variable must have been declared.
        assert!(p.vars.iter().any(|v| v.starts_with("__bc")));
    }

    #[test]
    fn expr_irregularity_detection() {
        let e = Expr::bin(BinOp::Add, Expr::Rank, Expr::Input(0));
        assert!(e.mentions_input());
        assert!(e.mentions_rank());
        assert!(!e.mentions_var());
        assert!(RecvSrc::Any.is_irregular());
        assert!(RecvSrc::Rank(e).is_irregular());
        assert!(!RecvSrc::Rank(Expr::Rank).is_irregular());
    }

    #[test]
    fn substitute_replaces_vars() {
        let e = Expr::bin(BinOp::Add, Expr::Var("a".into()), Expr::Var("b".into()));
        let r = e.substitute(&|name| (name == "a").then_some(Expr::Int(7)));
        assert_eq!(
            r,
            Expr::bin(BinOp::Add, Expr::Int(7), Expr::Var("b".into()))
        );
    }
}
