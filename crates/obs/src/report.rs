//! Plain-text rendering of a metrics [`Snapshot`].
//!
//! Used by `acfc report` and the bench harness to print a quick
//! counter/histogram table without leaving the terminal.

use crate::metrics::Snapshot;
use std::fmt::Write as _;

/// Renders counters and histograms as two aligned tables. Counters
/// print `name  value`; histograms print count, mean, p50/p90 upper
/// bounds (power-of-two bucket bounds, so approximate), and max.
pub fn render(snap: &Snapshot) -> String {
    let mut out = String::new();
    if !snap.counters.is_empty() {
        out.push_str("counters\n");
        let w = snap
            .counters
            .iter()
            .map(|(n, _)| n.len())
            .max()
            .unwrap_or(0);
        for (name, value) in &snap.counters {
            let _ = writeln!(out, "  {name:<w$}  {value:>12}");
        }
    }
    if !snap.histograms.is_empty() {
        if !out.is_empty() {
            out.push('\n');
        }
        out.push_str("histograms (µs unless noted; p50/p90 are bucket upper bounds)\n");
        let w = snap
            .histograms
            .iter()
            .map(|(n, _)| n.len())
            .max()
            .unwrap_or(0)
            .max("name".len());
        let _ = writeln!(
            out,
            "  {:<w$}  {:>10}  {:>12}  {:>12}  {:>12}  {:>12}",
            "name", "count", "mean", "p50≤", "p90≤", "max"
        );
        for (name, h) in &snap.histograms {
            let _ = writeln!(
                out,
                "  {:<w$}  {:>10}  {:>12.1}  {:>12}  {:>12}  {:>12}",
                name,
                h.count,
                h.mean(),
                h.quantile_bound(0.50),
                h.quantile_bound(0.90),
                h.max
            );
        }
    }
    if out.is_empty() {
        out.push_str("(no metrics recorded)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{HistSnapshot, Snapshot};

    #[test]
    fn renders_counters_and_histograms() {
        let mut h = HistSnapshot {
            buckets: vec![0; crate::metrics::BUCKETS],
            count: 3,
            sum: 6,
            max: 3,
        };
        h.buckets[1] = 1; // value 1
        h.buckets[2] = 2; // values 2..=3
        let snap = Snapshot {
            counters: vec![("sim/messages_delivered".into(), 42)],
            histograms: vec![("sim/msg_latency_us".into(), h)],
        };
        let text = render(&snap);
        assert!(text.contains("counters"));
        assert!(text.contains("sim/messages_delivered"));
        assert!(text.contains("42"));
        assert!(text.contains("sim/msg_latency_us"));
        assert!(text.contains("p90≤"));
    }

    #[test]
    fn empty_snapshot_renders_placeholder() {
        let snap = Snapshot {
            counters: vec![],
            histograms: vec![],
        };
        assert!(render(&snap).contains("no metrics recorded"));
    }
}
