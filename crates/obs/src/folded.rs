//! Folded-stacks and speedscope export of the wall-span forest.
//!
//! [`crate::take_wall_spans`] yields a per-thread forest of RAII spans;
//! this module collapses it into the two interchange formats profiler
//! tooling actually eats:
//!
//! * **Folded lines** ([`folded_lines`]) — Brendan Gregg's collapsed
//!   stack format, `frame;frame;frame value`, one line per distinct
//!   stack, value = *self time* in microseconds. Pipe straight into
//!   `inferno-flamegraph` or `flamegraph.pl` to get an SVG flamegraph.
//! * **Speedscope JSON** ([`speedscope_json`]) — the evented profile
//!   format of <https://www.speedscope.app>: one profile per recording
//!   thread, open/close events in timeline order, so the same capture
//!   is inspectable as time-order, left-heavy, and sandwich views.
//!
//! Both emitters are deterministic given the same span forest: frames
//! are index-assigned in sorted-name order, folded lines render in
//! lexicographic path order, and threads render in dense-tid order.
//! Wall-clock *timings* vary run to run, of course — the golden pin in
//! `tests/golden_folded.rs` therefore feeds a synthetic fixed forest.
//!
//! Each thread's stack root is the thread's label (see
//! [`crate::thread_labels`]) or `thread N` when unlabeled, so sweep
//! flamegraphs attribute work to `sweep-3` rather than an anonymous
//! tid, and per-worker imbalance is visible as unequal root widths.

use crate::span::WallSpan;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The root frame for `tid`: its label, or `thread N`.
fn thread_frame(tid: u64, labels: &[(u64, String)]) -> String {
    labels
        .iter()
        .find(|(t, _)| *t == tid)
        .map(|(_, l)| l.clone())
        .unwrap_or_else(|| format!("thread {tid}"))
}

/// The dense tids present in `spans`, ascending.
fn tids_of(spans: &[WallSpan]) -> Vec<u64> {
    let mut tids: Vec<u64> = spans.iter().map(|s| s.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    tids
}

/// One thread's spans in sweep order: by start, outer-first at ties
/// (the longer span encloses) — the same comparator the Perfetto
/// exporter uses, so both exports agree on the nesting.
fn sorted_spans_of(spans: &[WallSpan], tid: u64) -> Vec<&WallSpan> {
    let mut mine: Vec<&WallSpan> = spans.iter().filter(|s| s.tid == tid).collect();
    mine.sort_by_key(|s| (s.start_us, u64::MAX - s.end_us));
    mine
}

/// Collapses the span forest into folded stack lines
/// (`root;frame;frame self_us`), aggregated over all occurrences of
/// each distinct stack and emitted in lexicographic path order. The
/// value is **self time**: a span's duration minus its direct
/// children's durations (saturating, so clock jitter at the µs edges
/// never goes negative) — exactly what a flamegraph's box widths mean.
pub fn folded_lines(spans: &[WallSpan], labels: &[(u64, String)]) -> String {
    let mut agg: BTreeMap<String, u64> = BTreeMap::new();
    for tid in tids_of(spans) {
        let root = thread_frame(tid, labels);
        // Stack of (open span, accumulated direct-child time).
        let mut stack: Vec<(&WallSpan, u64)> = Vec::new();
        let close = |stack: &mut Vec<(&WallSpan, u64)>, agg: &mut BTreeMap<String, u64>| {
            let (s, child_us) = stack.pop().expect("close on non-empty stack");
            let self_us = (s.end_us - s.start_us).saturating_sub(child_us);
            let mut path = root.clone();
            for (ancestor, _) in stack.iter() {
                path.push(';');
                path.push_str(ancestor.name);
            }
            path.push(';');
            path.push_str(s.name);
            *agg.entry(path).or_insert(0) += self_us;
        };
        for s in sorted_spans_of(spans, tid) {
            while stack.last().is_some_and(|(t, _)| t.end_us <= s.start_us) {
                close(&mut stack, &mut agg);
            }
            if let Some((_, child_us)) = stack.last_mut() {
                *child_us += s.end_us - s.start_us;
            }
            stack.push((s, 0));
        }
        while !stack.is_empty() {
            close(&mut stack, &mut agg);
        }
    }
    let mut out = String::new();
    for (path, self_us) in &agg {
        let _ = writeln!(out, "{path} {self_us}");
    }
    out
}

/// JSON string escaping (quotes, backslashes, control characters).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the span forest as a speedscope file (evented format, one
/// profile per thread, microsecond unit) loadable without edits at
/// <https://www.speedscope.app>. `name` becomes the document title.
///
/// Frames are shared across profiles and index-assigned in sorted-name
/// order; per profile, events are the balanced open/close sequence the
/// stack sweep reconstructs, with closes emitted before an equal-
/// timestamp open (the nesting discipline speedscope requires).
pub fn speedscope_json(spans: &[WallSpan], labels: &[(u64, String)], name: &str) -> String {
    // Shared frame table, sorted for deterministic indices.
    let mut frame_names: Vec<&str> = spans.iter().map(|s| s.name).collect();
    frame_names.sort_unstable();
    frame_names.dedup();
    let frame_idx: BTreeMap<&str, usize> = frame_names
        .iter()
        .enumerate()
        .map(|(i, &n)| (n, i))
        .collect();

    let mut out = String::from("{\n");
    out.push_str("  \"$schema\": \"https://www.speedscope.app/file-format-schema.json\",\n");
    out.push_str("  \"exporter\": \"acfc\",\n");
    let _ = writeln!(out, "  \"name\": \"{}\",", escape(name));
    out.push_str("  \"shared\": {\"frames\": [\n");
    for (i, n) in frame_names.iter().enumerate() {
        let comma = if i + 1 < frame_names.len() { "," } else { "" };
        let _ = writeln!(out, "    {{\"name\": \"{}\"}}{comma}", escape(n));
    }
    out.push_str("  ]},\n");
    out.push_str("  \"profiles\": [\n");

    let tids = tids_of(spans);
    for (k, &tid) in tids.iter().enumerate() {
        let mine = sorted_spans_of(spans, tid);
        let start = mine.iter().map(|s| s.start_us).min().unwrap_or(0);
        let end = mine.iter().map(|s| s.end_us).max().unwrap_or(0);
        let _ = writeln!(out, "    {{\"type\": \"evented\",");
        let _ = writeln!(
            out,
            "     \"name\": \"{}\",",
            escape(&thread_frame(tid, labels))
        );
        let _ = writeln!(out, "     \"unit\": \"microseconds\",");
        let _ = writeln!(out, "     \"startValue\": {start},");
        let _ = writeln!(out, "     \"endValue\": {end},");
        out.push_str("     \"events\": [\n");
        // (type, frame, at) triples from the same stack sweep as the
        // folded emitter, so both formats agree on the nesting.
        let mut events: Vec<(char, usize, u64)> = Vec::new();
        let mut stack: Vec<&WallSpan> = Vec::new();
        for s in mine {
            while stack.last().is_some_and(|t| t.end_us <= s.start_us) {
                let t = stack.pop().expect("checked non-empty");
                events.push(('C', frame_idx[t.name], t.end_us));
            }
            events.push(('O', frame_idx[s.name], s.start_us));
            stack.push(s);
        }
        while let Some(t) = stack.pop() {
            events.push(('C', frame_idx[t.name], t.end_us));
        }
        for (i, (ty, frame, at)) in events.iter().enumerate() {
            let comma = if i + 1 < events.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "      {{\"type\": \"{ty}\", \"frame\": {frame}, \"at\": {at}}}{comma}"
            );
        }
        let comma = if k + 1 < tids.len() { "," } else { "" };
        let _ = writeln!(out, "     ]}}{comma}");
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn forest() -> Vec<WallSpan> {
        vec![
            // tid 0: outer [0,10] wrapping inner [2,4], then a sibling
            // leaf [12,20]; tid 1: one span, labeled thread.
            WallSpan {
                name: "outer",
                tid: 0,
                start_us: 0,
                end_us: 10,
            },
            WallSpan {
                name: "inner",
                tid: 0,
                start_us: 2,
                end_us: 4,
            },
            WallSpan {
                name: "late",
                tid: 0,
                start_us: 12,
                end_us: 20,
            },
            WallSpan {
                name: "cell",
                tid: 1,
                start_us: 1,
                end_us: 6,
            },
        ]
    }

    fn labels() -> Vec<(u64, String)> {
        vec![(1, "sweep-0".to_string())]
    }

    #[test]
    fn folded_lines_attribute_self_time_per_stack() {
        let text = folded_lines(&forest(), &labels());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines,
            vec![
                "sweep-0;cell 5",
                "thread 0;late 8",
                "thread 0;outer 8",
                "thread 0;outer;inner 2",
            ]
        );
        // Self times over a thread sum to its spans' total self time.
        let total: u64 = lines
            .iter()
            .filter(|l| l.starts_with("thread 0"))
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(total, 10 + 8); // outer's 10 (inner is inside) + late's 8
    }

    #[test]
    fn folded_lines_aggregate_repeated_stacks() {
        let spans = vec![
            WallSpan {
                name: "cell",
                tid: 0,
                start_us: 0,
                end_us: 3,
            },
            WallSpan {
                name: "cell",
                tid: 0,
                start_us: 5,
                end_us: 9,
            },
        ];
        assert_eq!(folded_lines(&spans, &[]), "thread 0;cell 7\n");
    }

    #[test]
    fn empty_forest_renders_empty_documents() {
        assert_eq!(folded_lines(&[], &[]), "");
        let json = speedscope_json(&[], &[], "empty");
        assert!(json.contains("\"profiles\": [\n  ]"));
        assert!(json.contains("speedscope.app/file-format-schema.json"));
    }

    #[test]
    fn speedscope_events_balance_and_stay_monotone() {
        let json = speedscope_json(&forest(), &labels(), "t");
        // One profile per thread, named by label where present.
        assert_eq!(json.matches("\"type\": \"evented\"").count(), 2);
        assert!(json.contains("\"name\": \"sweep-0\""));
        assert!(json.contains("\"name\": \"thread 0\""));
        assert!(json.contains("\"unit\": \"microseconds\""));
        // O and C counts balance overall.
        assert_eq!(
            json.matches("\"type\": \"O\"").count(),
            json.matches("\"type\": \"C\"").count()
        );
        // Frames are sorted: cell, inner, late, outer.
        let frames_at = json.find("\"frames\"").unwrap();
        let cell = json[frames_at..].find("\"cell\"").unwrap();
        let outer = json[frames_at..].find("\"outer\"").unwrap();
        assert!(cell < outer, "frame table is name-sorted");
        // Event timestamps are non-decreasing within each profile.
        let mut last_at = 0u64;
        for line in json.lines() {
            if line.contains("\"type\": \"evented\"") {
                last_at = 0;
            }
            if let Some(at) = line.split("\"at\": ").nth(1) {
                let at: u64 = at.trim_end_matches(['}', ',', ' ']).parse().unwrap();
                assert!(at >= last_at, "{line}");
                last_at = at;
            }
        }
    }

    #[test]
    fn zero_length_spans_survive_both_emitters() {
        let spans = vec![WallSpan {
            name: "zero",
            tid: 0,
            start_us: 5,
            end_us: 5,
        }];
        assert_eq!(folded_lines(&spans, &[]), "thread 0;zero 0\n");
        let json = speedscope_json(&spans, &[], "z");
        assert!(json.contains("\"startValue\": 5"));
        assert!(json.contains("\"endValue\": 5"));
    }
}
