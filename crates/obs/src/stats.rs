//! Replicated-trial aggregation: running mean/stddev and 95%
//! confidence intervals.
//!
//! The sweep engine runs every (workload, n, failure-rate, protocol)
//! cell under many seeds and needs per-cell summary statistics without
//! buffering the trials. [`CiAccum`] is a Welford accumulator: one
//! `push` per trial, O(1) state, numerically stable, and mergeable
//! (Chan et al.'s pairwise combination) so partial accumulators from
//! split workers can be folded together — the scalar counterpart of
//! [`LocalHist::merge`](crate::LocalHist::merge), which pools the
//! histogram-shaped metrics across the same trials.
//!
//! The derived [`CiSummary`] reports the sample standard deviation
//! (n−1 denominator) and a Student-t 95% confidence half-width. With a
//! single trial the interval is undefined and is reported as *absent*
//! (`None`), never as NaN — a `seeds = 1` sweep degrades to plain
//! means instead of poisoning downstream JSON.

/// Two-sided 95% Student-t critical value (`t_{0.975, df}`).
///
/// Exact table entries for the small degrees of freedom a seeds-per-cell
/// sweep actually produces (df ≤ 30), then the coarser standard
/// breakpoints, then the normal limit 1.96. Monotonically decreasing in
/// `df`, so interpolation error only ever *widens* the interval.
pub fn t_critical_95(df: u64) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => f64::NAN, // no interval exists; callers gate on count ≥ 2
        1..=30 => TABLE[(df - 1) as usize],
        31..=40 => 2.021,
        41..=60 => 2.000,
        61..=120 => 1.980,
        _ => 1.960,
    }
}

/// A running mean/variance accumulator (Welford's algorithm) with
/// pairwise merging.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CiAccum {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl CiAccum {
    /// A fresh empty accumulator.
    pub const fn new() -> CiAccum {
        CiAccum {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let d = x - self.mean;
        self.mean += d / self.count as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Folds `other` into `self` (Chan et al. parallel combination):
    /// the result summarises the union of both observation multisets.
    pub fn merge(&mut self, other: &CiAccum) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let d = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += d * n2 / total;
        self.m2 += other.m2 + d * d * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Unbiased sample variance (n−1 denominator); 0 with fewer than
    /// two observations. Welford's `m2` is a sum of squares, so this is
    /// never negative (modulo a clamp against −0.0 rounding).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count - 1) as f64).max(0.0)
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Half-width of the Student-t 95% confidence interval for the
    /// mean: `t_{0.975, n−1} · s / √n`. `None` with fewer than two
    /// observations (the interval is undefined, not zero).
    pub fn ci95_half(&self) -> Option<f64> {
        if self.count < 2 {
            return None;
        }
        Some(t_critical_95(self.count - 1) * self.stddev() / (self.count as f64).sqrt())
    }

    /// The frozen summary of everything pushed so far.
    pub fn summary(&self) -> CiSummary {
        CiSummary {
            count: self.count,
            mean: self.mean(),
            stddev: self.stddev(),
            ci95_half: self.ci95_half(),
        }
    }
}

/// Frozen per-metric summary of a replicated trial set: the shape every
/// aggregate sweep row carries per column.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CiSummary {
    /// Number of trials aggregated.
    pub count: u64,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 when count < 2).
    pub stddev: f64,
    /// Student-t 95% confidence half-width; `None` when count < 2
    /// (reported as absent, never NaN).
    pub ci95_half: Option<f64>,
}

impl CiSummary {
    /// `mean ± ci95` when the interval exists, plain `mean` otherwise,
    /// with `digits` fractional digits — the table-cell rendering.
    pub fn render(&self, digits: usize) -> String {
        match self.ci95_half {
            Some(ci) => format!("{:.*}±{:.*}", digits, self.mean, digits, ci),
            None => format!("{:.*}", digits, self.mean),
        }
    }
}

/// Bootstrap median and 95% percentile interval over a pooled
/// [`HistSnapshot`](crate::HistSnapshot). All three values are bucket
/// *bounds* in the sense of
/// [`quantile_bound`](crate::HistSnapshot::quantile_bound): the
/// exclusive upper edge of the bucket holding the order statistic, so
/// they are directly comparable with the `p50`/`p99` columns they sit
/// next to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MedianCi {
    /// Median bound of the pooled distribution itself.
    pub median: u64,
    /// 2.5th percentile of the resampled medians (interval low edge).
    pub lo: u64,
    /// 97.5th percentile of the resampled medians (interval high edge).
    pub hi: u64,
    /// Resamples drawn.
    pub resamples: u32,
}

/// Default bootstrap resample count used by the sweep columns.
pub const BOOTSTRAP_RESAMPLES: u32 = 200;

/// Per-resample draw cap. Resampling cost is `resamples × min(count,
/// cap)`; capping turns the full bootstrap into an `m`-out-of-`n`
/// bootstrap on huge pools, which only *widens* the interval.
pub const BOOTSTRAP_MAX_DRAWS: u64 = 4096;

/// splitmix64 — a tiny local generator so the bootstrap stays inside
/// the crate's zero-dependency budget. Sequence quality is ample for
/// resampling indices.
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)` by rejection (no modulo bias).
    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        let zone = u64::MAX - u64::MAX % n;
        loop {
            let x = self.next();
            if x < zone {
                return x % n;
            }
        }
    }
}

/// Median bound of a discrete sample given per-bucket tallies aligned
/// with `bounds`: the bound of the bucket where the cumulative count
/// first reaches `ceil(total/2)`.
fn median_bound(bounds: &[u64], tally: &[u64], total: u64) -> u64 {
    let target = total.div_ceil(2);
    let mut seen = 0u64;
    for (i, &c) in tally.iter().enumerate() {
        seen += c;
        if seen >= target {
            return bounds[i];
        }
    }
    *bounds.last().expect("non-empty tally")
}

/// Bootstrap median ± 95% percentile interval of the distribution
/// pooled in `snap` — the median-based companion to [`CiAccum`] for
/// heavy-tailed columns, where a mean ± t-interval is dominated by the
/// tail. Resampling is seeded and deterministic: the same snapshot,
/// `resamples`, and `seed` always produce the same interval, so sweep
/// output stays byte-identical at any thread count.
///
/// Returns `None` when the snapshot is empty or `resamples` is 0.
pub fn bootstrap_median_ci(
    snap: &crate::HistSnapshot,
    resamples: u32,
    seed: u64,
) -> Option<MedianCi> {
    if snap.count == 0 || resamples == 0 {
        return None;
    }
    // The empirical distribution: per non-empty bucket, its upper
    // bound (quantile_bound convention) and cumulative count.
    let mut bounds = Vec::new();
    let mut cum = Vec::new();
    let mut seen = 0u64;
    for (i, &c) in snap.buckets.iter().enumerate() {
        if c > 0 {
            seen += c;
            bounds.push(if i == 0 { 0 } else { 1u64 << i });
            cum.push(seen);
        }
    }
    let total = snap.count;
    let draws = total.min(BOOTSTRAP_MAX_DRAWS);
    let mut rng = SplitMix(seed ^ 0x1957_0ca1_b007_57a9);
    let mut meds = Vec::with_capacity(resamples as usize);
    let mut tally = vec![0u64; bounds.len()];
    for _ in 0..resamples {
        tally.fill(0);
        for _ in 0..draws {
            let u = rng.below(total);
            let b = cum.partition_point(|&c| c <= u);
            tally[b] += 1;
        }
        meds.push(median_bound(&bounds, &tally, draws));
    }
    meds.sort_unstable();
    // Percentile bootstrap: the 2.5th/97.5th order statistics of the
    // resampled medians (ceil-rank, clamped to the sample).
    let rank = |q: f64| -> u64 {
        let r = (q * resamples as f64).ceil().max(1.0) as usize;
        meds[r.min(meds.len()) - 1]
    };
    Some(MedianCi {
        median: snap.quantile_bound(0.5),
        lo: rank(0.025),
        hi: rank(0.975),
        resamples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_observation_has_no_interval() {
        let mut a = CiAccum::new();
        a.push(42.0);
        let s = a.summary();
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.ci95_half, None);
        assert_eq!(s.render(1), "42.0");
    }

    #[test]
    fn identical_trials_have_zero_width_interval() {
        let mut a = CiAccum::new();
        for _ in 0..7 {
            a.push(3.5);
        }
        let s = a.summary();
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.ci95_half, Some(0.0));
        assert_eq!(s.render(2), "3.50±0.00");
    }

    #[test]
    fn known_small_sample() {
        // x = [2, 4, 4, 4, 5, 5, 7, 9]: mean 5, sample variance 32/7.
        let mut a = CiAccum::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            a.push(x);
        }
        assert_eq!(a.count(), 8);
        assert!((a.mean() - 5.0).abs() < 1e-12);
        assert!((a.variance() - 32.0 / 7.0).abs() < 1e-12);
        let ci = a.ci95_half().unwrap();
        // t_{0.975,7} = 2.365; s/√8 = √(32/7)/√8.
        let expect = 2.365 * (32.0f64 / 7.0).sqrt() / 8.0f64.sqrt();
        assert!((ci - expect).abs() < 1e-12, "{ci} vs {expect}");
        assert_eq!(a.min(), Some(2.0));
        assert_eq!(a.max(), Some(9.0));
    }

    #[test]
    fn merge_matches_sequential_pushes() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64) * 0.37 - 12.0).collect();
        let mut whole = CiAccum::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = CiAccum::new();
        let mut right = CiAccum::new();
        for &x in &xs[..33] {
            left.push(x);
        }
        for &x in &xs[33..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        // Merging an empty accumulator is the identity, both ways.
        let mut empty = CiAccum::new();
        empty.merge(&whole);
        assert_eq!(empty.summary(), whole.summary());
        let before = whole.summary();
        whole.merge(&CiAccum::new());
        assert_eq!(whole.summary(), before);
    }

    #[test]
    fn t_table_is_monotone_and_bounded() {
        let mut prev = f64::INFINITY;
        for df in 1..200 {
            let t = t_critical_95(df);
            assert!(t <= prev, "df={df}");
            assert!(t >= 1.96, "df={df}");
            prev = t;
        }
        assert_eq!(t_critical_95(1), 12.706);
        assert_eq!(t_critical_95(1_000_000), 1.960);
        assert!(t_critical_95(0).is_nan());
    }
}
