//! A zero-dependency live metrics endpoint (Prometheus text format).
//!
//! Long sweeps are black boxes between the progress line and the final
//! table; [`serve`] makes the global registry scrapable mid-run. It
//! binds a [`std::net::TcpListener`], answers `GET /metrics` (and `/`)
//! with the registry rendered in the [Prometheus text exposition
//! format], and runs on one background thread — no framework, no
//! dependency, a few hundred lines of `std`.
//!
//! Counters render as `counter` metrics, histograms as `summary`
//! quantile bounds (p50/p90/p99 bucket upper edges) plus `_sum`,
//! `_count`, and a `_max` gauge. Wall spans record into registry
//! histograms of the same name, so span totals come along for free.
//! Registry names are slash-separated (`core/phase3/moves`); exposition
//! names must match `[a-zA-Z_:][a-zA-Z0-9_:]*`, so names are prefixed
//! `acfc_` and every other character is mapped to `_`
//! ([`sanitize_metric_name`]). Distinct registry names can in principle
//! collide after sanitizing (`a/b` vs `a_b`); the registry's naming
//! convention (slashes only) keeps that theoretical.
//!
//! [Prometheus text exposition format]:
//! https://prometheus.io/docs/instrumenting/exposition_formats/

use crate::metrics::Snapshot;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Maps a registry metric name to a Prometheus-legal one: prefix
/// `acfc_`, then `[A-Za-z0-9_]` pass through and everything else
/// becomes `_` (`core/phase3/moves` → `acfc_core_phase3_moves`).
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("acfc_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders a registry snapshot in the Prometheus text exposition
/// format. Deterministic: snapshots are name-sorted by construction,
/// and each metric renders the same way every time. Always begins with
/// an `acfc_up 1` gauge so even an empty registry scrapes non-empty.
pub fn prometheus_text(snap: &Snapshot) -> String {
    let mut out = String::from("# TYPE acfc_up gauge\nacfc_up 1\n");
    for (name, value) in &snap.counters {
        let san = sanitize_metric_name(name);
        out.push_str(&format!("# TYPE {san} counter\n{san} {value}\n"));
    }
    for (name, h) in &snap.histograms {
        let san = sanitize_metric_name(name);
        out.push_str(&format!("# TYPE {san} summary\n"));
        for (q, label) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
            out.push_str(&format!(
                "{san}{{quantile=\"{label}\"}} {}\n",
                h.quantile_bound(q)
            ));
        }
        out.push_str(&format!("{san}_sum {}\n{san}_count {}\n", h.sum, h.count));
        out.push_str(&format!("# TYPE {san}_max gauge\n{san}_max {}\n", h.max));
    }
    out
}

/// A running metrics endpoint; shuts its listener thread down on drop
/// (or explicitly via [`MetricsServer::shutdown`]).
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// Binds `addr` (e.g. `127.0.0.1:9184`, port `0` for an ephemeral
/// port) and starts answering `GET /metrics` from a background thread.
/// Each request snapshots the registry at answer time, so mid-run
/// scrapes observe counters as they grow.
pub fn serve(addr: &str) -> std::io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("acfc-metrics".to_string())
        .spawn(move || {
            for conn in listener.incoming() {
                if stop_flag.load(Ordering::Relaxed) {
                    break;
                }
                if let Ok(mut stream) = conn {
                    let _ = answer(&mut stream);
                }
            }
        })?;
    Ok(MetricsServer {
        addr: local,
        stop,
        handle: Some(handle),
    })
}

impl MetricsServer {
    /// The bound address (resolves port `0` to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener thread and waits for it to exit.
    pub fn shutdown(self) {
        drop(self);
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the accept loop with one last connection to self.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Reads one HTTP request head and writes the matching response. The
/// responder is deliberately minimal: request line only, headers
/// ignored, connection closed after one answer.
fn answer(stream: &mut TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut buf = [0u8; 2048];
    let mut len = 0usize;
    // Read until the head terminator (or the buffer fills — a longer
    // head than 2 KiB is not a scrape we need to honour).
    while len < buf.len() {
        let n = stream.read(&mut buf[len..])?;
        if n == 0 {
            break;
        }
        len += n;
        if buf[..len].windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
    }
    let head = String::from_utf8_lossy(&buf[..len]);
    let mut request = head.lines().next().unwrap_or("").split_whitespace();
    let method = request.next().unwrap_or("");
    let path = request.next().unwrap_or("");
    let (status, body) = if method != "GET" {
        ("405 Method Not Allowed", "method not allowed\n".to_string())
    } else if path == "/metrics" || path == "/" {
        ("200 OK", prometheus_text(&crate::metrics::snapshot()))
    } else {
        ("404 Not Found", "not found; try /metrics\n".to_string())
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::HistSnapshot;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn sanitizes_slash_names() {
        assert_eq!(
            sanitize_metric_name("core/phase3/moves"),
            "acfc_core_phase3_moves"
        );
        assert_eq!(sanitize_metric_name("a-b.c d"), "acfc_a_b_c_d");
    }

    #[test]
    fn exposition_renders_counters_and_summaries() {
        let mut h = HistSnapshot::default();
        let mut local = crate::metrics::LocalHist::new();
        for v in [1u64, 2, 3, 100] {
            local.record(v);
        }
        h.merge(&local.snap());
        let snap = Snapshot {
            counters: vec![("core/phase3/moves".to_string(), 7)],
            histograms: vec![("sim/event_loop".to_string(), h)],
        };
        let text = prometheus_text(&snap);
        assert!(text.starts_with("# TYPE acfc_up gauge\nacfc_up 1\n"));
        assert!(text.contains("# TYPE acfc_core_phase3_moves counter"));
        assert!(text.contains("acfc_core_phase3_moves 7"));
        assert!(text.contains("# TYPE acfc_sim_event_loop summary"));
        assert!(text.contains("acfc_sim_event_loop{quantile=\"0.5\"} "));
        assert!(text.contains("acfc_sim_event_loop_sum 106"));
        assert!(text.contains("acfc_sim_event_loop_count 4"));
        assert!(text.contains("acfc_sim_event_loop_max 100"));
        // Every exposed metric name is exposition-legal.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let name: &str = line.split(['{', ' ']).next().unwrap();
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "illegal name {name}"
            );
        }
    }

    #[test]
    fn server_answers_metrics_and_rejects_other_paths() {
        let server = serve("127.0.0.1:0").expect("bind ephemeral port");
        let addr = server.local_addr();
        let ok = get(addr, "/metrics");
        assert!(ok.starts_with("HTTP/1.1 200 OK"), "{ok}");
        assert!(ok.contains("text/plain; version=0.0.4"));
        assert!(ok.contains("acfc_up 1"));
        let root = get(addr, "/");
        assert!(root.starts_with("HTTP/1.1 200 OK"));
        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
        server.shutdown();
        // After shutdown the port stops answering (connect may succeed
        // briefly on some stacks; a full request must not).
        assert!(
            TcpStream::connect_timeout(&addr, Duration::from_millis(200))
                .map(|mut s| {
                    let _ = s.write_all(b"GET /metrics HTTP/1.1\r\n\r\n");
                    let mut out = String::new();
                    let _ = s.set_read_timeout(Some(Duration::from_millis(200)));
                    s.read_to_string(&mut out)
                        .map(|_| out.is_empty())
                        .unwrap_or(true)
                })
                .unwrap_or(true)
        );
    }
}
