//! RAII wall-clock spans.
//!
//! `let _s = obs::span("core/phase2/matching");` times the enclosing
//! scope. On drop the span (a) records its duration in microseconds
//! into the registry histogram of the same name (so `acfc report` can
//! print a latency table) and (b) appends a begin/end pair to the
//! process-global span log for Perfetto export. Spans nest naturally:
//! the log keeps per-thread begin/end ordering, which is exactly the
//! stack discipline the Chrome trace format's `B`/`E` events encode.

/// One completed wall-clock span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WallSpan {
    /// Hierarchical span name (slash-separated).
    pub name: &'static str,
    /// Dense id of the recording thread (0 = first thread observed).
    pub tid: u64,
    /// Start, µs since the process's first obs use.
    pub start_us: u64,
    /// End, µs since the process's first obs use.
    pub end_us: u64,
}

#[cfg(feature = "enabled")]
mod imp {
    use super::WallSpan;
    use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
    use std::sync::{Mutex, OnceLock};
    use std::time::Instant;

    /// All timestamps are measured from one process-wide anchor so
    /// spans from different threads share a timeline.
    fn anchor() -> Instant {
        static ANCHOR: OnceLock<Instant> = OnceLock::new();
        *ANCHOR.get_or_init(Instant::now)
    }

    fn log() -> &'static Mutex<Vec<WallSpan>> {
        static LOG: OnceLock<Mutex<Vec<WallSpan>>> = OnceLock::new();
        LOG.get_or_init(|| Mutex::new(Vec::new()))
    }

    fn labels() -> &'static Mutex<Vec<(u64, String)>> {
        static LABELS: OnceLock<Mutex<Vec<(u64, String)>>> = OnceLock::new();
        LABELS.get_or_init(|| Mutex::new(Vec::new()))
    }

    fn this_tid() -> u64 {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        thread_local! {
            static TID: u64 = {
                let tid = NEXT.fetch_add(1, Relaxed);
                // Capture the OS thread name once, at dense-tid
                // assignment, so Perfetto tracks of labeled worker
                // threads (util::parallel::par_map_labeled) render as
                // "sweep-3" instead of "thread 7".
                if let Some(name) = std::thread::current().name() {
                    labels()
                        .lock()
                        .expect("obs label map poisoned")
                        .push((tid, name.to_string()));
                }
                tid
            };
        }
        TID.with(|t| *t)
    }

    /// An active span; records on drop.
    #[derive(Debug)]
    pub struct SpanGuard {
        name: &'static str,
        start: Option<Instant>,
    }

    pub fn span(name: &'static str) -> SpanGuard {
        if !crate::metrics::runtime_enabled() {
            return SpanGuard { name, start: None };
        }
        // Touch the anchor before taking the start time so the first
        // span does not start before the epoch it is measured against.
        anchor();
        SpanGuard {
            name,
            start: Some(Instant::now()),
        }
    }

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            let Some(start) = self.start else { return };
            let end = Instant::now();
            let base = anchor();
            let span = WallSpan {
                name: self.name,
                tid: this_tid(),
                start_us: start.duration_since(base).as_micros() as u64,
                end_us: end.duration_since(base).as_micros() as u64,
            };
            crate::metrics::record(self.name, span.end_us - span.start_us);
            log().lock().expect("obs span log poisoned").push(span);
        }
    }

    pub fn take_wall_spans() -> Vec<WallSpan> {
        std::mem::take(&mut *log().lock().expect("obs span log poisoned"))
    }

    pub fn thread_labels() -> Vec<(u64, String)> {
        labels().lock().expect("obs label map poisoned").clone()
    }
}

#[cfg(not(feature = "enabled"))]
mod imp {
    use super::WallSpan;

    /// An active span; inert without the `enabled` feature.
    #[derive(Debug)]
    pub struct SpanGuard;

    #[inline]
    pub fn span(_name: &'static str) -> SpanGuard {
        SpanGuard
    }

    pub fn take_wall_spans() -> Vec<WallSpan> {
        Vec::new()
    }

    pub fn thread_labels() -> Vec<(u64, String)> {
        Vec::new()
    }
}

pub use imp::SpanGuard;

/// Starts a wall-clock span over the enclosing scope. Returns an inert
/// guard when obs is compiled out or runtime-disabled.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    imp::span(name)
}

/// Drains the process-global span log (completed spans, in completion
/// order). The caller owns the returned spans; subsequent calls see
/// only newer spans.
pub fn take_wall_spans() -> Vec<WallSpan> {
    imp::take_wall_spans()
}

/// `(tid, label)` for every recording thread that had an OS thread
/// name when its dense tid was assigned, in assignment order. Labels
/// are never drained: tids are process-lifetime, so the map only
/// grows. Empty when the `enabled` feature is off.
pub fn thread_labels() -> Vec<(u64, String)> {
    imp::thread_labels()
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;
    use crate::metrics::set_enabled;

    #[test]
    fn span_records_into_log_and_histogram() {
        set_enabled(true);
        {
            let _outer = span("test/span_outer");
            let _inner = span("test/span_inner");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        set_enabled(false);
        let spans = take_wall_spans();
        let outer = spans.iter().find(|s| s.name == "test/span_outer").unwrap();
        let inner = spans.iter().find(|s| s.name == "test/span_inner").unwrap();
        // Inner nests within outer on the same thread.
        assert_eq!(outer.tid, inner.tid);
        assert!(outer.start_us <= inner.start_us);
        assert!(inner.end_us <= outer.end_us);
        assert!(outer.end_us - outer.start_us >= 1000, "slept ≥1ms");
        let snap = crate::metrics::snapshot();
        let h = snap
            .histograms
            .iter()
            .find(|(n, _)| n == "test/span_outer")
            .expect("span duration histogram registered");
        assert!(h.1.count >= 1);
    }

    #[test]
    fn disabled_span_is_silent() {
        set_enabled(false);
        let _ = take_wall_spans();
        {
            let _s = span("test/span_disabled");
        }
        assert!(take_wall_spans()
            .iter()
            .all(|s| s.name != "test/span_disabled"));
    }
}
