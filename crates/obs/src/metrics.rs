//! Counters, histograms, and the global metric registry.
//!
//! [`Counter`] and [`Histogram`] are always compiled: the simulator's
//! per-run collector embeds them directly (opt-in per run, so they need
//! no global gate). The *registry* functions — [`count`], [`record`],
//! [`snapshot`], [`reset`] — are the sprinkled-through-the-codebase
//! layer and honour both the `enabled` feature and the runtime flag.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};

/// A monotonically increasing event counter (relaxed atomic: counts
/// from concurrent threads merge without ordering cost; exact totals
/// are read only after the measured region quiesces).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh zero counter.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds `delta`.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.0.store(0, Relaxed);
    }
}

/// Number of histogram buckets: bucket `i` counts values whose
/// bit-length is `i`, i.e. `v == 0` lands in bucket 0 and `v > 0` in
/// bucket `64 − v.leading_zeros()`, capped at the last bucket.
pub const BUCKETS: usize = 64;

/// A fixed-bucket power-of-two histogram: bucket `i` spans
/// `[2^(i−1), 2^i)` (bucket 0 is exactly zero). Recording is one
/// relaxed `fetch_add` plus two for count/sum — cheap enough for
/// per-event use on the simulator's non-inner-loop paths.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// A fresh empty histogram.
    pub const fn new() -> Histogram {
        // `AtomicU64` is not `Copy`; build the array element-wise.
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// The bucket index of `value`.
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros() as usize).min(BUCKETS - 1)
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_of(value)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(value, Relaxed);
        self.max.fetch_max(value, Relaxed);
    }

    /// A point-in-time copy of the histogram.
    pub fn snap(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Relaxed)).collect(),
            count: self.count.load(Relaxed),
            sum: self.sum.load(Relaxed),
            max: self.max.load(Relaxed),
        }
    }

    /// Resets all buckets.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Relaxed);
        }
        self.count.store(0, Relaxed);
        self.sum.store(0, Relaxed);
        self.max.store(0, Relaxed);
    }
}

/// A non-atomic [`Histogram`] for collectors with exclusive (`&mut`)
/// access — e.g. the simulator's per-run `SimObs`, which is owned by a
/// single-threaded run. Identical bucketing; recording is a handful of
/// plain integer ops (no RMW bus traffic), cheap enough for probes on
/// the engine's per-event pop path where the atomic variant is not.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalHist {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LocalHist {
    fn default() -> LocalHist {
        LocalHist::new()
    }
}

impl LocalHist {
    /// A fresh empty histogram.
    pub const fn new() -> LocalHist {
        LocalHist {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one observation. Count and sum saturate rather than
    /// wrap: a telemetry histogram that has absorbed `u64::MAX` µs of
    /// observations should pin at the ceiling, not roll over to a
    /// plausible-looking small number.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Histogram::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        if value > self.max {
            self.max = value;
        }
    }

    /// A point-in-time copy of the histogram.
    pub fn snap(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: self.buckets.to_vec(),
            count: self.count,
            sum: self.sum,
            max: self.max,
        }
    }

    /// The p50/p90/p99 bucket bounds (see [`HistSnapshot::percentiles`]).
    pub fn percentiles(&self) -> Quantiles {
        self.snap().percentiles()
    }

    /// Folds `other` into `self` bucket-for-bucket: afterwards `self`
    /// holds the distribution of the union of both observation
    /// multisets. The merge is exact (buckets are aligned by
    /// construction), which is what makes per-trial histograms
    /// poolable across a sweep cell's seed replicas. Counts and sums
    /// saturate, so merging extreme telemetry inputs pins at
    /// `u64::MAX` instead of wrapping.
    pub fn merge(&mut self, other: &LocalHist) {
        for (b, &o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b = b.saturating_add(o);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        if other.max > self.max {
            self.max = other.max;
        }
    }

    /// Resets all buckets.
    pub fn reset(&mut self) {
        *self = LocalHist::new();
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket counts (see [`Histogram::bucket_of`]).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
}

impl HistSnapshot {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound (exclusive) of the bucket containing the `q`-th
    /// quantile, `q` in `[0, 1]` — e.g. `quantile_bound(0.5)` is a p50
    /// estimate with power-of-two resolution. 0 when empty.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        self.max
    }

    /// The p50/p90/p99 bucket bounds in one struct — the shape every
    /// dashboard column and `BENCH_*.json` field uses. Each value is a
    /// [`quantile_bound`](HistSnapshot::quantile_bound): the exclusive
    /// upper edge of the bucket holding that quantile, so it is within
    /// a factor of two of the exact order statistic (pinned by the
    /// differential test in `tests/quantile_differential.rs`).
    pub fn percentiles(&self) -> Quantiles {
        Quantiles {
            p50: self.quantile_bound(0.50),
            p90: self.quantile_bound(0.90),
            p99: self.quantile_bound(0.99),
        }
    }

    /// Folds `other` into `self` (same semantics as
    /// [`LocalHist::merge`]); snapshots of different lengths — e.g. the
    /// empty [`HistSnapshot::default`] accumulator — align on bucket
    /// index, so merging into an empty snapshot copies `other`. Counts
    /// and sums saturate rather than wrap (see [`LocalHist::merge`]).
    pub fn merge(&mut self, other: &HistSnapshot) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, &o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b = b.saturating_add(o);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        if other.max > self.max {
            self.max = other.max;
        }
    }

    /// The non-empty `(bucket_lower_bound, count)` pairs.
    pub fn nonzero(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { 1u64 << (i - 1) }, c))
            .collect()
    }
}

/// Histogram-derived p50/p90/p99 bucket bounds (µs, counts — whatever
/// the histogram recorded). Zero when the histogram is empty.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Quantiles {
    /// Median bucket bound.
    pub p50: u64,
    /// 90th-percentile bucket bound.
    pub p90: u64,
    /// 99th-percentile bucket bound.
    pub p99: u64,
}

/// A point-in-time copy of the whole registry, name-sorted (the
/// registry stores names in a BTree, so snapshots are deterministic).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// `(name, value)` for every registered counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, snapshot)` for every registered histogram.
    pub histograms: Vec<(String, HistSnapshot)>,
}

static RUNTIME_ENABLED: AtomicBool = AtomicBool::new(false);

/// Switches the registry probes on or off at runtime. A no-op (always
/// off) when the `enabled` feature is not compiled in.
pub fn set_enabled(on: bool) {
    RUNTIME_ENABLED.store(on && cfg!(feature = "enabled"), Relaxed);
}

/// The combined compile-time + runtime gate.
#[inline]
pub(crate) fn runtime_enabled() -> bool {
    cfg!(feature = "enabled") && RUNTIME_ENABLED.load(Relaxed)
}

#[cfg(feature = "enabled")]
mod registry {
    use super::{Counter, Histogram, Snapshot};
    use std::collections::BTreeMap;
    use std::sync::{Mutex, OnceLock};

    /// Registered metrics are leaked to `'static`: the name set is the
    /// finite set of instrumentation points, so the "leak" is a
    /// one-time arena for process-lifetime objects.
    struct Registry {
        counters: Mutex<BTreeMap<&'static str, &'static Counter>>,
        histograms: Mutex<BTreeMap<&'static str, &'static Histogram>>,
    }

    fn registry() -> &'static Registry {
        static REG: OnceLock<Registry> = OnceLock::new();
        REG.get_or_init(|| Registry {
            counters: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
        })
    }

    pub(super) fn counter(name: &'static str) -> &'static Counter {
        let mut map = registry().counters.lock().expect("obs registry poisoned");
        map.entry(name).or_insert_with(|| Box::leak(Box::default()))
    }

    pub(super) fn histogram(name: &'static str) -> &'static Histogram {
        let mut map = registry().histograms.lock().expect("obs registry poisoned");
        map.entry(name)
            .or_insert_with(|| Box::leak(Box::new(Histogram::new())))
    }

    pub(super) fn snapshot() -> Snapshot {
        let reg = registry();
        let counters = reg
            .counters
            .lock()
            .expect("obs registry poisoned")
            .iter()
            .map(|(&k, v)| (k.to_string(), v.get()))
            .collect();
        let histograms = reg
            .histograms
            .lock()
            .expect("obs registry poisoned")
            .iter()
            .map(|(&k, v)| (k.to_string(), v.snap()))
            .collect();
        Snapshot {
            counters,
            histograms,
        }
    }

    pub(super) fn reset() {
        let reg = registry();
        for c in reg.counters.lock().expect("obs registry poisoned").values() {
            c.reset();
        }
        for h in reg
            .histograms
            .lock()
            .expect("obs registry poisoned")
            .values()
        {
            h.reset();
        }
    }
}

/// Adds `delta` to the named registry counter. Hierarchical names use
/// slash separators (`"core/phase3/moves"`). No-op unless obs is
/// compiled in and runtime-enabled.
#[inline]
pub fn count(name: &'static str, delta: u64) {
    if !runtime_enabled() {
        return;
    }
    #[cfg(feature = "enabled")]
    registry::counter(name).add(delta);
    #[cfg(not(feature = "enabled"))]
    let _ = (name, delta);
}

/// Records `value` into the named registry histogram. No-op unless obs
/// is compiled in and runtime-enabled.
#[inline]
pub fn record(name: &'static str, value: u64) {
    if !runtime_enabled() {
        return;
    }
    #[cfg(feature = "enabled")]
    registry::histogram(name).record(value);
    #[cfg(not(feature = "enabled"))]
    let _ = (name, value);
}

/// Records `value` into the named registry histogram *and* adds it to
/// the counter of the same name suffixed `_total` — the usual shape for
/// "how much, how often" pairs like stall time.
#[inline]
pub fn record_total(name: &'static str, total_name: &'static str, value: u64) {
    if !runtime_enabled() {
        return;
    }
    #[cfg(feature = "enabled")]
    {
        registry::histogram(name).record(value);
        registry::counter(total_name).add(value);
    }
    #[cfg(not(feature = "enabled"))]
    let _ = (name, total_name, value);
}

/// A point-in-time copy of every registered metric (empty when the
/// feature is off). Reading does not require the runtime flag, so a
/// harness can disable, then snapshot, then report.
pub fn snapshot() -> Snapshot {
    #[cfg(feature = "enabled")]
    {
        registry::snapshot()
    }
    #[cfg(not(feature = "enabled"))]
    Snapshot::default()
}

/// Zeroes every registered metric (names stay registered).
pub fn reset() {
    #[cfg(feature = "enabled")]
    registry::reset();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_adds_and_resets() {
        let c = Counter::new();
        c.add(3);
        c.add(4);
        assert_eq!(c.get(), 7);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn histogram_buckets_are_power_of_two() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(1023), 10);
        assert_eq!(Histogram::bucket_of(1024), 11);
        assert_eq!(Histogram::bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn histogram_stats() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 100] {
            h.record(v);
        }
        let s = h.snap();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 106);
        assert_eq!(s.max, 100);
        assert!((s.mean() - 21.2).abs() < 1e-9);
        // Buckets: 0→[0], 1→[1], 2→[2,3], 7→[100].
        assert_eq!(s.nonzero(), vec![(0, 1), (1, 1), (2, 2), (64, 1)]);
        assert_eq!(s.quantile_bound(0.0), 0);
        assert_eq!(s.quantile_bound(0.5), 4); // 3rd of 5 obs is in [2,4)
        assert_eq!(s.quantile_bound(1.0), 128);
    }

    #[test]
    fn merged_histograms_equal_jointly_recorded_one() {
        let mut a = LocalHist::new();
        let mut b = LocalHist::new();
        let mut joint = LocalHist::new();
        for v in [0u64, 1, 5, 9, 100] {
            a.record(v);
            joint.record(v);
        }
        for v in [2u64, 3, 1000, 9] {
            b.record(v);
            joint.record(v);
        }
        a.merge(&b);
        assert_eq!(a, joint);
        assert_eq!(a.snap(), joint.snap());
        // Snapshot-level merge agrees, including into the empty default.
        let mut s = HistSnapshot::default();
        s.merge(&LocalHist::new().snap());
        assert_eq!(s.count, 0);
        let mut s = HistSnapshot::default();
        s.merge(&b.snap());
        assert_eq!(s, b.snap());
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let s = Histogram::new().snap();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.quantile_bound(0.5), 0);
        assert!(s.nonzero().is_empty());
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn registry_counts_only_when_enabled() {
        // Serialise with other registry tests via a dedicated name.
        count("test/gated", 5);
        assert!(
            !snapshot()
                .counters
                .iter()
                .any(|(n, v)| n == "test/gated" && *v > 0),
            "disabled probe must not record"
        );
        set_enabled(true);
        count("test/gated", 5);
        record("test/gated_hist", 7);
        set_enabled(false);
        let snap = snapshot();
        let c = snap
            .counters
            .iter()
            .find(|(n, _)| n == "test/gated")
            .unwrap();
        assert_eq!(c.1, 5);
        let h = snap
            .histograms
            .iter()
            .find(|(n, _)| n == "test/gated_hist")
            .unwrap();
        assert_eq!(h.1.count, 1);
        assert_eq!(h.1.sum, 7);
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn feature_off_is_inert() {
        set_enabled(true);
        assert!(!crate::enabled());
        count("test/never", 1);
        record("test/never", 1);
        assert_eq!(snapshot(), Snapshot::default());
    }
}
