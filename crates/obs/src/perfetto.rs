//! Chrome-trace-format (Perfetto-loadable) JSON export.
//!
//! The [Trace Event Format] is the lingua franca of timeline viewers:
//! a `traceEvents` array of begin/end (`B`/`E`) slices, instant
//! markers (`i`), counter samples (`C`), flow arrows (`s`/`f`), and
//! metadata (`M`), with timestamps in microseconds. Both of this
//! repo's timelines fit it directly — wall-clock analysis spans (one
//! track per OS thread) and *simulated-time* runs (one track per
//! simulated process, `SimTime` already being µs).
//!
//! The writer is append-only and deterministic: events render in
//! insertion order, one per line, so golden files diff cleanly. The
//! module is compiled regardless of the `enabled` feature — it is pure
//! formatting with no hot-path cost.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::span::WallSpan;
use std::fmt::Write as _;

/// Event phase, a subset of the trace event format sufficient for the
/// repo's two timeline flavours.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Begin,
    End,
    Instant,
    FlowStart,
    FlowEnd,
    Counter,
    Meta,
}

impl Phase {
    fn tag(self) -> &'static str {
        match self {
            Phase::Begin => "B",
            Phase::End => "E",
            Phase::Instant => "i",
            Phase::FlowStart => "s",
            Phase::FlowEnd => "f",
            Phase::Counter => "C",
            Phase::Meta => "M",
        }
    }
}

#[derive(Debug, Clone)]
struct Event {
    name: String,
    cat: &'static str,
    ph: Phase,
    ts: u64,
    pid: u64,
    tid: u64,
    /// Flow id (`s`/`f` events).
    id: Option<u64>,
    /// Pre-rendered `args` object body, e.g. `"value": 3`.
    args: Option<String>,
}

/// Builds a Chrome-trace-format JSON document event by event.
#[derive(Debug, Default)]
pub struct TraceBuilder {
    events: Vec<Event>,
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl TraceBuilder {
    /// An empty trace.
    pub fn new() -> TraceBuilder {
        TraceBuilder::default()
    }

    fn push(&mut self, ev: Event) {
        self.events.push(ev);
    }

    /// Names the process `pid` in the viewer's track hierarchy.
    pub fn process_name(&mut self, pid: u64, name: &str) {
        self.push(Event {
            name: "process_name".into(),
            cat: "__metadata",
            ph: Phase::Meta,
            ts: 0,
            pid,
            tid: 0,
            id: None,
            args: Some(format!("\"name\": \"{}\"", escape(name))),
        });
    }

    /// Names the track `(pid, tid)`.
    pub fn thread_name(&mut self, pid: u64, tid: u64, name: &str) {
        self.push(Event {
            name: "thread_name".into(),
            cat: "__metadata",
            ph: Phase::Meta,
            ts: 0,
            pid,
            tid,
            id: None,
            args: Some(format!("\"name\": \"{}\"", escape(name))),
        });
    }

    /// Opens a slice on track `(pid, tid)` at `ts_us`.
    pub fn begin(&mut self, pid: u64, tid: u64, ts_us: u64, name: &str, cat: &'static str) {
        self.push(Event {
            name: name.into(),
            cat,
            ph: Phase::Begin,
            ts: ts_us,
            pid,
            tid,
            id: None,
            args: None,
        });
    }

    /// Closes the innermost open slice on track `(pid, tid)`.
    pub fn end(&mut self, pid: u64, tid: u64, ts_us: u64) {
        self.push(Event {
            name: String::new(),
            cat: "",
            ph: Phase::End,
            ts: ts_us,
            pid,
            tid,
            id: None,
            args: None,
        });
    }

    /// A zero-duration marker. `scope` is `'g'` (global line across all
    /// tracks), `'p'` (process), or `'t'` (thread-local tick).
    pub fn instant(&mut self, pid: u64, tid: u64, ts_us: u64, name: &str, scope: char) {
        self.push(Event {
            name: name.into(),
            cat: "marker",
            ph: Phase::Instant,
            ts: ts_us,
            pid,
            tid,
            id: None,
            args: Some(format!("\"s\": \"{scope}\"")),
        });
    }

    /// Starts flow arrow `id` at `(pid, tid, ts_us)`.
    pub fn flow_start(&mut self, pid: u64, tid: u64, ts_us: u64, name: &str, id: u64) {
        self.push(Event {
            name: name.into(),
            cat: "flow",
            ph: Phase::FlowStart,
            ts: ts_us,
            pid,
            tid,
            id: Some(id),
            args: None,
        });
    }

    /// Ends flow arrow `id` at `(pid, tid, ts_us)` (binding to the
    /// enclosing slice's end, the viewer's default for `bp: "e"`).
    pub fn flow_end(&mut self, pid: u64, tid: u64, ts_us: u64, name: &str, id: u64) {
        self.push(Event {
            name: name.into(),
            cat: "flow",
            ph: Phase::FlowEnd,
            ts: ts_us,
            pid,
            tid,
            id: Some(id),
            args: None,
        });
    }

    /// A counter-track sample (rendered as an area chart by viewers).
    pub fn counter(&mut self, pid: u64, tid: u64, ts_us: u64, name: &str, value: u64) {
        self.push(Event {
            name: name.into(),
            cat: "counter",
            ph: Phase::Counter,
            ts: ts_us,
            pid,
            tid,
            id: None,
            args: Some(format!("\"value\": {value}")),
        });
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no event has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Structural well-formedness: per track (`pid`, `tid`), non-meta
    /// timestamps must be non-decreasing in emission order and `B`/`E`
    /// slices must balance (every `E` closes an open `B`, nothing left
    /// open); every flow id must have exactly one start and one end,
    /// with the start at or before the end.
    pub fn validate(&self) -> Result<(), String> {
        use std::collections::BTreeMap;
        let mut last_ts: BTreeMap<(u64, u64), u64> = BTreeMap::new();
        let mut open: BTreeMap<(u64, u64), Vec<&str>> = BTreeMap::new();
        let mut flows: BTreeMap<u64, (u64, u64)> = BTreeMap::new(); // id -> (starts, ends)
        let mut flow_ts: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
        for ev in &self.events {
            if ev.ph == Phase::Meta {
                continue;
            }
            let track = (ev.pid, ev.tid);
            if let Some(&prev) = last_ts.get(&track) {
                if ev.ts < prev {
                    return Err(format!(
                        "track {track:?}: timestamp {} precedes {}",
                        ev.ts, prev
                    ));
                }
            }
            last_ts.insert(track, ev.ts);
            match ev.ph {
                Phase::Begin => open.entry(track).or_default().push(&ev.name),
                Phase::End if open.entry(track).or_default().pop().is_none() => {
                    return Err(format!("track {track:?}: E with no open B at ts {}", ev.ts));
                }
                Phase::End => {}
                Phase::FlowStart => {
                    let id = ev.id.expect("flow events carry an id");
                    flows.entry(id).or_default().0 += 1;
                    flow_ts.entry(id).or_default().0 = ev.ts;
                }
                Phase::FlowEnd => {
                    let id = ev.id.expect("flow events carry an id");
                    flows.entry(id).or_default().1 += 1;
                    flow_ts.entry(id).or_default().1 = ev.ts;
                }
                _ => {}
            }
        }
        for (track, stack) in &open {
            if !stack.is_empty() {
                return Err(format!(
                    "track {track:?}: {} unbalanced B event(s), first {:?}",
                    stack.len(),
                    stack[0]
                ));
            }
        }
        for (id, (starts, ends)) in &flows {
            if *starts != 1 || *ends != 1 {
                return Err(format!("flow {id}: {starts} start(s), {ends} end(s)"));
            }
            let (s, e) = flow_ts[id];
            if s > e {
                return Err(format!("flow {id}: starts at {s} after ending at {e}"));
            }
        }
        Ok(())
    }

    /// Renders the JSON document (one event per line, insertion order).
    pub fn render(&self) -> String {
        let mut out = String::from("{\"traceEvents\": [\n");
        for (i, ev) in self.events.iter().enumerate() {
            let _ = write!(
                out,
                "  {{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"{}\", \"ts\": {}, \"pid\": {}, \"tid\": {}",
                escape(&ev.name),
                escape(ev.cat),
                ev.ph.tag(),
                ev.ts,
                ev.pid,
                ev.tid
            );
            if let Some(id) = ev.id {
                let _ = write!(out, ", \"id\": {id}");
            }
            if ev.ph == Phase::FlowEnd {
                out.push_str(", \"bp\": \"e\"");
            }
            if let Some(args) = &ev.args {
                let _ = write!(out, ", \"args\": {{{args}}}");
            }
            out.push('}');
            if i + 1 < self.events.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("], \"displayTimeUnit\": \"ms\"}\n");
        out
    }
}

/// Converts completed wall-clock spans into a one-process trace (one
/// track per recording thread). Spans on a thread form a properly
/// nested forest (RAII guarantees it), re-emitted here as balanced
/// `B`/`E` pairs via a stack sweep. Tracks of labeled worker threads
/// (see [`crate::span::thread_labels`]) are named by their label.
pub fn wall_spans_trace(spans: &[WallSpan]) -> TraceBuilder {
    let labels = crate::span::thread_labels();
    let mut tb = TraceBuilder::new();
    tb.process_name(0, "acfc (wall clock)");
    let mut tids: Vec<u64> = spans.iter().map(|s| s.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    for &tid in &tids {
        match labels.iter().find(|(t, _)| *t == tid) {
            Some((_, label)) => tb.thread_name(0, tid, label),
            None => tb.thread_name(0, tid, &format!("thread {tid}")),
        }
        let mut mine: Vec<&WallSpan> = spans.iter().filter(|s| s.tid == tid).collect();
        // Outer spans first at equal starts (the longer one encloses).
        mine.sort_by_key(|s| (s.start_us, u64::MAX - s.end_us));
        let mut stack: Vec<&WallSpan> = Vec::new();
        for s in mine {
            while stack.last().is_some_and(|t| t.end_us <= s.start_us) {
                let t = stack.pop().expect("checked non-empty");
                tb.end(0, tid, t.end_us);
            }
            tb.begin(0, tid, s.start_us, s.name, "analysis");
            stack.push(s);
        }
        while let Some(t) = stack.pop() {
            tb.end(0, tid, t.end_us);
        }
    }
    tb
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_validate_a_small_trace() {
        let mut tb = TraceBuilder::new();
        tb.process_name(1, "sim");
        tb.thread_name(1, 0, "P0");
        tb.begin(1, 0, 0, "compute", "sim");
        tb.flow_start(1, 0, 5, "msg", 1);
        tb.end(1, 0, 10);
        tb.thread_name(1, 1, "P1");
        tb.begin(1, 1, 2, "blocked", "sim");
        tb.flow_end(1, 1, 8, "msg", 1);
        tb.end(1, 1, 8);
        tb.instant(1, 1, 9, "recovery line 1", 'g');
        tb.counter(1, 0, 11, "queue depth", 3);
        assert!(tb.validate().is_ok(), "{:?}", tb.validate());
        let json = tb.render();
        assert!(json.starts_with("{\"traceEvents\": ["));
        assert!(json.trim_end().ends_with("\"displayTimeUnit\": \"ms\"}"));
        assert!(json.contains("\"ph\": \"B\""));
        assert!(json.contains("\"bp\": \"e\""));
        assert!(json.contains("\"s\": \"g\""));
        assert!(json.contains("\"value\": 3"));
        assert_eq!(tb.len(), 11);
    }

    #[test]
    fn validation_rejects_unbalanced_and_backwards() {
        let mut tb = TraceBuilder::new();
        tb.begin(1, 0, 5, "a", "t");
        assert!(tb.validate().unwrap_err().contains("unbalanced"));
        tb.end(1, 0, 3); // goes backwards
        assert!(tb.validate().unwrap_err().contains("precedes"));

        let mut tb = TraceBuilder::new();
        tb.end(1, 0, 1);
        assert!(tb.validate().unwrap_err().contains("no open B"));

        let mut tb = TraceBuilder::new();
        tb.flow_start(1, 0, 1, "m", 7);
        assert!(tb.validate().unwrap_err().contains("flow 7"));
    }

    #[test]
    fn names_are_escaped() {
        let mut tb = TraceBuilder::new();
        tb.begin(1, 0, 0, "a \"b\"\n\\", "t");
        tb.end(1, 0, 1);
        let json = tb.render();
        assert!(json.contains("a \\\"b\\\"\\n\\\\"));
    }

    #[test]
    fn wall_spans_rebuild_nesting() {
        use crate::span::WallSpan;
        let spans = vec![
            // Completion order: inner before outer, plus a later sibling
            // and a zero-length span.
            WallSpan {
                name: "inner",
                tid: 0,
                start_us: 2,
                end_us: 4,
            },
            WallSpan {
                name: "outer",
                tid: 0,
                start_us: 0,
                end_us: 10,
            },
            WallSpan {
                name: "zero",
                tid: 0,
                start_us: 12,
                end_us: 12,
            },
            WallSpan {
                name: "late",
                tid: 0,
                start_us: 13,
                end_us: 20,
            },
            WallSpan {
                name: "other-thread",
                tid: 1,
                start_us: 1,
                end_us: 2,
            },
        ];
        let tb = wall_spans_trace(&spans);
        assert!(tb.validate().is_ok(), "{:?}", tb.validate());
        let json = tb.render();
        // 5 B + 5 E + 1 process_name + 2 thread_name.
        assert_eq!(tb.len(), 13);
        assert!(json.contains("\"name\": \"outer\""));
        assert!(json.contains("\"name\": \"thread 1\""));
    }
}
