//! # Observability core for ACFC
//!
//! The workspace's perf story (SCC-condensed reachability, the
//! incremental Phase III, the lowered-bytecode engine) was built on
//! end-to-end wall-clock numbers; this crate adds the *interior* view:
//! where the time goes inside an analysis pass, and where simulated
//! time goes inside a run. It is deliberately zero-dependency and
//! two-layered:
//!
//! * **Compile-time layer** — the `enabled` cargo feature. Without it,
//!   [`count`], [`record`], and [`span`] compile to inline empty
//!   no-ops and the registry is permanently empty, so instrumented hot
//!   paths carry literally no code. Downstream crates expose this as
//!   their own `obs` feature.
//! * **Runtime layer** — [`set_enabled`]. Even when compiled in,
//!   probes first check one relaxed atomic; the disabled cost is a
//!   single predictable branch, preserving the `NoHooks` simulator hot
//!   path (~16M events/s) and the analysis throughput numbers.
//!
//! The pieces:
//!
//! * [`Counter`] / [`Histogram`] / [`LocalHist`] — relaxed-atomic
//!   monotone counters, fixed 64-bucket power-of-two histograms, and a
//!   non-atomic histogram twin for exclusively-owned collectors.
//!   Always compiled (the simulator's per-run collector uses them
//!   directly, unmetered by the global flag).
//! * the **registry** — a process-global, thread-safe, hierarchical
//!   (slash-separated names) table behind [`count`], [`record`],
//!   [`snapshot`], and [`reset`].
//! * [`span`] — RAII wall-clock timers. Each span records its duration
//!   into the registry histogram of the same name and appends a
//!   begin/end pair to a global timeline for Perfetto export
//!   ([`take_wall_spans`], [`perfetto::wall_spans_trace`]).
//! * [`perfetto`] — a Chrome-trace-format (`traceEvents`) JSON writer
//!   with structural validation (balanced B/E, per-track monotone
//!   timestamps), loadable in <https://ui.perfetto.dev>.
//! * [`folded`] — collapses the same span forest into folded stack
//!   lines (`inferno`/flamegraph.pl) and a speedscope JSON document,
//!   the flamegraph-native complements of the Perfetto timeline.
//! * [`serve`] — a zero-dependency `std::net::TcpListener` endpoint
//!   exposing the registry in Prometheus text exposition format, so
//!   long sweeps can be scraped or curl'd mid-run.
//! * [`report`] — plain-text rendering of a [`Snapshot`] for
//!   `acfc report` and the bench harness.
//! * [`stats`] — [`CiAccum`]/[`CiSummary`], a mergeable Welford
//!   accumulator producing mean/stddev/95% CI for replicated-trial
//!   sweeps (the scalar complement of `LocalHist::merge`), plus
//!   [`bootstrap_median_ci`], a seeded bootstrap over a pooled
//!   [`HistSnapshot`] yielding median ± 95% percentile intervals for
//!   heavy-tailed latency columns.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod folded;
pub mod metrics;
pub mod perfetto;
pub mod report;
pub mod serve;
pub mod span;
pub mod stats;

pub use folded::{folded_lines, speedscope_json};
pub use metrics::{
    count, record, reset, set_enabled, snapshot, Counter, HistSnapshot, Histogram, LocalHist,
    Quantiles, Snapshot,
};
pub use perfetto::TraceBuilder;
pub use report::render;
pub use serve::{prometheus_text, serve, MetricsServer};
pub use span::{span, take_wall_spans, thread_labels, SpanGuard, WallSpan};
pub use stats::{
    bootstrap_median_ci, t_critical_95, CiAccum, CiSummary, MedianCi, BOOTSTRAP_MAX_DRAWS,
    BOOTSTRAP_RESAMPLES,
};

/// `true` when instrumentation is both compiled in (`enabled` feature)
/// and switched on at runtime via [`set_enabled`].
#[inline]
pub fn enabled() -> bool {
    metrics::runtime_enabled()
}
