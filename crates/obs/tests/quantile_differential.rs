//! Differential pin of the histogram quantiles: [`LocalHist`]'s
//! p50/p90/p99 bucket bounds against the *exact* order statistics of
//! the same samples kept in a sorted `Vec<u64>`.
//!
//! The histogram buckets by bit length (bucket `i` spans
//! `[2^(i−1), 2^i)`), so a quantile bound can never be exact — but it
//! is provably tight: the returned bound is the exclusive upper edge
//! of the bucket containing the exact order statistic, hence
//! `exact < bound ≤ 2·exact` for every nonzero exact quantile. This
//! test pins that factor-of-two envelope over seeded uniform, bimodal,
//! and single-bucket-degenerate samples, so any bucketing or
//! cumulative-scan regression (off-by-one in the target index,
//! wrong bucket edge) shows up as a broken bound, not a silent drift.

use acfc_obs::{HistSnapshot, LocalHist};

/// xoshiro-free splitmix64: deterministic, no dependencies, good
/// enough to scatter samples across buckets.
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// The exact `q`-quantile under the same convention the histogram
/// scan uses: the `ceil(q·count).max(1)`-th smallest sample.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let target = (q * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[target - 1]
}

/// Records every sample into a `LocalHist` and asserts the bucket
/// bound brackets the exact quantile within the power-of-two envelope
/// for each of p50/p90/p99.
fn check_differential(name: &str, samples: &[u64]) {
    let mut hist = LocalHist::new();
    for &v in samples {
        hist.record(v);
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let snap: HistSnapshot = hist.snap();
    assert_eq!(snap.count, samples.len() as u64, "{name}: count");
    assert_eq!(snap.max, *sorted.last().unwrap(), "{name}: max");
    let qs = snap.percentiles();
    for (q, bound) in [(0.50, qs.p50), (0.90, qs.p90), (0.99, qs.p99)] {
        assert_eq!(
            bound,
            snap.quantile_bound(q),
            "{name}: percentiles() and quantile_bound({q}) disagree"
        );
        let exact = exact_quantile(&sorted, q);
        if exact == 0 {
            assert_eq!(bound, 0, "{name} q={q}: zero quantile must stay zero");
        } else {
            assert!(
                bound > exact,
                "{name} q={q}: bound {bound} not above exact {exact}"
            );
            assert!(
                bound <= 2 * exact,
                "{name} q={q}: bound {bound} exceeds 2x exact {exact} \
                 (bucket-induced relative error above 100%)"
            );
        }
    }
}

#[test]
fn uniform_samples_stay_in_the_power_of_two_envelope() {
    let mut rng = SplitMix(0xACFC_0001);
    for round in 0..8 {
        let n = 500 + 700 * round;
        let samples: Vec<u64> = (0..n).map(|_| rng.next() % 1_000_000).collect();
        check_differential(&format!("uniform round {round}"), &samples);
    }
}

#[test]
fn bimodal_samples_with_a_heavy_tail() {
    // 90% fast-path values near 100, 10% tail near 10^6 — the shape of
    // a latency distribution whose p99 a mean would hide entirely.
    let mut rng = SplitMix(0xACFC_0002);
    for round in 0..8 {
        let samples: Vec<u64> = (0..4000)
            .map(|_| {
                if rng.next().is_multiple_of(10) {
                    900_000 + rng.next() % 200_000
                } else {
                    80 + rng.next() % 40
                }
            })
            .collect();
        check_differential(&format!("bimodal round {round}"), &samples);
        // The tail actually registers: p99 lands in the slow mode while
        // p50 stays in the fast one.
        let mut hist = LocalHist::new();
        for &v in &samples {
            hist.record(v);
        }
        let q = hist.percentiles();
        assert!(q.p50 <= 128, "p50 {} escaped the fast mode", q.p50);
        assert!(q.p99 >= 900_000, "p99 {} missed the tail", q.p99);
    }
}

#[test]
fn degenerate_single_bucket_samples() {
    // Every sample in one bucket: all three quantiles collapse onto
    // that bucket's upper edge and still satisfy the envelope.
    let mut rng = SplitMix(0xACFC_0003);
    let constant: Vec<u64> = vec![100; 1000];
    check_differential("constant 100", &constant);
    let one_bucket: Vec<u64> = (0..1000).map(|_| 64 + rng.next() % 64).collect();
    check_differential("bucket [64,128)", &one_bucket);
    let mut hist = LocalHist::new();
    for &v in &one_bucket {
        hist.record(v);
    }
    let q = hist.percentiles();
    assert_eq!((q.p50, q.p90, q.p99), (128, 128, 128));
}

#[test]
fn zeros_and_small_values_hit_the_exact_buckets() {
    // Bucket 0 is exactly {0} and bucket 1 exactly {1}: quantiles over
    // tiny values are exact, not just bounded.
    let samples: Vec<u64> = std::iter::repeat_n(0u64, 600)
        .chain(std::iter::repeat_n(1u64, 400))
        .collect();
    let mut hist = LocalHist::new();
    for &v in &samples {
        hist.record(v);
    }
    let q = hist.percentiles();
    assert_eq!(q.p50, 0, "600 of 1000 samples are zero");
    assert_eq!(q.p90, 2, "p90 falls in bucket [1,2)");
    let mut sorted = samples.clone();
    sorted.sort_unstable();
    assert_eq!(exact_quantile(&sorted, 0.5), 0);
    assert_eq!(exact_quantile(&sorted, 0.9), 1);
}
