//! Differential pin of the sweep CI accumulator: [`CiAccum`] (one-pass
//! Welford + Chan-style merge) must agree with a straightforward
//! two-pass mean/stddev on generated data, and the degenerate cases a
//! real sweep hits (`seeds = 1`, all trials identical) must degrade to
//! *absent* confidence intervals — never NaN.

use acfc_obs::{t_critical_95, CiAccum};

/// Minimal deterministic generator (64-bit LCG, MMIX constants) so the
/// test needs no dev-dependencies. Yields f64s in roughly [-scale, scale].
struct Lcg(u64);

impl Lcg {
    fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }

    fn next_f64(&mut self, scale: f64) -> f64 {
        // Top 53 bits -> [0, 1), then centre.
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        (u - 0.5) * 2.0 * scale
    }
}

/// The reference implementation: textbook two-pass mean and sample
/// stddev, plus the same t-table for the interval.
fn two_pass(xs: &[f64]) -> (f64, f64, Option<f64>) {
    let n = xs.len() as f64;
    if xs.is_empty() {
        return (0.0, 0.0, None);
    }
    let mean = xs.iter().sum::<f64>() / n;
    if xs.len() < 2 {
        return (mean, 0.0, None);
    }
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
    let sd = var.sqrt();
    let ci = t_critical_95(xs.len() as u64 - 1) * sd / n.sqrt();
    (mean, sd, Some(ci))
}

fn assert_close(a: f64, b: f64, tol: f64, what: &str) {
    assert!(
        (a - b).abs() <= tol * (1.0 + b.abs()),
        "{what}: one-pass {a} vs two-pass {b}"
    );
}

#[test]
fn welford_matches_two_pass_on_generated_data() {
    let mut rng = Lcg(0xACFC_5EED);
    // Sweep-realistic sample sizes, including the tiny ones where the
    // t-correction matters most.
    for &n in &[2usize, 3, 5, 10, 33, 100, 1000] {
        for (case, scale, offset) in [
            ("centred", 1.0, 0.0),
            ("latency-like", 5_000.0, 20_000.0),
            // Large common offset: the classic catastrophic-cancellation
            // trap for naive sum-of-squares; Welford must hold up.
            ("offset-heavy", 1.0, 1.0e9),
        ] {
            let xs: Vec<f64> = (0..n).map(|_| rng.next_f64(scale) + offset).collect();
            let mut acc = CiAccum::new();
            for &x in &xs {
                acc.push(x);
            }
            let (mean, sd, ci) = two_pass(&xs);
            let s = acc.summary();
            let what = format!("{case} n={n}");
            assert_eq!(s.count, n as u64, "{what}");
            assert_close(s.mean, mean, 1e-9, &format!("{what} mean"));
            assert_close(s.stddev, sd, 1e-6, &format!("{what} stddev"));
            match (s.ci95_half, ci) {
                (Some(a), Some(b)) => assert_close(a, b, 1e-6, &format!("{what} ci95")),
                (a, b) => assert_eq!(a, b, "{what} ci presence"),
            }
            assert!(
                s.mean.is_finite() && s.stddev.is_finite(),
                "{what}: NaN leak"
            );
        }
    }
}

#[test]
fn chunked_merge_matches_flat_accumulation() {
    let mut rng = Lcg(42);
    let xs: Vec<f64> = (0..257).map(|_| rng.next_f64(300.0) + 1_000.0).collect();
    let mut flat = CiAccum::new();
    for &x in &xs {
        flat.push(x);
    }
    // Deliberately ragged chunking, including a 1-element and an empty
    // logical chunk, mirroring work-stealing splits across sweep workers.
    for chunk_sizes in [
        vec![257],
        vec![1, 256],
        vec![64, 64, 64, 65],
        vec![100, 0, 157],
    ] {
        let mut merged = CiAccum::new();
        let mut off = 0usize;
        for sz in chunk_sizes {
            let mut part = CiAccum::new();
            for &x in &xs[off..off + sz] {
                part.push(x);
            }
            off += sz;
            merged.merge(&part);
        }
        assert_eq!(off, xs.len());
        assert_eq!(merged.count(), flat.count());
        assert_close(merged.mean(), flat.mean(), 1e-12, "merged mean");
        assert_close(merged.stddev(), flat.stddev(), 1e-9, "merged stddev");
    }
}

#[test]
fn seeds_one_reports_absent_interval_not_nan() {
    let mut acc = CiAccum::new();
    acc.push(123.456);
    let s = acc.summary();
    assert_eq!(s.count, 1);
    assert_eq!(s.mean, 123.456);
    assert_eq!(s.stddev, 0.0);
    assert_eq!(s.ci95_half, None, "seeds=1 must report CI as absent");
    assert!(!s.mean.is_nan() && !s.stddev.is_nan());
    // Rendered cell: bare mean, no ± suffix, no NaN text.
    let cell = s.render(3);
    assert_eq!(cell, "123.456");
    assert!(!cell.contains("NaN"));
}

#[test]
fn all_identical_trials_give_zero_width_interval() {
    for &n in &[2usize, 5, 17] {
        let mut acc = CiAccum::new();
        for _ in 0..n {
            acc.push(-7.25);
        }
        let s = acc.summary();
        assert_eq!(s.mean, -7.25);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(
            s.ci95_half,
            Some(0.0),
            "identical trials (n={n}) have a defined zero-width CI"
        );
        assert!(!s.render(2).contains("NaN"));
    }
}

#[test]
fn empty_accumulator_is_well_defined() {
    let s = CiAccum::new().summary();
    assert_eq!(s.count, 0);
    assert_eq!(s.mean, 0.0);
    assert_eq!(s.stddev, 0.0);
    assert_eq!(s.ci95_half, None);
}
