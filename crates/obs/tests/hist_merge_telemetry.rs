//! Histogram merge + percentile behaviour under telemetry-sized
//! inputs — the shapes `TelemetrySink` feeds it: thousands of cell
//! wall times spanning µs to minutes, empty accumulators merged with
//! populated workers, and adversarial near-overflow totals.

use acfc_obs::{HistSnapshot, LocalHist};

/// A tiny deterministic xorshift so the test needs no RNG dependency.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

#[test]
fn empty_merged_with_nonempty_copies_it_exactly() {
    let mut populated = LocalHist::new();
    for v in [3u64, 17, 512, 40_000_000] {
        populated.record(v);
    }
    // LocalHist side.
    let mut acc = LocalHist::new();
    acc.merge(&populated);
    assert_eq!(acc, populated);
    // Snapshot side, both directions.
    let mut snap = HistSnapshot::default();
    snap.merge(&populated.snap());
    assert_eq!(snap, populated.snap());
    let mut back = populated.snap();
    back.merge(&HistSnapshot::default());
    assert_eq!(back, populated.snap());
}

#[test]
fn counts_and_sums_saturate_instead_of_wrapping() {
    // Two histograms whose sums alone would overflow u64 on merge.
    let mut a = LocalHist::new();
    a.record(u64::MAX);
    let mut b = LocalHist::new();
    b.record(u64::MAX);
    a.merge(&b);
    assert_eq!(a.snap().sum, u64::MAX, "sum must pin at the ceiling");
    assert_eq!(a.snap().count, 2);
    assert_eq!(a.snap().max, u64::MAX);
    // Recording past the ceiling also pins.
    a.record(u64::MAX);
    assert_eq!(a.snap().sum, u64::MAX);
    assert_eq!(a.snap().count, 3);
    // Snapshot-level merge saturates count, sum, and buckets alike.
    let mut s = HistSnapshot {
        buckets: vec![u64::MAX; 4],
        count: u64::MAX,
        sum: u64::MAX,
        max: 1,
    };
    let other = HistSnapshot {
        buckets: vec![1; 4],
        count: 1,
        sum: 1,
        max: 2,
    };
    s.merge(&other);
    assert_eq!(s.count, u64::MAX);
    assert_eq!(s.sum, u64::MAX);
    assert!(s.buckets.iter().all(|&b| b == u64::MAX));
    assert_eq!(s.max, 2);
}

#[test]
fn pairwise_merge_equals_jointly_recorded_at_telemetry_scale() {
    // 8 "workers" each record ~4k cell wall times drawn from a heavy
    // spread (1µs .. ~100s); merging the per-worker histograms must
    // reproduce the jointly-recorded distribution bit-for-bit, and the
    // percentile bounds must bracket the true order statistics.
    let mut rng = XorShift(0x9e3779b97f4a7c15);
    let mut joint = LocalHist::new();
    let mut workers: Vec<LocalHist> = (0..8).map(|_| LocalHist::new()).collect();
    let mut values: Vec<u64> = Vec::new();
    for i in 0..32_768usize {
        let v = 1 + rng.next() % 100_000_000; // 1µs ..= 100s in µs
        joint.record(v);
        workers[i % 8].record(v);
        values.push(v);
    }
    let mut merged = LocalHist::new();
    for w in &workers {
        merged.merge(w);
    }
    assert_eq!(merged, joint);

    values.sort_unstable();
    let q = merged.percentiles();
    for (bound, frac) in [(q.p50, 0.50), (q.p90, 0.90), (q.p99, 0.99)] {
        let exact =
            values[((frac * values.len() as f64).ceil() as usize - 1).min(values.len() - 1)];
        // quantile_bound is the exclusive upper edge of the bucket
        // holding the quantile: above the exact order statistic, and
        // within the power-of-two bucket (no more than 2× above).
        assert!(bound > exact, "p{frac}: bound {bound} ≤ exact {exact}");
        assert!(bound <= exact * 2, "p{frac}: bound {bound} > 2×{exact}");
    }
}

#[test]
fn percentiles_of_empty_and_single_observation_histograms() {
    let empty = LocalHist::new();
    let q = empty.percentiles();
    assert_eq!((q.p50, q.p90, q.p99), (0, 0, 0));
    let mut one = LocalHist::new();
    one.record(777);
    let q = one.percentiles();
    // 777 has bit length 10, so every quantile reports bucket edge 1024.
    assert_eq!((q.p50, q.p90, q.p99), (1024, 1024, 1024));
}
